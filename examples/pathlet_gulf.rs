//! The paper's §6.1 Pathlet Routing deployment (Figure 8): a Pathlet
//! island disseminates pathlets across a BGP gulf inside Integrated
//! Advertisements; the source island's border translates them back and
//! composes end-to-end routes.
//!
//! Run with: `cargo run --release --example pathlet_gulf`

use dbgp::core::{DbgpConfig, IslandConfig};
use dbgp::protocols::pathlet::{ingress_translate, Pathlet, PathletDb};
use dbgp::protocols::PathletModule;
use dbgp::sim::Sim;
use dbgp::wire::{Ipv4Prefix, IslandId, ProtocolId};

fn main() {
    let island_a = IslandConfig { id: IslandId(900), abstraction: false };
    let island_b = IslandConfig { id: IslandId(901), abstraction: false };
    let dest: Ipv4Prefix = "128.6.0.0/16".parse().unwrap();

    let mut sim = Sim::new();
    let d = sim.add_node(DbgpConfig::island_member(10, island_a, ProtocolId::BGP));
    let a2 = sim.add_node(DbgpConfig::island_member(11, island_a, ProtocolId::BGP));
    let a3 = sim.add_node(DbgpConfig::island_member(12, island_a, ProtocolId::BGP));
    let g1 = sim.add_node(DbgpConfig::gulf(4000));
    let g2 = sim.add_node(DbgpConfig::gulf(4001));
    let s = sim.add_node(DbgpConfig::island_member(20, island_b, ProtocolId::BGP));

    // Island A's pathlets, following the paper's test: four one-hop
    // pathlets flooded internally; border A2 composes a two-hop pathlet
    // (fid 5) and exports it along with its one-hop pathlets; border A3
    // exports the remaining one-hop pathlet. Five distinct pathlets
    // should reach S.
    let a2_exports = vec![
        Pathlet::between(1, 100, 111),  // d -> a2
        Pathlet::to_dest(3, 111, dest), // a2 -> dest
        Pathlet::to_dest(5, 100, dest), // composed two-hop pathlet
    ];
    let a3_exports = vec![
        Pathlet::between(2, 100, 112),  // d -> a3
        Pathlet::to_dest(4, 112, dest), // a3 -> dest
    ];
    sim.speaker_mut(a2).register_module(Box::new(PathletModule::new(island_a.id, 111, a2_exports)));
    sim.speaker_mut(a3).register_module(Box::new(PathletModule::new(island_a.id, 112, a3_exports)));

    sim.link(d, a2, 10, true);
    sim.link(d, a3, 10, true);
    sim.link(a2, g1, 10, false);
    sim.link(a3, g2, 10, false);
    sim.link(g1, s, 10, false);
    sim.link(g2, s, 10, false);

    sim.originate(d, dest);
    sim.run(10_000_000);

    // Ingress translation at island B: unpack every IA S received.
    println!("IAs received at S for {dest}:");
    let mut db = PathletDb::new();
    for (neighbor, ia) in sim.speaker(s).iadb().candidates(&dest) {
        let ads = ingress_translate(ia);
        println!(
            "  from {}: path [{}], {} pathlets",
            neighbor,
            ia.path_vector.iter().map(|e| e.to_string()).collect::<Vec<_>>().join(" "),
            ads.len()
        );
        for ad in ads {
            println!("    fid {}: {:?} -> {:?}", ad.pathlet.fid, ad.pathlet.from, ad.pathlet.to);
            db.insert(ad.pathlet);
        }
    }
    println!("\ntotal distinct pathlets at S: {} (the paper's test expects 5)", db.len());
    assert_eq!(db.len(), 5);

    // Compose end-to-end forwarding headers from the island-A ingress
    // router (id 100).
    let headers = db.compose(100, &dest, 10);
    println!("\nend-to-end FID headers composable from router 100:");
    for h in &headers {
        println!("  {:?}", h.fids);
    }
    println!(
        "\n{} distinct pathlet routes available — BGP alone would have offered 1.",
        headers.len()
    );
}
