//! The paper's Figure 3 / §3.4 replacement-protocol scenario: a
//! SCION-like island exposes two within-island paths to a destination.
//! Redistribution into plain BGP keeps only one; over D-BGP both cross
//! the gulf inside an island descriptor, and the source picks one and
//! builds a path-based header encapsulated in IPv4.
//!
//! Run with: `cargo run --release --example scion_multipath`

use dbgp::core::{DbgpConfig, IslandConfig};
use dbgp::protocols::scion::{path_sets, PathSet, ScionModule};
use dbgp::sim::{Header, Packet, Sim};
use dbgp::wire::{Ipv4Prefix, IslandId, ProtocolId};

fn main() {
    let dst: Ipv4Prefix = "131.3.0.0/24".parse().unwrap();
    let scion_island = IslandConfig { id: IslandId(800), abstraction: false };
    let src_island = IslandConfig { id: IslandId(801), abstraction: false };

    let mut sim = Sim::new();
    let d = sim.add_node(DbgpConfig::island_member(10, scion_island, ProtocolId::SCION));
    let border = sim.add_node(DbgpConfig::island_member(11, scion_island, ProtocolId::SCION));
    let g1 = sim.add_node(DbgpConfig::gulf(4000));
    let g2 = sim.add_node(DbgpConfig::gulf(4001));
    let s = sim.add_node(DbgpConfig::island_member(20, src_island, ProtocolId::SCION));

    // The island's two within-island paths, at border-router granularity
    // (paper Figure 4: "br70 br50 br10 br1" / "br70 br20 br5 br1").
    let exposed = PathSet { paths: vec![vec![70, 50, 10, 1], vec![70, 20, 5, 1]] };
    sim.speaker_mut(border).register_module(Box::new(ScionModule::new(scion_island.id, exposed)));
    sim.speaker_mut(s)
        .register_module(Box::new(ScionModule::new(src_island.id, PathSet::default())));

    sim.link(d, border, 10, true);
    sim.link(border, g1, 10, false);
    sim.link(g1, g2, 10, false);
    sim.link(g2, s, 10, false);
    sim.originate(d, dst);
    sim.run(10_000_000);

    let best = sim.speaker(s).best(&dst).expect("route learned");
    let sets = path_sets(&best.ia);
    println!("S's IA for {dst}: {}", best.ia);
    println!("\nSCION path sets that crossed the gulf:");
    for (island, set) in &sets {
        for path in &set.paths {
            println!("  island {island}: {:?}", path);
        }
    }
    let n_paths: usize = sets.iter().map(|(_, s)| s.paths.len()).sum();
    println!("\n{} within-island paths visible (plain BGP redistribution keeps 1).", n_paths);
    assert_eq!(n_paths, 2);

    // Source picks a path and builds the multi-network-protocol packet:
    // a SCION header (for the island) inside an IPv4 header (to cross
    // the gulf).
    let header = ScionModule::choose_path(&best.ia, scion_island.id).expect("path chosen");
    println!("\nchosen within-island path (router IDs): {:?}", header.hops);
    let packet = Packet {
        stack: vec![Header::Scion(header.to_bytes()), Header::Ipv4 { dst: best.ia.next_hop }],
        payload: 99,
    };
    println!(
        "constructed multi-network-protocol header stack: [SCION({} hops) | IPv4 {}]",
        header.hops.len(),
        best.ia.next_hop
    );
    let _ = packet;
    println!("\nBoth Figure-3 paths survived the gulf — requirement CF-R1 for replacements.");
}
