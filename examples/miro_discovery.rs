//! The paper's Figure 2 / §3.4 custom-protocol scenario: a transit
//! island T discovers a MIRO island's alternate-path service through a
//! passed-through island descriptor, negotiates a path out-of-band, and
//! tunnels traffic to it.
//!
//! Run with: `cargo run --release --example miro_discovery`

use dbgp::core::{DbgpConfig, IslandConfig};
use dbgp::protocols::{miro, MiroModule, MiroOffer, MiroPortal, MiroRequest};
use dbgp::sim::{Delivery, Packet, Service, Sim};
use dbgp::wire::{Ipv4Addr, Ipv4Prefix, IslandId, ProtocolId};

fn main() {
    let dst: Ipv4Prefix = "131.4.0.0/24".parse().unwrap();
    let m_island = IslandConfig { id: IslandId(1007), abstraction: false };
    let portal_addr = Ipv4Addr::new(173, 82, 2, 0);

    let mut sim = Sim::new();
    let d = sim.add_node(DbgpConfig::gulf(1)); // destination AS
    let m = sim.add_node(DbgpConfig::island_member(2, m_island, ProtocolId::BGP));
    let gulf = sim.add_node(DbgpConfig::gulf(4000));
    let t = sim.add_node(DbgpConfig::gulf(3)); // the would-be customer

    // The MIRO island attaches its service portal to every IA it
    // forwards (its decision module's export filter).
    sim.speaker_mut(m).register_module(Box::new(MiroModule::new(m_island.id, portal_addr)));

    sim.link(d, m, 10, false);
    sim.link(m, gulf, 10, false);
    sim.link(gulf, t, 10, false);
    sim.originate(d, dst);
    let m_host = Ipv4Prefix::new(sim.node_addr(m), 32).unwrap();
    sim.originate(m, m_host); // tunnel endpoint reachability
    sim.run(10_000_000);

    // Step 1+2 (§3.4): discovery via the island descriptor.
    let best = sim.speaker(t).best(&dst).expect("T has a route to D");
    let portals = miro::find_portals(&best.ia);
    println!("T's best IA for {dst}: {}", best.ia);
    println!("MIRO portals discovered (island, portal): {portals:?}");
    assert!(!portals.is_empty(), "with plain BGP this list would be empty");

    // Step 3: contact the portal and negotiate for payment.
    let mut portal = MiroPortal::new();
    portal
        .offer(dst, MiroOffer { path: vec![2, 1], price: 150, tunnel_endpoint: sim.node_addr(m) });
    portal.offer(
        dst,
        MiroOffer { path: vec![2, 5, 1], price: 80, tunnel_endpoint: sim.node_addr(m) },
    );
    sim.register_service(m, portal_addr, Service::Miro(portal));

    let (_, addr) = portals[0];
    sim.oob_send(t, addr, MiroRequest { dst, max_price: 100 }.to_bytes());
    sim.run(20_000_000);
    let inbox = sim.oob_inbox(t);
    let offer = MiroOffer::from_bytes(&inbox[0].1).expect("portal replied with an offer");
    println!(
        "\nnegotiated offer: path {:?}, price {}, tunnel to {}",
        offer.path, offer.price, offer.tunnel_endpoint
    );
    assert_eq!(offer.price, 80, "portal sells the cheapest in-budget path");

    // Step 4: tunnel traffic to the island; it decapsulates and forwards.
    let inner = Packet::ipv4(Ipv4Addr::new(131, 4, 0, 1), 1234);
    let (delivery, trace) = sim.forward(t, inner.encap_ipv4(offer.tunnel_endpoint));
    println!("\ntunneled packet trajectory (node ids): {trace:?}");
    match delivery {
        Delivery::Delivered { at, .. } => {
            println!("delivered at node {at} (the true destination AS)");
            assert_eq!(at, d);
        }
        other => panic!("delivery failed: {other:?}"),
    }
    println!("\nThe value-added service was discoverable, purchasable and usable —");
    println!("requirement CP-R3, impossible in the plain-BGP Figure 2.");
}
