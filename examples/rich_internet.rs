//! The paper's Figure 6/7: a rich, evolvable Internet running Pathlet
//! Routing, Wiser ∥ MIRO, SCION, and plain BGP side by side over D-BGP.
//! The program converges the topology and prints the Integrated
//! Advertisement island G sends toward island 8 for 131.4.0.0/24 — the
//! IA the paper's Figure 7 depicts.
//!
//! Run with: `cargo run --release --example rich_internet`

use dbgp::core::{DbgpConfig, IslandConfig};
use dbgp::protocols::pathlet::Pathlet;
use dbgp::protocols::scion::PathSet;
use dbgp::protocols::{wiser, MiroModule, PathletModule, ScionModule, WiserModule};
use dbgp::sim::Sim;
use dbgp::wire::{Ipv4Addr, Ipv4Prefix, IslandId, ProtocolId};

fn main() {
    let dst: Ipv4Prefix = "131.4.0.0/24".parse().unwrap();

    // Islands of Figure 6 (the subset on the advertised path plus the
    // gulf AS 14): D (Pathlet) originates 131.4/24; F (SCION); 11
    // (Wiser ∥ MIRO); G (Pathlet); 8 (Wiser) receives.
    let island_d = IslandConfig { id: IslandId(680), abstraction: false };
    let island_f = IslandConfig { id: IslandId(660), abstraction: false };
    let island_11 = IslandConfig { id: IslandId(711), abstraction: false };
    let island_g = IslandConfig { id: IslandId(640), abstraction: false };
    let island_8 = IslandConfig { id: IslandId(708), abstraction: false };

    let mut sim = Sim::new();
    let d = sim.add_node(DbgpConfig::island_member(680, island_d, ProtocolId::PATHLET));
    let as14 = sim.add_node(DbgpConfig::gulf(14));
    let f = sim.add_node(DbgpConfig::island_member(660, island_f, ProtocolId::SCION));
    let as11 = sim.add_node(DbgpConfig::island_member(11, island_11, ProtocolId::WISER));
    let g = sim.add_node(DbgpConfig::island_member(640, island_g, ProtocolId::PATHLET));
    let as8 = sim.add_node(DbgpConfig::island_member(8, island_8, ProtocolId::WISER));

    // Island D: pathlets of Figure 7 — 1:(dr1,dr2), 5:(dr2,dr4),
    // 9:(dr4, 131.1.4.0/24-style dest), 3:(dr1,dr3), 4:(dr3,dr4).
    sim.speaker_mut(d).register_module(Box::new(PathletModule::new(
        island_d.id,
        1,
        vec![
            Pathlet::between(1, 1, 2),
            Pathlet::between(5, 2, 4),
            Pathlet::to_dest(9, 4, dst),
            Pathlet::between(3, 1, 3),
            Pathlet::between(4, 3, 4),
        ],
    )));
    // Island F: SCION within-island paths fr1..fr7.
    sim.speaker_mut(f).register_module(Box::new(ScionModule::new(
        island_f.id,
        PathSet { paths: vec![vec![1, 9, 11, 7], vec![1, 2, 3, 7]] },
    )));
    // Island 11: Wiser with a cost-exchange portal, in parallel with a
    // MIRO service portal (the ∥ of Figure 6).
    sim.speaker_mut(as11).register_module(Box::new(WiserModule::new(
        island_11.id,
        Ipv4Addr::new(154, 63, 23, 1),
        75,
    )));
    sim.speaker_mut(as11)
        .register_module(Box::new(MiroModule::new(island_11.id, Ipv4Addr::new(154, 63, 23, 2))));
    // Island G: its own pathlets, including the inter-island pathlet
    // 8:(gr10, dr1) of Figure 6's dotted line.
    sim.speaker_mut(g).register_module(Box::new(PathletModule::new(
        island_g.id,
        101,
        vec![
            Pathlet::between(101, 101, 104),
            Pathlet::between(103, 104, 110),
            Pathlet::between(106, 101, 103),
            Pathlet::between(107, 103, 110),
            Pathlet::between(108, 110, 1), // inter-island: gr10 -> dr1
        ],
    )));

    // Island 8: the receiving Wiser island.
    sim.speaker_mut(as8).register_module(Box::new(WiserModule::new(
        island_8.id,
        Ipv4Addr::new(154, 63, 24, 1),
        10,
    )));

    // Path of the Figure-7 IA: D - 14 - F - 11 - G - 8.
    sim.link(d, as14, 10, false);
    sim.link(as14, f, 10, false);
    sim.link(f, as11, 10, false);
    sim.link(as11, g, 10, false);
    sim.link(g, as8, 10, false);

    sim.originate(d, dst);
    sim.run(10_000_000);

    // The IA at "point 1": what island 8 received from island G.
    let best = sim.speaker(as8).best(&dst).expect("prefix reachable");
    let ia = &best.ia;
    println!("The Figure-7 Integrated Advertisement (as received by island 8):\n");
    println!("Baseline Address: {}", ia.prefix);
    println!("Next hop: {}", ia.next_hop);
    println!("Origin: {}", ia.origin);
    println!(
        "Path vector: [{}]",
        ia.path_vector.iter().map(|e| e.to_string()).collect::<Vec<_>>().join(" ")
    );
    println!("Island memberships:");
    for m in &ia.memberships {
        println!("  {} covers path-vector entries [{}, {})", m.island, m.start, m.end);
    }
    println!("\nPath descriptors:");
    for pd in &ia.path_descriptors {
        let protos: Vec<String> = pd.protocols.iter().map(|p| p.to_string()).collect();
        println!("  [{}] key {} ({} bytes)", protos.join(", "), pd.key, pd.value.len());
    }
    if let Some(cost) = wiser::path_cost(ia) {
        println!("  -> Wiser path cost: {cost} (island 11's contribution: 75)");
    }
    println!("\nIsland descriptors:");
    for id in &ia.island_descriptors {
        println!(
            "  island {} / {}: key {} ({} bytes)",
            id.island,
            id.protocol,
            id.key,
            id.value.len()
        );
    }
    println!(
        "\nProtocols on path (G-R4): {:?}",
        ia.protocols_on_path().iter().map(|p| p.to_string()).collect::<Vec<_>>()
    );
    println!("Serialized IA size: {} bytes", ia.wire_size());

    // Verify the richness the figure promises.
    assert!(wiser::path_cost(ia).is_some(), "Wiser cost present");
    assert!(
        ia.island_descriptors_for(ProtocolId::PATHLET).count() >= 2,
        "pathlets from islands D and G"
    );
    assert!(ia.island_descriptors_for(ProtocolId::SCION).count() >= 1, "SCION paths from F");
    assert!(ia.island_descriptors_for(ProtocolId::MIRO).count() >= 1, "MIRO portal from 11");
    assert!(ia.island_descriptors_for(ProtocolId::WISER).count() >= 1, "Wiser portal from 11");
    println!("\nAll five protocols' control information coexists in one IA.");
}
