//! Quickstart: bring up a five-AS Internet where two Wiser islands are
//! separated by a BGP gulf, converge it, and look at what D-BGP's
//! Integrated Advertisements carry.
//!
//! Run with: `cargo run --release --example quickstart`

use dbgp::core::{DbgpConfig, IslandConfig};
use dbgp::protocols::{wiser, WiserModule};
use dbgp::sim::Sim;
use dbgp::wire::{Ipv4Addr, Ipv4Prefix, IslandId, ProtocolId};

fn main() {
    // Topology: D -- E -- G1 -- G2 -- S
    //   D, E form Wiser island 900; G1, G2 are a plain-BGP gulf; S is a
    //   singleton Wiser island.
    let island = IslandConfig { id: IslandId(900), abstraction: false };
    let mut sim = Sim::new();
    let d = sim.add_node(DbgpConfig::island_member(10, island, ProtocolId::WISER));
    let e = sim.add_node(DbgpConfig::island_member(11, island, ProtocolId::WISER));
    let g1 = sim.add_node(DbgpConfig::gulf(4000));
    let g2 = sim.add_node(DbgpConfig::gulf(4001));
    let s_island = IslandConfig { id: IslandId(901), abstraction: false };
    let s = sim.add_node(DbgpConfig::island_member(20, s_island, ProtocolId::WISER));

    // Every Wiser member registers its decision module; the module adds
    // the AS's internal cost at each export and advertises the island's
    // cost-exchange portal.
    let portal = Ipv4Addr::new(163, 42, 5, 0);
    sim.speaker_mut(d).register_module(Box::new(WiserModule::new(island.id, portal, 5)));
    sim.speaker_mut(e).register_module(Box::new(WiserModule::new(island.id, portal, 20)));
    sim.speaker_mut(s).register_module(Box::new(WiserModule::new(
        s_island.id,
        Ipv4Addr::new(163, 42, 6, 0),
        3,
    )));

    sim.link(d, e, 10, true); // intra-island
    sim.link(e, g1, 10, false);
    sim.link(g1, g2, 10, false);
    sim.link(g2, s, 10, false);

    // D originates a prefix; the advertisement wave crosses the gulf.
    let prefix: Ipv4Prefix = "128.6.0.0/16".parse().unwrap();
    sim.originate(d, prefix);
    let stats = sim.run(1_000_000);

    println!(
        "converged in {} simulated ms, {} control messages, {} bytes",
        stats.last_event_at, stats.messages, stats.bytes
    );

    // What does the source see?
    let best = sim.speaker(s).best(&prefix).expect("S learned the route");
    println!("\nS's best Integrated Advertisement for {prefix}:");
    println!("  {}", best.ia);
    println!("  path vector entries: {}", best.ia.path_vector.len());
    println!(
        "  Wiser path cost (accumulated, passed through the gulf): {:?}",
        wiser::path_cost(&best.ia)
    );
    println!("  Wiser portals on path: {:?}", wiser::portals(&best.ia));
    println!(
        "  protocols on path (G-R4): {:?}",
        best.ia.protocols_on_path().iter().map(|p| p.to_string()).collect::<Vec<_>>()
    );
    println!("  serialized IA size: {} bytes", best.ia.wire_size());

    // The gulf ASes carried Wiser's information without understanding it.
    let at_gulf = sim.speaker(g2).best(&prefix).unwrap();
    println!(
        "\ngulf AS 4001 passed the cost through without using it: cost={:?}, chose by hop count={}",
        wiser::path_cost(&at_gulf.ia),
        at_gulf.ia.hop_count()
    );
}
