//! Protocol evolution in place (§3.5): an island initially routes with
//! plain BGP, then *deploys* Wiser by switching its active decision
//! module at runtime. Routes re-converge under the new protocol's
//! selection without a session reset — the planned-rollout story.
//!
//! Run with: `cargo run --release --example evolution`

use dbgp::core::{DbgpConfig, IslandConfig};
use dbgp::protocols::{wiser, WiserModule};
use dbgp::sim::Sim;
use dbgp::wire::{Ipv4Addr, Ipv4Prefix, IslandId, ProtocolId};

fn main() {
    // Diamond: D advertises through an expensive-but-short path and a
    // cheap-but-long path toward S.
    let island = IslandConfig { id: IslandId(900), abstraction: false };
    let mut sim = Sim::new();
    let d = sim.add_node(DbgpConfig::island_member(10, island, ProtocolId::WISER));
    let cheap_a = sim.add_node(DbgpConfig::island_member(11, island, ProtocolId::WISER));
    let cheap_b = sim.add_node(DbgpConfig::island_member(12, island, ProtocolId::WISER));
    let costly = sim.add_node(DbgpConfig::island_member(13, island, ProtocolId::WISER));
    // The source starts life as a plain-BGP AS.
    let s = sim.add_node(DbgpConfig::gulf(20));

    let portal = Ipv4Addr::new(163, 42, 5, 0);
    sim.speaker_mut(d).register_module(Box::new(WiserModule::new(island.id, portal, 5)));
    sim.speaker_mut(cheap_a).register_module(Box::new(WiserModule::new(island.id, portal, 10)));
    sim.speaker_mut(cheap_b).register_module(Box::new(WiserModule::new(island.id, portal, 10)));
    sim.speaker_mut(costly).register_module(Box::new(WiserModule::new(island.id, portal, 800)));

    sim.link(d, cheap_a, 10, true);
    sim.link(cheap_a, cheap_b, 10, true);
    sim.link(d, costly, 10, true);
    sim.link(cheap_b, s, 10, false);
    sim.link(costly, s, 10, false);

    let prefix: Ipv4Prefix = "128.6.0.0/16".parse().unwrap();
    sim.originate(d, prefix);
    sim.run(10_000_000);

    let before = sim.speaker(s).best(&prefix).unwrap().clone();
    println!("Phase 1 — S runs plain BGP:");
    println!("  chosen path: {} hops via the expensive exit", before.ia.hop_count());
    println!("  cost S *could* see but ignores: {:?}", wiser::path_cost(&before.ia));
    assert_eq!(before.ia.hop_count(), 2, "BGP picks the short path");

    // Phase 2: S's operators deploy Wiser. No session reset, no topology
    // change: register the module and flip the active protocol. The IA
    // DB already holds everything needed — pass-through did its job
    // while S was still a gulf AS.
    println!("\nPhase 2 — S deploys Wiser (set_active_protocol at runtime):");
    let speaker = sim.speaker_mut(s);
    speaker.register_module(Box::new(WiserModule::new(
        IslandId::from_as(20),
        Ipv4Addr::new(163, 42, 6, 0),
        3,
    )));
    let outputs = speaker.set_active_protocol(ProtocolId::WISER);
    println!("  re-selection produced {} output(s)", outputs.len());

    let after = sim.speaker(s).best(&prefix).unwrap();
    println!(
        "  chosen path: {} hops, cost {:?}",
        after.ia.hop_count(),
        wiser::path_cost(&after.ia)
    );
    assert_eq!(after.ia.hop_count(), 3, "Wiser picks the cheap long path");
    assert!(wiser::path_cost(&after.ia).unwrap() < 800);
    println!("\nThe island evolved its routing protocol using information that had");
    println!("been flowing through it all along — no flag day, no overlay.");
}
