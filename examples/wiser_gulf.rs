//! The paper's Figure 1 / §3.4 scenario: Wiser islands separated by a
//! BGP gulf. Without D-BGP, the source S cannot see path costs and picks
//! the shortest — and most expensive — path. With D-BGP's pass-through,
//! the costs cross the gulf and S picks the cheap path.
//!
//! Run with: `cargo run --release --example wiser_gulf`

use dbgp::core::{DbgpConfig, IslandConfig};
use dbgp::protocols::{wiser, WiserModule};
use dbgp::sim::Sim;
use dbgp::wire::{Ipv4Addr, Ipv4Prefix, IslandId, ProtocolId};

/// Build the Figure-1 world. `dbgp_enabled` toggles whether the gulf
/// passes new-protocol information through (D-BGP) or drops it (BGP).
fn build(dbgp_enabled: bool) -> (Sim, usize, Ipv4Prefix) {
    let island = IslandConfig { id: IslandId(900), abstraction: false };
    let s_island = IslandConfig { id: IslandId(901), abstraction: false };
    let mut sim = Sim::new();

    // Destination island: D behind two border ASes — E1 (cheap exit,
    // long path to S) and E2 (expensive exit, short path to S).
    let d = sim.add_node(DbgpConfig::island_member(10, island, ProtocolId::WISER));
    let e1 = sim.add_node(DbgpConfig::island_member(11, island, ProtocolId::WISER));
    let e2 = sim.add_node(DbgpConfig::island_member(12, island, ProtocolId::WISER));
    // Gulf ASes: one on the short side, two on the long side.
    let mk_gulf = |sim: &mut Sim, asn: u32| {
        let mut cfg = DbgpConfig::gulf(asn);
        cfg.filters.baseline_only_export = !dbgp_enabled;
        sim.add_node(cfg)
    };
    let g_short = mk_gulf(&mut sim, 4000);
    let g_long_a = mk_gulf(&mut sim, 4001);
    let g_long_b = mk_gulf(&mut sim, 4002);
    // Source island.
    let s = sim.add_node(DbgpConfig::island_member(20, s_island, ProtocolId::WISER));

    let portal = Ipv4Addr::new(163, 42, 5, 0);
    sim.speaker_mut(d).register_module(Box::new(WiserModule::new(island.id, portal, 5)));
    sim.speaker_mut(e1).register_module(Box::new(WiserModule::new(island.id, portal, 10)));
    sim.speaker_mut(e2).register_module(Box::new(WiserModule::new(island.id, portal, 500)));
    sim.speaker_mut(s).register_module(Box::new(WiserModule::new(
        s_island.id,
        Ipv4Addr::new(163, 42, 6, 0),
        3,
    )));

    sim.link(d, e1, 10, true);
    sim.link(d, e2, 10, true);
    sim.link(e2, g_short, 10, false);
    sim.link(g_short, s, 10, false);
    sim.link(e1, g_long_a, 10, false);
    sim.link(g_long_a, g_long_b, 10, false);
    sim.link(g_long_b, s, 10, false);

    let prefix: Ipv4Prefix = "128.6.0.0/16".parse().unwrap();
    sim.originate(d, prefix);
    sim.run(10_000_000);
    (sim, s, prefix)
}

fn main() {
    println!("=== BGP baseline: the gulf drops Wiser's control information ===");
    let (sim, s, prefix) = build(false);
    let best = sim.speaker(s).best(&prefix).unwrap();
    println!(
        "S's chosen path: {} hops, Wiser cost visible: {:?}",
        best.ia.hop_count(),
        wiser::path_cost(&best.ia)
    );
    println!("-> S is forced to use BGP rules and picks the SHORT path (via the");
    println!("   expensive exit E2, internal cost 500). Figure 1's failure.\n");

    println!("=== D-BGP baseline: pass-through carries costs across the gulf ===");
    let (sim, s, prefix) = build(true);
    let best = sim.speaker(s).best(&prefix).unwrap();
    let cost = wiser::path_cost(&best.ia);
    println!("S's chosen path: {} hops, Wiser cost visible: {cost:?}", best.ia.hop_count());
    println!("Wiser portals discovered across the gulf: {:?}", wiser::portals(&best.ia));
    println!("-> S sees both paths' costs and picks the LONG path via the cheap");
    println!("   exit E1 (cost {:?} < 500). Requirement CF-R1 satisfied.", cost);
}
