//! # dbgp — Bootstrapping evolvability for inter-domain routing
//!
//! A from-scratch Rust reproduction of **D-BGP** (Sambasivan et al.,
//! SIGCOMM 2017): BGPv4 extended with the two evolvability features the
//! paper identifies — *pass-through support* and *multi-protocol
//! Integrated Advertisements* — plus every substrate needed to reproduce
//! the paper's experiments.
//!
//! This facade crate re-exports the workspace's public API under one
//! name. See the individual crates for the details:
//!
//! * [`wire`] — BGP-4 and IA wire formats.
//! * [`bgp`] — a classic BGP-4 speaker (FSM, RIBs, decision process,
//!   policy).
//! * [`core`] — the D-BGP IA-processing pipeline of the paper's Figure 5.
//! * [`protocols`] — Wiser, Pathlet Routing, SCION-like, MIRO and
//!   BGPSec-lite deployed over D-BGP.
//! * [`crypto`] — SHA-256/HMAC substrate for BGPSec-lite.
//! * [`sim`] — a deterministic discrete-event network simulator standing
//!   in for the paper's MiniNeXT testbed.
//! * [`topology`] — Waxman/BRITE topologies, Gao-Rexford relationships,
//!   and the paper's figure topologies.
//! * [`workload`] — synthetic RIBs and update traces for the §5 stress
//!   test.
//! * [`experiments`] — the §6.2 overhead model and §6.3
//!   incremental-benefit simulations.
//! * [`chaos`] — deterministic fault injection, convergence tracking,
//!   and routing-invariant checking under churn.

pub use dbgp_bgp as bgp;
pub use dbgp_chaos as chaos;
pub use dbgp_core as core;
pub use dbgp_crypto as crypto;
pub use dbgp_experiments as experiments;
pub use dbgp_protocols as protocols;
pub use dbgp_sim as sim;
pub use dbgp_topology as topology;
pub use dbgp_wire as wire;
pub use dbgp_workload as workload;
