//! The fixed topologies from the paper's figures, used by the examples
//! and integration tests.
//!
//! Each topology is expressed protocol-agnostically: named nodes with AS
//! numbers, optional island membership, the protocol each island runs,
//! and undirected adjacency. The examples lower these into `dbgp-sim`
//! simulations.

use dbgp_wire::{IslandId, ProtocolId};

/// One AS in a figure topology.
#[derive(Debug, Clone)]
pub struct PaperNode {
    /// Display name used in the figure ("S", "E1", "AS 4000", ...).
    pub name: &'static str,
    /// AS number.
    pub asn: u32,
    /// Island membership, if the AS has upgraded.
    pub island: Option<IslandId>,
    /// The protocol the AS runs besides the baseline.
    pub protocol: ProtocolId,
}

impl PaperNode {
    fn gulf(name: &'static str, asn: u32) -> Self {
        PaperNode { name, asn, island: None, protocol: ProtocolId::BGP }
    }

    fn island(name: &'static str, asn: u32, island: u32, protocol: ProtocolId) -> Self {
        PaperNode { name, asn, island: Some(IslandId(island)), protocol }
    }
}

/// A figure topology.
#[derive(Debug, Clone)]
pub struct PaperTopology {
    /// What this reproduces.
    pub description: &'static str,
    /// The ASes.
    pub nodes: Vec<PaperNode>,
    /// Undirected adjacencies by node index.
    pub edges: Vec<(usize, usize)>,
}

impl PaperTopology {
    /// Index of the node with the given display name.
    pub fn index_of(&self, name: &str) -> usize {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .unwrap_or_else(|| panic!("no node named {name}"))
    }
}

/// Figure 1: a source S and destination D in Wiser islands separated by
/// a BGP gulf; the two edge ASes of the large island are E1 and E2.
pub fn figure1() -> PaperTopology {
    let wiser = ProtocolId::WISER;
    PaperTopology {
        description: "Figure 1: S cannot see Wiser path costs across the gulf",
        nodes: vec![
            PaperNode::island("S", 100, 1, wiser),  // 0
            PaperNode::gulf("G1", 4000),            // 1
            PaperNode::gulf("G2", 4001),            // 2
            PaperNode::gulf("G3", 4002),            // 3
            PaperNode::island("E1", 200, 2, wiser), // 4 (cheap, long exit)
            PaperNode::island("E2", 201, 2, wiser), // 5 (costly, short exit)
            PaperNode::island("M", 202, 2, wiser),  // 6 interior island AS
            PaperNode::island("D", 203, 2, wiser),  // 7 destination
        ],
        edges: vec![
            (0, 1), // S - G1 (toward short/costly side)
            (0, 2), // S - G2 (toward long/cheap side)
            (1, 5), // G1 - E2 (short)
            (2, 3), // G2 - G3
            (3, 4), // G3 - E1 (long)
            (4, 6),
            (5, 6),
            (6, 7),
        ],
    }
}

/// Figure 2: transit island T wants an alternate path; MIRO island M is
/// off the advertised path to D.
pub fn figure2() -> PaperTopology {
    PaperTopology {
        description: "Figure 2: T cannot discover the MIRO service without D-BGP",
        nodes: vec![
            PaperNode::gulf("S", 100),                        // 0
            PaperNode::island("T", 300, 3, ProtocolId::MIRO), // 1
            PaperNode::gulf("G1", 4000),                      // 2
            PaperNode::island("M", 500, 5, ProtocolId::MIRO), // 3
            PaperNode::gulf("G2", 4001),                      // 4
            PaperNode::gulf("D", 900),                        // 5
        ],
        edges: vec![
            (0, 1), // S - T
            (1, 2), // T - G1 (the poorly performing advertised path)
            (2, 5), // G1 - D
            (1, 3), // T - M (alternate direction)
            (3, 4), // M - G2
            (4, 5), // G2 - D
        ],
    }
}

/// Figure 3: a SCION island exposes two paths to D; plain BGP loses one
/// at redistribution.
pub fn figure3() -> PaperTopology {
    let scion = ProtocolId::SCION;
    PaperTopology {
        description: "Figure 3: S should see both SCION paths to D",
        nodes: vec![
            PaperNode::island("S", 100, 1, scion),  // 0
            PaperNode::gulf("G1", 4000),            // 1
            PaperNode::gulf("G2", 4001),            // 2
            PaperNode::island("B1", 200, 2, scion), // 3 island border
            PaperNode::island("B2", 201, 2, scion), // 4 interior (path A)
            PaperNode::island("B3", 202, 2, scion), // 5 interior (path B)
            PaperNode::island("D", 203, 2, scion),  // 6 destination
        ],
        edges: vec![(0, 1), (1, 2), (2, 3), (3, 4), (3, 5), (4, 6), (5, 6)],
    }
}

/// Figure 6: the rich, evolvable Internet — Pathlet, Wiser ∥ MIRO,
/// SCION, BGPSec and plain-BGP ASes interleaved. Node names follow the
/// figure; prefixes 131.1–131.5 originate at the labelled islands.
pub fn figure6() -> PaperTopology {
    PaperTopology {
        description: "Figure 6: a rich & evolvable Internet facilitated by D-BGP",
        nodes: vec![
            PaperNode::island("C", 600, 60, ProtocolId::PATHLET), // 0, originates 131.5/24
            PaperNode::gulf("1", 1), // 1 (BGPSec in figure; baseline here)
            PaperNode::island("B", 620, 62, ProtocolId::WISER), // 2
            PaperNode::gulf("10", 10), // 3
            PaperNode::island("8", 8, 68, ProtocolId::WISER), // 4
            PaperNode::island("G", 640, 64, ProtocolId::PATHLET), // 5
            PaperNode::island("11", 11, 71, ProtocolId::WISER), // 6 (Wiser ∥ MIRO)
            PaperNode::island("F", 660, 66, ProtocolId::SCION), // 7
            PaperNode::gulf("14", 14), // 8
            PaperNode::island("D", 680, 90, ProtocolId::PATHLET), // 9, originates 131.4/24
            PaperNode::gulf("13", 13), // 10
            PaperNode::gulf("12", 12), // 11, originates 131.1/24
        ],
        edges: vec![
            (0, 1),
            (1, 2),
            (2, 6),
            (3, 4),
            (4, 6),
            (5, 6), // G - 11
            (6, 7), // 11 - F
            (7, 8), // F - 14
            (8, 9), // 14 - D
            (9, 10),
            (10, 11),
            (3, 11),
        ],
    }
}

/// Figure 8: the testbed topology used to deploy Wiser and Pathlet
/// Routing across a gulf (§6.1). Island A holds the destination D and
/// two border ASes A2/A3; a BGP gulf separates it from island B's source
/// S.
pub fn figure8() -> PaperTopology {
    let bgp = ProtocolId::BGP;
    PaperTopology {
        description: "Figure 8: deployment testbed — island A, a BGP gulf, island B",
        nodes: vec![
            PaperNode::island("D", 10, 900, bgp),  // 0  (AS A1 hosting D)
            PaperNode::island("A2", 11, 900, bgp), // 1
            PaperNode::island("A3", 12, 900, bgp), // 2
            PaperNode::gulf("G1", 4000),           // 3
            PaperNode::gulf("G2", 4001),           // 4
            PaperNode::island("S", 20, 901, bgp),  // 5  (AS B1 hosting S)
        ],
        edges: vec![(0, 1), (0, 2), (1, 3), (2, 4), (3, 5), (4, 5)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(t: &PaperTopology) {
        // Indices valid, no self loops, no duplicate names.
        for &(a, b) in &t.edges {
            assert!(a < t.nodes.len() && b < t.nodes.len(), "{}", t.description);
            assert_ne!(a, b);
        }
        let mut names: Vec<&str> = t.nodes.iter().map(|n| n.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), t.nodes.len(), "duplicate node names in {}", t.description);
        // Connected.
        let mut seen = std::collections::HashSet::from([0usize]);
        let mut stack = vec![0usize];
        while let Some(u) = stack.pop() {
            for &(a, b) in &t.edges {
                let next = if a == u {
                    b
                } else if b == u {
                    a
                } else {
                    continue;
                };
                if seen.insert(next) {
                    stack.push(next);
                }
            }
        }
        assert_eq!(seen.len(), t.nodes.len(), "{} is disconnected", t.description);
    }

    #[test]
    fn all_figures_are_well_formed() {
        for t in [figure1(), figure2(), figure3(), figure6(), figure8()] {
            check(&t);
        }
    }

    #[test]
    fn figure1_has_cost_inversion_structure() {
        let t = figure1();
        let s = t.index_of("S");
        let e1 = t.index_of("E1");
        let e2 = t.index_of("E2");
        // Shortest-hop path S..E2 must be shorter than S..E1 (the cheap
        // path is longer, so BGP picks the costly one).
        let dist = |from: usize, to: usize| -> usize {
            let mut d = vec![usize::MAX; t.nodes.len()];
            d[from] = 0;
            let mut q = std::collections::VecDeque::from([from]);
            while let Some(u) = q.pop_front() {
                for &(a, b) in &t.edges {
                    let v = if a == u {
                        b
                    } else if b == u {
                        a
                    } else {
                        continue;
                    };
                    if d[v] == usize::MAX {
                        d[v] = d[u] + 1;
                        q.push_back(v);
                    }
                }
            }
            d[to]
        };
        assert!(dist(s, e2) < dist(s, e1));
    }

    #[test]
    fn figure2_miro_island_is_off_the_short_path() {
        let t = figure2();
        // Shortest T -> D avoids M.
        assert_eq!(t.index_of("M"), 3);
        // T-G1-D is 2 hops; T-M-G2-D is 3 hops.
    }

    #[test]
    fn names_resolve() {
        let t = figure8();
        assert_eq!(t.index_of("S"), 5);
        assert_eq!(t.nodes[t.index_of("D")].asn, 10);
    }

    #[test]
    #[should_panic(expected = "no node named")]
    fn unknown_name_panics() {
        figure1().index_of("nope");
    }
}
