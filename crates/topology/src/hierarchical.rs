//! CAIDA-like hierarchical AS topology generation.
//!
//! The Waxman generator ([`crate::waxman`]) reproduces the paper's §6.3
//! evaluation scale, but its degree-heuristic hierarchy is loose: there
//! is no explicit core, and provider chains can be arbitrarily deep.
//! This module generates the tiered structure AS-relationship datasets
//! (CAIDA serial-2 style) actually show:
//!
//! * a small clique of **tier-1** transit-free providers, fully meshed
//!   with settlement-free peering;
//! * **tier-2** national transit networks, multihomed to the clique and
//!   sparsely peered laterally;
//! * **regional** providers buying transit from tier-2;
//! * a long tail of **stub** edge networks (≈90% of ASes, matching the
//!   real Internet) multihomed to regionals with occasional direct
//!   tier-2 uplinks.
//!
//! Provider choice within a tier uses preferential attachment (the
//! repeated-endpoint list trick, O(1) per draw), giving the heavy-tailed
//! customer-cone distribution the valley-free convergence literature
//! assumes. Everything is deterministic per seed.

use crate::graph::AsGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which layer of the transit hierarchy an AS sits in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tier {
    /// Transit-free core clique member.
    Tier1,
    /// National/continental transit provider.
    Tier2,
    /// Regional provider.
    Regional,
    /// Edge network: pure customer, originates prefixes.
    Stub,
}

/// Generator parameters. Defaults give the 50,000-AS benchmark tier.
#[derive(Debug, Clone, Copy)]
pub struct HierParams {
    /// Tier-1 clique size (CAIDA's serial-2 clique hovers around a
    /// dozen).
    pub tier1: usize,
    /// Tier-2 transit count.
    pub tier2: usize,
    /// Regional provider count.
    pub regional: usize,
    /// Stub count.
    pub stubs: usize,
    /// Max providers a tier-2 buys from (uniform in `1..=max`).
    pub max_tier2_providers: usize,
    /// Max providers a regional buys from.
    pub max_regional_providers: usize,
    /// Max providers a stub buys from.
    pub max_stub_providers: usize,
    /// Per-mille chance a tier-2 AS also peers laterally with an
    /// earlier tier-2.
    pub tier2_peering_permille: u32,
    /// Per-mille chance a stub uplinks directly to a tier-2 instead of
    /// a regional (content networks buying premium transit).
    pub stub_tier2_uplink_permille: u32,
}

impl Default for HierParams {
    fn default() -> Self {
        HierParams {
            tier1: 12,
            tier2: 988,
            regional: 4_000,
            stubs: 45_000,
            max_tier2_providers: 3,
            max_regional_providers: 3,
            max_stub_providers: 2,
            tier2_peering_permille: 250,
            stub_tier2_uplink_permille: 100,
        }
    }
}

impl HierParams {
    /// Total AS count.
    pub fn total(&self) -> usize {
        self.tier1 + self.tier2 + self.regional + self.stubs
    }

    /// A proportionally shrunk topology (`total ≈ self.total / factor`),
    /// keeping at least a 3-node clique — the CI quick slice.
    pub fn scaled_down(&self, factor: usize) -> Self {
        let f = factor.max(1);
        HierParams {
            tier1: (self.tier1 / f).max(3),
            tier2: (self.tier2 / f).max(4),
            regional: (self.regional / f).max(8),
            stubs: (self.stubs / f).max(16),
            ..*self
        }
    }
}

/// A tiered topology: customer→provider edges live in `transit` (an
/// [`AsGraph`], so its valley-free helpers apply), lateral
/// settlement-free edges in `peering`.
#[derive(Debug, Clone)]
pub struct HierTopology {
    /// Customer→provider adjacencies.
    pub transit: AsGraph,
    /// Lateral peering edges, `(a, b)` with `a < b`, sorted.
    pub peering: Vec<(usize, usize)>,
    /// Tier of each node.
    pub tiers: Vec<Tier>,
}

impl HierTopology {
    /// Number of ASes.
    pub fn len(&self) -> usize {
        self.tiers.len()
    }

    /// True when the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.tiers.is_empty()
    }

    /// Total adjacency count (transit + peering).
    pub fn edge_count(&self) -> usize {
        self.transit.edge_count() + self.peering.len()
    }

    /// Tier of a node.
    pub fn tier(&self, node: usize) -> Tier {
        self.tiers[node]
    }

    /// Node indices of a tier, in ascending order.
    pub fn nodes_in(&self, tier: Tier) -> impl Iterator<Item = usize> + '_ {
        (0..self.len()).filter(move |&n| self.tiers[n] == tier)
    }

    /// Connectivity over the union of transit and peering edges.
    pub fn is_connected(&self) -> bool {
        if self.is_empty() {
            return true;
        }
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); self.len()];
        for (n, slot) in adj.iter_mut().enumerate() {
            slot.extend(self.transit.neighbors(n).map(|a| a.neighbor));
        }
        for &(a, b) in &self.peering {
            adj[a].push(b);
            adj[b].push(a);
        }
        let mut seen = vec![false; self.len()];
        seen[0] = true;
        let mut stack = vec![0usize];
        let mut count = 1usize;
        while let Some(u) = stack.pop() {
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == self.len()
    }
}

/// Generate a connected hierarchical topology. Node indices are laid out
/// tier-1 first, then tier-2, regionals, stubs — so `node < tier1` is
/// the clique, etc.
pub fn generate_hier(params: HierParams, seed: u64) -> HierTopology {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4A15_C0DE);
    let t1 = params.tier1;
    let t2_base = t1;
    let reg_base = t2_base + params.tier2;
    let stub_base = reg_base + params.regional;
    let n = params.total();

    let mut tiers = Vec::with_capacity(n);
    tiers.extend(std::iter::repeat_n(Tier::Tier1, params.tier1));
    tiers.extend(std::iter::repeat_n(Tier::Tier2, params.tier2));
    tiers.extend(std::iter::repeat_n(Tier::Regional, params.regional));
    tiers.extend(std::iter::repeat_n(Tier::Stub, params.stubs));

    let mut transit = AsGraph::new(n);
    let mut peering: Vec<(usize, usize)> = Vec::new();

    // Tier-1: full settlement-free mesh.
    for a in 0..t1 {
        for b in (a + 1)..t1 {
            peering.push((a, b));
        }
    }

    // Preferential-attachment pools: every provider appears once, and
    // again each time it wins a customer, so the draw probability tracks
    // customer-cone size.
    let mut t1_pool: Vec<usize> = (0..t1).collect();
    let mut t2_pool: Vec<usize> = (t2_base..reg_base).collect();
    let mut reg_pool: Vec<usize> = (reg_base..stub_base).collect();

    let attach = |rng: &mut StdRng,
                  transit: &mut AsGraph,
                  customer: usize,
                  pool: &mut Vec<usize>,
                  want: usize| {
        let mut chosen: Vec<usize> = Vec::with_capacity(want);
        let mut guard = 0usize;
        while chosen.len() < want && guard < 64 {
            guard += 1;
            let p = pool[rng.gen_range(0..pool.len())];
            if chosen.contains(&p) {
                continue;
            }
            chosen.push(p);
        }
        for p in chosen {
            transit.add_edge(customer, p);
            pool.push(p);
        }
    };

    for v in t2_base..reg_base {
        let want = 1 + rng.gen_range(0..params.max_tier2_providers);
        attach(&mut rng, &mut transit, v, &mut t1_pool, want.min(t1));
        if rng.gen_range(0u32..1000) < params.tier2_peering_permille && v > t2_base {
            let peer = rng.gen_range(t2_base..v);
            peering.push((peer, v));
        }
    }
    for v in reg_base..stub_base {
        let want = 1 + rng.gen_range(0..params.max_regional_providers);
        attach(&mut rng, &mut transit, v, &mut t2_pool, want);
    }
    for v in stub_base..n {
        let want = 1 + rng.gen_range(0..params.max_stub_providers);
        let pool = if rng.gen_range(0u32..1000) < params.stub_tier2_uplink_permille {
            &mut t2_pool
        } else {
            &mut reg_pool
        };
        attach(&mut rng, &mut transit, v, pool, want);
    }

    peering.sort_unstable();
    peering.dedup();
    HierTopology { transit, peering, tiers }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> HierParams {
        HierParams::default().scaled_down(25)
    }

    #[test]
    fn layout_and_tiers_line_up() {
        let p = quick();
        let topo = generate_hier(p, 42);
        assert_eq!(topo.len(), p.total());
        assert_eq!(topo.nodes_in(Tier::Tier1).count(), p.tier1);
        assert_eq!(topo.nodes_in(Tier::Stub).count(), p.stubs);
        assert_eq!(topo.tier(0), Tier::Tier1);
        assert_eq!(topo.tier(topo.len() - 1), Tier::Stub);
    }

    #[test]
    fn clique_is_fully_meshed_and_transit_free() {
        let p = quick();
        let topo = generate_hier(p, 42);
        let clique: Vec<_> = (0..p.tier1).collect();
        for &a in &clique {
            for &b in &clique {
                if a < b {
                    assert!(topo.peering.binary_search(&(a, b)).is_ok());
                }
            }
            // Tier-1s never buy transit.
            assert!(topo
                .transit
                .neighbors(a)
                .all(|adj| adj.relationship == crate::Relationship::ProviderToCustomer));
        }
    }

    #[test]
    fn connected_and_deterministic() {
        let a = generate_hier(quick(), 7);
        let b = generate_hier(quick(), 7);
        assert!(a.is_connected());
        assert_eq!(a.peering, b.peering);
        assert_eq!(a.transit.edge_count(), b.transit.edge_count());
        for n in 0..a.len() {
            let an: Vec<_> = a.transit.neighbors(n).collect();
            let bn: Vec<_> = b.transit.neighbors(n).collect();
            assert_eq!(an, bn);
        }
        let c = generate_hier(quick(), 8);
        assert_ne!(a.peering, c.peering);
    }

    #[test]
    fn stubs_are_pure_customers_with_bounded_multihoming() {
        let p = quick();
        let topo = generate_hier(p, 42);
        for v in topo.nodes_in(Tier::Stub) {
            let degree = topo.transit.degree(v);
            assert!((1..=p.max_stub_providers).contains(&degree));
            assert!(topo
                .transit
                .neighbors(v)
                .all(|adj| adj.relationship == crate::Relationship::CustomerToProvider));
        }
    }

    #[test]
    fn provider_degrees_are_heavy_tailed() {
        let p = quick();
        let topo = generate_hier(p, 42);
        // Preferential attachment should make the busiest regional carry
        // several times the mean stub load.
        let degrees: Vec<usize> =
            topo.nodes_in(Tier::Regional).map(|v| topo.transit.degree(v)).collect();
        let max = *degrees.iter().max().unwrap();
        let mean = degrees.iter().sum::<usize>() / degrees.len();
        assert!(max >= 3 * mean.max(1), "max {max} vs mean {mean}: no heavy tail");
    }

    #[test]
    fn full_scale_params_add_up_to_50k() {
        assert_eq!(HierParams::default().total(), 50_000);
    }
}
