//! Edge sets for the classic BGP stability gadgets
//! (Griffin–Shepherd–Wilfong, "The Stable Paths Problem and
//! Interdomain Routing"; Griffin–Wilfong wedgies).
//!
//! A gadget is a tiny topology plus per-node path *rankings*; only the
//! topology lives here. Node 0 is always the origin; the policy side
//! (which ranked paths each rim node prefers) is supplied by
//! `dbgp-stability`, which pairs these edge sets with per-node decision
//! modules for the simulator and the oracle reference model.

/// The dispute-wheel ring of size `k`: origin `0` in the center, rim
/// nodes `1..=k` each linked to the origin (their spoke) and to the
/// next rim node clockwise (their rim edge). `WHEEL(3)` with
/// prefer-clockwise rankings is exactly BAD-GADGET.
pub fn wheel_edges(k: usize) -> Vec<(usize, usize)> {
    assert!(k >= 2, "a dispute wheel needs at least two rim nodes");
    let mut edges = Vec::with_capacity(2 * k);
    for i in 1..=k {
        edges.push((0, i));
    }
    for i in 1..=k {
        let next = if i == k { 1 } else { i + 1 };
        edges.push((i.min(next), i.max(next)));
    }
    edges.sort();
    edges.dedup();
    edges
}

/// DISAGREE: origin `0`, two rim nodes `1` and `2`, each preferring the
/// path through the other. Two stable states exist, so any run
/// converges — to which one depends on the schedule (and, under a
/// fault flap, yields the BGP-wedgie hysteresis).
pub fn disagree_edges() -> Vec<(usize, usize)> {
    wheel_edges(2)
}

/// GOOD-GADGET: the BAD-GADGET topology (a 3-ring around the origin)
/// whose rankings are flipped to prefer the *direct* spoke — dispute-
/// wheel-free, hence guaranteed to converge on every schedule.
pub fn good_gadget_edges() -> Vec<(usize, usize)> {
    wheel_edges(3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wheel_has_spokes_and_rim() {
        let edges = wheel_edges(3);
        assert_eq!(edges, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let w5 = wheel_edges(5);
        assert_eq!(w5.len(), 10);
        assert!(w5.contains(&(1, 5)), "rim closes the ring");
    }

    #[test]
    fn disagree_is_a_triangle() {
        assert_eq!(disagree_edges(), vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    #[should_panic(expected = "at least two rim nodes")]
    fn degenerate_wheel_rejected() {
        wheel_edges(1);
    }
}
