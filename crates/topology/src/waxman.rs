//! BRITE-style Waxman topology generation (paper §6.3).
//!
//! The paper generates 1,000 ASes with BRITE configured for a Waxman
//! model with α = 0.15 and β = 0.25, annotated with customer/provider
//! relationships. We reproduce BRITE's incremental Waxman mode: nodes
//! are placed uniformly at random on a plane and joined, in arrival
//! order, to `m` existing nodes sampled with the Waxman probability
//!
//! ```text
//! P(u, v) = α · exp(−d(u, v) / (β · L))
//! ```
//!
//! where `d` is Euclidean distance and `L` the plane's diagonal.
//! Customer/provider orientation uses the standard degree heuristic: the
//! higher-degree endpoint of each edge is the provider (ties to the
//! earlier node), yielding the loose hierarchy the §6.3 experiments
//! assume.

use crate::graph::AsGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the generator. Defaults match the paper.
#[derive(Debug, Clone, Copy)]
pub struct WaxmanParams {
    /// Number of ASes.
    pub n: usize,
    /// Waxman α (paper: 0.15).
    pub alpha: f64,
    /// Waxman β (paper: 0.25).
    pub beta: f64,
    /// Edges added per arriving node (BRITE's `m`; 2 gives the sparse
    /// transit hierarchy BRITE defaults to).
    pub m: usize,
}

impl Default for WaxmanParams {
    fn default() -> Self {
        WaxmanParams { n: 1000, alpha: 0.15, beta: 0.25, m: 2 }
    }
}

/// Generate a connected, relationship-annotated Waxman topology.
pub fn generate(params: WaxmanParams, seed: u64) -> AsGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = params.n;
    let positions: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen::<f64>(), rng.gen::<f64>())).collect();
    let diagonal = 2f64.sqrt();

    // Pass 1: undirected incremental Waxman attachment.
    let mut undirected: Vec<(usize, usize)> = Vec::with_capacity(n * params.m);
    let mut degree = vec![0usize; n];
    for v in 1..n {
        let want = params.m.min(v);
        let mut chosen: Vec<usize> = Vec::with_capacity(want);
        // Waxman-weighted sampling without replacement over existing
        // nodes; fall back to uniform if the weights all reject.
        let mut guard = 0;
        while chosen.len() < want {
            guard += 1;
            let u = rng.gen_range(0..v);
            if chosen.contains(&u) {
                continue;
            }
            let dx = positions[v].0 - positions[u].0;
            let dy = positions[v].1 - positions[u].1;
            let d = (dx * dx + dy * dy).sqrt();
            let p = params.alpha * (-d / (params.beta * diagonal)).exp();
            if rng.gen::<f64>() < p || guard > 50 * (want + 1) {
                chosen.push(u);
            }
        }
        for u in chosen {
            undirected.push((v, u));
            degree[v] += 1;
            degree[u] += 1;
        }
    }

    // Pass 2: orient edges customer -> provider by the degree heuristic.
    let mut graph = AsGraph::new(n);
    for (a, b) in undirected {
        let (customer, provider) = if degree[a] < degree[b] || (degree[a] == degree[b] && a > b) {
            (a, b)
        } else {
            (b, a)
        };
        graph.add_edge(customer, provider);
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_topology_is_connected() {
        let g = generate(WaxmanParams::default(), 42);
        assert_eq!(g.len(), 1000);
        assert!(g.is_connected());
        // Incremental attachment with m=2 gives just under 2n edges.
        assert!(g.edge_count() >= g.len() - 1);
        assert!(g.edge_count() <= 2 * g.len());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(WaxmanParams { n: 200, ..Default::default() }, 7);
        let b = generate(WaxmanParams { n: 200, ..Default::default() }, 7);
        assert_eq!(a.edge_count(), b.edge_count());
        for node in 0..a.len() {
            let an: Vec<_> = a.neighbors(node).collect();
            let bn: Vec<_> = b.neighbors(node).collect();
            assert_eq!(an, bn);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(WaxmanParams { n: 200, ..Default::default() }, 1);
        let b = generate(WaxmanParams { n: 200, ..Default::default() }, 2);
        let same = (0..a.len()).all(|n| {
            a.neighbors(n).map(|x| x.neighbor).collect::<Vec<_>>()
                == b.neighbors(n).map(|x| x.neighbor).collect::<Vec<_>>()
        });
        assert!(!same);
    }

    #[test]
    fn has_stubs_to_measure() {
        let g = generate(WaxmanParams::default(), 42);
        let stubs = g.stubs();
        assert!(
            stubs.len() > 100,
            "a transit hierarchy has plenty of stub ASes (got {})",
            stubs.len()
        );
    }

    #[test]
    fn average_path_lengths_match_internet_scale() {
        // The paper's Table 2 takes PL = 3-5 from routing-table studies;
        // a 1000-node Waxman hierarchy should land in that ballpark
        // (BFS distance as a proxy for policy paths).
        let g = generate(WaxmanParams::default(), 42);
        let mut total = 0usize;
        let mut count = 0usize;
        // BFS from a few sources.
        for src in [0usize, 100, 500, 999] {
            let mut dist = vec![usize::MAX; g.len()];
            dist[src] = 0;
            let mut queue = std::collections::VecDeque::from([src]);
            while let Some(u) = queue.pop_front() {
                for adj in g.neighbors(u) {
                    if dist[adj.neighbor] == usize::MAX {
                        dist[adj.neighbor] = dist[u] + 1;
                        queue.push_back(adj.neighbor);
                    }
                }
            }
            for &d in &dist {
                if d != usize::MAX && d > 0 {
                    total += d;
                    count += 1;
                }
            }
        }
        let avg = total as f64 / count as f64;
        assert!((2.0..=9.0).contains(&avg), "average distance {avg} out of range");
    }
}
