//! AS-level topology graphs annotated with customer/provider
//! relationships (Gao-Rexford, minus peering — matching §6.3's "annotated
//! with customer/provider relationships, but not peering ones").

use std::collections::HashSet;

/// Business relationship of an edge, from the perspective of `a` in
/// `(a, b)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relationship {
    /// `a` is the customer; `b` is `a`'s provider.
    CustomerToProvider,
    /// `a` is the provider; `b` is `a`'s customer.
    ProviderToCustomer,
}

impl Relationship {
    /// The same edge seen from the other endpoint.
    pub fn reversed(self) -> Self {
        match self {
            Relationship::CustomerToProvider => Relationship::ProviderToCustomer,
            Relationship::ProviderToCustomer => Relationship::CustomerToProvider,
        }
    }
}

/// One neighbor entry in the adjacency list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Adjacency {
    /// Neighbor node index.
    pub neighbor: usize,
    /// Our relationship *toward* the neighbor.
    pub relationship: Relationship,
}

/// An AS-level graph. Nodes are dense indices `0..n`.
#[derive(Debug, Clone)]
pub struct AsGraph {
    adjacency: Vec<Vec<Adjacency>>,
    edge_count: usize,
}

impl AsGraph {
    /// An edgeless graph of `n` ASes.
    pub fn new(n: usize) -> Self {
        AsGraph { adjacency: vec![Vec::new(); n], edge_count: 0 }
    }

    /// Number of ASes.
    pub fn len(&self) -> usize {
        self.adjacency.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Add an edge where `customer` buys transit from `provider`.
    /// Duplicate edges are ignored.
    pub fn add_edge(&mut self, customer: usize, provider: usize) {
        if customer == provider || self.neighbors(customer).any(|a| a.neighbor == provider) {
            return;
        }
        self.adjacency[customer]
            .push(Adjacency { neighbor: provider, relationship: Relationship::CustomerToProvider });
        self.adjacency[provider]
            .push(Adjacency { neighbor: customer, relationship: Relationship::ProviderToCustomer });
        self.edge_count += 1;
    }

    /// Iterate a node's neighbors.
    pub fn neighbors(&self, node: usize) -> impl Iterator<Item = Adjacency> + '_ {
        self.adjacency[node].iter().copied()
    }

    /// Degree of a node.
    pub fn degree(&self, node: usize) -> usize {
        self.adjacency[node].len()
    }

    /// Stub ASes: degree-1 customers, the measurement points of §6.3
    /// ("upgraded stubs").
    pub fn stubs(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&n| {
                self.degree(n) >= 1
                    && self.neighbors(n).all(|a| a.relationship == Relationship::CustomerToProvider)
            })
            .collect()
    }

    /// Is the graph connected (ignoring relationship direction)?
    pub fn is_connected(&self) -> bool {
        if self.is_empty() {
            return true;
        }
        let mut seen = HashSet::from([0usize]);
        let mut stack = vec![0usize];
        while let Some(node) = stack.pop() {
            for adj in self.neighbors(node) {
                if seen.insert(adj.neighbor) {
                    stack.push(adj.neighbor);
                }
            }
        }
        seen.len() == self.len()
    }

    /// Gao-Rexford export predicate: may `node` advertise to `to` a route
    /// it learned via `learned_from`? (`None` = the route is `node`'s
    /// own.) Valley-free: routes from providers go only to customers;
    /// own routes and customer routes go to everyone.
    pub fn may_export(&self, node: usize, learned_from: Option<usize>, to: usize) -> bool {
        let Some(from) = learned_from else { return true };
        let from_rel =
            self.adjacency[node].iter().find(|a| a.neighbor == from).map(|a| a.relationship);
        let to_rel = self.adjacency[node].iter().find(|a| a.neighbor == to).map(|a| a.relationship);
        match (from_rel, to_rel) {
            // Learned from a customer: export anywhere.
            (Some(Relationship::ProviderToCustomer), Some(_)) => true,
            // Learned from a provider: only down to customers.
            (Some(Relationship::CustomerToProvider), Some(Relationship::ProviderToCustomer)) => {
                true
            }
            (Some(Relationship::CustomerToProvider), Some(Relationship::CustomerToProvider)) => {
                false
            }
            _ => false,
        }
    }

    /// Is `path` (destination last) valley-free? Once the path goes
    /// "down" (provider → customer), it must never go "up" again.
    pub fn is_valley_free(&self, path: &[usize]) -> bool {
        let mut descended = false;
        for w in path.windows(2) {
            let rel =
                self.adjacency[w[0]].iter().find(|a| a.neighbor == w[1]).map(|a| a.relationship);
            match rel {
                Some(Relationship::CustomerToProvider) => {
                    // Walking from a node to its provider means traffic
                    // flows down toward w[0]; in advertisement direction
                    // (source → destination along `path`), w[0] -> w[1]
                    // going to a provider is an "up" move.
                    if descended {
                        return false;
                    }
                }
                Some(Relationship::ProviderToCustomer) => descended = true,
                None => return false,
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small hierarchy:
    ///         0 (tier-1)
    ///        / \
    ///       1   2
    ///      / \   \
    ///     3   4   5
    fn tree() -> AsGraph {
        let mut g = AsGraph::new(6);
        g.add_edge(1, 0);
        g.add_edge(2, 0);
        g.add_edge(3, 1);
        g.add_edge(4, 1);
        g.add_edge(5, 2);
        g
    }

    #[test]
    fn edges_are_symmetric_with_reversed_relationship() {
        let g = tree();
        let up = g.neighbors(1).find(|a| a.neighbor == 0).unwrap();
        assert_eq!(up.relationship, Relationship::CustomerToProvider);
        let down = g.neighbors(0).find(|a| a.neighbor == 1).unwrap();
        assert_eq!(down.relationship, Relationship::ProviderToCustomer);
        assert_eq!(up.relationship.reversed(), down.relationship);
    }

    #[test]
    fn duplicate_and_self_edges_ignored() {
        let mut g = tree();
        let edges = g.edge_count();
        g.add_edge(1, 0);
        g.add_edge(0, 1);
        g.add_edge(3, 3);
        assert_eq!(g.edge_count(), edges);
    }

    #[test]
    fn stubs_are_pure_customers() {
        let g = tree();
        assert_eq!(g.stubs(), vec![3, 4, 5]);
    }

    #[test]
    fn connectivity() {
        assert!(tree().is_connected());
        let mut g = AsGraph::new(3);
        g.add_edge(0, 1);
        assert!(!g.is_connected());
    }

    #[test]
    fn export_rules_are_valley_free() {
        let g = tree();
        // Node 1 learned a route from customer 3: may export up to 0 and
        // down to 4.
        assert!(g.may_export(1, Some(3), 0));
        assert!(g.may_export(1, Some(3), 4));
        // Node 1 learned from provider 0: only down to customers.
        assert!(g.may_export(1, Some(0), 3));
        assert!(!g.may_export(1, Some(0), 0));
        // Own routes export anywhere.
        assert!(g.may_export(1, None, 0));
        assert!(g.may_export(1, None, 3));
    }

    #[test]
    fn valley_free_path_check() {
        let g = tree();
        // 3 -> 1 -> 0 -> 2 -> 5 : up, up, down, down — valley-free.
        assert!(g.is_valley_free(&[3, 1, 0, 2, 5]));
        // 3 -> 1 -> 4 -> ... 1->4 is down, then 4 has no way back up
        // that is in the graph; construct an explicit valley: 0 -> 1 ->
        // 0 is a loop; use 0 -> 2 -> 5 then 5 -> 2 is up after down.
        assert!(!g.is_valley_free(&[1, 3, 1]), "nonexistent reverse edge rejected too");
        // Down then up: 0 -> 1 (down), 1 -> 0 (up) — a valley.
        assert!(!g.is_valley_free(&[0, 1, 0]));
    }

    #[test]
    fn disconnected_pairs_have_no_edge_relationship() {
        let g = tree();
        assert!(!g.is_valley_free(&[3, 5]));
    }
}
