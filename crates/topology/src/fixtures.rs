//! Ready-made topologies for the chaos and benchmark harnesses.

use crate::graph::AsGraph;
use crate::hierarchical::{generate_hier, HierParams, HierTopology};
use crate::waxman::{generate, WaxmanParams};

/// A 50-AS Waxman topology with the paper's §6.3 parameters (α = 0.15,
/// β = 0.25, m = 2) — big enough to have transit hierarchy and path
/// diversity, small enough for churn scenarios to quiesce quickly.
pub fn waxman_50(seed: u64) -> AsGraph {
    generate(WaxmanParams { n: 50, ..WaxmanParams::default() }, seed)
}

/// A 5000-AS Waxman topology with the same §6.3 parameters — the
/// benchmark tier for the parallel engine, five times the paper's
/// evaluation scale. Generation takes a moment (distance sampling is
/// O(n·m) with rejection), so benchmarks build it once and reuse it.
pub fn waxman_5000(seed: u64) -> AsGraph {
    generate(WaxmanParams { n: 5000, ..WaxmanParams::default() }, seed)
}

/// The 50,000-AS hierarchical Gao-Rexford tier (12-member tier-1
/// clique, 988 tier-2, 4,000 regionals, 45,000 stubs) — the benchmark
/// topology that only the sharded engine makes tractable.
pub fn hier_50k(seed: u64) -> HierTopology {
    generate_hier(HierParams::default(), seed)
}

/// The same hierarchy shrunk 25× (~2,000 ASes) — the CI `--hier-quick`
/// determinism slice, small enough to run under a debug build.
pub fn hier_2k(seed: u64) -> HierTopology {
    generate_hier(HierParams::default().scaled_down(25), seed)
}

/// The R-BGP failover diamond: destination 0, a short transit 1, a long
/// transit chain 2-3, and source 4.
///
/// ```text
///        1
///       / \
///      0   4
///       \ /
///      2-3
/// ```
///
/// Node 0 is the provider of 1 and 2; node 4 is a customer of 1 and 3 —
/// both paths are valley-free, so a source running R-BGP can hold the
/// long path as a disjoint backup for the short primary.
pub fn rbgp_diamond() -> AsGraph {
    let mut g = AsGraph::new(5);
    g.add_edge(1, 0); // 1 buys transit from 0
    g.add_edge(2, 0);
    g.add_edge(3, 2);
    g.add_edge(4, 1);
    g.add_edge(4, 3);
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waxman_50_is_connected_and_deterministic() {
        let g1 = waxman_50(7);
        let g2 = waxman_50(7);
        assert_eq!(g1.len(), 50);
        assert!(g1.is_connected());
        assert_eq!(g1.edge_count(), g2.edge_count(), "same seed, same graph");
        for n in 0..g1.len() {
            let a: Vec<_> = g1.neighbors(n).collect();
            let b: Vec<_> = g2.neighbors(n).collect();
            assert_eq!(a, b);
        }
        let g3 = waxman_50(8);
        let differs = g1.edge_count() != g3.edge_count()
            || (0..g1.len()).any(|n| {
                g1.neighbors(n).collect::<Vec<_>>() != g3.neighbors(n).collect::<Vec<_>>()
            });
        assert!(differs, "different seeds must differ somewhere");
    }

    #[test]
    fn diamond_shape() {
        let g = rbgp_diamond();
        assert_eq!(g.len(), 5);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(4), 2);
        assert!(g.is_connected());
    }
}
