#![warn(missing_docs)]

//! AS-level topologies for the D-BGP experiments.
//!
//! * [`graph`] — relationship-annotated AS graphs with Gao-Rexford
//!   (valley-free) export rules;
//! * [`waxman`] — the BRITE-style Waxman generator the paper's §6.3
//!   simulations use (1,000 ASes, α = 0.15, β = 0.25, degree-based
//!   customer/provider inference);
//! * [`hierarchical`] — a CAIDA-like tiered generator (tier-1 clique,
//!   transit tiers, stub tail) for the 50,000-AS Gao-Rexford benchmark;
//! * [`paper`] — the fixed topologies of Figures 1, 2, 3, 6 and 8;
//! * [`fixtures`] — ready-made graphs for the chaos and benchmark
//!   harnesses (a 50-AS Waxman, the R-BGP failover diamond);
//! * [`gadgets`] — the classic stability-gadget edge sets (dispute
//!   wheels, DISAGREE) that `dbgp-stability` pairs with per-node
//!   policy rankings.

pub mod fixtures;
pub mod gadgets;
pub mod graph;
pub mod hierarchical;
pub mod paper;
pub mod waxman;

pub use gadgets::{disagree_edges, good_gadget_edges, wheel_edges};
pub use graph::{Adjacency, AsGraph, Relationship};
pub use hierarchical::{generate_hier, HierParams, HierTopology, Tier};
pub use paper::{PaperNode, PaperTopology};
pub use waxman::{generate, WaxmanParams};
