//! Differential property tests: `PrefixTrie` against a naive
//! `BTreeMap` reference model, over op sequences dense enough to force
//! default routes, overlapping prefixes, branch-node creation, and
//! splice-on-remove.

use dbgp_rib::PrefixTrie;
use dbgp_wire::{Ipv4Addr, Ipv4Prefix};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A prefix drawn from a deliberately tiny universe so random
/// sequences collide: two /8 pools, nested /16s and /24s, host routes,
/// and the default route.
fn dense_prefix() -> impl Strategy<Value = Ipv4Prefix> {
    (any::<u32>(), prop_oneof![Just(0u8), Just(8), Just(9), Just(16), Just(20), Just(24), Just(32)])
        .prop_map(|(bits, len)| {
            // Confine the address space to 10.x and 11.x with only a few
            // distinct values per octet, maximizing overlap.
            let a = 10 + (bits & 1) as u8;
            let b = ((bits >> 1) & 3) as u8;
            let c = ((bits >> 3) & 3) as u8;
            let d = ((bits >> 5) & 1) as u8;
            Ipv4Prefix::new(Ipv4Addr::new(a, b, c, d), len).unwrap()
        })
}

/// One mutation: insert (value) or remove.
fn op() -> impl Strategy<Value = (Ipv4Prefix, Option<u32>)> {
    (dense_prefix(), proptest::option::of(any::<u32>()))
}

fn naive_longest_match(
    model: &BTreeMap<Ipv4Prefix, u32>,
    addr: Ipv4Addr,
) -> Option<(Ipv4Prefix, u32)> {
    model
        .iter()
        .filter(|(p, _)| p.contains(addr))
        .max_by_key(|(p, _)| p.len())
        .map(|(p, v)| (*p, *v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn trie_matches_btreemap_model(ops in proptest::collection::vec(op(), 1..60)) {
        let mut trie = PrefixTrie::new();
        let mut model: BTreeMap<Ipv4Prefix, u32> = BTreeMap::new();
        for (prefix, action) in &ops {
            match action {
                Some(v) => {
                    prop_assert_eq!(trie.insert(*prefix, *v), model.insert(*prefix, *v));
                }
                None => {
                    prop_assert_eq!(trie.remove(prefix), model.remove(prefix));
                }
            }
            prop_assert_eq!(trie.len(), model.len());
        }
        // Structural equality and iteration order.
        prop_assert!(trie == model, "trie {:?} != model {:?}", trie, model);
        let trie_items: Vec<_> = trie.iter().map(|(p, v)| (*p, *v)).collect();
        let model_items: Vec<_> = model.iter().map(|(p, v)| (*p, *v)).collect();
        prop_assert_eq!(trie_items, model_items);
        // Exact lookups agree, present and absent alike.
        for (prefix, _) in &ops {
            prop_assert_eq!(trie.get(prefix), model.get(prefix));
            prop_assert_eq!(trie.contains_key(prefix), model.contains_key(prefix));
        }
        // The compressed structure stays within its node budget.
        prop_assert!(
            trie.node_count() <= 2 * trie.len().max(1),
            "{} nodes for {} prefixes", trie.node_count(), trie.len()
        );
    }

    #[test]
    fn longest_match_agrees_with_linear_scan(
        ops in proptest::collection::vec(op(), 1..60),
        probes in proptest::collection::vec(any::<u32>(), 8),
    ) {
        let mut trie = PrefixTrie::new();
        let mut model: BTreeMap<Ipv4Prefix, u32> = BTreeMap::new();
        for (prefix, action) in &ops {
            match action {
                Some(v) => { trie.insert(*prefix, *v); model.insert(*prefix, *v); }
                None => { trie.remove(prefix); model.remove(prefix); }
            }
        }
        for &raw in &probes {
            // Probe both inside the dense universe and outside it.
            for addr in [
                Ipv4Addr::new(10 + (raw & 1) as u8, (raw >> 1 & 3) as u8, (raw >> 3 & 3) as u8, (raw >> 5) as u8),
                Ipv4Addr(raw),
            ] {
                let got = trie.longest_match(addr).map(|(p, v)| (*p, *v));
                prop_assert_eq!(got, naive_longest_match(&model, addr), "addr {}", addr);
            }
        }
    }

    #[test]
    fn covering_agrees_with_linear_scan(
        ops in proptest::collection::vec(op(), 1..60),
        target in dense_prefix(),
    ) {
        let mut trie = PrefixTrie::new();
        let mut model: BTreeMap<Ipv4Prefix, u32> = BTreeMap::new();
        for (prefix, action) in &ops {
            match action {
                Some(v) => { trie.insert(*prefix, *v); model.insert(*prefix, *v); }
                None => { trie.remove(prefix); model.remove(prefix); }
            }
        }
        let got: Vec<_> = trie.covering(target).map(|(p, v)| (*p, *v)).collect();
        let mut want: Vec<_> =
            model.iter().filter(|(p, _)| p.covers(&target)).map(|(p, v)| (*p, *v)).collect();
        want.sort_by_key(|(p, _)| p.len());
        prop_assert_eq!(got, want, "target {}", target);
    }

    #[test]
    fn clone_and_clear_preserve_state(ops in proptest::collection::vec(op(), 1..40)) {
        let mut trie = PrefixTrie::new();
        for (prefix, action) in &ops {
            match action {
                Some(v) => { trie.insert(*prefix, *v); }
                None => { trie.remove(prefix); }
            }
        }
        let snapshot = trie.clone();
        prop_assert!(trie == snapshot);
        trie.clear();
        prop_assert!(trie.is_empty());
        prop_assert_eq!(trie.iter().count(), 0);
        // Refill from the clone via FromIterator and compare.
        let refilled: PrefixTrie<u32> = snapshot.iter().map(|(p, v)| (*p, *v)).collect();
        prop_assert!(refilled == snapshot);
    }
}
