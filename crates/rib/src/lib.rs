#![warn(missing_docs)]

//! A level-compressed binary prefix trie keyed on [`Ipv4Prefix`].
//!
//! This is the storage engine behind every routing table in the
//! workspace: the per-peer Adj-RIB-In/Adj-RIB-Out tries, the Loc-RIB,
//! the D-BGP IA database, and the simulator FIBs. The flat
//! `BTreeMap<Ipv4Prefix, _>` stores it replaces were fine for the
//! paper's handful of §5 prefixes but made `longest_match` a linear
//! scan; at full-table cardinality (~1M routes, ROADMAP item 1) both
//! lookup and the per-update insert path must be bounded by prefix
//! depth, not table size.
//!
//! # Layout
//!
//! Nodes live in a single arena `Vec` and refer to each other by `u32`
//! index, so the whole table is three heap allocations regardless of
//! route count and a node is pointer-free (copyable, cache-dense).
//! Path compression keeps one node per *stored or branching* prefix:
//! an internal node either carries a value or has exactly two
//! children, so the node count is at most `2·len - 1`.
//!
//! The root always exists and is pinned at `0.0.0.0/0`; the default
//! route is simply a value on the root.
//!
//! # Iteration order
//!
//! [`PrefixTrie::iter`] walks the trie in preorder, zero-child first.
//! Because every stored network is canonical (host bits zero), that
//! order is exactly ascending `(network, len)` — identical to
//! `BTreeMap<Ipv4Prefix, _>` iteration. The simulator's determinism
//! contract (chaos digests, replay traces) depends on this, and
//! [`PartialEq`] against a `BTreeMap` leans on it to compare in one
//! lockstep pass.

use dbgp_wire::{Ipv4Addr, Ipv4Prefix};
use std::collections::BTreeMap;
use std::fmt;

/// Sentinel child index meaning "no child".
const NIL: u32 = u32::MAX;

/// Bit `i` (0 = most significant) of `addr`, as a child-slot index.
#[inline]
fn bit(addr: u32, i: u8) -> usize {
    debug_assert!(i < 32);
    ((addr >> (31 - i)) & 1) as usize
}

/// The longest common prefix of two distinct, non-nested prefixes.
fn common_prefix(a: Ipv4Prefix, b: Ipv4Prefix) -> Ipv4Prefix {
    let xor = a.network().0 ^ b.network().0;
    let diff = xor.leading_zeros().min(31) as u8;
    let len = diff.min(a.len()).min(b.len());
    Ipv4Prefix::new(a.network(), len).expect("len <= 32")
}

#[derive(Debug, Clone)]
struct Node<T> {
    prefix: Ipv4Prefix,
    value: Option<T>,
    children: [u32; 2],
}

/// A path-compressed binary trie from [`Ipv4Prefix`] to `T`.
///
/// Exact-prefix operations (`insert`, `remove`, `get`) and
/// [`longest_match`](PrefixTrie::longest_match) cost O(stored path
/// depth) — bounded by 32 plus the branch nodes along the way — with
/// no allocation except arena growth. Iteration yields entries in
/// ascending `(network, len)` order.
#[derive(Clone)]
pub struct PrefixTrie<T> {
    nodes: Vec<Node<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for PrefixTrie<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PrefixTrie<T> {
    /// An empty trie (just the valueless root at `0.0.0.0/0`).
    pub fn new() -> Self {
        PrefixTrie {
            nodes: vec![Node { prefix: Ipv4Prefix::DEFAULT, value: None, children: [NIL, NIL] }],
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no prefix is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of live arena nodes, including the root and any
    /// valueless branch nodes (at most `2·len - 1` for `len >= 1`,
    /// plus the root).
    pub fn node_count(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Bytes of arena memory held by this trie: the struct itself plus
    /// the node and free-list capacity. Heap owned by the values
    /// themselves (e.g. `Arc` targets) is *not* counted — shared
    /// attribute blocks are accounted once at their interning site,
    /// not once per prefix.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.nodes.capacity() * std::mem::size_of::<Node<T>>()
            + self.free.capacity() * std::mem::size_of::<u32>()
    }

    /// Remove every stored prefix, keeping the arena allocation.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.nodes.push(Node { prefix: Ipv4Prefix::DEFAULT, value: None, children: [NIL, NIL] });
        self.free.clear();
        self.len = 0;
    }

    fn alloc(&mut self, prefix: Ipv4Prefix, value: Option<T>) -> u32 {
        let node = Node { prefix, value, children: [NIL, NIL] };
        match self.free.pop() {
            Some(idx) => {
                self.nodes[idx as usize] = node;
                idx
            }
            None => {
                let idx = self.nodes.len() as u32;
                assert!(idx < NIL, "prefix trie arena overflow");
                self.nodes.push(node);
                idx
            }
        }
    }

    fn release(&mut self, idx: u32) {
        debug_assert_ne!(idx, 0, "root is never released");
        self.nodes[idx as usize].value = None;
        self.nodes[idx as usize].children = [NIL, NIL];
        self.free.push(idx);
    }

    /// Insert `value` at `prefix`, returning the previous value if the
    /// prefix was already present.
    pub fn insert(&mut self, prefix: Ipv4Prefix, value: T) -> Option<T> {
        let mut at = 0u32;
        loop {
            let node_prefix = self.nodes[at as usize].prefix;
            if node_prefix == prefix {
                let old = self.nodes[at as usize].value.replace(value);
                if old.is_none() {
                    self.len += 1;
                }
                return old;
            }
            // Invariant: node_prefix strictly covers prefix.
            let b = bit(prefix.network().0, node_prefix.len());
            let child = self.nodes[at as usize].children[b];
            if child == NIL {
                let leaf = self.alloc(prefix, Some(value));
                self.nodes[at as usize].children[b] = leaf;
                self.len += 1;
                return None;
            }
            let child_prefix = self.nodes[child as usize].prefix;
            if child_prefix.covers(&prefix) {
                at = child;
                continue;
            }
            if prefix.covers(&child_prefix) {
                // The new prefix sits between `at` and its child.
                let mid = self.alloc(prefix, Some(value));
                let cb = bit(child_prefix.network().0, prefix.len());
                self.nodes[mid as usize].children[cb] = child;
                self.nodes[at as usize].children[b] = mid;
                self.len += 1;
                return None;
            }
            // Diverging prefixes: branch at their longest common prefix.
            let lcp = common_prefix(prefix, child_prefix);
            let branch = self.alloc(lcp, None);
            let leaf = self.alloc(prefix, Some(value));
            let pb = bit(prefix.network().0, lcp.len());
            let cb = bit(child_prefix.network().0, lcp.len());
            debug_assert_ne!(pb, cb);
            self.nodes[branch as usize].children[pb] = leaf;
            self.nodes[branch as usize].children[cb] = child;
            self.nodes[at as usize].children[b] = branch;
            self.len += 1;
            return None;
        }
    }

    /// Remove `prefix`, returning its value if it was stored.
    pub fn remove(&mut self, prefix: &Ipv4Prefix) -> Option<T> {
        // Every step down the trie lengthens the node prefix by at
        // least one bit, so a root-to-leaf path holds at most 33 nodes
        // — the parent trail fits in a fixed array, no allocation.
        let mut stack = [(0u32, 0usize); 33];
        let mut depth = 0usize;
        let mut at = 0u32;
        loop {
            let node_prefix = self.nodes[at as usize].prefix;
            if node_prefix == *prefix {
                break;
            }
            if !node_prefix.covers(prefix) {
                return None;
            }
            let b = bit(prefix.network().0, node_prefix.len());
            let child = self.nodes[at as usize].children[b];
            if child == NIL {
                return None;
            }
            stack[depth] = (at, b);
            depth += 1;
            at = child;
        }
        let old = self.nodes[at as usize].value.take()?;
        self.len -= 1;
        // Prune upward: a non-root node without a value must keep the
        // two-children invariant or disappear.
        let mut cur = at;
        while cur != 0 && self.nodes[cur as usize].value.is_none() {
            let kids = self.nodes[cur as usize].children;
            match (kids[0] != NIL, kids[1] != NIL) {
                (true, true) => break,
                (true, false) | (false, true) => {
                    let child = if kids[0] != NIL { kids[0] } else { kids[1] };
                    debug_assert!(depth > 0, "non-root node has a parent");
                    depth -= 1;
                    let (parent, slot) = stack[depth];
                    self.nodes[parent as usize].children[slot] = child;
                    self.release(cur);
                    break;
                }
                (false, false) => {
                    debug_assert!(depth > 0, "non-root node has a parent");
                    depth -= 1;
                    let (parent, slot) = stack[depth];
                    self.nodes[parent as usize].children[slot] = NIL;
                    self.release(cur);
                    cur = parent;
                }
            }
        }
        Some(old)
    }

    /// Exact-prefix lookup.
    pub fn get(&self, prefix: &Ipv4Prefix) -> Option<&T> {
        let mut at = 0u32;
        loop {
            let node = &self.nodes[at as usize];
            if node.prefix == *prefix {
                return node.value.as_ref();
            }
            if !node.prefix.covers(prefix) {
                return None;
            }
            let b = bit(prefix.network().0, node.prefix.len());
            let child = node.children[b];
            if child == NIL {
                return None;
            }
            at = child;
        }
    }

    /// Exact-prefix lookup, mutable.
    pub fn get_mut(&mut self, prefix: &Ipv4Prefix) -> Option<&mut T> {
        let mut at = 0u32;
        loop {
            let node = &self.nodes[at as usize];
            if node.prefix == *prefix {
                return self.nodes[at as usize].value.as_mut();
            }
            if !node.prefix.covers(prefix) {
                return None;
            }
            let b = bit(prefix.network().0, node.prefix.len());
            let child = node.children[b];
            if child == NIL {
                return None;
            }
            at = child;
        }
    }

    /// Is `prefix` stored?
    pub fn contains_key(&self, prefix: &Ipv4Prefix) -> bool {
        self.get(prefix).is_some()
    }

    /// Longest-prefix-match lookup for a destination address, as the
    /// data plane performs it: the most specific stored prefix that
    /// contains `addr`.
    pub fn longest_match(&self, addr: Ipv4Addr) -> Option<(&Ipv4Prefix, &T)> {
        let mut best: Option<u32> = None;
        let mut at = 0u32;
        loop {
            let node = &self.nodes[at as usize];
            if !node.prefix.contains(addr) {
                break;
            }
            if node.value.is_some() {
                best = Some(at);
            }
            if node.prefix.len() == 32 {
                break;
            }
            let b = bit(addr.0, node.prefix.len());
            let child = node.children[b];
            if child == NIL {
                break;
            }
            at = child;
        }
        best.map(|i| {
            let n = &self.nodes[i as usize];
            (&n.prefix, n.value.as_ref().expect("best node has a value"))
        })
    }

    /// All stored prefixes that cover `target` (including `target`
    /// itself if stored), in increasing length order. This is the
    /// aggregate/route-leak walk: every less-specific route above a
    /// prefix, in one root-to-leaf descent.
    pub fn covering(&self, target: Ipv4Prefix) -> Covering<'_, T> {
        Covering { trie: self, target, at: 0 }
    }

    /// Iterate `(prefix, value)` pairs in ascending `(network, len)`
    /// order — the same order a `BTreeMap<Ipv4Prefix, _>` yields.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { trie: self, stack: vec![0] }
    }

    /// Iterate stored prefixes in ascending order.
    pub fn keys(&self) -> Keys<'_, T> {
        Keys { inner: self.iter() }
    }

    /// Iterate stored values in ascending prefix order.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.iter().map(|(_, v)| v)
    }
}

/// Sorted iterator over stored prefixes.
pub struct Keys<'a, T> {
    inner: Iter<'a, T>,
}

impl<'a, T> Iterator for Keys<'a, T> {
    type Item = &'a Ipv4Prefix;

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next().map(|(p, _)| p)
    }
}

/// Preorder (sorted-order) iterator over a [`PrefixTrie`].
pub struct Iter<'a, T> {
    trie: &'a PrefixTrie<T>,
    stack: Vec<u32>,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = (&'a Ipv4Prefix, &'a T);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some(at) = self.stack.pop() {
            let node = &self.trie.nodes[at as usize];
            // Right child below left so the zero side pops first.
            if node.children[1] != NIL {
                self.stack.push(node.children[1]);
            }
            if node.children[0] != NIL {
                self.stack.push(node.children[0]);
            }
            if let Some(v) = node.value.as_ref() {
                return Some((&node.prefix, v));
            }
        }
        None
    }
}

impl<'a, T> IntoIterator for &'a PrefixTrie<T> {
    type Item = (&'a Ipv4Prefix, &'a T);
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Root-to-leaf iterator over stored prefixes covering a target.
pub struct Covering<'a, T> {
    trie: &'a PrefixTrie<T>,
    target: Ipv4Prefix,
    at: u32,
}

impl<'a, T> Iterator for Covering<'a, T> {
    type Item = (&'a Ipv4Prefix, &'a T);

    fn next(&mut self) -> Option<Self::Item> {
        while self.at != NIL {
            let node = &self.trie.nodes[self.at as usize];
            self.at = if node.prefix.len() >= self.target.len() {
                NIL
            } else {
                let b = bit(self.target.network().0, node.prefix.len());
                match node.children[b] {
                    NIL => NIL,
                    c if self.trie.nodes[c as usize].prefix.covers(&self.target) => c,
                    _ => NIL,
                }
            };
            if let Some(v) = node.value.as_ref() {
                return Some((&node.prefix, v));
            }
        }
        None
    }
}

impl<T> FromIterator<(Ipv4Prefix, T)> for PrefixTrie<T> {
    fn from_iter<I: IntoIterator<Item = (Ipv4Prefix, T)>>(iter: I) -> Self {
        let mut trie = PrefixTrie::new();
        for (p, v) in iter {
            trie.insert(p, v);
        }
        trie
    }
}

impl<T> Extend<(Ipv4Prefix, T)> for PrefixTrie<T> {
    fn extend<I: IntoIterator<Item = (Ipv4Prefix, T)>>(&mut self, iter: I) {
        for (p, v) in iter {
            self.insert(p, v);
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for PrefixTrie<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<T: PartialEq> PartialEq for PrefixTrie<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl<T: Eq> Eq for PrefixTrie<T> {}

/// Lockstep comparison against the naive map the trie replaces (and
/// the oracle's reference model still uses). Relies on both sides
/// iterating in ascending `(network, len)` order.
impl<T, U> PartialEq<BTreeMap<Ipv4Prefix, U>> for PrefixTrie<T>
where
    T: PartialEq<U>,
{
    fn eq(&self, other: &BTreeMap<Ipv4Prefix, U>) -> bool {
        self.len == other.len()
            && self.iter().zip(other.iter()).all(|((p, v), (q, w))| p == q && v == w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn empty_trie() {
        let trie: PrefixTrie<u32> = PrefixTrie::new();
        assert!(trie.is_empty());
        assert_eq!(trie.len(), 0);
        assert_eq!(trie.iter().count(), 0);
        assert!(trie.longest_match(Ipv4Addr::new(1, 2, 3, 4)).is_none());
        assert!(trie.get(&Ipv4Prefix::DEFAULT).is_none());
    }

    #[test]
    fn default_route_lives_on_the_root() {
        let mut trie = PrefixTrie::new();
        assert_eq!(trie.insert(Ipv4Prefix::DEFAULT, 7u32), None);
        assert_eq!(trie.len(), 1);
        assert_eq!(trie.get(&Ipv4Prefix::DEFAULT), Some(&7));
        let (best, v) = trie.longest_match(Ipv4Addr::new(203, 0, 113, 9)).unwrap();
        assert_eq!((*best, *v), (Ipv4Prefix::DEFAULT, 7));
        assert_eq!(trie.remove(&Ipv4Prefix::DEFAULT), Some(7));
        assert!(trie.is_empty());
        assert_eq!(trie.node_count(), 1, "root survives removal");
    }

    #[test]
    fn overlapping_prefixes_prefer_most_specific() {
        let mut trie = PrefixTrie::new();
        trie.insert(Ipv4Prefix::DEFAULT, 0u32);
        trie.insert(p("10.0.0.0/8"), 8);
        trie.insert(p("10.5.0.0/16"), 16);
        trie.insert(p("10.5.3.0/24"), 24);
        fn lm(trie: &PrefixTrie<u32>, a: u8, b: u8, c: u8, d: u8) -> u32 {
            *trie.longest_match(Ipv4Addr::new(a, b, c, d)).unwrap().1
        }
        assert_eq!(lm(&trie, 10, 5, 3, 1), 24);
        assert_eq!(lm(&trie, 10, 5, 4, 1), 16);
        assert_eq!(lm(&trie, 10, 6, 0, 1), 8);
        assert_eq!(lm(&trie, 11, 0, 0, 1), 0);
        trie.remove(&p("10.5.0.0/16"));
        assert_eq!(lm(&trie, 10, 5, 4, 1), 8, "falls back past the removed mid prefix");
        assert_eq!(lm(&trie, 10, 5, 3, 1), 24, "more specific unaffected");
    }

    #[test]
    fn iteration_is_btreemap_order() {
        let mut trie = PrefixTrie::new();
        let mut model = BTreeMap::new();
        for s in [
            "10.0.0.0/8",
            "0.0.0.0/0",
            "10.5.3.0/24",
            "192.168.0.0/16",
            "10.5.0.0/16",
            "10.128.0.0/9",
        ] {
            trie.insert(p(s), s.to_string());
            model.insert(p(s), s.to_string());
        }
        let got: Vec<_> = trie.iter().map(|(k, v)| (*k, v.clone())).collect();
        let want: Vec<_> = model.iter().map(|(k, v)| (*k, v.clone())).collect();
        assert_eq!(got, want);
        assert_eq!(trie, model);
        assert_eq!(format!("{trie:?}"), format!("{model:?}"));
    }

    #[test]
    fn covering_walks_less_specifics_in_order() {
        let mut trie = PrefixTrie::new();
        trie.insert(Ipv4Prefix::DEFAULT, 0u32);
        trie.insert(p("10.0.0.0/8"), 8);
        trie.insert(p("10.5.0.0/16"), 16);
        trie.insert(p("10.5.3.0/24"), 24);
        trie.insert(p("192.168.0.0/16"), 99);
        let covers: Vec<u32> = trie.covering(p("10.5.3.0/24")).map(|(_, v)| *v).collect();
        assert_eq!(covers, vec![0, 8, 16, 24]);
        let covers: Vec<u32> = trie.covering(p("10.5.0.0/20")).map(|(_, v)| *v).collect();
        assert_eq!(covers, vec![0, 8, 16]);
    }

    #[test]
    fn branch_nodes_are_pruned() {
        let mut trie = PrefixTrie::new();
        // These two diverge under the root and force a /14 branch node.
        trie.insert(p("10.4.0.0/16"), 1u32);
        trie.insert(p("10.5.0.0/16"), 2);
        assert_eq!(trie.node_count(), 4, "root + branch + two leaves");
        trie.remove(&p("10.4.0.0/16"));
        assert_eq!(trie.node_count(), 2, "branch spliced out with its leaf");
        assert_eq!(trie.get(&p("10.5.0.0/16")), Some(&2));
        trie.remove(&p("10.5.0.0/16"));
        assert_eq!(trie.node_count(), 1);
        // The freed slots are reused.
        trie.insert(p("172.16.0.0/12"), 3);
        assert!(trie.memory_bytes() > 0);
        assert_eq!(trie.len(), 1);
    }

    #[test]
    fn host_routes_terminate_the_walk() {
        let mut trie = PrefixTrie::new();
        trie.insert(p("10.0.0.1/32"), 1u32);
        trie.insert(p("10.0.0.0/24"), 2);
        assert_eq!(*trie.longest_match(Ipv4Addr::new(10, 0, 0, 1)).unwrap().1, 1);
        assert_eq!(*trie.longest_match(Ipv4Addr::new(10, 0, 0, 2)).unwrap().1, 2);
        assert_eq!(trie.insert(p("10.0.0.1/32"), 9), Some(1));
    }
}
