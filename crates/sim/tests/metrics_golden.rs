//! Golden-file pin of the `dbgp-metrics/v1` snapshot schema.
//!
//! The snapshot is a published interface: dashboards and the chaos
//! harness parse it by field name. This test reduces a real
//! `Sim::metrics_snapshot()` to its schema skeleton — every field name
//! with the JSON type of its value, arrays reduced to their element
//! schema — and compares it against the committed golden file. Renaming,
//! retyping, or dropping a field fails here before it breaks a consumer.
//!
//! To bless an intentional schema change:
//! `UPDATE_GOLDEN=1 cargo test -p dbgp-sim --test metrics_golden`

use dbgp_core::DbgpConfig;
use dbgp_sim::Sim;
use serde_json::Value;

const GOLDEN_PATH: &str = "tests/golden/metrics_schema.json";

/// Reduce a document to its schema skeleton: leaves become their JSON
/// type name, arrays become the schema of their first element (the
/// snapshot's arrays are homogeneous).
fn schema_of(v: &Value) -> Value {
    match v {
        Value::Null => Value::String("null".into()),
        Value::Bool(_) => Value::String("bool".into()),
        Value::Int(_) => Value::String("int".into()),
        Value::UInt(_) => Value::String("uint".into()),
        Value::Float(_) => Value::String("float".into()),
        Value::String(_) => Value::String("string".into()),
        Value::Array(items) => Value::Array(items.first().map(schema_of).into_iter().collect()),
        Value::Object(fields) => {
            Value::Object(fields.iter().map(|(k, v)| (k.clone(), schema_of(v))).collect())
        }
    }
}

/// A snapshot with every part of the schema populated: messages flowed,
/// a histogram has observations, and a node restarted (nonzero
/// generation).
fn populated_snapshot() -> Value {
    let mut sim = Sim::new();
    let a = sim.add_node(DbgpConfig::gulf(1));
    let b = sim.add_node(DbgpConfig::gulf(2));
    let c = sim.add_node(DbgpConfig::gulf(3));
    sim.link(a, b, 10, false);
    sim.link(b, c, 10, false);
    sim.originate(a, "10.0.0.0/8".parse().unwrap());
    sim.run(1_000_000);
    sim.restart_node(b);
    sim.run(2_000_000);
    sim.metrics_snapshot()
}

#[test]
fn metrics_snapshot_schema_matches_golden() {
    let snap = populated_snapshot();
    assert_eq!(snap.get("schema").and_then(Value::as_str), Some("dbgp-metrics/v1"));
    let schema = schema_of(&snap);
    let rendered = serde_json::to_string_pretty(&schema).unwrap() + "\n";

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all("tests/golden").unwrap();
        std::fs::write(GOLDEN_PATH, &rendered).unwrap();
        return;
    }

    let golden = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!("cannot read {GOLDEN_PATH} ({e}); run with UPDATE_GOLDEN=1 to create it")
    });
    assert_eq!(
        rendered, golden,
        "metrics snapshot schema drifted from {GOLDEN_PATH}; if the change is \
         intentional, re-bless with UPDATE_GOLDEN=1"
    );
}

#[test]
fn snapshot_values_survive_a_json_round_trip() {
    let snap = populated_snapshot();
    let text = serde_json::to_string(&snap).unwrap();
    let parsed = serde_json::from_str(&text).unwrap();
    // The vendored writer emits UInt values that re-parse as Int when
    // they fit; compare through the schema reducer's type-insensitive
    // field structure instead of exact equality.
    let keys = |v: &Value| -> Vec<String> {
        v.as_object().map(|f| f.iter().map(|(k, _)| k.clone()).collect()).unwrap_or_default()
    };
    assert_eq!(keys(&snap), keys(&parsed));
    assert_eq!(
        parsed.get("generation").and_then(Value::as_u64),
        snap.get("generation").and_then(Value::as_u64)
    );
}
