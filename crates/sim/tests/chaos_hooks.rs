//! Tests for the fault-injection substrate the `dbgp-chaos` crate sits
//! on: link restore, node restart, lossy link models, the run-horizon
//! contract, and the stats counters that replaced silently swallowed
//! events.

use dbgp_core::DbgpConfig;
use dbgp_sim::{LinkModel, Sim};
use dbgp_wire::Ipv4Prefix;

fn p(s: &str) -> Ipv4Prefix {
    s.parse().unwrap()
}

/// A square: origin o, two transit nodes a (short path) and b (long
/// path), sink s. After `fail_link(o, a)` the sink must re-route via b;
/// after `restore_link(o, a)` it must come back to a.
fn square() -> (Sim, usize, usize, usize, usize) {
    let mut sim = Sim::new();
    let o = sim.add_node(DbgpConfig::gulf(1));
    let a = sim.add_node(DbgpConfig::gulf(2));
    let b = sim.add_node(DbgpConfig::gulf(3));
    let s = sim.add_node(DbgpConfig::gulf(4));
    sim.link(o, a, 10, false);
    sim.link(o, b, 10, false);
    sim.link(a, s, 10, false);
    sim.link(b, s, 10, false);
    sim.originate(o, p("128.6.0.0/16"));
    (sim, o, a, b, s)
}

#[test]
fn restore_link_reconverges_to_primary() {
    let (mut sim, o, a, b, s) = square();
    sim.run(1_000_000);
    // Shortest-path tie broken deterministically; record the winner.
    let primary = sim.fib(s).get(&p("128.6.0.0/16")).copied().flatten().unwrap();
    assert!(primary == a || primary == b);
    let (via, other) = if primary == a { (a, b) } else { (b, a) };

    sim.fail_link(via, s);
    sim.run(2_000_000);
    assert_eq!(
        sim.fib(s).get(&p("128.6.0.0/16")).copied().flatten(),
        Some(other),
        "sink fails over to the surviving transit"
    );

    sim.restore_link(via, s);
    sim.run(3_000_000);
    assert_eq!(
        sim.fib(s).get(&p("128.6.0.0/16")).copied().flatten(),
        Some(primary),
        "after repair the sink returns to its original best path"
    );
    assert!(sim.link_is_up(via, s));
    let _ = o;
}

#[test]
fn fail_and_restore_are_idempotent() {
    let (mut sim, o, a, _b, _s) = square();
    sim.run(1_000_000);
    let stats_before = sim.stats();
    // Double-fail and double-restore must not wedge or double-announce.
    sim.fail_link(o, a);
    sim.fail_link(o, a);
    sim.run(2_000_000);
    sim.restore_link(o, a);
    sim.restore_link(o, a);
    sim.run(3_000_000);
    assert!(sim.link_is_up(o, a));
    assert!(sim.stats().messages > stats_before.messages);
    // Restoring a link that was never failed is a no-op.
    let quiesced = sim.stats();
    sim.restore_link(o, a);
    sim.run(4_000_000);
    assert_eq!(sim.stats(), quiesced);
}

#[test]
fn restart_node_resets_sessions_and_reconverges() {
    let (mut sim, o, a, b, s) = square();
    sim.run(1_000_000);
    let fib_before = sim.fib(s).clone();
    let messages_before = sim.stats().messages;

    // Restart a transit node: all four FIBs must be intact afterwards
    // and the full-table re-transfer must have generated traffic.
    sim.restart_node(a);
    sim.run(2_000_000);
    assert_eq!(sim.fib(s), &fib_before, "sink's route survives the restart");
    assert!(sim.stats().messages > messages_before, "restart triggers a full-table re-transfer");
    for node in [o, a, b, s] {
        if node != o {
            assert!(
                sim.speaker(node).best(&p("128.6.0.0/16")).is_some(),
                "node {node} re-learns the prefix"
            );
        }
    }
}

#[test]
fn decode_errors_are_counted_not_swallowed() {
    let mut sim = Sim::new();
    let x = sim.add_node(DbgpConfig::gulf(1));
    let y = sim.add_node(DbgpConfig::gulf(2));
    sim.link(x, y, 10, false);
    sim.run(1_000);
    assert_eq!(sim.stats().decode_errors, 0);
    sim.inject_raw(x, y, 5, vec![0xde, 0xad, 0xbe, 0xef]);
    let stats = sim.run(10_000);
    assert_eq!(stats.decode_errors, 1, "garbage bytes are counted");
    assert_eq!(stats.orphaned_deliveries, 0);
}

#[test]
fn orphaned_deliveries_are_counted() {
    let mut sim = Sim::new();
    let x = sim.add_node(DbgpConfig::gulf(1));
    let y = sim.add_node(DbgpConfig::gulf(2));
    let z = sim.add_node(DbgpConfig::gulf(3));
    sim.link(x, y, 10, false);
    sim.run(1_000);
    // z was never linked to y, so a (well-formed) message claiming to
    // come from z has no adjacency at y.
    let update = dbgp_core::DbgpUpdate::withdraw(p("10.0.0.0/8"));
    sim.inject_raw(z, y, 5, update.encode().to_vec());
    let stats = sim.run(10_000);
    assert_eq!(stats.orphaned_deliveries, 1);
    assert_eq!(stats.decode_errors, 0);
}

#[test]
fn run_horizon_is_inclusive_and_preserves_later_events() {
    let mut sim = Sim::new();
    let x = sim.add_node(DbgpConfig::gulf(1));
    let y = sim.add_node(DbgpConfig::gulf(2));
    sim.link(x, y, 10, false);
    sim.run(1_000);
    let update = dbgp_core::DbgpUpdate::withdraw(p("10.0.0.0/8"));
    // One delivery at exactly the horizon, one just beyond it.
    let now = sim.now();
    sim.inject_raw(x, y, 100, update.encode().to_vec());
    sim.inject_raw(x, y, 101, update.encode().to_vec());
    let horizon = now + 100;
    let stats = sim.run(horizon);
    assert_eq!(stats.last_event_at, horizon, "event at the horizon is processed");
    assert_eq!(sim.pending_events(), 1, "event beyond the horizon stays queued");
    assert!(sim.now() <= horizon, "clock never runs past the horizon");
    let stats = sim.run(horizon + 10);
    assert_eq!(stats.last_event_at, horizon + 1, "a later run picks it up");
    assert_eq!(sim.pending_events(), 0);
}

#[test]
fn lossy_link_drops_messages_and_flap_resyncs() {
    // 100% loss on the o-a link while a prefix is originated: a learns
    // nothing. A flap (session reset + full-table transfer over the
    // now-reliable link) resynchronizes — the control plane has no
    // retransmission, so this is how chaos scenarios must heal loss.
    let mut sim = Sim::new();
    sim.set_seed(7);
    let o = sim.add_node(DbgpConfig::gulf(1));
    let a = sim.add_node(DbgpConfig::gulf(2));
    sim.link(o, a, 10, false);
    sim.run(1_000);
    sim.set_link_model(o, a, LinkModel::reliable().loss_ppm(1_000_000));
    sim.originate(o, p("128.6.0.0/16"));
    let stats = sim.run(100_000);
    assert!(stats.dropped_messages >= 1);
    assert!(sim.speaker(a).best(&p("128.6.0.0/16")).is_none(), "announcement was lost");

    sim.set_link_model(o, a, LinkModel::reliable());
    sim.fail_link(o, a);
    sim.run(200_000);
    sim.restore_link(o, a);
    sim.run(300_000);
    assert!(
        sim.speaker(a).best(&p("128.6.0.0/16")).is_some(),
        "flap over the healed link resynchronizes the table"
    );
}

#[test]
fn duplication_and_jitter_do_not_change_final_state() {
    // Same topology run twice: once reliable, once with heavy
    // duplication + jitter. D-BGP processing is idempotent per IA, so
    // final routing state must match (message counts will not).
    let build = |model: Option<LinkModel>| {
        let mut sim = Sim::new();
        sim.set_seed(42);
        let nodes: Vec<_> = (1..=4).map(|asn| sim.add_node(DbgpConfig::gulf(asn))).collect();
        for w in nodes.windows(2) {
            sim.link(w[0], w[1], 10, false);
        }
        if let Some(m) = model {
            for w in nodes.windows(2) {
                sim.set_link_model(w[0], w[1], m);
            }
        }
        sim.originate(nodes[0], p("128.6.0.0/16"));
        sim.run(10_000_000);
        (sim, nodes)
    };
    let (clean, nodes) = build(None);
    let noisy_model = LinkModel::reliable().duplicate_ppm(500_000).jitter(17);
    let (noisy, _) = build(Some(noisy_model));
    assert!(noisy.stats().duplicated_messages > 0, "duplication actually fired");
    for &n in &nodes {
        assert_eq!(clean.fib(n), noisy.fib(n), "final FIB at node {n} unchanged");
    }
}

#[test]
fn corruption_is_counted_and_survivable() {
    let mut sim = Sim::new();
    sim.set_seed(3);
    let o = sim.add_node(DbgpConfig::gulf(1));
    let a = sim.add_node(DbgpConfig::gulf(2));
    sim.link(o, a, 10, false);
    sim.run(1_000);
    sim.set_link_model(o, a, LinkModel::reliable().corrupt_ppm(1_000_000));
    sim.originate(o, p("128.6.0.0/16"));
    let stats = sim.run(100_000);
    assert!(stats.corrupted_messages >= 1);
    // A corrupted frame either fails to decode (counted) or decodes to
    // something the speaker handles; it must never crash the sim.
    assert_eq!(
        stats.corrupted_messages,
        stats.decode_errors + (stats.corrupted_messages - stats.decode_errors)
    );
}

#[test]
fn same_seed_same_trace() {
    let run_once = |seed: u64| {
        let mut sim = Sim::new();
        sim.set_seed(seed);
        let nodes: Vec<_> = (1..=5).map(|asn| sim.add_node(DbgpConfig::gulf(asn))).collect();
        for w in nodes.windows(2) {
            sim.link(w[0], w[1], 7, false);
        }
        sim.link(nodes[0], nodes[4], 9, false);
        for w in nodes.windows(2) {
            sim.set_link_model(
                w[0],
                w[1],
                LinkModel::reliable().loss_ppm(100_000).jitter(5).duplicate_ppm(50_000),
            );
        }
        sim.originate(nodes[0], p("128.6.0.0/16"));
        sim.run(500_000);
        sim.fail_link(nodes[0], nodes[1]);
        sim.run(1_000_000);
        sim.restore_link(nodes[0], nodes[1]);
        sim.run(2_000_000);
        let fibs: Vec<_> = nodes.iter().map(|&n| sim.fib(n).clone()).collect();
        (sim.stats(), fibs)
    };
    assert_eq!(run_once(11), run_once(11), "identical seed => identical run");
    let (stats_a, _) = run_once(11);
    let (stats_b, _) = run_once(12);
    assert_ne!(
        (stats_a.dropped_messages, stats_a.messages),
        (stats_b.dropped_messages, stats_b.messages),
        "different seed perturbs differently"
    );
}

#[test]
fn churn_records_best_changes_per_prefix() {
    let (mut sim, o, _a, _b, s) = square();
    sim.run(1_000_000);
    let key = (s, p("128.6.0.0/16"));
    let before = sim.churn().get(&key).copied().unwrap();
    assert!(before.best_changes >= 1);
    assert_eq!(sim.stats().best_changes, sim.churn().values().map(|c| c.best_changes).sum());
    // A withdraw + re-originate cycle adds churn at the sink.
    sim.withdraw(o, p("128.6.0.0/16"));
    sim.run(2_000_000);
    sim.originate(o, p("128.6.0.0/16"));
    sim.run(3_000_000);
    let after = sim.churn().get(&key).copied().unwrap();
    assert!(after.best_changes >= before.best_changes + 2);
    assert!(after.last_change_at > before.last_change_at);
}
