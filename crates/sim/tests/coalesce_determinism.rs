//! Deterministic update coalescing ([`Sim::set_coalesce`]) contract:
//!
//! 1. With coalescing on, the serial, windowed and sharded engines stay
//!    bit-identical at every checkpoint of a churning run — staging
//!    deltas are absorbed at event commit (global `(time, seq)` order)
//!    and flushed at the time barrier, so the flush points, frames and
//!    RNG draws cannot depend on the engine.
//! 2. Coalescing changes the wire stream (fewer, fatter frames — that
//!    is the point) but never the outcome: the converged Loc-RIBs and
//!    FIBs match the per-change stream's exactly.
//! 3. With `mrai > 0` the staged sends compose with the classic MRAI
//!    window instead of bypassing it.

use dbgp_core::{render_path, DbgpConfig};
use dbgp_sim::{LinkModel, Sim};
use dbgp_topology::fixtures::waxman_50;
use dbgp_wire::Ipv4Prefix;

fn origin_prefix(node: usize) -> Ipv4Prefix {
    format!("10.{}.{}.0/24", (node >> 8) & 0xff, node & 0xff).parse().unwrap()
}

/// The par_determinism churn scenario, with coalescing configurable.
fn build(
    seed: u64,
    threads: usize,
    shards: usize,
    coalesce: bool,
    mrai: u64,
) -> (Sim, Vec<(usize, usize)>) {
    build_with(seed, threads, shards, coalesce, mrai, true)
}

fn build_with(
    seed: u64,
    threads: usize,
    shards: usize,
    coalesce: bool,
    mrai: u64,
    perturb: bool,
) -> (Sim, Vec<(usize, usize)>) {
    let graph = waxman_50(seed);
    let mut sim = Sim::new();
    sim.set_threads(threads);
    sim.set_seed(seed ^ 0xD1CE);
    sim.set_mrai(mrai);
    sim.set_coalesce(coalesce);
    for node in 0..graph.len() {
        sim.add_node(DbgpConfig::gulf(node as u32 + 1));
    }
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for a in 0..graph.len() {
        for adj in graph.neighbors(a) {
            if a < adj.neighbor {
                edges.push((a, adj.neighbor));
            }
        }
    }
    edges.sort_unstable();
    for &(a, b) in &edges {
        sim.link(a, b, 5 + ((a + b) % 7) as u64, false);
        // Perturbed links make the commit-phase RNG draw order
        // load-bearing: a flush point differing between engines would
        // desynchronize every later draw. (The coalesce-on/off outcome
        // comparison turns them off — the two wire streams draw the RNG
        // differently by design, and a duplicated stale announcement
        // landing after its successor legitimately changes the result.)
        if perturb {
            match (a + b) % 3 {
                0 => sim.set_link_model(a, b, LinkModel::reliable().jitter(((a + b) % 5) as u64)),
                1 => sim.set_link_model(a, b, LinkModel::reliable().duplicate_ppm(90_000)),
                _ => {}
            }
        }
    }
    if shards > 1 {
        sim.set_shards(shards);
    }
    for node in 0..graph.len() {
        sim.originate(node, origin_prefix(node));
    }
    (sim, edges)
}

/// Everything observable, rendered to one comparable string (the
/// par_determinism fingerprint: stats — including total frame count and
/// bytes, so a single diverging frame shows up — plus FIBs, Loc-RIBs
/// and churn records).
fn fingerprint(sim: &mut Sim) -> String {
    let mut out = String::new();
    out.push_str(&format!("stats={:?}\n", sim.stats()));
    out.push_str(&format!(
        "now={} processed={} pending={}\n",
        sim.now(),
        sim.events_processed(),
        sim.pending_events()
    ));
    for node in 0..sim.node_count() {
        out.push_str(&format!("fib[{node}]={:?}\n", sim.fib(node)));
        for (prefix, chosen) in sim.speaker(node).routes() {
            out.push_str(&format!(
                "rib[{node}][{prefix}]: via={:?} path={}\n",
                chosen.neighbor,
                render_path(&chosen.ia)
            ));
        }
    }
    out.push_str(&format!("churn={:?}\n", sim.churn()));
    out
}

/// Only the converged routing outcome (no stats, no timing): what must
/// survive coalescing unchanged.
fn rib_fingerprint(sim: &Sim) -> String {
    let mut out = String::new();
    for node in 0..sim.node_count() {
        out.push_str(&format!("fib[{node}]={:?}\n", sim.fib(node)));
        for (prefix, chosen) in sim.speaker(node).routes() {
            out.push_str(&format!("rib[{node}][{prefix}]: path={}\n", render_path(&chosen.ia)));
        }
    }
    out
}

/// Drive the churn scenario, fingerprinting after every segment.
fn drive(seed: u64, threads: usize, shards: usize, coalesce: bool, mrai: u64) -> Vec<String> {
    let (mut sim, edges) = build(seed, threads, shards, coalesce, mrai);
    let mut checkpoints = Vec::new();
    sim.run(20_000);
    checkpoints.push(fingerprint(&mut sim));
    for round in 0..4u64 {
        let (a, b) = edges[(seed as usize + round as usize * 11) % edges.len()];
        sim.fail_link(a, b);
        sim.run(sim.now() + 400);
        sim.restore_link(a, b);
        sim.run(sim.now() + 1200);
        checkpoints.push(fingerprint(&mut sim));
    }
    sim.restart_node(17);
    sim.run(60_000);
    checkpoints.push(fingerprint(&mut sim));
    checkpoints
}

#[test]
fn coalescing_is_engine_independent_at_any_thread_count() {
    let serial = drive(42, 1, 1, true, 0);
    for threads in [2usize, 4] {
        let parallel = drive(42, threads, 1, true, 0);
        assert_eq!(serial.len(), parallel.len());
        for (i, (s, p)) in serial.iter().zip(parallel.iter()).enumerate() {
            assert_eq!(
                s, p,
                "coalescing: serial vs {threads}-thread runs diverged at checkpoint {i}"
            );
        }
    }
}

#[test]
fn coalescing_is_engine_independent_under_sharding() {
    let serial = drive(42, 1, 1, true, 0);
    let sharded = drive(42, 4, 4, true, 0);
    assert_eq!(serial.len(), sharded.len());
    for (i, (s, p)) in serial.iter().zip(sharded.iter()).enumerate() {
        assert_eq!(s, p, "coalescing: serial vs 4-thread/4-shard runs diverged at checkpoint {i}");
    }
}

#[test]
fn coalescing_reduces_frames_without_changing_the_outcome() {
    let (mut off, _) = build_with(42, 1, 1, false, 0, false);
    off.run(200_000);
    assert_eq!(off.pending_events(), 0, "per-change run must quiesce");
    let (mut on, _) = build_with(42, 1, 1, true, 0, false);
    on.run(200_000);
    assert_eq!(on.pending_events(), 0, "coalesced run must quiesce");

    assert_eq!(
        rib_fingerprint(&off),
        rib_fingerprint(&on),
        "coalescing changed the converged routing outcome"
    );
    let (soff, son) = (off.stats(), on.stats());
    assert_eq!(soff.frames_coalesced, 0, "per-change run must not coalesce");
    assert!(son.frames_coalesced > 0, "coalesced run saved no frames");
    assert!(
        son.messages < soff.messages,
        "coalescing should deliver fewer frames: {} vs {}",
        son.messages,
        soff.messages
    );
}

#[test]
fn coalescing_composes_with_the_mrai_window() {
    let (mut off, _) = build_with(7, 1, 1, false, 30, false);
    off.run(400_000);
    assert_eq!(off.pending_events(), 0);
    let (mut on, _) = build_with(7, 1, 1, true, 30, false);
    on.run(400_000);
    assert_eq!(on.pending_events(), 0);
    assert_eq!(
        rib_fingerprint(&off),
        rib_fingerprint(&on),
        "coalescing under MRAI changed the converged routing outcome"
    );
}
