//! Restart semantics of the telemetry counters (explicit
//! reset-vs-accumulate contract):
//!
//! * engine-wide `SimStats` totals and the registry's `accumulate`
//!   counters keep counting across node restarts;
//! * per-node counters are `reset-on-restart`, dropping to zero with
//!   the node's incarnation recorded in `generation`;
//! * the restart itself is visible on the event bus as a `NodeRestart`
//!   event carrying the new generation.

use dbgp_core::DbgpConfig;
use dbgp_sim::Sim;
use dbgp_telemetry::{TraceKind, TraceRecorder};
use serde_json::Value;
use std::rc::Rc;

fn chain() -> Sim {
    let mut sim = Sim::new();
    let a = sim.add_node(DbgpConfig::gulf(1));
    let b = sim.add_node(DbgpConfig::gulf(2));
    let c = sim.add_node(DbgpConfig::gulf(3));
    sim.link(a, b, 10, false);
    sim.link(b, c, 10, false);
    sim.originate(a, "10.0.0.0/8".parse().unwrap());
    sim.run(1_000_000);
    sim
}

#[test]
fn node_counters_reset_on_restart_while_engine_totals_accumulate() {
    let mut sim = chain();
    let before_node = sim.node_counters(1);
    let before_stats = sim.stats();
    assert!(before_node.messages_in > 0, "the transit node heard updates");
    assert_eq!(before_node.generation, 0);

    sim.restart_node(1);
    // Immediately after the restart the node's counters are zeroed and
    // stamped with the new incarnation...
    let at_restart = sim.node_counters(1);
    assert_eq!(at_restart.generation, 1);
    assert_eq!(at_restart.messages_in, 0);
    assert_eq!(at_restart.best_changes, 0);

    sim.run(2_000_000);
    let after_node = sim.node_counters(1);
    let after_stats = sim.stats();
    // ...then count only post-restart activity, while the engine-wide
    // totals kept accumulating through the restart.
    assert_eq!(after_node.generation, 1);
    assert!(after_node.messages_in > 0, "re-convergence traffic counted");
    assert!(after_node.messages_in < after_stats.messages, "not the all-time total");
    assert!(after_stats.messages > before_stats.messages);
    assert!(after_stats.best_changes >= before_stats.best_changes);
    // Untouched nodes keep their incarnation.
    assert_eq!(sim.node_counters(0).generation, 0);
    assert_eq!(sim.node_counters(2).generation, 0);
}

#[test]
fn snapshot_labels_semantics_and_generations() {
    let mut sim = chain();
    sim.restart_node(1);
    sim.run(2_000_000);
    let snap = sim.metrics_snapshot();

    // Engine counters are published as `accumulate`.
    let counters = snap.get("counters").unwrap().as_array().unwrap();
    assert!(counters
        .iter()
        .all(|c| c.get("semantics").and_then(Value::as_str) == Some("accumulate")));
    let restarts = counters
        .iter()
        .find(|c| c.get("name").and_then(Value::as_str) == Some("sim.node_restarts_total"))
        .expect("restart counter registered");
    assert_eq!(restarts.get("value").and_then(Value::as_u64), Some(1));

    // The registry generation advanced with the restart, and the node
    // rows carry per-node generations and the reset semantics label.
    assert_eq!(snap.get("generation").and_then(Value::as_u64), Some(1));
    let nodes = snap.get("nodes").unwrap().as_array().unwrap();
    let gen = |i: usize| nodes[i].get("generation").and_then(Value::as_u64).unwrap();
    assert_eq!((gen(0), gen(1), gen(2)), (0, 1, 0));
    assert!(nodes
        .iter()
        .all(|n| n.get("semantics").and_then(Value::as_str) == Some("reset-on-restart")));
}

#[test]
fn restart_is_a_traced_event_with_the_new_generation() {
    let mut sim = Sim::new();
    let rec = Rc::new(TraceRecorder::unbounded());
    sim.enable_telemetry(rec.clone());
    let a = sim.add_node(DbgpConfig::gulf(1));
    let b = sim.add_node(DbgpConfig::gulf(2));
    sim.link(a, b, 10, false);
    sim.originate(a, "10.0.0.0/8".parse().unwrap());
    sim.run(1_000_000);
    sim.restart_node(b);
    sim.restart_node(b);
    sim.run(2_000_000);

    let restarts: Vec<(u32, u64)> = rec
        .events()
        .iter()
        .filter_map(|e| match e.kind {
            TraceKind::NodeRestart { generation } => Some((e.node, generation)),
            _ => None,
        })
        .collect();
    assert_eq!(restarts, vec![(b as u32, 1), (b as u32, 2)]);
    // Session churn caused by the restart chains back to it.
    let restart_id =
        rec.events().iter().find(|e| matches!(e.kind, TraceKind::NodeRestart { .. })).unwrap().id;
    assert!(rec
        .events()
        .iter()
        .any(|e| e.parent == Some(restart_id) && matches!(e.kind, TraceKind::SessionFsm { .. })));
}
