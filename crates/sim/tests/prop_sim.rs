//! Property tests over randomized topologies: the simulated control
//! plane must always quiesce, produce loop-free forwarding state, and
//! be deterministic.

use dbgp_core::DbgpConfig;
use dbgp_sim::{Delivery, Packet, Sim};
use dbgp_wire::{Ipv4Addr, Ipv4Prefix};
use proptest::prelude::*;

/// A random connected undirected graph on `n` nodes: a random spanning
/// tree plus extra edges.
fn arb_graph() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (3usize..12).prop_flat_map(|n| {
        let tree = proptest::collection::vec(any::<u32>(), n - 1);
        let extras = proptest::collection::vec((0..n, 0..n), 0..n);
        (Just(n), tree, extras).prop_map(|(n, parents, extras)| {
            let mut edges: Vec<(usize, usize)> =
                (1..n).map(|v| (v, (parents[v - 1] as usize) % v)).collect();
            for (a, b) in extras {
                if a != b {
                    edges.push((a.min(b), a.max(b)));
                }
            }
            edges.sort();
            edges.dedup();
            (n, edges)
        })
    })
}

fn build(n: usize, edges: &[(usize, usize)]) -> Sim {
    let mut sim = Sim::new();
    for asn in 0..n {
        sim.add_node(DbgpConfig::gulf(asn as u32 + 1));
    }
    for &(a, b) in edges {
        sim.link(a, b, 5 + (a + b) as u64 % 7, false);
    }
    sim
}

fn prefix_for(node: usize) -> Ipv4Prefix {
    // Outside the simulator's own 10.0.0.0/8 node-address range.
    Ipv4Prefix::new(Ipv4Addr::new(172, 16, node as u8, 0), 24).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every topology quiesces within a generous message bound (no
    /// persistent oscillation, no loop storms).
    #[test]
    fn any_topology_quiesces((n, edges) in arb_graph(), origins in proptest::collection::vec(0usize..12, 1..4)) {
        let mut sim = build(n, &edges);
        for &origin in &origins {
            let origin = origin % n;
            sim.originate(origin, prefix_for(origin));
        }
        let stats = sim.run(120_000_000);
        // Bound: each origination can touch each node a bounded number
        // of times in a stable path-vector protocol.
        let bound = (origins.len() * n * n * 4 + 100) as u64;
        prop_assert!(stats.messages < bound, "{} messages for n={}", stats.messages, n);
    }

    /// After convergence, forwarding from every node to every origin
    /// delivers (connected graph) without looping, and the AS-level
    /// trace length is bounded by n.
    #[test]
    fn forwarding_is_loop_free((n, edges) in arb_graph(), origin_seed in 0usize..12) {
        let origin = origin_seed % n;
        let mut sim = build(n, &edges);
        sim.originate(origin, prefix_for(origin));
        sim.run(120_000_000);
        for start in 0..n {
            let packet = Packet::ipv4(Ipv4Addr::new(172, 16, origin as u8, 7), 1);
            let (delivery, trace) = sim.forward(start, packet);
            match delivery {
                Delivery::Delivered { at, .. } => {
                    prop_assert_eq!(at, origin);
                    prop_assert!(trace.len() <= n, "trace {:?}", trace);
                    // No repeated node: loop-freeness.
                    let mut sorted = trace.clone();
                    sorted.sort_unstable();
                    sorted.dedup();
                    prop_assert_eq!(sorted.len(), trace.len(), "loop in {:?}", trace);
                }
                other => prop_assert!(false, "undelivered from {start}: {other:?}"),
            }
        }
    }

    /// Identical construction sequences give identical statistics and
    /// identical routing tables.
    #[test]
    fn simulation_is_deterministic((n, edges) in arb_graph(), origin_seed in 0usize..12) {
        let origin = origin_seed % n;
        let run_once = || {
            let mut sim = build(n, &edges);
            sim.originate(origin, prefix_for(origin));
            let stats = sim.run(120_000_000);
            let tables: Vec<Vec<String>> = (0..n)
                .map(|node| {
                    sim.speaker(node)
                        .routes()
                        .map(|(p, chosen)| format!("{p} {:?} {}", chosen.neighbor, chosen.ia))
                        .collect()
                })
                .collect();
            (stats, tables)
        };
        prop_assert_eq!(run_once(), run_once());
    }

    /// Link churn pushes mutated IAs — new path vectors, hence new
    /// encode-cache generations — through every node's Adj-RIB-Out
    /// encode cache. The cache must be invisible to routing: identical
    /// runs give identical statistics (including the cache counters)
    /// and identical FIBs, and reachability heals once the flapped link
    /// is restored.
    #[test]
    fn encode_cache_churn_is_deterministic_and_heals(
        (n, edges) in arb_graph(),
        origins in proptest::collection::vec(0usize..12, 1..3),
        flap_pick in any::<u32>(),
    ) {
        let run_once = || {
            let mut sim = build(n, &edges);
            for &o in &origins {
                sim.originate(o % n, prefix_for(o % n));
            }
            sim.run(120_000_000);
            let (a, b) = edges[flap_pick as usize % edges.len()];
            sim.fail_link(a, b);
            sim.run(360_000_000);
            sim.restore_link(a, b);
            let stats = sim.run(900_000_000);
            let fibs: Vec<_> = (0..n).map(|node| sim.fib(node).clone()).collect();
            (stats, fibs)
        };
        let (stats, fibs) = run_once();
        // The flapped link is back: the graph is connected again, so
        // every origin must be in every node's FIB.
        for &o in &origins {
            let o = o % n;
            for (node, fib) in fibs.iter().enumerate() {
                prop_assert!(
                    fib.contains_key(&prefix_for(o)),
                    "node {node} lost {} after heal", prefix_for(o)
                );
            }
        }
        // Byte-determinism: a cache-cold rerun reproduces everything,
        // cache counters included.
        prop_assert_eq!((stats, fibs), run_once());
    }

    /// Withdraw-then-reannounce always restores reachability.
    #[test]
    fn withdraw_reannounce_restores((n, edges) in arb_graph(), origin_seed in 0usize..12) {
        let origin = origin_seed % n;
        let mut sim = build(n, &edges);
        let prefix = prefix_for(origin);
        sim.originate(origin, prefix);
        sim.run(120_000_000);
        sim.withdraw(origin, prefix);
        sim.run(240_000_000);
        for node in 0..n {
            if node != origin {
                prop_assert!(sim.speaker(node).best(&prefix).is_none(), "stale route at {node}");
            }
        }
        sim.originate(origin, prefix);
        sim.run(480_000_000);
        for node in 0..n {
            prop_assert!(
                node == origin || sim.speaker(node).best(&prefix).is_some(),
                "no route restored at {node}"
            );
        }
    }
}
