//! The calendar queue's determinism contract, property-tested against
//! a reference model: a plain `BinaryHeap` over `(time, seq)` keys with
//! the same clock/clamping semantics the engine documents. Whatever
//! interleaving of schedules, pops, horizon drains and mid-stream day
//! width retunes the generator produces — including same-timestamp ties
//! and events exactly on the drain boundary — the calendar queue must
//! emit the bit-identical pop sequence.

use dbgp_sim::{EventQueue, SimTime};
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The executable spec: exact `(at, seq)` order, clock advanced by
/// pops, `schedule_at` clamped to never run backwards.
#[derive(Default)]
struct RefModel {
    heap: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    now: SimTime,
    seq: u64,
}

impl RefModel {
    fn schedule_at(&mut self, at: SimTime, payload: u32) {
        let at = at.max(self.now);
        self.heap.push(Reverse((at, self.seq, payload)));
        self.seq += 1;
    }

    fn pop(&mut self) -> Option<(SimTime, u32)> {
        let Reverse((at, _seq, payload)) = self.heap.pop()?;
        self.now = at;
        Some((at, payload))
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((at, _, _))| *at)
    }

    fn drain_upto(&mut self, horizon: SimTime, out: &mut Vec<(SimTime, u32)>) {
        while let Some(at) = self.peek_time() {
            if at > horizon {
                break;
            }
            out.push(self.pop().expect("peeked"));
        }
    }
}

/// One generated operation against both queues. The numeric argument is
/// interpreted per opcode; payloads are the op index, so every pop is
/// traceable to the schedule that produced it.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Absolute schedule near the clock (dense ties, boundary hits).
    At(u16),
    /// Relative schedule with a small delay (the common case).
    Delay(u8),
    /// Absolute schedule far in the future (fault-plan idiom; stresses
    /// the sparse-jump path).
    Far(u16),
    Pop,
    /// Drain everything up to `now + delta` (window idiom; `delta` may
    /// be 0, making the horizon land exactly on pending events).
    Drain(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u16>().prop_map(|v| Op::At(v % 257)),
        any::<u8>().prop_map(|v| Op::Delay(v % 17)),
        any::<u16>().prop_map(Op::Far),
        Just(Op::Pop),
        any::<u8>().prop_map(|v| Op::Drain(v % 33)),
    ]
}

/// Run one op sequence at a given day-width shift, retuning to
/// `mid_shift` halfway through, and assert every observable output
/// matches the reference model exactly.
fn check(ops: &[Op], shift: u32, mid_shift: u32) -> proptest::test_runner::TestCaseResult {
    let mut q: EventQueue<u32> = EventQueue::new();
    q.set_width_shift(shift);
    let mut model = RefModel::default();
    let mut q_out: Vec<(SimTime, u32)> = Vec::new();
    let mut m_out: Vec<(SimTime, u32)> = Vec::new();
    for (i, &op) in ops.iter().enumerate() {
        if i == ops.len() / 2 {
            // A mid-stream retune rebuckets every pending event; the
            // model (which has no buckets) is untouched, so any
            // width-dependent ordering shows up immediately.
            q.set_width_shift(mid_shift);
        }
        let payload = i as u32;
        match op {
            Op::At(v) => {
                let at = model.now + v as SimTime;
                q.schedule_at(at, payload);
                model.schedule_at(at, payload);
            }
            Op::Delay(d) => {
                q.schedule(d as SimTime, payload);
                model.schedule_at(model.now + d as SimTime, payload);
            }
            Op::Far(v) => {
                let at = model.now + 50_000 + v as SimTime * 9973;
                q.schedule_at(at, payload);
                model.schedule_at(at, payload);
            }
            Op::Pop => {
                prop_assert_eq!(q.pop(), model.pop(), "pop diverged at op {}", i);
            }
            Op::Drain(delta) => {
                let horizon = model.now + delta as SimTime;
                q_out.clear();
                m_out.clear();
                q.drain_upto(horizon, &mut q_out);
                model.drain_upto(horizon, &mut m_out);
                prop_assert_eq!(&q_out, &m_out, "drain diverged at op {}", i);
            }
        }
        prop_assert_eq!(q.peek_time(), model.peek_time(), "peek diverged at op {}", i);
        prop_assert_eq!(q.now(), model.now, "clock diverged at op {}", i);
        prop_assert_eq!(q.len(), model.heap.len(), "len diverged at op {}", i);
    }
    // Final full drain: everything still queued pops in identical order.
    loop {
        let (a, b) = (q.pop(), model.pop());
        prop_assert_eq!(&a, &b, "final drain diverged");
        if a.is_none() {
            break;
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The calendar queue bit-matches the heap model at several day
    /// widths (including degenerate 1-tick days and days so wide the
    /// whole run fits in one), with a retune mid-sequence.
    #[test]
    fn calendar_queue_matches_binary_heap(
        ops in proptest::collection::vec(arb_op(), 1..250),
        pair in (0usize..7, 0usize..7),
    ) {
        const SHIFTS: [u32; 7] = [0, 1, 3, 4, 8, 14, 20];
        let (a, b) = (SHIFTS[pair.0], SHIFTS[pair.1]);
        check(&ops, a, b)?;
        check(&ops, b, a)?;
    }
}
