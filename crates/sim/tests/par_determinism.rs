//! The Tier B and Tier C contract: the lookahead-windowed parallel
//! engine and the sharded per-queue engine are observationally
//! identical to the serial engine — bit-identical statistics, metrics
//! snapshots, per-node counters, Loc-RIBs, FIBs and churn records, at
//! every intermediate checkpoint of a churning run, at any thread and
//! shard count.
//!
//! The scenario mirrors the `waxman50_churn` benchmark: gulf speakers
//! on a 50-AS Waxman graph with heterogeneous link delays and seeded
//! link perturbation models, driven through a flap storm and node
//! restarts. Checkpointing after every driver step pins the entire
//! event stream, not just the final state: any divergence in event
//! ordering shows up as a diverging stat or RIB at the next checkpoint.

use dbgp_core::{render_path, DbgpConfig};
use dbgp_sim::{LinkModel, Sim};
use dbgp_topology::fixtures::waxman_50;
use dbgp_wire::Ipv4Prefix;
use proptest::proptest;
use proptest::test_runner::ProptestConfig;

fn origin_prefix(node: usize) -> Ipv4Prefix {
    format!("10.{}.{}.0/24", (node >> 8) & 0xff, node & 0xff).parse().unwrap()
}

/// Build the churn scenario simulation (not yet converged).
fn build(seed: u64, threads: usize) -> (Sim, Vec<(usize, usize)>) {
    build_sharded(seed, threads, 1)
}

/// Build with an explicit shard count (1 = the unsharded router).
fn build_sharded(seed: u64, threads: usize, shards: usize) -> (Sim, Vec<(usize, usize)>) {
    build_partitioned(seed, threads, shards, false)
}

fn build_partitioned(
    seed: u64,
    threads: usize,
    shards: usize,
    weighted: bool,
) -> (Sim, Vec<(usize, usize)>) {
    let graph = waxman_50(seed);
    let mut sim = Sim::new();
    sim.set_threads(threads);
    sim.set_seed(seed ^ 0xD1CE);
    sim.reserve_events(2 * graph.edge_count());
    for node in 0..graph.len() {
        sim.add_node(DbgpConfig::gulf(node as u32 + 1));
    }
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for a in 0..graph.len() {
        for adj in graph.neighbors(a) {
            if a < adj.neighbor {
                edges.push((a, adj.neighbor));
            }
        }
    }
    edges.sort_unstable();
    for &(a, b) in &edges {
        // Heterogeneous delays exercise non-trivial lookahead windows.
        sim.link(a, b, 5 + ((a + b) % 7) as u64, false);
        // Every third link gets a perturbation model so the RNG draw
        // order in the commit phase is load-bearing.
        match (a + b) % 3 {
            0 => sim.set_link_model(a, b, LinkModel::reliable().jitter(((a + b) % 5) as u64)),
            1 => sim.set_link_model(a, b, LinkModel::reliable().duplicate_ppm(90_000)),
            _ => {}
        }
    }
    if shards > 1 {
        // After the topology exists, so the partitioner sees every link.
        if weighted {
            sim.set_shards_weighted(shards);
        } else {
            sim.set_shards(shards);
        }
        assert_eq!(sim.shards(), shards);
        assert!(sim.edge_cut_fraction() < 1.0);
    }
    for node in 0..graph.len() {
        sim.originate(node, origin_prefix(node));
    }
    (sim, edges)
}

/// Everything observable about a simulation, rendered to one comparable
/// string.
fn fingerprint(sim: &mut Sim) -> String {
    let mut out = String::new();
    out.push_str(&format!("stats={:?}\n", sim.stats()));
    out.push_str(&format!(
        "now={} processed={} pending={}\n",
        sim.now(),
        sim.events_processed(),
        sim.pending_events()
    ));
    out.push_str(&format!("metrics={}\n", serde_json::to_string(&sim.metrics_snapshot()).unwrap()));
    for node in 0..sim.node_count() {
        out.push_str(&format!("counters[{node}]={:?}\n", sim.node_counters(node)));
        out.push_str(&format!("fib[{node}]={:?}\n", sim.fib(node)));
        for (prefix, chosen) in sim.speaker(node).routes() {
            out.push_str(&format!(
                "rib[{node}][{prefix}]: via={:?} path={}\n",
                chosen.neighbor,
                render_path(&chosen.ia)
            ));
        }
    }
    out.push_str(&format!("churn={:?}\n", sim.churn()));
    out
}

/// Drive the churn scenario, collecting a fingerprint after every run
/// segment. The driver sequence (originate, flaps, restarts) is a pure
/// function of the seed, so two instances at different thread counts
/// see identical inputs.
fn drive(seed: u64, threads: usize) -> Vec<String> {
    drive_sharded(seed, threads, 1)
}

fn drive_sharded(seed: u64, threads: usize, shards: usize) -> Vec<String> {
    drive_partitioned(seed, threads, shards, false)
}

fn drive_weighted(seed: u64, threads: usize, shards: usize) -> Vec<String> {
    drive_partitioned(seed, threads, shards, true)
}

fn drive_partitioned(seed: u64, threads: usize, shards: usize, weighted: bool) -> Vec<String> {
    let (mut sim, edges) = build_partitioned(seed, threads, shards, weighted);
    assert_eq!(sim.threads(), threads);
    let mut checkpoints = Vec::new();
    sim.run(20_000);
    checkpoints.push(fingerprint(&mut sim));
    for round in 0..6u64 {
        let (a, b) = edges[(seed as usize + round as usize * 11) % edges.len()];
        sim.fail_link(a, b);
        sim.run(sim.now() + 400);
        sim.restore_link(a, b);
        sim.run(sim.now() + 1200);
        checkpoints.push(fingerprint(&mut sim));
    }
    for &node in &[3usize, 17, 41] {
        sim.restart_node(node % sim.node_count());
        sim.run(sim.now() + 3000);
        checkpoints.push(fingerprint(&mut sim));
    }
    sim.run(60_000);
    checkpoints.push(fingerprint(&mut sim));
    // The per-shard commit accounting must tile the global count.
    let per_shard = sim.shard_event_counts();
    assert_eq!(per_shard.len(), shards.max(1));
    assert_eq!(per_shard.iter().sum::<u64>(), sim.events_processed());
    if shards > 1 {
        assert!(
            per_shard.iter().filter(|&&n| n > 0).count() >= 2,
            "sharded run committed all events through one shard: {per_shard:?}"
        );
    }
    checkpoints
}

fn assert_identical(seed: u64, threads: usize) {
    let serial = drive(seed, 1);
    let parallel = drive(seed, threads);
    assert_eq!(serial.len(), parallel.len());
    for (i, (s, p)) in serial.iter().zip(parallel.iter()).enumerate() {
        assert_eq!(s, p, "seed {seed}: serial vs {threads}-thread runs diverged at checkpoint {i}");
    }
}

#[test]
fn two_threads_bit_identical_on_waxman_50_churn() {
    assert_identical(42, 2);
}

#[test]
fn four_threads_bit_identical_on_waxman_50_churn() {
    assert_identical(42, 4);
}

fn assert_sharded_identical(seed: u64, threads: usize, shards: usize) {
    let serial = drive(seed, 1);
    let sharded = drive_sharded(seed, threads, shards);
    assert_eq!(serial.len(), sharded.len());
    for (i, (s, p)) in serial.iter().zip(sharded.iter()).enumerate() {
        assert_eq!(
            s, p,
            "seed {seed}: serial vs {threads}-thread/{shards}-shard runs diverged at checkpoint {i}"
        );
    }
}

/// The Tier C contract: the sharded engine is bit-identical to the
/// serial engine at every (thread, shard) combination, including
/// shards without a pool (the router's serial k-way merge) and more
/// shards than threads.
#[test]
fn sharded_engine_bit_identical_on_waxman_50_churn() {
    assert_sharded_identical(42, 1, 4); // router only, serial engine
    assert_sharded_identical(42, 2, 2);
    assert_sharded_identical(42, 2, 4); // more shards than threads
    assert_sharded_identical(42, 4, 3);
}

/// The degree-weighted partition (`Sim::set_shards_weighted`) changes
/// only *which shard* commits each event, never the results: a full
/// churn run under it stays bit-identical to the serial engine.
#[test]
fn weighted_partition_bit_identical_on_waxman_50_churn() {
    let seed = 42;
    let serial = drive(seed, 1);
    let weighted = drive_weighted(seed, 2, 4);
    assert_eq!(serial.len(), weighted.len());
    for (i, (s, p)) in serial.iter().zip(weighted.iter()).enumerate() {
        assert_eq!(s, p, "serial vs weighted-partition runs diverged at checkpoint {i}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Across seeds: serial vs 2- and 4-thread runs never diverge.
    #[test]
    fn windowed_engine_matches_serial_across_seeds(seed in 0u64..1000) {
        assert_identical(seed, 2);
        assert_identical(seed, 4);
    }
}

/// Telemetry forces the serial engine (the handles are not
/// thread-safe); `run` must fall back rather than race or panic.
#[test]
fn telemetry_forces_serial_fallback() {
    use dbgp_telemetry::TraceRecorder;
    let (mut sim, _) = build(1, 4);
    sim.enable_telemetry(std::rc::Rc::new(TraceRecorder::unbounded()));
    let stats = sim.run(20_000);
    assert!(stats.messages > 0);
}
