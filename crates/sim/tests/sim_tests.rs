//! End-to-end simulator tests, including the paper's §6.1 deployment
//! experiments (Figure 8): Wiser and Pathlet Routing deployed across a
//! BGP gulf over D-BGP.

use dbgp_core::{DbgpConfig, DbgpSpeaker, IslandConfig};
use dbgp_protocols::wiser::{self, WiserModule};
use dbgp_protocols::{miro, MiroOffer, MiroPortal, MiroRequest, Pathlet, PathletModule};
use dbgp_sim::{Delivery, Packet, Service, Sim};
use dbgp_wire::{Ipv4Addr, Ipv4Prefix, IslandId, ProtocolId};

fn p(s: &str) -> Ipv4Prefix {
    s.parse().unwrap()
}

#[test]
fn chain_converges_and_installs_fibs() {
    let mut sim = Sim::new();
    let nodes: Vec<_> = (1..=4).map(|asn| sim.add_node(DbgpConfig::gulf(asn))).collect();
    for w in nodes.windows(2) {
        sim.link(w[0], w[1], 10, false);
    }
    sim.originate(nodes[0], p("128.6.0.0/16"));
    let stats = sim.run(1_000_000);
    assert!(stats.messages >= 3, "at least one hop-by-hop wave");
    for (i, &node) in nodes.iter().enumerate().skip(1) {
        let best = sim.speaker(node).best(&p("128.6.0.0/16")).expect("route installed");
        assert_eq!(best.ia.hop_count(), i, "hop count grows along the chain");
        let next = sim.fib(node).get(&p("128.6.0.0/16")).unwrap();
        assert_eq!(*next, Some(nodes[i - 1]), "FIB points toward the origin");
    }
}

#[test]
fn fanout_encodes_once_and_reuses_cached_bytes() {
    // Star: the hub re-advertises the origin leaf's IA to every other
    // leaf. The chosen IA is one interned Arc, so the hub's encode
    // cache serializes it once and hands out the shared bytes after
    // that — fan-out minus one deliveries are cache hits.
    let mut sim = Sim::new();
    let hub = sim.add_node(DbgpConfig::gulf(1));
    let leaves: Vec<_> = (2..=5).map(|asn| sim.add_node(DbgpConfig::gulf(asn))).collect();
    for &leaf in &leaves {
        sim.link(hub, leaf, 10, false);
    }
    sim.originate(leaves[0], p("128.6.0.0/16"));
    let stats = sim.run(60_000_000);
    assert_eq!(sim.pending_events(), 0, "quiesces");
    for &leaf in &leaves {
        assert!(
            leaf == leaves[0] || sim.speaker(leaf).best(&p("128.6.0.0/16")).is_some(),
            "leaf {leaf} learned the route"
        );
    }
    // Hub fans out to 3 non-chosen leaves: 1 fresh encode + 2 reuses.
    assert!(stats.encode_cache_hits >= 2, "fan-out reused cached bytes: {stats:?}");
    assert!(
        stats.updates_encoded + stats.encode_cache_hits >= stats.messages,
        "every message is either freshly encoded or a cache reuse: {stats:?}"
    );
}

#[test]
fn data_plane_follows_control_plane() {
    let mut sim = Sim::new();
    let nodes: Vec<_> = (1..=4).map(|asn| sim.add_node(DbgpConfig::gulf(asn))).collect();
    for w in nodes.windows(2) {
        sim.link(w[0], w[1], 10, false);
    }
    sim.originate(nodes[0], p("128.6.0.0/16"));
    sim.run(1_000_000);
    let packet = Packet::ipv4(Ipv4Addr::new(128, 6, 1, 1), 42);
    let (delivery, trace) = sim.forward(nodes[3], packet);
    assert_eq!(trace, vec![nodes[3], nodes[2], nodes[1], nodes[0]]);
    match delivery {
        Delivery::Delivered { at, remaining } => {
            assert_eq!(at, nodes[0]);
            assert!(remaining.is_empty());
        }
        other => panic!("expected delivery, got {other:?}"),
    }
}

#[test]
fn no_route_is_reported() {
    let mut sim = Sim::new();
    let a = sim.add_node(DbgpConfig::gulf(1));
    let b = sim.add_node(DbgpConfig::gulf(2));
    sim.link(a, b, 10, false);
    sim.run(1_000);
    let (delivery, _) = sim.forward(a, Packet::ipv4(Ipv4Addr::new(99, 0, 0, 1), 0));
    assert!(matches!(delivery, Delivery::NoRoute { .. }));
}

#[test]
fn withdrawal_clears_routes_downstream() {
    let mut sim = Sim::new();
    let nodes: Vec<_> = (1..=3).map(|asn| sim.add_node(DbgpConfig::gulf(asn))).collect();
    for w in nodes.windows(2) {
        sim.link(w[0], w[1], 10, false);
    }
    sim.originate(nodes[0], p("10.0.0.0/8"));
    sim.run(1_000_000);
    assert!(sim.speaker(nodes[2]).best(&p("10.0.0.0/8")).is_some());
    sim.withdraw(nodes[0], p("10.0.0.0/8"));
    sim.run(2_000_000);
    assert!(sim.speaker(nodes[2]).best(&p("10.0.0.0/8")).is_none());
    assert!(sim.fib(nodes[2]).get(&p("10.0.0.0/8")).is_none());
}

#[test]
fn ring_converges_without_loops() {
    let mut sim = Sim::new();
    let nodes: Vec<_> = (1..=5).map(|asn| sim.add_node(DbgpConfig::gulf(asn))).collect();
    for i in 0..nodes.len() {
        sim.link(nodes[i], nodes[(i + 1) % nodes.len()], 10, false);
    }
    sim.originate(nodes[0], p("192.0.2.0/24"));
    let stats = sim.run(10_000_000);
    assert!(stats.messages < 500, "must quiesce, not loop (saw {})", stats.messages);
    // Every node picks its shortest side of the ring.
    for (i, &node) in nodes.iter().enumerate() {
        if i == 0 {
            continue;
        }
        let best = sim.speaker(node).best(&p("192.0.2.0/24")).unwrap();
        let expected = i.min(nodes.len() - i);
        assert_eq!(best.ia.hop_count(), expected, "node {i} takes the short way around");
    }
}

#[test]
fn determinism_same_trace_twice() {
    let build = || {
        let mut sim = Sim::new();
        let nodes: Vec<_> = (1..=6).map(|asn| sim.add_node(DbgpConfig::gulf(asn))).collect();
        for i in 0..nodes.len() {
            for j in (i + 1)..nodes.len() {
                if (i + j) % 2 == 0 {
                    sim.link(nodes[i], nodes[j], 5 + (i as u64), false);
                }
            }
        }
        sim.originate(nodes[0], p("10.0.0.0/8"));
        sim.originate(nodes[5], p("192.168.0.0/16"));
        sim.run(10_000_000)
    };
    assert_eq!(build(), build(), "identical construction gives identical stats");
}

/// The Figure-8 topology: Island A (D, A1, A2/A3 borders) — a two-AS BGP
/// gulf — Island B (S). Returns (sim, island A nodes, gulf nodes, s).
///
/// Topology (paper Figure 8):
/// ```text
///   D(A1) - A2 - G1 - B1(S)      upper path (short)
///    \      A3 -  G2 - B1        lower path (long, via A3's second exit)
/// ```
/// We model it as: D - A2 - G1 - S and D - A3 - G2a - G2b - S so the two
/// paths have different lengths, as in the Wiser test where "the longer
/// path to AS D has a higher cost than the shorter one" is inverted.
struct Figure8 {
    sim: Sim,
    d: usize,
    a3: usize,
    g1: usize,
    s: usize,
}

fn figure8_wiser() -> Figure8 {
    let island_a = IslandConfig { id: IslandId(900), abstraction: false };
    let island_b = IslandConfig { id: IslandId(901), abstraction: false };
    let mut sim = Sim::new();
    let d = sim.add_node(DbgpConfig::island_member(10, island_a, ProtocolId::WISER));
    let a2 = sim.add_node(DbgpConfig::island_member(11, island_a, ProtocolId::WISER));
    let a3 = sim.add_node(DbgpConfig::island_member(12, island_a, ProtocolId::WISER));
    let g1 = sim.add_node(DbgpConfig::gulf(4000));
    let g2a = sim.add_node(DbgpConfig::gulf(4001));
    let g2b = sim.add_node(DbgpConfig::gulf(4002));
    let s = sim.add_node(DbgpConfig::island_member(20, island_b, ProtocolId::WISER));

    // Wiser modules: the short path (via A2/G1) is made expensive, the
    // long path (via A3/G2a/G2b) cheap — the Figure-1 inversion.
    let portal = |n: u8| Ipv4Addr::new(163, 42, 5, n);
    sim.speaker_mut(d).register_module(Box::new(WiserModule::new(IslandId(900), portal(0), 5)));
    sim.speaker_mut(a2).register_module(Box::new(WiserModule::new(
        IslandId(900),
        portal(0),
        500, // expensive exit
    )));
    sim.speaker_mut(a3).register_module(Box::new(WiserModule::new(
        IslandId(900),
        portal(0),
        10, // cheap exit
    )));
    sim.speaker_mut(s).register_module(Box::new(WiserModule::new(IslandId(901), portal(1), 5)));

    sim.link(d, a2, 10, true);
    sim.link(d, a3, 10, true);
    sim.link(a2, g1, 10, false);
    sim.link(a3, g2a, 10, false);
    sim.link(g2a, g2b, 10, false);
    sim.link(g1, s, 10, false);
    sim.link(g2b, s, 10, false);
    let _ = (a2, g2a, g2b);
    Figure8 { sim, d, a3, g1, s }
}

#[test]
fn figure8_wiser_source_sees_costs_and_picks_cheap_long_path() {
    let mut f = figure8_wiser();
    f.sim.originate(f.d, p("128.6.0.0/16"));
    f.sim.run(10_000_000);

    let best = f.sim.speaker(f.s).best(&p("128.6.0.0/16")).expect("S has a route");
    // (1) The §6.1 check: "we verified that AS S saw these path costs".
    let cost = wiser::path_cost(&best.ia).expect("Wiser cost visible across the gulf");
    // (2) The cheap-but-long path must win despite BGP preferring short.
    assert_eq!(best.ia.hop_count(), 4, "long path via A3/G2a/G2b chosen");
    assert!(cost < 500, "chosen cost ({cost}) must be the cheap exit's");
    // (3) The cost-exchange portal crossed the gulf too.
    let portals = wiser::portals(&best.ia);
    assert!(
        portals.iter().any(|(island, _)| *island == IslandId(900)),
        "island A's portal advertised: {portals:?}"
    );
    // (4) Under plain BGP the short path would have been chosen — check
    // the gulf AS (which runs BGP selection) did pick the short side.
    let gulf_best = f.sim.speaker(f.g1).best(&p("128.6.0.0/16")).unwrap();
    assert_eq!(gulf_best.ia.hop_count(), 2, "gulf ASes still use BGP rules");
}

#[test]
fn figure8_wiser_cost_exchange_calibrates_scaling() {
    let mut f = figure8_wiser();
    f.sim.originate(f.d, p("128.6.0.0/16"));
    f.sim.run(10_000_000);
    // S sends its cost report to island A's portal across the gulf.
    let report = {
        let speaker = f.sim.speaker_mut(f.s);
        let asn = speaker.asn();
        let module = speaker.module_mut(ProtocolId::WISER).unwrap();
        // Downcast-free: produce the report through the Wiser-specific
        // API by rebuilding from the module trait is not possible, so we
        // reconstruct it from what S received: one path, cheap cost.
        let _ = module;
        let best = f.sim.speaker(f.s).best(&p("128.6.0.0/16")).unwrap();
        let cost = wiser::path_cost(&best.ia).unwrap();
        dbgp_protocols::CostReport { reporter: asn, sum: cost * 2, count: 1 }
    };
    let portal_addr = Ipv4Addr::new(163, 42, 5, 0);
    f.sim.register_service(f.a3, portal_addr, Service::WiserCostExchange);
    f.sim.oob_send(f.s, portal_addr, report.to_bytes());
    f.sim.run(20_000_000);
    let stats = f.sim.stats();
    assert_eq!(stats.oob_requests, 1, "portal served the report");
}

#[test]
fn figure8_pathlets_source_sees_all_five() {
    // Pathlet deployment across the gulf (§6.1): island A disseminates
    // four one-hop pathlets internally; border AS A2 composes a two-hop
    // pathlet and exports it with its remaining one-hop pathlets; border
    // AS A3 exports its single one-hop pathlet. AS S must see all five
    // pathlets that should be advertised to it.
    let island_a = IslandConfig { id: IslandId(900), abstraction: false };
    let island_b = IslandConfig { id: IslandId(901), abstraction: false };
    let mut sim = Sim::new();
    let d = sim.add_node(DbgpConfig::island_member(10, island_a, ProtocolId::BGP));
    let a2 = sim.add_node(DbgpConfig::island_member(11, island_a, ProtocolId::BGP));
    let a3 = sim.add_node(DbgpConfig::island_member(12, island_a, ProtocolId::BGP));
    let g1 = sim.add_node(DbgpConfig::gulf(4000));
    let g2 = sim.add_node(DbgpConfig::gulf(4001));
    let s = sim.add_node(DbgpConfig::island_member(20, island_b, ProtocolId::BGP));

    let dest = p("128.6.0.0/16");
    // Island A's intra-island pathlets (one-hop): d->a2 (fid 1),
    // d->a3 (fid 2), a2->dest (fid 3), a3->dest (fid 4). A2 additionally
    // composes two-hop fid 5 = (a2 -> d -> dest)? The paper composes two
    // of the one-hop pathlets into a two-hop pathlet at A2; we model A2
    // exporting: composed two-hop pathlet (fid 5) + its remaining
    // one-hop pathlets (fids 1, 3); A3 exports its one-hop (fid 4) and
    // shares fid 2. Total distinct pathlets reaching S: 5.
    let a2_exports = vec![
        Pathlet::between(1, 100, 111),  // d -> a2
        Pathlet::to_dest(3, 111, dest), // a2 -> dest
        Pathlet::to_dest(5, 100, dest), // composed two-hop
    ];
    let a3_exports = vec![
        Pathlet::between(2, 100, 112),  // d -> a3
        Pathlet::to_dest(4, 112, dest), // a3 -> dest
    ];
    sim.speaker_mut(a2).register_module(Box::new(PathletModule::new(
        IslandId(900),
        111,
        a2_exports,
    )));
    sim.speaker_mut(a3).register_module(Box::new(PathletModule::new(
        IslandId(900),
        112,
        a3_exports,
    )));
    sim.speaker_mut(s).register_module(Box::new(PathletModule::new(IslandId(901), 200, vec![])));

    sim.link(d, a2, 10, true);
    sim.link(d, a3, 10, true);
    sim.link(a2, g1, 10, false);
    sim.link(a3, g2, 10, false);
    sim.link(g1, s, 10, false);
    sim.link(g2, s, 10, false);

    sim.originate(d, dest);
    sim.run(10_000_000);

    // Force S's pathlet module to ingest both gulf-crossing IAs: they are
    // in its IA DB; selection ingests candidates.
    let iadb_count = sim.speaker(s).iadb().candidates(&dest).count();
    assert_eq!(iadb_count, 2, "S heard the route via both gulf paths");
    // Drive selection once more via the module to materialize learning.
    {
        let speaker: &mut DbgpSpeaker = sim.speaker_mut(s);
        let outs = speaker.set_active_protocol(ProtocolId::PATHLET);
        let _ = outs;
    }
    let speaker = sim.speaker_mut(s);
    let module = speaker.module_mut(ProtocolId::PATHLET).unwrap();
    // Downcast via the protocols API: we re-ingest through the public
    // translation function instead.
    let _ = module;
    let mut total = std::collections::BTreeSet::new();
    for (_, ia) in sim.speaker(s).iadb().candidates(&dest) {
        for ad in dbgp_protocols::pathlet::ingress_translate(ia) {
            total.insert(ad.pathlet.fid);
        }
    }
    assert_eq!(
        total.into_iter().collect::<Vec<_>>(),
        vec![1, 2, 3, 4, 5],
        "AS S saw all five pathlets (the §6.1 verification)"
    );
}

#[test]
fn miro_discovery_negotiation_and_tunnel() {
    // Figure 2 over D-BGP (§3.4's four steps): transit island T discovers
    // island M's MIRO portal via a passed-through island descriptor,
    // negotiates an alternate path out-of-band, and tunnels traffic.
    let mut sim = Sim::new();
    let dst_prefix = p("131.4.0.0/24");
    let m_island = IslandConfig { id: IslandId(1007), abstraction: false };
    let d = sim.add_node(DbgpConfig::gulf(1));
    let m = {
        let cfg = DbgpConfig::island_member(2, m_island, ProtocolId::BGP);
        sim.add_node(cfg)
    };
    let gulf = sim.add_node(DbgpConfig::gulf(4000));
    let t = sim.add_node(DbgpConfig::gulf(3));
    let portal_addr = Ipv4Addr::new(173, 82, 2, 0);
    sim.speaker_mut(m)
        .register_module(Box::new(dbgp_protocols::MiroModule::new(IslandId(1007), portal_addr)));

    sim.link(d, m, 10, false);
    sim.link(m, gulf, 10, false);
    sim.link(gulf, t, 10, false);
    sim.originate(d, dst_prefix);
    // M also advertises reachability for its own tunnel endpoint.
    let m_host = Ipv4Prefix::new(sim.node_addr(m), 32).unwrap();
    sim.originate(m, m_host);
    sim.run(10_000_000);

    // Step 1-2: T discovers the portal from the passed-through IA.
    let best = sim.speaker(t).best(&dst_prefix).unwrap();
    let portals = miro::find_portals(&best.ia);
    assert_eq!(portals, vec![(IslandId(1007), portal_addr)]);

    // Step 3: negotiate out-of-band.
    let mut portal = MiroPortal::new();
    portal.offer(
        dst_prefix,
        MiroOffer { path: vec![2, 1], price: 100, tunnel_endpoint: sim.node_addr(m) },
    );
    sim.register_service(m, portal_addr, Service::Miro(portal));
    let request = MiroRequest { dst: dst_prefix, max_price: 500 };
    sim.oob_send(t, portal_addr, request.to_bytes());
    sim.run(20_000_000);
    let inbox = sim.oob_inbox(t);
    assert_eq!(inbox.len(), 1, "offer received");
    let offer = MiroOffer::from_bytes(&inbox[0].1).unwrap();
    assert_eq!(offer.price, 100);

    // Step 4: tunnel traffic to the island, which decapsulates and
    // forwards to the true destination.
    let inner = Packet::ipv4(Ipv4Addr::new(131, 4, 0, 1), 7);
    let tunneled = inner.encap_ipv4(offer.tunnel_endpoint);
    let (delivery, trace) = sim.forward(t, tunneled);
    match delivery {
        Delivery::Delivered { at, remaining } => {
            assert_eq!(at, d, "inner packet reached the true destination");
            assert!(remaining.is_empty());
        }
        other => panic!("tunnel failed: {other:?}"),
    }
    assert!(trace.contains(&m), "traffic traversed the MIRO island");
}

#[test]
fn legacy_adjacency_drops_extra_fields() {
    let mut sim = Sim::new();
    let island = IslandConfig { id: IslandId(900), abstraction: false };
    let a = sim.add_node(DbgpConfig::island_member(1, island, ProtocolId::WISER));
    let b = sim.add_node(DbgpConfig::gulf(2));
    sim.speaker_mut(a).register_module(Box::new(WiserModule::new(
        IslandId(900),
        Ipv4Addr::new(1, 1, 1, 1),
        7,
    )));
    sim.link_with(a, b, 10, false, false); // legacy adjacency
    sim.originate(a, p("10.0.0.0/8"));
    sim.run(1_000_000);
    let best = sim.speaker(b).best(&p("10.0.0.0/8")).unwrap();
    assert!(wiser::path_cost(&best.ia).is_none(), "legacy peer got baseline-only IA");
}

#[test]
fn rejected_outputs_surface_island_loops() {
    // Direct speaker-level check that the sim's plumbing preserves
    // Rejected outputs: covered at the core layer, asserted here through
    // a two-node sim where B's own AS appears in a crafted IA.
    let mut sim = Sim::new();
    let a = sim.add_node(DbgpConfig::gulf(1));
    let b = sim.add_node(DbgpConfig::gulf(2));
    sim.link(a, b, 10, false);
    // A originates a prefix; B gets it; then A (maliciously) originates
    // an IA that already contains B's AS number — B must reject it.
    let mut evil = dbgp_wire::Ia::originate(p("66.0.0.0/8"), Ipv4Addr::new(6, 6, 6, 6));
    evil.prepend_as(2);
    sim.originate_ia(a, evil);
    sim.run(1_000_000);
    assert!(sim.speaker(b).best(&p("66.0.0.0/8")).is_none(), "loop rejected");
}
