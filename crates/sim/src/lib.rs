#![warn(missing_docs)]

//! A deterministic discrete-event network simulator hosting D-BGP
//! speakers — the workspace's substitute for the paper's MiniNeXT
//! emulation testbed (DESIGN.md §2).
//!
//! * [`engine`] — the time-ordered event queue with FIFO tie-breaking;
//! * [`sim`] — nodes (one AS = one [`dbgp_core::DbgpSpeaker`]), links
//!   with one-way delays, real wire-format control messages, the
//!   out-of-band service bus (Wiser cost-exchange portals, MIRO service
//!   portals, generic lookup services), and FIB maintenance;
//! * [`link`] — per-link perturbation models (seeded jitter, loss,
//!   duplication, corruption) and the deterministic [`link::SimRng`]
//!   that drives them, the substrate for `dbgp-chaos` fault injection;
//! * [`dataplane`] — packets with multi-network-protocol header stacks,
//!   IPv4 tunneling, and hop-by-hop forwarding along installed FIBs.
//!
//! Determinism: the same construction sequence always yields the same
//! trace, message counts and convergence times, which the experiment
//! harness relies on.

pub mod dataplane;
pub mod engine;
pub mod link;
pub mod sim;

pub use dataplane::{Delivery, Header, Packet};
pub use engine::{EventQueue, SimTime};
pub use link::{LinkModel, SimRng, PPM_SCALE};
pub use sim::{BestChange, NodeCounters, NodeId, PhaseTimes, PrefixChurn, Service, Sim, SimStats};
