//! The discrete-event core: a time-ordered queue with deterministic
//! FIFO tie-breaking.
//!
//! Determinism is the whole point — the same topology and inputs must
//! produce byte-identical traces on every run, which is what lets the
//! experiment harness assert exact results. Ties in time are broken by
//! insertion sequence number.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulated milliseconds.
pub type SimTime = u64;

/// A scheduled occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scheduled<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Insertion order, the tie-breaker.
    pub seq: u64,
    /// The payload.
    pub event: E,
}

impl<E: Eq> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<E: Eq> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic event queue.
#[derive(Debug)]
pub struct EventQueue<E: Eq> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    now: SimTime,
    seq: u64,
    popped: u64,
}

impl<E: Eq> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Eq> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), now: 0, seq: 0, popped: 0 }
    }

    /// An empty queue with room for `cap` events before the heap has to
    /// regrow — large topologies pre-size from their edge count so
    /// warmup doesn't pay repeated reallocation.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue { heap: BinaryHeap::with_capacity(cap), now: 0, seq: 0, popped: 0 }
    }

    /// Reserve room for at least `additional` more events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` to fire `delay` after the current time.
    pub fn schedule(&mut self, delay: SimTime, event: E) {
        let at = self.now.saturating_add(delay);
        self.schedule_at(at, event);
    }

    /// Schedule at an absolute time (clamped to never run backwards).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Scheduled { at, seq, event }));
    }

    /// Pop the next event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(scheduled) = self.heap.pop()?;
        self.now = scheduled.at;
        self.popped += 1;
        Some((scheduled.at, scheduled.event))
    }

    /// Timestamp of the next event without popping it (and without
    /// advancing the clock). Lets callers honor a time horizon while
    /// leaving later events queued for a subsequent run.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(scheduled)| scheduled.at)
    }

    /// Drain every event with `at <= horizon` into `out` (in pop order),
    /// advancing the clock exactly as repeated [`EventQueue::pop`] calls
    /// would. The windowed parallel engine uses this to pull one safe
    /// lookahead window at a time while reusing the caller's buffer —
    /// neither the heap's backing storage nor `out`'s capacity is
    /// released, so the drain/refill cycle does not churn the allocator.
    pub fn drain_upto(&mut self, horizon: SimTime, out: &mut Vec<(SimTime, E)>) {
        while let Some(at) = self.peek_time() {
            if at > horizon {
                break;
            }
            out.push(self.pop().expect("peek_time saw an event"));
        }
    }

    /// Rewind (or advance) the clock to `at`. Only the windowed engine
    /// uses this: after draining a whole window it replays commit effects
    /// per event, and each commit must observe the clock that a serial
    /// pop of that event would have set. The final commit restores the
    /// clock to the drain's end time, so externally the clock never runs
    /// backwards across windows.
    pub(crate) fn set_now(&mut self, at: SimTime) {
        self.now = at;
    }

    /// Heap capacity currently reserved (events the queue can hold
    /// before reallocating). Exposed so capacity-retention across window
    /// drains is testable.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Events waiting.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events processed so far.
    pub fn processed(&self) -> u64 {
        self.popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(5, "first");
        q.schedule(5, "second");
        q.schedule(5, "third");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "third");
    }

    #[test]
    fn clock_advances_with_pops_and_relative_scheduling_compounds() {
        let mut q = EventQueue::new();
        q.schedule(10, 1u32);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, 10);
        assert_eq!(q.now(), 10);
        q.schedule(5, 2u32);
        assert_eq!(q.pop(), Some((15, 2u32)));
    }

    #[test]
    fn schedule_at_never_runs_backwards() {
        let mut q = EventQueue::new();
        q.schedule(10, 1u32);
        q.pop();
        q.schedule_at(3, 2u32); // in the past: clamped to now
        assert_eq!(q.pop(), Some((10, 2u32)));
    }

    #[test]
    fn peek_does_not_advance_clock_or_consume() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(10, "later");
        q.schedule(5, "sooner");
        assert_eq!(q.peek_time(), Some(5));
        assert_eq!(q.now(), 0, "peek must not advance the clock");
        assert_eq!(q.len(), 2, "peek must not consume");
        assert_eq!(q.pop(), Some((5, "sooner")));
        assert_eq!(q.peek_time(), Some(10));
    }

    /// The horizon contract a driver loop needs: peek-compare-pop keeps
    /// events beyond the horizon queued (a pop-then-check loop would
    /// silently discard the first event past the horizon and advance
    /// the clock to it).
    #[test]
    fn peek_based_horizon_preserves_future_events() {
        let mut q = EventQueue::new();
        q.schedule(10, "inside");
        q.schedule(20, "boundary");
        q.schedule(21, "beyond");
        let horizon = 20;
        let mut seen = Vec::new();
        while let Some(at) = q.peek_time() {
            if at > horizon {
                break;
            }
            seen.push(q.pop().unwrap().1);
        }
        // An event at exactly the horizon is processed, not dropped.
        assert_eq!(seen, vec!["inside", "boundary"]);
        // The event past the horizon is still there for the next run.
        assert_eq!(q.len(), 1);
        assert_eq!(q.now(), 20, "clock must not run past the horizon");
        assert_eq!(q.pop(), Some((21, "beyond")));
    }

    #[test]
    fn with_capacity_pre_sizes_without_changing_behavior() {
        let mut q = EventQueue::with_capacity(64);
        q.schedule(5, "only");
        q.reserve(128);
        assert_eq!(q.pop(), Some((5, "only")));
        assert!(q.is_empty());
    }

    #[test]
    fn drain_upto_matches_pop_loop_and_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(10, "a");
        q.schedule(10, "b");
        q.schedule(20, "c");
        q.schedule(25, "d");
        let mut window = Vec::new();
        q.drain_upto(20, &mut window);
        assert_eq!(window, vec![(10, "a"), (10, "b"), (20, "c")]);
        assert_eq!(q.now(), 20);
        assert_eq!(q.processed(), 3);
        assert_eq!(q.pop(), Some((25, "d")));
    }

    /// Satellite: the pre-sized heap must keep its `with_capacity`
    /// storage across repeated drain/refill window cycles — the Tier B
    /// loop drains every window into a reused buffer and must not pay
    /// heap reallocation churn for it.
    #[test]
    fn capacity_is_retained_across_window_drain_refill_cycles() {
        let mut q = EventQueue::with_capacity(256);
        let cap = q.capacity();
        assert!(cap >= 256);
        let mut window: Vec<(SimTime, u32)> = Vec::new();
        for round in 0..50u64 {
            for i in 0..100u32 {
                q.schedule((i % 7) as SimTime, i);
            }
            let horizon = q.now() + 7;
            q.drain_upto(horizon, &mut window);
            assert!(q.capacity() >= cap, "heap shrank on round {round}");
            window.clear();
            assert!(window.capacity() >= 100, "window buffer shrank on round {round}");
        }
        while q.pop().is_some() {}
        assert!(q.capacity() >= cap, "heap shrank after full drain");
    }

    #[test]
    fn counts_processed() {
        let mut q = EventQueue::new();
        for i in 0..5u32 {
            q.schedule(i as u64, i);
        }
        while q.pop().is_some() {}
        assert_eq!(q.processed(), 5);
        assert!(q.is_empty());
    }
}
