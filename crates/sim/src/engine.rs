//! The discrete-event core: a time-ordered queue with deterministic
//! FIFO tie-breaking.
//!
//! Determinism is the whole point — the same topology and inputs must
//! produce byte-identical traces on every run, which is what lets the
//! experiment harness assert exact results. Ties in time are broken by
//! insertion sequence number.
//!
//! # Storage model: a calendar queue over an arena
//!
//! The queue is a calendar queue (Brown 1988) rather than a binary
//! heap: simulated time is divided into fixed-width "days"
//! (`day = at >> width_shift`), events for future days sit unsorted in
//! `buckets[day & mask]`, and only the events of the day under the
//! cursor are kept in a small ordered heap (`current`). Enqueueing a
//! future event is an O(1) bucket push; dequeueing pays O(log d) for a
//! day of d events instead of O(log n) over the whole queue. Payloads
//! never move: each event is arena-allocated into a `u32`-indexed slot
//! (free-list reuse, mirroring `crates/rib`'s node arena) and the
//! buckets/heap shuffle 4-byte indices plus their `(at, seq)` keys.
//!
//! Ordering invariants (the determinism contract):
//!
//! - every live event is either in `current` or in exactly one bucket;
//! - bucketed events always belong to a day strictly after
//!   `cursor_day`, so `at >= (cursor_day + 1) << width_shift`, which is
//!   strictly greater than any event admissible to `current` — popping
//!   the `current` minimum is therefore always the global `(at, seq)`
//!   minimum;
//! - events scheduled for the cursor day (or earlier, after a windowed
//!   replay rewound the clock) go straight into `current`, keeping the
//!   previous invariant true without ever rescanning buckets;
//! - the day width is a pure performance knob: it decides which bucket
//!   an event waits in, never the `(at, seq)` order it pops in. The
//!   property suite replays identical schedules at several widths and
//!   asserts bit-identical pop sequences.
//!
//! When the cursor day empties, the cursor scans forward bucket by
//! bucket (cheap while the queue is dense: the next event is nearby).
//! If a whole calendar round finds nothing — a sparse queue whose next
//! event is a fault-plan entry millions of ticks out — it falls back to
//! one O(live) pass over the buckets to find the true next day and
//! jumps there directly, so huge idle gaps cost one scan, not one scan
//! per day.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use dbgp_par::ShardChannel;

/// Simulated milliseconds.
pub type SimTime = u64;

/// Default day width: 16 ticks. [`EventQueue::set_width_shift`] retunes
/// it from the link-delay distribution before a run.
const DEFAULT_WIDTH_SHIFT: u32 = 4;

/// Smallest bucket count; always a power of two so `day & mask` works.
const MIN_BUCKETS: usize = 64;

/// Grow the calendar when the live count exceeds this many events per
/// bucket on average (classic calendar-queue resize policy).
const GROW_FACTOR: usize = 4;

/// An arena slot. `event: None` marks a free slot awaiting reuse.
#[derive(Debug)]
struct Slot<E> {
    at: SimTime,
    seq: u64,
    event: Option<E>,
}

/// A deterministic event queue.
#[derive(Debug)]
pub struct EventQueue<E: Eq> {
    /// Event arena; `free` lists the reusable holes.
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    /// Unordered per-day bins for days after the cursor.
    buckets: Vec<Vec<u32>>,
    /// Power-of-two `buckets.len() - 1`.
    mask: u64,
    /// Ordered events admissible now: the cursor day and anything
    /// scheduled at or before it.
    current: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    cursor_day: u64,
    width_shift: u32,
    len: usize,
    now: SimTime,
    seq: u64,
    popped: u64,
}

impl<E: Eq> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Eq> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty queue with room for `cap` events before the arena has
    /// to regrow — large topologies pre-size from their edge count so
    /// warmup doesn't pay repeated reallocation.
    pub fn with_capacity(cap: usize) -> Self {
        let nbuckets = (cap / GROW_FACTOR).next_power_of_two().max(MIN_BUCKETS);
        EventQueue {
            slots: Vec::with_capacity(cap),
            free: Vec::new(),
            buckets: (0..nbuckets).map(|_| Vec::new()).collect(),
            mask: (nbuckets - 1) as u64,
            current: BinaryHeap::new(),
            cursor_day: 0,
            width_shift: DEFAULT_WIDTH_SHIFT,
            len: 0,
            now: 0,
            seq: 0,
            popped: 0,
        }
    }

    /// Reserve room for at least `additional` more events.
    pub fn reserve(&mut self, additional: usize) {
        self.slots.reserve(additional.saturating_sub(self.free.len()));
    }

    /// Current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Retune the calendar day width to `1 << shift` ticks and rebucket
    /// every queued event. The width is a throughput knob (ideally one
    /// day spans about one typical link delay's worth of events); it
    /// cannot affect pop order, which is always exact `(at, seq)`.
    pub fn set_width_shift(&mut self, shift: u32) {
        let shift = shift.min(SimTime::BITS - 1);
        if shift == self.width_shift {
            return;
        }
        self.width_shift = shift;
        self.cursor_day = self.now >> shift;
        for b in &mut self.buckets {
            b.clear();
        }
        self.current.clear();
        for idx in 0..self.slots.len() as u32 {
            if self.slots[idx as usize].event.is_some() {
                self.place(idx);
            }
        }
    }

    /// Schedule `event` to fire `delay` after the current time.
    pub fn schedule(&mut self, delay: SimTime, event: E) {
        let at = self.now.saturating_add(delay);
        self.schedule_at(at, event);
    }

    /// Schedule at an absolute time (clamped to never run backwards).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.insert_keyed(at, seq, event);
    }

    /// Insert with a caller-assigned key. The shard router uses this to
    /// spread one global `(at, seq)` sequence across per-shard queues;
    /// no clamping, no counter updates.
    pub(crate) fn insert_keyed(&mut self, at: SimTime, seq: u64, event: E) {
        let idx = self.alloc(at, seq, event);
        self.place(idx);
        self.len += 1;
        if self.len > self.buckets.len() * GROW_FACTOR {
            self.grow();
        }
    }

    /// Pop the next event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (at, _seq, event) = self.pop_keyed()?;
        self.now = at;
        self.popped += 1;
        Some((at, event))
    }

    /// Pop the next event with its full key, without touching the
    /// clock or the processed counter (the shard router owns those).
    pub(crate) fn pop_keyed(&mut self) -> Option<(SimTime, u64, E)> {
        self.settle();
        let Reverse((at, seq, idx)) = self.current.pop()?;
        let event = self.slots[idx as usize].event.take().expect("popped a freed slot");
        self.free.push(idx);
        self.len -= 1;
        Some((at, seq, event))
    }

    /// Timestamp of the next event without popping it (and without
    /// advancing the clock). Lets callers honor a time horizon while
    /// leaving later events queued for a subsequent run. May advance
    /// the internal bucket cursor, hence `&mut`.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.peek_key().map(|(at, _)| at)
    }

    /// Full `(at, seq)` key of the next event; the shard router merges
    /// shard heads by comparing these.
    pub(crate) fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        self.settle();
        self.current.peek().map(|Reverse((at, seq, _))| (*at, *seq))
    }

    /// Drain every event with `at <= horizon` into `out` (in pop order),
    /// advancing the clock exactly as repeated [`EventQueue::pop`] calls
    /// would. The windowed parallel engine uses this to pull one safe
    /// lookahead window at a time while reusing the caller's buffer —
    /// neither the arena's backing storage nor `out`'s capacity is
    /// released, so the drain/refill cycle does not churn the allocator.
    pub fn drain_upto(&mut self, horizon: SimTime, out: &mut Vec<(SimTime, E)>) {
        while let Some(at) = self.peek_time() {
            if at > horizon {
                break;
            }
            out.push(self.pop().expect("peek_time saw an event"));
        }
    }

    /// Keyed drain for the sharded engine: like [`EventQueue::drain_upto`]
    /// but keeps the tie-breaking seq (the commit phase k-way-merges
    /// shard windows on it) and leaves clock bookkeeping to the router.
    pub(crate) fn drain_keyed_upto(&mut self, horizon: SimTime, out: &mut Vec<(SimTime, u64, E)>) {
        while let Some((at, _)) = self.peek_key() {
            if at > horizon {
                break;
            }
            out.push(self.pop_keyed().expect("peek_key saw an event"));
        }
    }

    /// Arena capacity currently reserved (events the queue can hold
    /// before reallocating). Exposed so capacity-retention across window
    /// drains is testable.
    pub fn capacity(&self) -> usize {
        self.slots.capacity()
    }

    /// Events waiting.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total events processed so far.
    pub fn processed(&self) -> u64 {
        self.popped
    }

    /// Approximate heap footprint of the queue's own structures (arena,
    /// free list, calendar bins), for bench reporting.
    pub fn mem_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<Slot<E>>()
            + self.free.capacity() * std::mem::size_of::<u32>()
            + self.buckets.iter().map(|b| b.capacity() * std::mem::size_of::<u32>()).sum::<usize>()
            + self.current.capacity() * std::mem::size_of::<(SimTime, u64, u32)>()
    }

    fn alloc(&mut self, at: SimTime, seq: u64, event: E) -> u32 {
        if let Some(idx) = self.free.pop() {
            self.slots[idx as usize] = Slot { at, seq, event: Some(event) };
            idx
        } else {
            assert!(self.slots.len() < u32::MAX as usize, "event arena exhausted u32 indices");
            self.slots.push(Slot { at, seq, event: Some(event) });
            (self.slots.len() - 1) as u32
        }
    }

    /// File a live slot into `current` or its future-day bucket.
    fn place(&mut self, idx: u32) {
        let slot = &self.slots[idx as usize];
        let day = slot.at >> self.width_shift;
        if day <= self.cursor_day {
            self.current.push(Reverse((slot.at, slot.seq, idx)));
        } else {
            self.buckets[(day & self.mask) as usize].push(idx);
        }
    }

    /// Ensure `current` holds the global minimum whenever `len > 0`.
    fn settle(&mut self) {
        while self.current.is_empty() && self.len > 0 {
            self.advance_day();
        }
    }

    /// Move the cursor to the next day that has events and pull that
    /// day's events into `current`.
    fn advance_day(&mut self) {
        let nbuckets = self.buckets.len() as u64;
        // Dense phase: the next event is within one calendar round.
        for day in self.cursor_day + 1..=self.cursor_day + nbuckets {
            if !self.buckets[(day & self.mask) as usize].is_empty() {
                self.collect_day(day);
                if !self.current.is_empty() {
                    self.cursor_day = day;
                    return;
                }
            }
        }
        // Sparse phase: one pass over all live events to find the true
        // next day, then jump the cursor straight to it.
        let mut next_day = u64::MAX;
        for bucket in &self.buckets {
            for &idx in bucket {
                next_day = next_day.min(self.slots[idx as usize].at >> self.width_shift);
            }
        }
        debug_assert_ne!(next_day, u64::MAX, "len > 0 but no bucketed events");
        self.collect_day(next_day);
        self.cursor_day = next_day;
    }

    /// Move every event of `day` from its bucket into `current`.
    fn collect_day(&mut self, day: u64) {
        let b = (day & self.mask) as usize;
        let mut i = 0;
        while i < self.buckets[b].len() {
            let idx = self.buckets[b][i];
            let slot = &self.slots[idx as usize];
            if slot.at >> self.width_shift == day {
                self.current.push(Reverse((slot.at, slot.seq, idx)));
                self.buckets[b].swap_remove(i);
            } else {
                i += 1;
            }
        }
    }

    /// Double the calendar and redistribute bucketed events (`current`
    /// is day-width-independent and stays put).
    fn grow(&mut self) {
        let nbuckets = self.buckets.len() * 2;
        let mask = (nbuckets - 1) as u64;
        let mut buckets: Vec<Vec<u32>> = (0..nbuckets).map(|_| Vec::new()).collect();
        for bucket in &mut self.buckets {
            for idx in bucket.drain(..) {
                let day = self.slots[idx as usize].at >> self.width_shift;
                buckets[(day & mask) as usize].push(idx);
            }
        }
        self.buckets = buckets;
        self.mask = mask;
    }
}

/// Shard routing hook: which node an event is pinned to. `None` means
/// the event has no node affinity and lands on shard 0.
pub trait Routable {
    /// Node whose shard must process this event, if it has one.
    fn route_node(&self) -> Option<usize>;
}

/// K per-shard [`EventQueue`]s behind one global clock and one global
/// `(at, seq)` key space.
///
/// The router is what makes sharding results-neutral: every scheduled
/// event still draws its tie-breaking `seq` from a single counter, and
/// every pop (or window drain) is a k-way merge of the shard heads on
/// the exact `(at, seq)` key — so the observable event order is
/// identical to one global queue, regardless of how many shards the
/// events physically wait in. With one shard the router degenerates to
/// a thin wrapper and the serial engine runs through it unchanged.
///
/// During a sharded run's commit phase, newly scheduled events are
/// *staged* into per-shard [`ShardChannel`] mailboxes instead of being
/// inserted directly: commits happen on the coordinating thread while
/// the shard queues are about to be handed back to their workers, and a
/// cheap `Vec` push keeps the commit loop off the calendar-insert path.
/// Workers bulk-merge their mailbox at the next window barrier.
/// Conservative lookahead guarantees staged events fire at or after the
/// next window, but `peek_time`/`len` still account for them so the
/// driver loop never misses a pending event.
#[derive(Debug)]
pub struct EventRouter<E: Eq + Routable> {
    shards: Vec<EventQueue<E>>,
    /// Shard index per node (from `dbgp_par::partition`); nodes beyond
    /// this table (added after sharding) fall back to shard 0.
    node_shard: Vec<u16>,
    staging: Vec<ShardChannel<(SimTime, u64, E)>>,
    staging_on: bool,
    staged_len: usize,
    staged_min: SimTime,
    /// Events committed per shard, for bench reporting.
    shard_popped: Vec<u64>,
    now: SimTime,
    seq: u64,
    popped: u64,
}

impl<E: Eq + Routable> Default for EventRouter<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Eq + Routable> EventRouter<E> {
    /// A single-shard router at time zero.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// A single-shard router pre-sized for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        EventRouter {
            shards: vec![EventQueue::with_capacity(cap)],
            node_shard: Vec::new(),
            staging: vec![ShardChannel::with_capacity(0)],
            staging_on: false,
            staged_len: 0,
            staged_min: SimTime::MAX,
            shard_popped: vec![0],
            now: 0,
            seq: 0,
            popped: 0,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Events committed through each shard so far.
    pub fn shard_processed(&self) -> &[u64] {
        &self.shard_popped
    }

    /// Total staged-mailbox traffic: (pushes, overflows, max high-water).
    pub fn channel_totals(&self) -> (u64, u64, usize) {
        let mut pushes = 0;
        let mut overflows = 0;
        let mut high = 0;
        for ch in &self.staging {
            pushes += ch.pushes();
            overflows += ch.overflows();
            high = high.max(ch.high_water());
        }
        (pushes, overflows, high)
    }

    /// Repartition into `shards` queues under `assignment` (shard per
    /// node). Every queued event keeps its `(at, seq)` key and is
    /// re-filed into its new home shard; clock and counters carry over,
    /// so observable order is unaffected. `channel_hint` pre-sizes the
    /// per-shard staging mailboxes.
    pub fn set_shards(&mut self, assignment: Vec<u16>, shards: usize, channel_hint: usize) {
        assert!(!self.staging_on, "cannot repartition mid-window");
        let shards = shards.max(1);
        let mut live: Vec<(SimTime, u64, E)> = Vec::new();
        for q in &mut self.shards {
            while let Some(t) = q.pop_keyed() {
                live.push(t);
            }
        }
        self.node_shard = assignment;
        let per = (live.len() / shards).max(16);
        self.shards = (0..shards).map(|_| EventQueue::with_capacity(per)).collect();
        self.staging = (0..shards).map(|_| ShardChannel::with_capacity(channel_hint)).collect();
        self.shard_popped = vec![0; shards];
        for (at, seq, e) in live {
            let s = self.shard_of(&e);
            self.shards[s].insert_keyed(at, seq, e);
        }
    }

    fn shard_of(&self, e: &E) -> usize {
        if self.shards.len() == 1 {
            return 0;
        }
        match e.route_node() {
            Some(n) => self.node_shard.get(n).copied().unwrap_or(0) as usize,
            None => 0,
        }
    }

    /// Reserve room for `additional` events, spread across shards.
    pub fn reserve(&mut self, additional: usize) {
        let per = additional / self.shards.len();
        for q in &mut self.shards {
            q.reserve(per);
        }
    }

    /// Retune every shard's calendar day width. A pure throughput knob;
    /// pop order is unaffected (see [`EventQueue::set_width_shift`]).
    pub fn set_width_shift(&mut self, shift: u32) {
        for q in &mut self.shards {
            q.set_width_shift(shift);
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` to fire `delay` after the current time.
    pub fn schedule(&mut self, delay: SimTime, event: E) {
        let at = self.now.saturating_add(delay);
        self.schedule_at(at, event);
    }

    /// Schedule at an absolute time (clamped to never run backwards).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        let s = self.shard_of(&event);
        if self.staging_on {
            self.staging[s].push((at, seq, event));
            self.staged_len += 1;
            self.staged_min = self.staged_min.min(at);
        } else {
            self.shards[s].insert_keyed(at, seq, event);
        }
    }

    /// Shard whose head holds the global `(at, seq)` minimum.
    fn min_shard(&mut self) -> Option<usize> {
        let mut best: Option<((SimTime, u64), usize)> = None;
        for (s, q) in self.shards.iter_mut().enumerate() {
            if let Some(key) = q.peek_key() {
                if best.is_none_or(|(bk, _)| key < bk) {
                    best = Some((key, s));
                }
            }
        }
        best.map(|(_, s)| s)
    }

    /// Pop the global next event, advancing the clock.
    ///
    /// Callers must ensure no staged event could precede the shard
    /// heads (the sharded engine flushes staging before serial replay,
    /// and commit-staged events always land beyond the window horizon).
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.min_shard()?;
        let (at, _seq, event) = self.shards[s].pop_keyed().expect("peeked shard must pop");
        self.now = at;
        self.popped += 1;
        self.shard_popped[s] += 1;
        Some((at, event))
    }

    /// Timestamp of the global next event — including staged ones —
    /// without popping.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        let mut best = match self.min_shard() {
            Some(s) => self.shards[s].peek_key().map(|(at, _)| at),
            None => None,
        };
        if self.staged_len > 0 {
            best = Some(best.map_or(self.staged_min, |b| b.min(self.staged_min)));
        }
        best
    }

    /// Drain every event with `at <= horizon` into `out` in global pop
    /// order (k-way merge on `(at, seq)`), advancing the clock exactly
    /// as repeated [`EventRouter::pop`] calls would. Staged events are
    /// not drained — flush them first if any could fall in the window.
    pub fn drain_upto(&mut self, horizon: SimTime, out: &mut Vec<(SimTime, E)>) {
        while let Some(s) = self.min_shard() {
            let (at, _) = self.shards[s].peek_key().expect("min shard has a head");
            if at > horizon {
                break;
            }
            let (at, _seq, event) = self.shards[s].pop_keyed().expect("peeked shard must pop");
            self.now = at;
            self.popped += 1;
            self.shard_popped[s] += 1;
            out.push((at, event));
        }
    }

    /// Rewind (or advance) the clock to `at`. Only the window-replaying
    /// engines use this: after draining a whole window they replay
    /// commit effects per event, and each commit must observe the clock
    /// a serial pop of that event would have set. The final commit
    /// restores the clock to the drain's end time, so externally the
    /// clock never runs backwards across windows.
    pub(crate) fn set_now(&mut self, at: SimTime) {
        self.now = at;
    }

    /// Begin staging commit-phase schedules into the mailboxes.
    pub(crate) fn begin_staging(&mut self) {
        self.staging_on = true;
    }

    /// Stop staging, filing any leftovers into their shard queues.
    pub(crate) fn end_staging(&mut self) {
        self.flush_staging();
        self.staging_on = false;
    }

    /// File every staged event into its shard queue (serially).
    pub(crate) fn flush_staging(&mut self) {
        if self.staged_len > 0 {
            for (q, ch) in self.shards.iter_mut().zip(self.staging.iter_mut()) {
                for (at, seq, e) in ch.drain() {
                    q.insert_keyed(at, seq, e);
                }
            }
        }
        self.staged_len = 0;
        self.staged_min = SimTime::MAX;
    }

    /// Exclusive views for the sharded engine's parallel phase: each
    /// worker takes `&mut` to exactly one shard queue and its mailbox,
    /// plus the shared node→shard table.
    #[allow(clippy::type_complexity)]
    pub(crate) fn split_shards(
        &mut self,
    ) -> (&mut [EventQueue<E>], &mut [ShardChannel<(SimTime, u64, E)>], &[u16]) {
        (&mut self.shards, &mut self.staging, &self.node_shard)
    }

    /// Account a parallel window: workers merged every mailbox into
    /// their queues and drained `per_shard` events each.
    pub(crate) fn note_parallel_drain(&mut self, per_shard: &[usize]) {
        for (s, &n) in per_shard.iter().enumerate() {
            self.popped += n as u64;
            self.shard_popped[s] += n as u64;
        }
        self.staged_len = 0;
        self.staged_min = SimTime::MAX;
    }

    /// Events waiting (queued plus staged).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|q| q.len()).sum::<usize>() + self.staged_len
    }

    /// True if nothing is scheduled anywhere.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events processed so far.
    pub fn processed(&self) -> u64 {
        self.popped
    }

    /// Arena capacity summed across shards.
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|q| q.capacity()).sum()
    }

    /// Heap footprint summed across shards.
    pub fn mem_bytes(&self) -> usize {
        self.shards.iter().map(|q| q.mem_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(5, "first");
        q.schedule(5, "second");
        q.schedule(5, "third");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "third");
    }

    #[test]
    fn clock_advances_with_pops_and_relative_scheduling_compounds() {
        let mut q = EventQueue::new();
        q.schedule(10, 1u32);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, 10);
        assert_eq!(q.now(), 10);
        q.schedule(5, 2u32);
        assert_eq!(q.pop(), Some((15, 2u32)));
    }

    #[test]
    fn schedule_at_never_runs_backwards() {
        let mut q = EventQueue::new();
        q.schedule(10, 1u32);
        q.pop();
        q.schedule_at(3, 2u32); // in the past: clamped to now
        assert_eq!(q.pop(), Some((10, 2u32)));
    }

    #[test]
    fn peek_does_not_advance_clock_or_consume() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(10, "later");
        q.schedule(5, "sooner");
        assert_eq!(q.peek_time(), Some(5));
        assert_eq!(q.now(), 0, "peek must not advance the clock");
        assert_eq!(q.len(), 2, "peek must not consume");
        assert_eq!(q.pop(), Some((5, "sooner")));
        assert_eq!(q.peek_time(), Some(10));
    }

    /// The horizon contract a driver loop needs: peek-compare-pop keeps
    /// events beyond the horizon queued (a pop-then-check loop would
    /// silently discard the first event past the horizon and advance
    /// the clock to it).
    #[test]
    fn peek_based_horizon_preserves_future_events() {
        let mut q = EventQueue::new();
        q.schedule(10, "inside");
        q.schedule(20, "boundary");
        q.schedule(21, "beyond");
        let horizon = 20;
        let mut seen = Vec::new();
        while let Some(at) = q.peek_time() {
            if at > horizon {
                break;
            }
            seen.push(q.pop().unwrap().1);
        }
        // An event at exactly the horizon is processed, not dropped.
        assert_eq!(seen, vec!["inside", "boundary"]);
        // The event past the horizon is still there for the next run.
        assert_eq!(q.len(), 1);
        assert_eq!(q.now(), 20, "clock must not run past the horizon");
        assert_eq!(q.pop(), Some((21, "beyond")));
    }

    #[test]
    fn with_capacity_pre_sizes_without_changing_behavior() {
        let mut q = EventQueue::with_capacity(64);
        q.schedule(5, "only");
        q.reserve(128);
        assert_eq!(q.pop(), Some((5, "only")));
        assert!(q.is_empty());
    }

    #[test]
    fn drain_upto_matches_pop_loop_and_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(10, "a");
        q.schedule(10, "b");
        q.schedule(20, "c");
        q.schedule(25, "d");
        let mut window = Vec::new();
        q.drain_upto(20, &mut window);
        assert_eq!(window, vec![(10, "a"), (10, "b"), (20, "c")]);
        assert_eq!(q.now(), 20);
        assert_eq!(q.processed(), 3);
        assert_eq!(q.pop(), Some((25, "d")));
    }

    /// Satellite: the pre-sized arena must keep its `with_capacity`
    /// storage across repeated drain/refill window cycles — the Tier B
    /// loop drains every window into a reused buffer and must not pay
    /// reallocation churn for it.
    #[test]
    fn capacity_is_retained_across_window_drain_refill_cycles() {
        let mut q = EventQueue::with_capacity(256);
        let cap = q.capacity();
        assert!(cap >= 256);
        let mut window: Vec<(SimTime, u32)> = Vec::new();
        for round in 0..50u64 {
            for i in 0..100u32 {
                q.schedule((i % 7) as SimTime, i);
            }
            let horizon = q.now() + 7;
            q.drain_upto(horizon, &mut window);
            assert!(q.capacity() >= cap, "arena shrank on round {round}");
            window.clear();
            assert!(window.capacity() >= 100, "window buffer shrank on round {round}");
        }
        while q.pop().is_some() {}
        assert!(q.capacity() >= cap, "arena shrank after full drain");
    }

    #[test]
    fn counts_processed() {
        let mut q = EventQueue::new();
        for i in 0..5u32 {
            q.schedule(i as u64, i);
        }
        while q.pop().is_some() {}
        assert_eq!(q.processed(), 5);
        assert!(q.is_empty());
    }

    /// A sparse far-future gap (fault plans schedule events tens of
    /// millions of ticks out) must resolve through the jump fallback,
    /// not a day-by-day crawl, and still pop in exact order.
    #[test]
    fn sparse_far_future_events_pop_in_order() {
        let mut q = EventQueue::new();
        q.schedule_at(3, "soon");
        q.schedule_at(50_000_000, "flap");
        q.schedule_at(50_000_000, "flap2");
        q.schedule_at(210_000_777, "late");
        assert_eq!(q.pop(), Some((3, "soon")));
        assert_eq!(q.pop(), Some((50_000_000, "flap")));
        assert_eq!(q.pop(), Some((50_000_000, "flap2")));
        assert_eq!(q.peek_time(), Some(210_000_777));
        assert_eq!(q.pop(), Some((210_000_777, "late")));
        assert_eq!(q.pop(), None);
    }

    /// Retuning the day width rebuckets pending events without
    /// reordering them.
    #[test]
    fn width_retune_preserves_order_of_pending_events() {
        for shift in [0u32, 1, 4, 10, 20] {
            let mut q = EventQueue::new();
            for i in 0..200u32 {
                q.schedule_at(((i as u64) * 37) % 500, i);
            }
            q.set_width_shift(shift);
            let mut last: Option<(u64, u32)> = None;
            let mut n = 0;
            while let Some((at, e)) = q.pop() {
                if let Some((lat, le)) = last {
                    assert!(at >= lat, "time went backwards at width {shift}");
                    if at == lat {
                        // Same timestamp: insertion (seq) order.
                        assert!(e > le, "tie order broken at width {shift}");
                    }
                }
                last = Some((at, e));
                n += 1;
            }
            assert_eq!(n, 200);
        }
    }

    /// The calendar grows (rebuckets) under load without disturbing
    /// order or counts.
    #[test]
    fn grows_past_initial_bucket_count() {
        let mut q = EventQueue::with_capacity(0);
        let n = 10_000u32;
        for i in 0..n {
            q.schedule_at((i as u64 * 7919) % 100_000, i);
        }
        let mut popped = 0;
        // Track (at, seq) monotonicity via pop order: same at must keep
        // ascending insertion order, which for this schedule means the
        // payloads at one timestamp ascend.
        let mut at_last: Option<u64> = None;
        let mut payload_last = 0u32;
        while let Some((at, e)) = q.pop() {
            if at_last == Some(at) {
                assert!(e > payload_last, "FIFO tie broken after growth");
            } else {
                assert!(at_last.is_none_or(|p| at > p));
            }
            at_last = Some(at);
            payload_last = e;
            popped += 1;
        }
        assert_eq!(popped, n);
    }

    /// A routed event pinned to a node.
    #[derive(Debug, PartialEq, Eq)]
    struct Ev(usize, u32);

    impl Routable for Ev {
        fn route_node(&self) -> Option<usize> {
            Some(self.0)
        }
    }

    /// The router's whole contract: the observable pop order is a pure
    /// function of the schedule, independent of the shard count — and
    /// repartitioning a half-full router preserves it too.
    #[test]
    fn router_pop_order_is_shard_count_invariant() {
        let run = |k: usize| {
            let mut r: EventRouter<Ev> = EventRouter::new();
            let sched = |r: &mut EventRouter<Ev>, i: u32| {
                let node = (i as usize * 7) % 16;
                r.schedule_at(((i as u64) * 13) % 97, Ev(node, i));
            };
            for i in 0..100u32 {
                sched(&mut r, i);
            }
            if k > 1 {
                let assignment: Vec<u16> = (0..16).map(|n| (n % k) as u16).collect();
                r.set_shards(assignment, k, 8);
            }
            for i in 100..200u32 {
                sched(&mut r, i);
            }
            let mut out = Vec::new();
            while let Some((at, e)) = r.pop() {
                out.push((at, e.1));
            }
            out
        };
        let serial = run(1);
        assert_eq!(serial.len(), 200);
        assert_eq!(serial, run(2));
        assert_eq!(serial, run(4));
        assert_eq!(serial, run(7));
    }

    /// Staged events count toward `len`/`peek_time` and file into their
    /// shards on flush, with mailbox traffic accounted.
    #[test]
    fn router_staging_accounts_and_flushes() {
        let mut r: EventRouter<Ev> = EventRouter::new();
        r.set_shards(vec![0, 1], 2, 4);
        r.begin_staging();
        r.schedule_at(10, Ev(1, 1));
        r.schedule_at(5, Ev(0, 2));
        assert_eq!(r.len(), 2);
        assert_eq!(r.peek_time(), Some(5));
        r.end_staging();
        assert_eq!(r.pop(), Some((5, Ev(0, 2))));
        assert_eq!(r.pop(), Some((10, Ev(1, 1))));
        assert_eq!(r.processed(), 2);
        assert!(r.is_empty());
        let (pushes, _overflows, high) = r.channel_totals();
        assert_eq!(pushes, 2);
        assert!(high >= 1);
        assert_eq!(r.shard_processed(), &[1, 1]);
    }
}
