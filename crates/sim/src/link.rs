//! Per-link perturbation models and the seeded RNG that drives them.
//!
//! Every link carries a base one-way delay (set at [`crate::Sim::link`]
//! time) plus an optional [`LinkModel`] adding seeded jitter, loss,
//! duplication and corruption. All randomness flows through one
//! [`SimRng`] owned by the simulator, a SplitMix64 generator whose
//! output is fully specified by its seed — the same seed and the same
//! construction sequence always yield byte-identical traces, which is
//! what lets the chaos harness assert exact results under churn.
//!
//! A link with the default (all-zero) model never consumes RNG output,
//! so fault-free simulations behave exactly as they did before link
//! models existed.

use crate::engine::SimTime;

/// Probability scale for the `*_ppm` fields: 1,000,000 = always.
pub const PPM_SCALE: u32 = 1_000_000;

/// Stochastic behaviour of one link, applied per control-plane message.
///
/// Probabilities are integers in parts-per-million so the model is
/// `Eq`/`Hash`-able and its JSON serialization is byte-stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct LinkModel {
    /// Maximum extra delay added to each delivery; the sample is uniform
    /// over `0..=jitter` (0 = no jitter).
    pub jitter: SimTime,
    /// Probability (ppm) that a message is silently dropped.
    pub loss_ppm: u32,
    /// Probability (ppm) that a message is delivered twice (the copy
    /// arrives one time unit later).
    pub duplicate_ppm: u32,
    /// Probability (ppm) that one byte of the message is flipped in
    /// flight (usually, but not always, a decode error at the receiver).
    pub corrupt_ppm: u32,
}

impl LinkModel {
    /// A perfectly reliable link — the default for every adjacency.
    pub fn reliable() -> Self {
        Self::default()
    }

    /// True when the model never perturbs anything (no RNG is consumed).
    pub fn is_reliable(&self) -> bool {
        *self == Self::default()
    }

    /// Builder-style: set the jitter bound.
    pub fn jitter(mut self, jitter: SimTime) -> Self {
        self.jitter = jitter;
        self
    }

    /// Builder-style: set the loss probability in ppm.
    pub fn loss_ppm(mut self, ppm: u32) -> Self {
        self.loss_ppm = ppm;
        self
    }

    /// Builder-style: set the duplication probability in ppm.
    pub fn duplicate_ppm(mut self, ppm: u32) -> Self {
        self.duplicate_ppm = ppm;
        self
    }

    /// Builder-style: set the corruption probability in ppm.
    pub fn corrupt_ppm(mut self, ppm: u32) -> Self {
        self.corrupt_ppm = ppm;
        self
    }
}

/// A SplitMix64 generator: tiny, platform-independent, and fully
/// determined by its seed — exactly what a reproducible discrete-event
/// simulation needs (and nothing more).
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Seed the generator.
    pub fn new(seed: u64) -> Self {
        SimRng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n` must be non-zero).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Bernoulli trial with probability `ppm` parts-per-million.
    pub fn chance(&mut self, ppm: u32) -> bool {
        self.below(PPM_SCALE as u64) < ppm as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_is_reliable() {
        assert!(LinkModel::default().is_reliable());
        assert!(!LinkModel::default().loss_ppm(1).is_reliable());
        assert!(!LinkModel::default().jitter(3).is_reliable());
    }

    #[test]
    fn rng_is_deterministic_per_seed() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        let mut c = SimRng::new(8);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn chance_respects_extremes() {
        let mut rng = SimRng::new(1);
        assert!((0..100).all(|_| rng.chance(PPM_SCALE)));
        assert!((0..100).all(|_| !rng.chance(0)));
    }

    #[test]
    fn below_is_in_range() {
        let mut rng = SimRng::new(99);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}
