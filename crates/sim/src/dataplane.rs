//! The data plane: packets with multi-network-protocol header stacks
//! (paper §2, §3.4) forwarded along the FIBs the control plane installed.
//!
//! A packet carries a stack of headers, outermost last. Gulf ASes only
//! understand IPv4 and forward on the outermost IPv4 header; when the
//! packet reaches the AS owning that header's destination, the header is
//! popped (decapsulation). An inner SCION or Pathlet header is then
//! interpreted by the island it addressed — modeled here as delivery to
//! that island's ingress together with the remaining stack, since
//! intra-island forwarding is below the AS-level abstraction the paper's
//! experiments operate at.

use crate::sim::{NodeId, Sim};
use dbgp_wire::Ipv4Addr;

/// One header in the encapsulation stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Header {
    /// Plain IPv4 toward a destination address — the baseline network
    /// protocol every AS understands.
    Ipv4 {
        /// Destination address.
        dst: Ipv4Addr,
    },
    /// A SCION-like path-based header (opaque to gulf ASes).
    Scion(Vec<u8>),
    /// A Pathlet forwarding-ID header (opaque to gulf ASes).
    Pathlet(Vec<u8>),
}

/// A packet: header stack (outermost last) plus an opaque payload tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Encapsulation stack; `stack.last()` is the header routers act on.
    pub stack: Vec<Header>,
    /// Identifying payload for assertions in tests.
    pub payload: u64,
}

impl Packet {
    /// A plain IPv4 packet.
    pub fn ipv4(dst: Ipv4Addr, payload: u64) -> Self {
        Packet { stack: vec![Header::Ipv4 { dst }], payload }
    }

    /// Encapsulate this packet in an outer IPv4 header (tunneling).
    pub fn encap_ipv4(mut self, dst: Ipv4Addr) -> Self {
        self.stack.push(Header::Ipv4 { dst });
        self
    }
}

/// Why forwarding stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Delivery {
    /// The packet reached the AS owning the innermost IPv4 destination.
    Delivered {
        /// Final node.
        at: NodeId,
        /// Remaining non-IPv4 headers (a SCION/Pathlet header handed to
        /// the island for intra-island forwarding).
        remaining: Vec<Header>,
    },
    /// Some AS had no route for the outermost destination.
    NoRoute {
        /// Where forwarding died.
        at: NodeId,
        /// The unrouteable destination.
        dst: Ipv4Addr,
    },
    /// The hop budget was exhausted (would indicate a forwarding loop).
    Looped,
}

impl Sim {
    /// Forward `packet` from `start` hop by hop along installed FIBs.
    /// Returns the delivery outcome and the AS-level trajectory.
    pub fn forward(&self, start: NodeId, mut packet: Packet) -> (Delivery, Vec<NodeId>) {
        let mut at = start;
        let mut trace = vec![start];
        // A loop-free AS path can visit each node at most once; double
        // the node count leaves room for decapsulation re-routing.
        let mut budget = (self.node_count() * 2).max(64);
        loop {
            budget -= 1;
            if budget == 0 {
                return (Delivery::Looped, trace);
            }
            // Act on the outermost header.
            let dst = match packet.stack.last() {
                Some(Header::Ipv4 { dst }) => *dst,
                Some(_) | None => {
                    // Non-IPv4 outermost header: we are the island that
                    // understands it — delivered to the island ingress.
                    return (Delivery::Delivered { at, remaining: packet.stack }, trace);
                }
            };
            if self.owner_of(dst) == Some(at) {
                // Decapsulate.
                packet.stack.pop();
                match packet.stack.last() {
                    None => return (Delivery::Delivered { at, remaining: vec![] }, trace),
                    Some(Header::Ipv4 { .. }) => continue, // route on inner header
                    Some(_) => return (Delivery::Delivered { at, remaining: packet.stack }, trace),
                }
            }
            match self.next_hop(at, dst) {
                Some(Some(next)) => {
                    at = next;
                    trace.push(next);
                }
                Some(None) => {
                    // FIB says local but ownership said otherwise: the
                    // prefix is originated here — deliver.
                    packet.stack.pop();
                    match packet.stack.last() {
                        None => return (Delivery::Delivered { at, remaining: vec![] }, trace),
                        Some(Header::Ipv4 { .. }) => continue,
                        Some(_) => {
                            return (Delivery::Delivered { at, remaining: packet.stack }, trace)
                        }
                    }
                }
                None => return (Delivery::NoRoute { at, dst }, trace),
            }
        }
    }
}
