//! The network simulator: D-BGP speakers on a topology of delayed
//! links, an out-of-band service bus, and a data plane with
//! multi-network-protocol encapsulation — the workspace's substitute for
//! the paper's MiniNeXT testbed (DESIGN.md §2).
//!
//! Control-plane messages are real wire bytes: every IA is encoded with
//! the TLV codec at the sender and decoded at the receiver, so the
//! simulator exercises exactly the serialization path the §5 stress test
//! measures.
//!
//! Links carry an optional [`LinkModel`] (seeded jitter, loss,
//! duplication, corruption) and can be failed, restored and flapped at
//! runtime; nodes can be restarted (session reset + full-table
//! re-transfer). All randomness flows through one seeded
//! [`SimRng`](crate::link::SimRng), so a run is fully determined by its
//! construction sequence and seed — the property the `dbgp-chaos` crate
//! builds its fault-injection harness on.

use crate::engine::{EventRouter, Routable, SimTime};
use crate::link::LinkModel;
use crate::link::SimRng;
use bytes::Bytes;
use dbgp_core::{
    render_path, DbgpConfig, DbgpNeighbor, DbgpOutput, DbgpSpeaker, DbgpUpdate, NeighborId,
    PeerClass, PendingSends,
};
use dbgp_protocols::{MiroPortal, MiroRequest};
use dbgp_rib::PrefixTrie;
use dbgp_telemetry::{
    CounterId, EventId, GaugeId, HistogramId, MetricsRegistry, RibEntry, RibSnapshot, Semantics,
    SinkHandle, TraceKind, TraceRecorder,
};
use dbgp_wire::{Ia, Ipv4Addr, Ipv4Prefix, ProtocolId};
use serde_json::Value;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::rc::Rc;
use std::sync::Arc;

/// Index of a node (one AS) in the simulation.
pub type NodeId = usize;

/// Canonical undirected key for a link between two nodes.
fn link_key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    (a.min(b), a.max(b))
}

/// Causal annotations riding with a [`Event::Deliver`] when tracing is
/// on: the ids the receiver needs to chain its Deliver/Decode events to
/// the sender's Transmit/Advertise events. `None` in the untraced (and
/// therefore hot) configuration, so the only cost there is the pointer.
#[derive(Debug, Clone, PartialEq, Eq)]
struct DeliverTrace {
    /// The sender's Transmit event for this frame.
    frame: EventId,
    /// Per-element causes in frame order (withdraws first, then IAs):
    /// the sender-side Withdraw/Advertise events.
    causes: Vec<EventId>,
}

/// What travels on the simulated wires and bus.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Event {
    /// Control-plane bytes arriving on a link. The buffer is refcounted:
    /// a fan-out or a duplicating link shares one allocation, and only a
    /// corrupting fault model copies (copy-on-corrupt).
    Deliver { to: NodeId, from: NodeId, bytes: Bytes, trace: Option<Box<DeliverTrace>> },
    /// MRAI window expired: flush pending advertisements to a neighbor.
    Flush { node: NodeId, neighbor: NeighborId },
    /// Out-of-band request to a service address.
    OobRequest { to_addr: Ipv4Addr, from: NodeId, payload: Vec<u8> },
    /// Out-of-band response back to a node.
    OobResponse { to: NodeId, from_addr: Ipv4Addr, payload: Vec<u8> },
}

impl Routable for Event {
    /// Shard affinity: wire and flush events are pinned to the node
    /// whose state they mutate; out-of-band requests address a service,
    /// not a node, and ride on shard 0 (the sharded engine never runs
    /// with out-of-band traffic anyway — see [`Sim::run`]).
    fn route_node(&self) -> Option<usize> {
        match self {
            Event::Deliver { to, .. } => Some(*to),
            Event::Flush { node, .. } => Some(*node),
            Event::OobRequest { .. } => None,
            Event::OobResponse { to, .. } => Some(*to),
        }
    }
}

/// A service reachable over the out-of-band bus (the paper's portals and
/// lookup services, §3.4, §5).
pub enum Service {
    /// A Wiser cost-exchange portal: forwards [`dbgp_protocols::CostReport`]
    /// payloads into the owning node's Wiser module.
    WiserCostExchange,
    /// A generic module inbox: forwards raw payloads into the owning
    /// node's decision module for the given protocol via
    /// `DecisionModule::deliver_oob` (used e.g. for HLP's intra-island
    /// LSA flooding).
    ModuleInbox(ProtocolId),
    /// A MIRO service portal: negotiates alternate paths for payment.
    Miro(MiroPortal),
    /// A generic key-value lookup service (Beagle's out-of-band IA store).
    Lookup(HashMap<Vec<u8>, Vec<u8>>),
}

/// A coalesced outbound advertisement: the latest IA for a prefix
/// (`None` = withdraw) plus the trace event that caused it.
type PendingAdvert = (Option<Arc<Ia>>, Option<EventId>);

struct Node {
    speaker: DbgpSpeaker,
    /// Neighbor ID -> peer node.
    neighbor_nodes: BTreeMap<NeighborId, NodeId>,
    /// Peer node -> our neighbor ID for it.
    ids_by_node: HashMap<NodeId, NeighborId>,
    /// Forwarding table maintained from `BestChanged` outputs.
    fib: PrefixTrie<Option<NodeId>>,
    /// This node's own address (used as IA next-hop and for tunnels).
    addr: Ipv4Addr,
    /// Out-of-band responses received, for inspection by drivers.
    oob_inbox: Vec<(Ipv4Addr, Vec<u8>)>,
    next_neighbor_id: u32,
    /// Coalesced outbound state per neighbor: prefix -> latest IA
    /// (`None` = withdraw), flushed when the MRAI window closes. The
    /// `Arc` is shared with the speaker's Adj-RIB-Out.
    pending_out: HashMap<NeighborId, BTreeMap<Ipv4Prefix, PendingAdvert>>,
    /// Neighbors with a Flush already scheduled.
    flush_armed: std::collections::HashSet<NeighborId>,
    /// Adj-RIB-Out encode cache: wire bytes for an outgoing IA, keyed by
    /// the `Arc`'s pointer identity (the speaker hands the *same* `Arc`
    /// to every neighbor of a class and across re-advertisements of an
    /// unchanged best path, so identity is exactly "same chosen-IA
    /// generation"). Each entry pins its `Arc` so a recycled allocation
    /// can never alias a live key.
    encode_cache: PtrMap<EncodeCacheEntry>,
    /// Per-incarnation control-plane counters (see [`NodeCounters`]).
    counters: NodeCounters,
}

/// A raw pointer to one [`Node`], handed to exactly one pool worker per
/// window by the Tier B engine.
///
/// # Safety
///
/// `Node` is not automatically `Send` because `DbgpSpeaker` holds a
/// [`SinkHandle`] (an `Option<Rc<dyn TelemetrySink>>`). The parallel
/// engine only runs when `Sim::parallel_safe` has verified that every
/// handle is the `None` variant — a handle that *contains no `Rc` at
/// all* — so no reference count can be touched off-thread. Everything
/// else a `Node` owns is ordinary owned data (`DecisionModule: Send` is
/// a trait bound), and the window protocol guarantees each pointer is
/// dereferenced by at most one thread at a time.
struct NodeSlot(*mut Node);

// SAFETY: see the type-level comment; upheld by `Sim::process_window`.
unsafe impl Send for NodeSlot {}

/// Like [`NodeSlot`] but carrying the whole node-array base: a sharded
/// worker dereferences only the nodes its shard owns (asserted per
/// delivery against the router's node→shard table), so the same
/// disjointness argument applies.
struct NodeBase(*mut Node);

// SAFETY: see [`NodeSlot`]; upheld by `Sim::run_sharded`.
unsafe impl Send for NodeBase {}

/// Result of the node-local half of a `Deliver`, produced on a pool
/// worker and committed serially in pop order.
enum ParOutcome {
    /// The bytes did not decode (corruption or injected garbage).
    DecodeError,
    /// The sender is no longer an adjacency of the receiver.
    Orphaned,
    /// Speaker outputs, in the exact order the serial engine's batch
    /// path would have produced them, plus the sends the speaker staged
    /// while processing this event (always empty with coalescing off).
    /// Carrying the staged delta per event restores the serial engine's
    /// per-event staging attribution: the worker drains the speaker
    /// after each event, and the commit loop re-stages the delta under
    /// the committing clock — so the time-barrier flush sees exactly
    /// what a serial run would have staged, in the same order.
    Processed(Vec<DbgpOutput>, PendingSends),
}

/// Node-local half of a `Deliver`: decode the frame and run the
/// receiving speaker. Reads and writes nothing outside `node`, which is
/// what makes the parallel phase race-free; the counter updates and the
/// output order are byte-for-byte those of the serial engine's untraced
/// batch path.
fn process_deliver(node: &mut Node, from: NodeId, bytes: &Bytes) -> ParOutcome {
    node.counters.messages_in += 1;
    let mut buf = bytes.clone();
    let Ok(update) = DbgpUpdate::decode(&mut buf) else {
        return ParOutcome::DecodeError;
    };
    let Some(&from_id) = node.ids_by_node.get(&from) else {
        return ParOutcome::Orphaned;
    };
    node.counters.withdraws_in += update.withdrawn.len() as u64;
    node.counters.updates_in += update.ias.len() as u64;
    let mut outputs = Vec::new();
    for prefix in update.withdrawn {
        outputs.extend(node.speaker.receive_withdraw(from_id, prefix));
    }
    for ia in update.ias {
        outputs.extend(node.speaker.receive_ia(from_id, ia));
    }
    ParOutcome::Processed(outputs, node.speaker.take_pending_sends())
}

/// Per-node control-plane counters with explicit restart semantics
/// (`reset-on-restart`): a node restart zeroes them and bumps
/// `generation`, so a reader can tell "1000 messages since boot" from
/// "1000 messages across three incarnations". Engine-wide totals in
/// [`SimStats`] accumulate regardless.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeCounters {
    /// Incarnation number: 0 at creation, +1 per restart.
    pub generation: u64,
    /// Control-plane frames delivered to this node this incarnation.
    pub messages_in: u64,
    /// IA announcements decoded at this node this incarnation.
    pub updates_in: u64,
    /// Withdraws decoded at this node this incarnation.
    pub withdraws_in: u64,
    /// Best-path changes at this node this incarnation.
    pub best_changes: u64,
}

/// Handles into the simulator's [`MetricsRegistry`]. Engine-wide totals
/// are mirrored from [`SimStats`] at snapshot time (keeping the hot path
/// byte-identical to the pre-telemetry engine); histograms are observed
/// inline.
struct SimMetrics {
    registry: MetricsRegistry,
    messages: CounterId,
    bytes: CounterId,
    best_changes: CounterId,
    decode_errors: CounterId,
    orphaned_deliveries: CounterId,
    dropped_messages: CounterId,
    duplicated_messages: CounterId,
    corrupted_messages: CounterId,
    oob_requests: CounterId,
    updates_encoded: CounterId,
    encode_cache_hits: CounterId,
    node_restarts: CounterId,
    pending_events: GaugeId,
    last_event_at: GaugeId,
    message_bytes: HistogramId,
    flush_batch: HistogramId,
}

impl SimMetrics {
    fn new() -> Self {
        let mut registry = MetricsRegistry::new();
        let acc = Semantics::Accumulate;
        SimMetrics {
            messages: registry.counter("sim.messages_total", acc),
            bytes: registry.counter("sim.bytes_total", acc),
            best_changes: registry.counter("sim.best_changes_total", acc),
            decode_errors: registry.counter("sim.decode_errors_total", acc),
            orphaned_deliveries: registry.counter("sim.orphaned_deliveries_total", acc),
            dropped_messages: registry.counter("sim.dropped_messages_total", acc),
            duplicated_messages: registry.counter("sim.duplicated_messages_total", acc),
            corrupted_messages: registry.counter("sim.corrupted_messages_total", acc),
            oob_requests: registry.counter("sim.oob_requests_total", acc),
            updates_encoded: registry.counter("sim.updates_encoded_total", acc),
            encode_cache_hits: registry.counter("sim.encode_cache_hits_total", acc),
            node_restarts: registry.counter("sim.node_restarts_total", acc),
            pending_events: registry.gauge("sim.pending_events"),
            last_event_at: registry.gauge("sim.last_event_at"),
            message_bytes: registry.histogram("sim.message_bytes", acc),
            flush_batch: registry.histogram("sim.flush_batch_prefixes", acc),
            registry,
        }
    }
}

/// Hasher for pointer-keyed caches: the key is an `Arc` address, so one
/// Fibonacci multiply spreads it well enough and the SipHash setup cost
/// disappears from the per-send hot path. Never iterated, so the hash
/// choice cannot leak into event ordering.
#[derive(Default)]
struct PtrHasher(u64);

impl std::hash::Hasher for PtrHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    fn write_usize(&mut self, n: usize) {
        self.0 = (n as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

type PtrMap<V> = HashMap<usize, V, std::hash::BuildHasherDefault<PtrHasher>>;

/// Cached wire form of one outgoing IA.
struct EncodeCacheEntry {
    /// Pins the IA so the pointer key stays unique while cached.
    _ia: Arc<Ia>,
    /// The encoded IA body (the unit batched frames are assembled from).
    body: Bytes,
    /// A ready-made single-IA announce frame (the common MRAI flush).
    announce: Bytes,
}

/// Entries per node before the encode cache is wiped (a crude bound; a
/// routing table that cycles through this many distinct outgoing IAs
/// inside one epoch is churning too hard to cache anyway).
const ENCODE_CACHE_CAP: usize = 8192;

/// One adjacency's static parameters plus its administrative state.
#[derive(Debug, Clone, Copy)]
struct LinkState {
    delay: SimTime,
    same_island: bool,
    speaks_dbgp: bool,
    model: LinkModel,
    up: bool,
    /// Gao-Rexford annotation, if any: how each end sees the other,
    /// ordered `(lower-id end's view, higher-id end's view)` to match
    /// the `link_key` normalization. `None` (every classic scenario)
    /// leaves the adjacency exempt from valley-free filtering.
    classes: Option<(PeerClass, PeerClass)>,
}

/// Counters the experiments read out.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Control-plane messages delivered.
    pub messages: u64,
    /// Total control-plane bytes delivered.
    pub bytes: u64,
    /// Out-of-band requests served.
    pub oob_requests: u64,
    /// Simulated time of the last processed event (convergence time).
    pub last_event_at: SimTime,
    /// Deliveries whose bytes failed to decode (corruption, or a driver
    /// injecting garbage). Previously these were silently swallowed.
    pub decode_errors: u64,
    /// Deliveries that arrived after their adjacency was torn down
    /// (in-flight messages racing a link failure or node restart).
    pub orphaned_deliveries: u64,
    /// Messages dropped in flight by a lossy [`LinkModel`].
    pub dropped_messages: u64,
    /// Extra copies delivered by a duplicating [`LinkModel`].
    pub duplicated_messages: u64,
    /// Messages with a byte flipped in flight by a corrupting
    /// [`LinkModel`].
    pub corrupted_messages: u64,
    /// Total `BestChanged` decisions across all nodes (route churn).
    pub best_changes: u64,
    /// IA bodies freshly serialized on the send path, plus withdraw-only
    /// frames (which carry no cacheable IA body).
    pub updates_encoded: u64,
    /// IA bodies whose wire bytes were reused from the Adj-RIB-Out
    /// encode cache instead of being re-serialized.
    pub encode_cache_hits: u64,
    /// Frames saved by deterministic update coalescing: each flushed
    /// batch of `k > 1` staged elements counts `k - 1` (the frames a
    /// per-change sender would have emitted for the same elements).
    /// Always 0 with coalescing off.
    pub frames_coalesced: u64,
}

/// Per-(node, prefix) route-churn record, maintained on every
/// `BestChanged` a speaker emits. The chaos crate's convergence tracker
/// diffs snapshots of these to measure per-fault churn and convergence
/// times.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefixChurn {
    /// How many times this node's best path for the prefix changed.
    pub best_changes: u64,
    /// Simulated time of the most recent change.
    pub last_change_at: SimTime,
}

/// One recorded best-path change, emitted by the bounded-horizon
/// oscillation capture ([`Sim::capture_best_changes`]). The stability
/// suite analyzes the tail of this sequence for periodicity: a
/// non-quiescent run whose `(node, prefix, next)` tail repeats is a
/// route-flapping livelock observed in the production engine, not just
/// in the reference model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BestChange {
    /// Simulated time of the change.
    pub at: SimTime,
    /// The node whose Loc-RIB changed.
    pub node: NodeId,
    /// The affected prefix.
    pub prefix: Ipv4Prefix,
    /// Whether a route is installed after the change (`false` =
    /// withdrawn / unreachable).
    pub installed: bool,
    /// The new FIB next hop; `None` when withdrawn or locally
    /// originated.
    pub next: Option<NodeId>,
}

/// Ring buffer behind [`Sim::capture_best_changes`]: keeps the most
/// recent `cap` changes (the tail is what periodicity analysis needs;
/// the transient before it is disposable) plus a total count.
#[derive(Debug, Clone, Default)]
struct BestChangeCapture {
    cap: usize,
    total: u64,
    records: VecDeque<BestChange>,
}

impl BestChangeCapture {
    fn record(&mut self, change: BestChange) {
        self.total += 1;
        if self.records.len() == self.cap {
            self.records.pop_front();
        }
        if self.cap > 0 {
            self.records.push_back(change);
        }
    }
}

/// The simulator.
pub struct Sim {
    nodes: Vec<Node>,
    /// Undirected link state, keyed by `(min, max)` node pair.
    links: BTreeMap<(NodeId, NodeId), LinkState>,
    services: HashMap<Ipv4Addr, (NodeId, Service)>,
    queue: EventRouter<Event>,
    stats: SimStats,
    /// Route-churn records per (node, prefix).
    churn: BTreeMap<(NodeId, Ipv4Prefix), PrefixChurn>,
    /// Seeded RNG driving link perturbation models. Only consumed for
    /// links with a non-default model, so fault-free runs are identical
    /// to runs before link models existed.
    rng: SimRng,
    /// Default one-way delay for the out-of-band bus.
    oob_delay: SimTime,
    /// Minimum route advertisement interval: outbound updates to a
    /// neighbor are coalesced per prefix over this window, BGP's
    /// classic damper for transient churn (and the reason real-world
    /// policy oscillations burn bandwidth instead of CPU). Latest state
    /// wins within a window.
    mrai: SimTime,
    /// Telemetry sink; `SinkHandle::none()` (one predictable branch per
    /// instrumentation site) unless [`Sim::enable_telemetry`] was called.
    sink: SinkHandle,
    /// The recorder behind `sink`, kept for watermark/scan queries.
    recorder: Option<Rc<TraceRecorder>>,
    /// Metrics registry mirrored from [`SimStats`] at snapshot time.
    metrics: SimMetrics,
    /// Worker pool for windowed (Tier B) parallel event processing;
    /// `None` means the classic serial engine.
    pool: Option<std::sync::Arc<dbgp_par::Pool>>,
    /// Minimum one-way delay across every link ever created (`u64::MAX`
    /// until the first link). Lower-bounds the PDES lookahead: no
    /// control-plane message can arrive sooner than this after the event
    /// that sent it.
    min_link_delay: SimTime,
    /// Whether any out-of-band request was ever injected. Once true, the
    /// lookahead must also respect `oob_delay` (requests and responses
    /// are scheduled that far ahead).
    oob_used: bool,
    /// Reusable window buffer for the Tier B drain/commit loop; kept on
    /// the struct so its capacity survives across windows.
    window: Vec<(SimTime, Event)>,
    /// The node partition behind the sharded engine, if [`Sim::set_shards`]
    /// was called (kept for edge-cut reporting).
    partition: Option<dbgp_par::Partition>,
    /// Link-delay accumulators: the calendar queue's day width is tuned
    /// to the mean link delay at first run.
    delay_sum: SimTime,
    delay_count: u64,
    width_tuned: bool,
    /// Reusable per-shard window/outcome buffers for the sharded
    /// engine's drain/commit cycle.
    shard_windows: Vec<Vec<(SimTime, u64, Event)>>,
    shard_outcomes: Vec<Vec<Option<ParOutcome>>>,
    /// Bounded-horizon oscillation capture; `None` (the default) is
    /// completely inert — no state, no branches taken, no output
    /// change, so pinned golden results are unaffected.
    capture: Option<BestChangeCapture>,
    /// Deterministic update coalescing ([`Sim::set_coalesce`]); off by
    /// default so the classic per-change wire stream is byte-identical
    /// to prior releases.
    coalesce: bool,
    /// Incremental decision fast path on every speaker (on by default;
    /// [`Sim::set_incremental`] turns it off for A/B measurement).
    incremental: bool,
    /// Speaker-staged sends absorbed at event commit, awaiting the
    /// time-barrier flush. Keyed `(node, neighbor, prefix)` so the
    /// flush order is canonical regardless of arrival order.
    staged_sends: BTreeMap<NodeId, PendingSends>,
    /// Commit-clock value of the most recent staging; the barrier
    /// flushes as soon as an event with a strictly later time commits.
    staged_at: SimTime,
    /// Per-phase wall-time accumulators ([`Sim::enable_phase_timing`]);
    /// `None` (the default) keeps the hot path to one predictable
    /// branch per instrumentation site.
    phase_timing: Option<Box<PhaseTimes>>,
}

/// Wall-clock nanoseconds attributed to each stage of the delivery hot
/// path, collected only when [`Sim::enable_phase_timing`] was called.
/// `decode` covers frame decoding, `decide` the receiving speakers'
/// import/decision work, `encode` outbound wire-byte assembly, and
/// `queue` delivery scheduling (including link-model application).
/// Timing forces the serial engine and skips traced runs, so enable it
/// on dedicated measurement runs only.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    /// Nanoseconds spent decoding inbound frames.
    pub decode_ns: u64,
    /// Nanoseconds spent in speaker receive/decision processing.
    pub decide_ns: u64,
    /// Nanoseconds spent assembling outbound wire bytes.
    pub encode_ns: u64,
    /// Nanoseconds spent scheduling deliveries onto links.
    pub queue_ns: u64,
}

/// Which [`PhaseTimes`] bucket an instrumented span belongs to.
#[derive(Clone, Copy)]
enum Phase {
    Decode,
    Decide,
    Encode,
    Queue,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// An empty simulation.
    pub fn new() -> Self {
        Sim {
            nodes: Vec::new(),
            links: BTreeMap::new(),
            services: HashMap::new(),
            queue: EventRouter::new(),
            stats: SimStats::default(),
            churn: BTreeMap::new(),
            rng: SimRng::new(0),
            oob_delay: 5,
            mrai: 30,
            sink: SinkHandle::none(),
            recorder: None,
            metrics: SimMetrics::new(),
            pool: None,
            min_link_delay: u64::MAX,
            oob_used: false,
            window: Vec::new(),
            partition: None,
            delay_sum: 0,
            delay_count: 0,
            width_tuned: false,
            shard_windows: Vec::new(),
            shard_outcomes: Vec::new(),
            capture: None,
            coalesce: false,
            incremental: true,
            staged_sends: BTreeMap::new(),
            staged_at: 0,
            phase_timing: None,
        }
    }

    /// Use `threads` threads of compute for event processing. `1` (the
    /// default) keeps the classic serial engine; more builds a worker
    /// pool and switches [`Sim::run`] to the lookahead-windowed parallel
    /// engine, which produces bit-identical results (see DESIGN.md §10).
    pub fn set_threads(&mut self, threads: usize) {
        self.pool = if threads <= 1 {
            None
        } else {
            Some(std::sync::Arc::new(dbgp_par::Pool::new(threads)))
        };
    }

    /// Share an existing worker pool instead of building one (drivers
    /// running many simulations reuse one pool across all of them). A
    /// 1-thread pool selects the serial engine.
    pub fn set_thread_pool(&mut self, pool: std::sync::Arc<dbgp_par::Pool>) {
        self.pool = if pool.threads() <= 1 { None } else { Some(pool) };
    }

    /// Threads of compute the engine will apply (1 = serial).
    pub fn threads(&self) -> usize {
        self.pool.as_ref().map_or(1, |p| p.threads())
    }

    /// Partition the event engine into `shards` per-shard calendar
    /// queues (Tier C). The partitioner is a METIS-lite greedy edge cut
    /// over the current link graph, so call this after the topology is
    /// built; `1` returns to the single-queue engine. Sharding is
    /// results-neutral at any shard and thread count — the router keeps
    /// one global `(time, seq)` order (DESIGN.md §12) — and only the
    /// combination of shards > 1, a worker pool, and an out-of-band-free
    /// run engages the sharded parallel path.
    pub fn set_shards(&mut self, shards: usize) {
        let shards = shards.clamp(1, u16::MAX as usize - 1);
        let edges: Vec<(usize, usize)> = self.links.keys().copied().collect();
        let part = dbgp_par::partition(self.nodes.len(), &edges, shards);
        // Mailbox hint: one window's cross-shard fan-out is bounded in
        // practice by the shard's share of the link count.
        let hint = (edges.len() / part.shards.max(1)).max(64);
        self.queue.set_shards(part.assignment.clone(), part.shards, hint);
        self.partition = Some(part);
    }

    /// Like [`Sim::set_shards`], but balancing the partition by node
    /// *degree* (an event-load proxy) instead of node count, via
    /// `dbgp_par::partition_weighted`. On hub-heavy topologies — the
    /// `hier_50k` tier-1 clique is the motivating case — count-balanced
    /// shards leave one shard carrying most of the event load; the
    /// weighted partition spreads the hubs at the price of a higher
    /// edge cut. Results are identical either way (sharding is
    /// results-neutral by construction); only wall-clock and the
    /// per-shard event split move.
    pub fn set_shards_weighted(&mut self, shards: usize) {
        let shards = shards.clamp(1, u16::MAX as usize - 1);
        let edges: Vec<(usize, usize)> = self.links.keys().copied().collect();
        let mut weights = vec![1u64; self.nodes.len()];
        for &(a, b) in &edges {
            weights[a] += 1;
            weights[b] += 1;
        }
        let part = dbgp_par::partition_weighted(self.nodes.len(), &edges, shards, &weights);
        let hint = (edges.len() / part.shards.max(1)).max(64);
        self.queue.set_shards(part.assignment.clone(), part.shards, hint);
        self.partition = Some(part);
    }

    /// Shards the event engine is partitioned into (1 = unsharded).
    pub fn shards(&self) -> usize {
        self.queue.shard_count()
    }

    /// Fraction of links whose endpoints landed in different shards
    /// (0.0 when unsharded).
    pub fn edge_cut_fraction(&self) -> f64 {
        self.partition.as_ref().map_or(0.0, |p| p.edge_cut_fraction())
    }

    /// Events committed through each shard so far.
    pub fn shard_event_counts(&self) -> Vec<u64> {
        self.queue.shard_processed().to_vec()
    }

    /// Attach a recording sink: every control-plane action from here on
    /// is recorded as a causally linked [`dbgp_telemetry::TraceEvent`],
    /// and each speaker's decision process starts explaining itself.
    /// Node -> ASN labels are registered with the recorder (nodes added
    /// later register at [`Sim::add_node`] time).
    pub fn enable_telemetry(&mut self, recorder: Rc<TraceRecorder>) {
        for (i, node) in self.nodes.iter().enumerate() {
            recorder.set_node_asn(i as u32, node.speaker.asn());
        }
        self.sink = SinkHandle::new(recorder.clone());
        self.recorder = Some(recorder);
        for (i, node) in self.nodes.iter_mut().enumerate() {
            node.speaker.set_telemetry(self.sink.clone(), i as u32);
        }
    }

    /// The recorder attached by [`Sim::enable_telemetry`], if any.
    pub fn trace_recorder(&self) -> Option<&Rc<TraceRecorder>> {
        self.recorder.as_ref()
    }

    /// A clone of the telemetry sink handle (no-op unless telemetry is
    /// enabled).
    pub fn telemetry_sink(&self) -> SinkHandle {
        self.sink.clone()
    }

    /// Change the minimum route advertisement interval (0 disables
    /// coalescing entirely).
    pub fn set_mrai(&mut self, mrai: SimTime) {
        self.mrai = mrai;
    }

    /// Enable deterministic update coalescing: every speaker stages its
    /// sends per (neighbor, prefix) — last write wins — and the engine
    /// flushes them as packed multi-NLRI frames the moment the global
    /// commit clock passes the staging time. Staging deltas are absorbed
    /// at event commit, which all three engines perform in the same
    /// `(time, seq)` order, so the flush points, frames and RNG draws
    /// are engine-independent. Off by default: the classic per-change
    /// wire stream stays byte-identical to prior releases. With
    /// `mrai > 0` staged sends join the per-neighbor MRAI window at the
    /// barrier instead of going out immediately. Coalesced frames carry
    /// no per-element trace causes. Toggle only while nothing is staged
    /// (before the first run, or between quiesced runs).
    pub fn set_coalesce(&mut self, on: bool) {
        debug_assert!(
            on || self.staged_sends.is_empty(),
            "disable coalescing only after the staged sends drained"
        );
        self.coalesce = on;
        for node in &mut self.nodes {
            node.speaker.set_coalesce(on);
        }
    }

    /// Whether deterministic update coalescing is on.
    pub fn coalescing(&self) -> bool {
        self.coalesce
    }

    /// Enable/disable the incremental decision fast path on every
    /// speaker, current and future. On by default; the off position
    /// exists for A/B measurement and differential testing against the
    /// always-full-scan decision process.
    pub fn set_incremental(&mut self, on: bool) {
        self.incremental = on;
        for node in &mut self.nodes {
            node.speaker.set_incremental(on);
        }
    }

    /// Full candidate scans the incremental decision fast path avoided,
    /// summed over all speakers. Engine-independent: the fast path runs
    /// in the node-local half of delivery processing, which is
    /// identical in the serial, windowed and sharded engines.
    pub fn full_scans_avoided(&self) -> u64 {
        self.nodes.iter().map(|n| n.speaker.full_scans_avoided()).sum()
    }

    /// Collect per-phase wall time (decode/decide/encode/queue) on the
    /// delivery hot path. Forces the serial engine, so enable it only
    /// on dedicated measurement runs — never on gated throughput legs.
    pub fn enable_phase_timing(&mut self) {
        self.phase_timing = Some(Box::default());
    }

    /// Accumulated hot-path phase times, if
    /// [`enable_phase_timing`](Self::enable_phase_timing) was called.
    pub fn phase_times(&self) -> Option<PhaseTimes> {
        self.phase_timing.as_deref().copied()
    }

    /// Turn on bounded-horizon oscillation capture: from here on the
    /// most recent `cap` best-path changes are kept (with their
    /// simulated times) for post-run periodicity analysis. Like an
    /// attached trace recorder, capture forces the serial engine — the
    /// record order *is* the analysis input, so it must be the serial
    /// commit order.
    pub fn capture_best_changes(&mut self, cap: usize) {
        self.capture = Some(BestChangeCapture { cap, total: 0, records: VecDeque::new() });
    }

    /// Total best-path changes observed since capture was enabled.
    pub fn captured_change_count(&self) -> u64 {
        self.capture.as_ref().map_or(0, |c| c.total)
    }

    /// The captured tail of best-path changes, oldest first (at most
    /// the `cap` passed to [`Sim::capture_best_changes`]).
    pub fn captured_changes(&self) -> Vec<BestChange> {
        self.capture.as_ref().map_or_else(Vec::new, |c| c.records.iter().copied().collect())
    }

    /// Re-seed the perturbation RNG. Two runs with the same construction
    /// sequence, seed and fault schedule are byte-identical.
    pub fn set_seed(&mut self, seed: u64) {
        self.rng = SimRng::new(seed);
    }

    /// Add an AS. Its node address is derived from the node index.
    pub fn add_node(&mut self, cfg: DbgpConfig) -> NodeId {
        let id = self.nodes.len();
        let addr = Ipv4Addr::new(10, (id >> 8) as u8, (id & 0xff) as u8, 1);
        let mut speaker = DbgpSpeaker::new(cfg);
        if let Some(recorder) = &self.recorder {
            recorder.set_node_asn(id as u32, speaker.asn());
            speaker.set_telemetry(self.sink.clone(), id as u32);
        }
        if self.coalesce {
            speaker.set_coalesce(true);
        }
        if !self.incremental {
            speaker.set_incremental(false);
        }
        self.nodes.push(Node {
            speaker,
            neighbor_nodes: BTreeMap::new(),
            ids_by_node: HashMap::new(),
            fib: PrefixTrie::new(),
            addr,
            oob_inbox: Vec::new(),
            next_neighbor_id: 0,
            pending_out: HashMap::new(),
            flush_armed: std::collections::HashSet::new(),
            encode_cache: PtrMap::default(),
            counters: NodeCounters::default(),
        });
        id
    }

    /// Pre-size the event queue (drivers call this with a multiple of
    /// the topology's edge count so large-run warmup doesn't regrow the
    /// heap).
    pub fn reserve_events(&mut self, additional: usize) {
        self.queue.reserve(additional);
    }

    /// Number of nodes in the simulation.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The node's own address.
    pub fn node_addr(&self, node: NodeId) -> Ipv4Addr {
        self.nodes[node].addr
    }

    /// Access a node's speaker.
    pub fn speaker(&self, node: NodeId) -> &DbgpSpeaker {
        &self.nodes[node].speaker
    }

    /// Mutable access to a node's speaker (to register decision modules).
    pub fn speaker_mut(&mut self, node: NodeId) -> &mut DbgpSpeaker {
        &mut self.nodes[node].speaker
    }

    /// Statistics so far.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Events still scheduled (a quiescent simulation has none).
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Total events processed since construction (the throughput
    /// numerator `sim_bench` reports).
    pub fn events_processed(&self) -> u64 {
        self.queue.processed()
    }

    /// Route-churn records per (node, prefix), cumulative since the
    /// start of the run.
    pub fn churn(&self) -> &BTreeMap<(NodeId, Ipv4Prefix), PrefixChurn> {
        &self.churn
    }

    /// This node's per-incarnation counters (reset on restart, with the
    /// incarnation recorded in `generation`).
    pub fn node_counters(&self, node: NodeId) -> NodeCounters {
        self.nodes[node].counters
    }

    /// A `dbgp-metrics/v1` snapshot: the engine-wide registry (totals
    /// mirrored from [`SimStats`], `accumulate` semantics) plus a
    /// `nodes` array of per-node `reset-on-restart` counters, each with
    /// its own restart generation.
    pub fn metrics_snapshot(&mut self) -> Value {
        let s = self.stats;
        let m = &mut self.metrics;
        m.registry.set_counter(m.messages, s.messages);
        m.registry.set_counter(m.bytes, s.bytes);
        m.registry.set_counter(m.best_changes, s.best_changes);
        m.registry.set_counter(m.decode_errors, s.decode_errors);
        m.registry.set_counter(m.orphaned_deliveries, s.orphaned_deliveries);
        m.registry.set_counter(m.dropped_messages, s.dropped_messages);
        m.registry.set_counter(m.duplicated_messages, s.duplicated_messages);
        m.registry.set_counter(m.corrupted_messages, s.corrupted_messages);
        m.registry.set_counter(m.oob_requests, s.oob_requests);
        m.registry.set_counter(m.updates_encoded, s.updates_encoded);
        m.registry.set_counter(m.encode_cache_hits, s.encode_cache_hits);
        m.registry.set_gauge(m.pending_events, self.queue.len() as i64);
        m.registry.set_gauge(m.last_event_at, s.last_event_at as i64);
        let mut snap = m.registry.snapshot(self.queue.now());
        let nodes: Vec<Value> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let c = n.counters;
                Value::Object(vec![
                    ("node".into(), Value::UInt(i as u64)),
                    ("asn".into(), Value::UInt(u64::from(n.speaker.asn()))),
                    ("generation".into(), Value::UInt(c.generation)),
                    ("semantics".into(), Value::String("reset-on-restart".into())),
                    ("messages_in".into(), Value::UInt(c.messages_in)),
                    ("updates_in".into(), Value::UInt(c.updates_in)),
                    ("withdraws_in".into(), Value::UInt(c.withdraws_in)),
                    ("best_changes".into(), Value::UInt(c.best_changes)),
                ])
            })
            .collect();
        if let Value::Object(fields) = &mut snap {
            fields.push(("nodes".into(), Value::Array(nodes)));
        }
        snap
    }

    /// Snapshot every node's chosen best paths, for convergence diffing
    /// via [`RibSnapshot::diff`].
    pub fn rib_snapshot(&self) -> RibSnapshot {
        let mut snap = RibSnapshot { at: self.queue.now(), entries: BTreeMap::new() };
        for (node, n) in self.nodes.iter().enumerate() {
            for (prefix, chosen) in n.speaker.routes() {
                let via_as = chosen
                    .neighbor
                    .and_then(|id| n.neighbor_nodes.get(&id))
                    .map(|&peer| self.nodes[peer].speaker.asn());
                snap.entries.insert(
                    (node as u32, *prefix),
                    RibEntry {
                        path: render_path(&chosen.ia),
                        hops: chosen.ia.hop_count() as u32,
                        via_as,
                    },
                );
            }
        }
        snap
    }

    /// This node's island id, if it is an island member.
    fn island_of(&self, node: NodeId) -> Option<u32> {
        self.nodes[node].speaker.config().island.as_ref().map(|i| i.id.0)
    }

    /// Sync the sink's ambient clock to simulation time so events the
    /// speakers record from inside their pipelines are stamped correctly.
    #[inline]
    fn sync_trace_clock(&self) {
        if self.sink.enabled() {
            self.sink.set_now(self.queue.now());
        }
    }

    /// Connect two nodes with symmetric one-way `delay`. `same_island`
    /// marks both ends as intra-island peers.
    pub fn link(&mut self, a: NodeId, b: NodeId, delay: SimTime, same_island: bool) {
        self.link_with(a, b, delay, same_island, true)
    }

    /// Connect with full control over D-BGP capability (`speaks_dbgp =
    /// false` models a legacy BGP-only adjacency).
    pub fn link_with(
        &mut self,
        a: NodeId,
        b: NodeId,
        delay: SimTime,
        same_island: bool,
        speaks_dbgp: bool,
    ) {
        self.link_full(a, b, delay, same_island, speaks_dbgp, None)
    }

    /// Connect a customer to its transit provider (Gao-Rexford): the
    /// customer sees a [`PeerClass::Provider`], the provider a
    /// [`PeerClass::Customer`]. Valley-free filtering only activates on
    /// speakers whose `FilterConfig::valley_free` is set.
    pub fn link_customer_provider(&mut self, customer: NodeId, provider: NodeId, delay: SimTime) {
        let classes = if customer < provider {
            (PeerClass::Provider, PeerClass::Customer)
        } else {
            (PeerClass::Customer, PeerClass::Provider)
        };
        self.link_full(customer, provider, delay, false, true, Some(classes));
    }

    /// Connect two settlement-free lateral peers (Gao-Rexford).
    pub fn link_peering(&mut self, a: NodeId, b: NodeId, delay: SimTime) {
        self.link_full(a, b, delay, false, true, Some((PeerClass::Peer, PeerClass::Peer)));
    }

    fn link_full(
        &mut self,
        a: NodeId,
        b: NodeId,
        delay: SimTime,
        same_island: bool,
        speaks_dbgp: bool,
        classes: Option<(PeerClass, PeerClass)>,
    ) {
        self.links.insert(
            link_key(a, b),
            LinkState {
                delay,
                same_island,
                speaks_dbgp,
                model: LinkModel::reliable(),
                up: true,
                classes,
            },
        );
        // Lookahead bound: once a link this fast exists, windows may
        // never span more than its delay. (Failing the link does not
        // relax the bound — a conservative lookahead is always safe.)
        self.min_link_delay = self.min_link_delay.min(delay);
        self.delay_sum = self.delay_sum.saturating_add(delay);
        self.delay_count += 1;
        for (me, peer) in [(a, b), (b, a)] {
            self.establish(me, peer, same_island, speaks_dbgp, "link-up", None);
        }
    }

    /// Attach a perturbation model to an existing link (both directions).
    ///
    /// Panics if the nodes were never linked: a chaos plan naming a
    /// non-existent link is a scenario bug worth failing loudly on.
    pub fn set_link_model(&mut self, a: NodeId, b: NodeId, model: LinkModel) {
        self.links
            .get_mut(&link_key(a, b))
            .unwrap_or_else(|| panic!("set_link_model: no link {a}-{b}"))
            .model = model;
    }

    /// Whether the link between two nodes exists and is up.
    pub fn link_is_up(&self, a: NodeId, b: NodeId) -> bool {
        self.links.get(&link_key(a, b)).is_some_and(|l| l.up)
    }

    /// All links ever created, as `(a, b, up)` with `a < b`, in
    /// deterministic order.
    pub fn links(&self) -> impl Iterator<Item = (NodeId, NodeId, bool)> + '_ {
        self.links.iter().map(|(&(a, b), l)| (a, b, l.up))
    }

    /// Register an out-of-band service at `addr`, owned by `node`.
    pub fn register_service(&mut self, node: NodeId, addr: Ipv4Addr, service: Service) {
        self.services.insert(addr, (node, service));
    }

    /// Originate a prefix at a node.
    pub fn originate(&mut self, node: NodeId, prefix: Ipv4Prefix) {
        self.sync_trace_clock();
        let root = self.sink.record_at(
            self.queue.now(),
            node as u32,
            None,
            TraceKind::Originate { prefix },
        );
        let addr = self.nodes[node].addr;
        self.sink.set_ambient_parent(root);
        let outputs = self.nodes[node].speaker.originate(prefix, addr);
        self.sink.set_ambient_parent(None);
        self.apply_local(node, &outputs);
        self.dispatch(node, outputs, root);
    }

    /// Originate a hand-built IA at a node (replacement protocols use
    /// this to control descriptors).
    pub fn originate_ia(&mut self, node: NodeId, ia: dbgp_wire::Ia) {
        self.sync_trace_clock();
        let root = self.sink.record_at(
            self.queue.now(),
            node as u32,
            None,
            TraceKind::Originate { prefix: ia.prefix },
        );
        self.sink.set_ambient_parent(root);
        let outputs = self.nodes[node].speaker.originate_ia(ia);
        self.sink.set_ambient_parent(None);
        self.apply_local(node, &outputs);
        self.dispatch(node, outputs, root);
    }

    /// Withdraw a locally originated prefix.
    pub fn withdraw(&mut self, node: NodeId, prefix: Ipv4Prefix) {
        self.sync_trace_clock();
        let root = self.sink.record_at(
            self.queue.now(),
            node as u32,
            None,
            TraceKind::OriginWithdraw { prefix },
        );
        self.sink.set_ambient_parent(root);
        let outputs = self.nodes[node].speaker.withdraw_origin(prefix);
        self.sink.set_ambient_parent(None);
        self.apply_local(node, &outputs);
        self.dispatch(node, outputs, root);
    }

    /// Fail the link between two nodes: both speakers see the neighbor
    /// go down, flush its routes, and re-converge (the link-failure
    /// events of §3.5, "about 172 per day" in the wild). The link's
    /// parameters are remembered so [`Sim::restore_link`] can undo this.
    pub fn fail_link(&mut self, a: NodeId, b: NodeId) {
        match self.links.get_mut(&link_key(a, b)) {
            Some(l) if l.up => l.up = false,
            _ => return,
        }
        self.sync_trace_clock();
        let root = self.sink.record_at(
            self.queue.now(),
            a as u32,
            None,
            TraceKind::LinkDown { a: a as u32, b: b as u32 },
        );
        for (me, peer) in [(a, b), (b, a)] {
            self.teardown_neighbor(me, peer, "link-down", root);
        }
    }

    /// Re-establish a previously failed link: the inverse of
    /// [`Sim::fail_link`]. Both ends run session bring-up again — fresh
    /// neighbor IDs, and each speaker re-advertises its full Adj-RIB-Out
    /// to the other, exactly like a BGP session re-establishing after an
    /// outage.
    pub fn restore_link(&mut self, a: NodeId, b: NodeId) {
        let (same_island, speaks_dbgp) = match self.links.get_mut(&link_key(a, b)) {
            Some(l) if !l.up => {
                l.up = true;
                (l.same_island, l.speaks_dbgp)
            }
            _ => return,
        };
        self.sync_trace_clock();
        let root = self.sink.record_at(
            self.queue.now(),
            a as u32,
            None,
            TraceKind::LinkUp { a: a as u32, b: b as u32 },
        );
        for (me, peer) in [(a, b), (b, a)] {
            self.establish(me, peer, same_island, speaks_dbgp, "link-up", root);
        }
    }

    /// Restart a node: every one of its sessions resets and then comes
    /// back up with a full-table re-transfer in both directions — the
    /// paper's §3.5 concern that D-BGP's per-session state must survive
    /// ASes rebooting routers. Neighbors see the peer flap; the
    /// restarting node drops all queued outbound state.
    pub fn restart_node(&mut self, node: NodeId) {
        let peers: Vec<(NodeId, bool, bool)> = self
            .links
            .iter()
            .filter(|(&(x, y), l)| l.up && (x == node || y == node))
            .map(|(&(x, y), l)| (if x == node { y } else { x }, l.same_island, l.speaks_dbgp))
            .collect();
        // The restart opens a new incarnation: the node's generation
        // bumps and the registry-wide generation follows (S2 semantics —
        // engine totals keep accumulating, per-node counters reset).
        let generation = self.nodes[node].counters.generation + 1;
        self.metrics.registry.on_restart();
        self.metrics.registry.inc(self.metrics.node_restarts, 1);
        self.sync_trace_clock();
        let root = self.sink.record_at(
            self.queue.now(),
            node as u32,
            None,
            TraceKind::NodeRestart { generation },
        );
        for &(peer, ..) in &peers {
            self.teardown_neighbor(node, peer, "node-restart", root);
            self.teardown_neighbor(peer, node, "node-restart", root);
        }
        // Counters reset after the teardown: the going-down route losses
        // belong to the old incarnation, the new one counts only its
        // re-convergence.
        self.nodes[node].counters = NodeCounters { generation, ..NodeCounters::default() };
        // The rebooting router loses its coalescing buffers, encode
        // cache and any undelivered out-of-band responses.
        self.nodes[node].pending_out.clear();
        self.nodes[node].flush_armed.clear();
        self.nodes[node].oob_inbox.clear();
        self.nodes[node].encode_cache.clear();
        self.staged_sends.remove(&node);
        for &(peer, same_island, speaks_dbgp) in &peers {
            self.establish(node, peer, same_island, speaks_dbgp, "node-restart", root);
            self.establish(peer, node, same_island, speaks_dbgp, "node-restart", root);
        }
    }

    /// Send an out-of-band payload from a node to a service address.
    pub fn oob_send(&mut self, from: NodeId, to_addr: Ipv4Addr, payload: Vec<u8>) {
        self.oob_used = true;
        self.queue.schedule(self.oob_delay, Event::OobRequest { to_addr, from, payload });
    }

    /// Out-of-band responses a node has received so far.
    pub fn oob_inbox(&self, node: NodeId) -> &[(Ipv4Addr, Vec<u8>)] {
        &self.nodes[node].oob_inbox
    }

    /// The node's forwarding table (prefix -> next-hop node; `None` =
    /// delivered locally).
    pub fn fib(&self, node: NodeId) -> &PrefixTrie<Option<NodeId>> {
        &self.nodes[node].fib
    }

    /// Schedule raw bytes for delivery as if they arrived on the wire
    /// from `from` — a hook for tests and chaos drivers to model
    /// garbage or stale traffic without a sending speaker.
    pub fn inject_raw(&mut self, from: NodeId, to: NodeId, delay: SimTime, bytes: Vec<u8>) {
        self.queue
            .schedule(delay, Event::Deliver { to, from, bytes: Bytes::from(bytes), trace: None });
    }

    /// Run until no events remain or `max_time` is reached. Events at
    /// exactly `max_time` are processed; events beyond it stay queued
    /// (and the clock stays at or before `max_time`), so a later `run`
    /// call picks up exactly where this one stopped. Returns the
    /// statistics snapshot.
    pub fn run(&mut self, max_time: SimTime) -> SimStats {
        self.tune_width();
        match self.pool.clone() {
            Some(pool)
                if self.parallel_safe() && self.queue.shard_count() > 1 && !self.oob_used =>
            {
                self.run_sharded(&pool, max_time)
            }
            Some(pool) if self.parallel_safe() => self.run_windowed(&pool, max_time),
            _ => self.run_serial(max_time),
        }
    }

    /// Derive the calendar-queue day width from the mean link delay
    /// (once, at first run): one day spanning roughly one typical delay
    /// keeps each lookahead window's events within O(1) buckets. A pure
    /// throughput knob — pop order is exact `(time, seq)` at any width.
    fn tune_width(&mut self) {
        if self.width_tuned {
            return;
        }
        self.width_tuned = true;
        if self.delay_count == 0 {
            return;
        }
        let mean = (self.delay_sum / self.delay_count).max(1);
        let shift = (SimTime::BITS - mean.leading_zeros()).min(12);
        self.queue.set_width_shift(shift);
    }

    /// Whether the windowed parallel engine may run: telemetry handles
    /// hold an `Rc` and are not thread-safe, so any attached recorder or
    /// per-speaker sink forces the serial engine. (Telemetry also changes
    /// the processing granularity, so the serial engine is the only one
    /// that can honor per-element trace causality anyway.) Oscillation
    /// capture forces serial for the same reason: its record order is
    /// the analysis input.
    fn parallel_safe(&self) -> bool {
        self.recorder.is_none()
            && !self.sink.is_attached()
            && self.capture.is_none()
            && self.phase_timing.is_none()
            && self.nodes.iter().all(|n| !n.speaker.telemetry_attached())
    }

    /// The classic serial event loop.
    fn run_serial(&mut self, max_time: SimTime) -> SimStats {
        loop {
            while let Some(next_at) = self.queue.peek_time() {
                if next_at > max_time {
                    break;
                }
                let (at, event) = self.queue.pop().expect("peeked event must pop");
                self.handle_event(at, event);
            }
            // End-of-run drain: a quiescing queue can leave coalesced
            // sends staged (nothing later ever committed). Flushing may
            // schedule fresh deliveries at or before `max_time`, so loop
            // until both the queue and the staging area are exhausted.
            if self.staged_sends.is_empty() {
                break;
            }
            self.flush_staged();
        }
        self.stats
    }

    /// Process one event exactly as the serial loop always has. The
    /// caller has already advanced the queue clock to `at` (by popping,
    /// or via the router's `set_now` during a window replay).
    fn handle_event(&mut self, at: SimTime, event: Event) {
        self.maybe_flush_staged(at);
        self.stats.last_event_at = at;
        {
            match event {
                Event::Deliver { to, from, bytes, trace } => {
                    self.stats.messages += 1;
                    self.stats.bytes += bytes.len() as u64;
                    self.nodes[to].counters.messages_in += 1;
                    self.metrics.registry.observe(self.metrics.message_bytes, bytes.len() as u64);
                    let traced = self.sink.enabled();
                    let deliver_id = if traced {
                        self.sink.set_now(at);
                        self.sink.record_at(
                            at,
                            to as u32,
                            trace.as_ref().map(|t| t.frame),
                            TraceKind::Deliver { from: from as u32, bytes: bytes.len() as u32 },
                        )
                    } else {
                        None
                    };
                    let mut buf = bytes;
                    let t = self.phase_now();
                    let decoded = DbgpUpdate::decode(&mut buf);
                    self.phase_add(t, Phase::Decode);
                    let Ok(update) = decoded else {
                        self.stats.decode_errors += 1;
                        if traced {
                            self.sink.record_at(
                                at,
                                to as u32,
                                deliver_id,
                                TraceKind::DecodeError { from: from as u32 },
                            );
                        }
                        return;
                    };
                    let Some(&from_id) = self.nodes[to].ids_by_node.get(&from) else {
                        self.stats.orphaned_deliveries += 1;
                        return;
                    };
                    self.nodes[to].counters.withdraws_in += update.withdrawn.len() as u64;
                    self.nodes[to].counters.updates_in += update.ias.len() as u64;
                    if traced {
                        // Per-element processing: behaviorally identical
                        // to the batch path below (the speaker never
                        // reads sim-side state that `apply_local` or
                        // `dispatch` mutate, and outputs keep the same
                        // total order), but it lets each Decode event
                        // parent exactly the outputs it causes.
                        let causes: &[EventId] =
                            trace.as_deref().map(|t| t.causes.as_slice()).unwrap_or(&[]);
                        let mut element = 0usize;
                        for prefix in update.withdrawn {
                            let parent = causes.get(element).copied().or(deliver_id);
                            element += 1;
                            let decode_id = self.sink.record_at(
                                at,
                                to as u32,
                                parent,
                                TraceKind::Decode { prefix, from: from as u32, withdraw: true },
                            );
                            self.sink.set_ambient_parent(decode_id);
                            let outputs = self.nodes[to].speaker.receive_withdraw(from_id, prefix);
                            self.sink.set_ambient_parent(None);
                            self.apply_local(to, &outputs);
                            self.dispatch(to, outputs, decode_id);
                        }
                        for ia in update.ias {
                            let parent = causes.get(element).copied().or(deliver_id);
                            element += 1;
                            let decode_id = self.sink.record_at(
                                at,
                                to as u32,
                                parent,
                                TraceKind::Decode {
                                    prefix: ia.prefix,
                                    from: from as u32,
                                    withdraw: false,
                                },
                            );
                            self.sink.set_ambient_parent(decode_id);
                            let outputs = self.nodes[to].speaker.receive_ia(from_id, ia);
                            self.sink.set_ambient_parent(None);
                            self.apply_local(to, &outputs);
                            self.dispatch(to, outputs, decode_id);
                        }
                    } else {
                        let t = self.phase_now();
                        let mut outputs = Vec::new();
                        for prefix in update.withdrawn {
                            outputs
                                .extend(self.nodes[to].speaker.receive_withdraw(from_id, prefix));
                        }
                        for ia in update.ias {
                            outputs.extend(self.nodes[to].speaker.receive_ia(from_id, ia));
                        }
                        self.phase_add(t, Phase::Decide);
                        self.apply_local(to, &outputs);
                        self.dispatch(to, outputs, None);
                    }
                }
                Event::Flush { node, neighbor } => {
                    self.flush(node, neighbor);
                }
                Event::OobRequest { to_addr, from, payload } => {
                    self.stats.oob_requests += 1;
                    self.serve_oob(to_addr, from, payload);
                }
                Event::OobResponse { to, from_addr, payload } => {
                    self.nodes[to].oob_inbox.push((from_addr, payload));
                }
            }
        }
    }

    // ----- windowed parallel engine (Tier B) -----------------------------

    /// The conservative PDES lookahead: the minimum delay any event
    /// processed now can put between itself and an event it generates.
    /// Every event in the half-open window `[t0, t0 + lookahead)` is
    /// therefore causally independent of every *generated* event — all
    /// generated events land at or beyond the window's end, so the whole
    /// window can be drained up front. Three kinds of events are ever
    /// generated during a run:
    ///
    /// - `Deliver`, scheduled at least `min_link_delay` ahead (jitter
    ///   only adds delay; a duplicate is scheduled one unit later still);
    /// - `Flush`, scheduled `mrai` ahead (never generated when `mrai` is
    ///   0 — coalescing is off and sends go out inline);
    /// - `OobResponse`, scheduled `oob_delay` ahead (only once an
    ///   out-of-band request exists, tracked by `oob_used`).
    fn lookahead(&self) -> SimTime {
        let mut l = self.min_link_delay;
        if self.mrai > 0 {
            l = l.min(self.mrai);
        }
        if self.oob_used {
            l = l.min(self.oob_delay);
        }
        l
    }

    /// The windowed engine: drain one safe lookahead window at a time,
    /// run the node-local half of every `Deliver` on the pool (sharded
    /// by destination node), then commit all global effects serially in
    /// the original pop order. Produces bit-identical stats, metrics,
    /// RIBs, churn records and event streams to [`Sim::run_serial`] —
    /// the safety argument is spelled out in DESIGN.md §10.
    fn run_windowed(&mut self, pool: &dbgp_par::Pool, max_time: SimTime) -> SimStats {
        let mut low_windows = 0usize;
        let mut serial_drain = false;
        loop {
            while let Some(t0) = self.queue.peek_time() {
                if t0 > max_time {
                    break;
                }
                // Events at exactly `t0 + lookahead - 1` still precede every
                // event generated inside the window, hence the inclusive
                // horizon at lookahead - 1. A zero lookahead (a delay-0 link
                // exists) degrades to single-timestamp windows, which are
                // still safe: generated events carry later sequence numbers
                // than everything drained before they existed.
                let horizon = t0.saturating_add(self.lookahead().saturating_sub(1)).min(max_time);
                let mut window = std::mem::take(&mut self.window);
                self.queue.drain_upto(horizon, &mut window);
                if serial_drain {
                    // Permanent serial fallback: the run has shown it
                    // cannot feed the pool, so skip even the per-window
                    // bucketing and replay directly.
                    for (at, event) in window.drain(..) {
                        self.queue.set_now(at);
                        self.handle_event(at, event);
                    }
                } else {
                    let delivers = self.process_window(pool, &mut window);
                    // Rolling under-threshold streak: a workload whose
                    // windows stay this sparse (waxman50_churn-sized
                    // topologies) pays pool wakeups for nothing, so
                    // after enough consecutive sparse windows the run
                    // drops to a serial drain for good.
                    if delivers < Self::SERIAL_FALLBACK_THRESHOLD {
                        low_windows += 1;
                        serial_drain = low_windows >= Self::SERIAL_FALLBACK_WINDOWS;
                    } else {
                        low_windows = 0;
                    }
                }
                window.clear();
                self.window = window;
            }
            // End-of-run drain, exactly as in the serial engine.
            if self.staged_sends.is_empty() {
                break;
            }
            self.flush_staged();
        }
        self.stats
    }

    /// Below this many deliveries in one lookahead window the pool's
    /// wakeup cost dwarfs the speaker work, so the window replays
    /// serially. Purely a performance knob — both paths produce
    /// identical results. `sim_bench` reports this value as
    /// `serial_fallback_threshold`.
    pub const SERIAL_FALLBACK_THRESHOLD: usize = 8;

    /// After this many *consecutive* under-threshold windows the
    /// windowed engine permanently switches to a serial drain for the
    /// rest of the run (small topologies never grow denser windows, and
    /// the per-window bucketing itself costs more than it saves).
    pub const SERIAL_FALLBACK_WINDOWS: usize = 8;

    /// Process one drained window; returns the window's delivery count
    /// (the serial-fallback signal). Windows that cannot profit from
    /// (or are not eligible for) the parallel phase replay serially
    /// through [`Sim::handle_event`], which is trivially identical to
    /// the serial engine.
    fn process_window(
        &mut self,
        pool: &dbgp_par::Pool,
        window: &mut Vec<(SimTime, Event)>,
    ) -> usize {
        let mut by_node: BTreeMap<NodeId, Vec<usize>> = BTreeMap::new();
        let mut delivers = 0usize;
        let mut plain = true;
        for (i, (_, event)) in window.iter().enumerate() {
            match event {
                Event::Deliver { to, .. } => {
                    delivers += 1;
                    by_node.entry(*to).or_default().push(i);
                }
                Event::Flush { .. } => {}
                // Out-of-band service handlers mutate speaker modules
                // that same-window deliveries may read (e.g. Wiser
                // costs), so such windows keep strict serial order.
                Event::OobRequest { .. } | Event::OobResponse { .. } => plain = false,
            }
        }
        if !plain || delivers < Self::SERIAL_FALLBACK_THRESHOLD || by_node.len() < 2 {
            for (at, event) in window.drain(..) {
                self.queue.set_now(at);
                self.handle_event(at, event);
            }
            return delivers;
        }

        // --- parallel phase: node-local speaker work, sharded by node.
        //
        // Shards are balanced greedily by delivery count; the assignment
        // cannot affect results because every outcome is scattered back
        // by event index before the serial commit below.
        let threads = pool.threads();
        let node_list: Vec<(NodeId, Vec<usize>)> =
            std::mem::take(&mut by_node).into_iter().collect();
        let mut order: Vec<usize> = (0..node_list.len()).collect();
        order.sort_by_key(|&k| std::cmp::Reverse(node_list[k].1.len()));
        let base = self.nodes.as_mut_ptr();
        let mut shard_jobs: Vec<Vec<(NodeSlot, &[usize])>> =
            (0..threads).map(|_| Vec::new()).collect();
        let mut shard_load = vec![0usize; threads];
        for k in order {
            let (nid, idxs) = &node_list[k];
            let s = shard_load
                .iter()
                .enumerate()
                .min_by_key(|&(_, load)| *load)
                .map(|(s, _)| s)
                .expect("threads >= 1");
            shard_load[s] += idxs.len();
            // SAFETY (pointer creation): `nid` indexes into `self.nodes`
            // (it came from a Deliver event's destination, validated at
            // link setup); each node id appears in exactly one shard.
            shard_jobs[s].push((NodeSlot(unsafe { base.add(*nid) }), idxs.as_slice()));
        }
        let mut shard_out: Vec<Vec<(usize, ParOutcome)>> =
            (0..threads).map(|_| Vec::new()).collect();
        {
            let window_ref: &[(SimTime, Event)] = window;
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = shard_jobs
                .into_iter()
                .zip(shard_out.iter_mut())
                .filter(|(shard, _)| !shard.is_empty())
                .map(|(shard, out)| {
                    Box::new(move || {
                        for (slot, idxs) in shard {
                            // SAFETY (dereference): the shards partition
                            // node ids, so this `&mut Node` aliases no
                            // other thread's; `&mut self` keeps the rest
                            // of the program out of `self.nodes` until
                            // the batch barrier in `run_batch` returns.
                            // `Node` contains no thread-unsafe state
                            // here: `parallel_safe` proved every
                            // `SinkHandle` is the Rc-free `none()`
                            // variant, and `DecisionModule: Send` bounds
                            // the boxed modules.
                            let node = unsafe { &mut *slot.0 };
                            for &i in idxs {
                                let (_, event) = &window_ref[i];
                                let Event::Deliver { from, bytes, .. } = event else {
                                    unreachable!("by_node only indexes Deliver events")
                                };
                                out.push((i, process_deliver(node, *from, bytes)));
                            }
                        }
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run_batch(jobs);
        }
        let mut outcomes: Vec<Option<ParOutcome>> = Vec::with_capacity(window.len());
        outcomes.resize_with(window.len(), || None);
        for out in shard_out {
            for (i, outcome) in out {
                outcomes[i] = Some(outcome);
            }
        }

        // --- commit phase: all global effects, serially, in pop order.
        //
        // Every mutation of shared state — engine stats, metrics, FIBs,
        // churn records, outbound coalescing, encodes, RNG draws in
        // `deliver_on_link`, and event scheduling (hence sequence-number
        // assignment) — happens here, in exactly the order the serial
        // engine would have performed it, under the clock value the
        // serial engine would have observed.
        for (i, (at, event)) in window.iter().enumerate() {
            self.queue.set_now(*at);
            self.maybe_flush_staged(*at);
            self.stats.last_event_at = *at;
            match event {
                Event::Deliver { to, bytes, .. } => {
                    self.stats.messages += 1;
                    self.stats.bytes += bytes.len() as u64;
                    self.metrics.registry.observe(self.metrics.message_bytes, bytes.len() as u64);
                    match outcomes[i].take().expect("every Deliver got an outcome") {
                        ParOutcome::DecodeError => self.stats.decode_errors += 1,
                        ParOutcome::Orphaned => self.stats.orphaned_deliveries += 1,
                        ParOutcome::Processed(outputs, staged) => {
                            self.apply_local(*to, &outputs);
                            self.dispatch(*to, outputs, None);
                            self.absorb_staged(*to, staged);
                        }
                    }
                }
                Event::Flush { node, neighbor } => self.flush(*node, *neighbor),
                Event::OobRequest { .. } | Event::OobResponse { .. } => {
                    unreachable!("windows containing out-of-band events replay serially")
                }
            }
        }
        delivers
    }

    // ----- sharded parallel engine (Tier C) ------------------------------

    /// The sharded engine: each shard's worker merges its staged
    /// mailbox, drains its own calendar queue to the window horizon, and
    /// runs the node-local half of its `Deliver`s — all concurrently,
    /// with no shared queue — then a serial commit k-way-merges the
    /// shard windows on the global `(time, seq)` key. Commit-side
    /// schedules go to per-shard mailboxes (conservative lookahead puts
    /// them beyond the horizon, so no worker ever misses one).
    ///
    /// Bit-identical to [`Sim::run_serial`] by the same argument as the
    /// windowed engine (DESIGN.md §10, §12): the parallel phase computes
    /// only node-local speaker outcomes, the shards partition the nodes,
    /// and every globally visible effect — stats, metrics, FIBs, churn,
    /// RNG draws, sequence assignment — happens in the commit loop in
    /// exactly the serial order.
    fn run_sharded(&mut self, pool: &dbgp_par::Pool, max_time: SimTime) -> SimStats {
        /// Below this many pending events the pool barrier dwarfs the
        /// speaker work; flush staging and replay serially. A pure
        /// performance knob — both paths produce identical results.
        const MIN_PARALLEL_WINDOW: usize = 64;

        let shards = self.queue.shard_count();
        let mut swin = std::mem::take(&mut self.shard_windows);
        let mut souts = std::mem::take(&mut self.shard_outcomes);
        swin.resize_with(shards, Vec::new);
        souts.resize_with(shards, Vec::new);
        self.queue.begin_staging();
        'drain: loop {
            while let Some(t0) = self.queue.peek_time() {
                if t0 > max_time {
                    break;
                }
                // Same inclusive-horizon arithmetic as the windowed engine.
                let horizon = t0.saturating_add(self.lookahead().saturating_sub(1)).min(max_time);
                if self.queue.len() < MIN_PARALLEL_WINDOW {
                    self.queue.flush_staging();
                    let mut window = std::mem::take(&mut self.window);
                    self.queue.drain_upto(horizon, &mut window);
                    for (at, event) in window.drain(..) {
                        self.queue.set_now(at);
                        self.handle_event(at, event);
                    }
                    self.window = window;
                    continue;
                }

                // --- parallel phase: one worker per shard, end to end.
                {
                    let n_nodes = self.nodes.len();
                    let base = self.nodes.as_mut_ptr();
                    let (queues, chans, node_shard) = self.queue.split_shards();
                    let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = queues
                        .iter_mut()
                        .zip(chans.iter_mut())
                        .zip(swin.iter_mut().zip(souts.iter_mut()))
                        .enumerate()
                        .map(|(s, ((queue, chan), (win, outs)))| {
                            let node_shard: &[u16] = node_shard;
                            let nbase = NodeBase(base);
                            Box::new(move || {
                                // Rebind so the closure captures the Send
                                // wrapper, not its raw-pointer field (2021
                                // closures capture disjoint fields).
                                let nbase = nbase;
                                for (at, seq, e) in chan.drain() {
                                    queue.insert_keyed(at, seq, e);
                                }
                                win.clear();
                                queue.drain_keyed_upto(horizon, win);
                                outs.clear();
                                for (_, _, event) in win.iter() {
                                    if let Event::Deliver { to, from, bytes, .. } = event {
                                        // Hard ownership check: the router
                                        // pins every Deliver to its node's
                                        // shard, so the `&mut Node` below
                                        // aliases no other worker's.
                                        assert!(
                                            *to < n_nodes
                                                && node_shard.get(*to).copied().unwrap_or(0)
                                                    as usize
                                                    == s,
                                            "delivery to node {to} outside shard {s}"
                                        );
                                        // SAFETY: bounds-checked offset; the
                                        // shards partition node ids (asserted
                                        // above); `parallel_safe` proved the
                                        // nodes hold no Rc telemetry state
                                        // (see the NodeSlot safety comment).
                                        let node = unsafe { &mut *nbase.0.add(*to) };
                                        outs.push(Some(process_deliver(node, *from, bytes)));
                                    } else {
                                        outs.push(None);
                                    }
                                }
                            }) as Box<dyn FnOnce() + Send + '_>
                        })
                        .collect();
                    pool.run_batch(jobs);
                }
                let drained: Vec<usize> = swin.iter().map(|w| w.len()).collect();
                self.queue.note_parallel_drain(&drained);

                // --- commit phase: k-way merge on (time, seq), all global
                // effects serially in exactly the serial engine's order.
                let mut iters: Vec<_> = swin.iter_mut().map(|w| w.drain(..).peekable()).collect();
                let mut taken = vec![0usize; shards];
                loop {
                    let mut best: Option<((SimTime, u64), usize)> = None;
                    for (s, it) in iters.iter_mut().enumerate() {
                        if let Some((at, seq, _)) = it.peek() {
                            let key = (*at, *seq);
                            if best.is_none_or(|(bk, _)| key < bk) {
                                best = Some((key, s));
                            }
                        }
                    }
                    let Some((_, s)) = best else { break };
                    let (at, _seq, event) = iters[s].next().expect("peeked iterator must yield");
                    let outcome = souts[s][taken[s]].take();
                    taken[s] += 1;
                    self.commit_one(at, event, outcome);
                }
            }
            // End-of-run drain, exactly as in the serial engine (flushed
            // deliveries go through the staging mailboxes like any other
            // commit-side schedule).
            if self.staged_sends.is_empty() {
                break 'drain;
            }
            self.flush_staged();
        }
        self.queue.end_staging();
        self.shard_windows = swin;
        self.shard_outcomes = souts;
        self.stats
    }

    /// Commit one event's global effects — the sharded engine's
    /// counterpart of the windowed commit loop body, bit-identical to
    /// what [`Sim::handle_event`] does for the same event minus the
    /// node-local half already computed in the parallel phase.
    fn commit_one(&mut self, at: SimTime, event: Event, outcome: Option<ParOutcome>) {
        self.queue.set_now(at);
        self.maybe_flush_staged(at);
        self.stats.last_event_at = at;
        match event {
            Event::Deliver { to, bytes, .. } => {
                self.stats.messages += 1;
                self.stats.bytes += bytes.len() as u64;
                self.metrics.registry.observe(self.metrics.message_bytes, bytes.len() as u64);
                match outcome.expect("every Deliver got an outcome") {
                    ParOutcome::DecodeError => self.stats.decode_errors += 1,
                    ParOutcome::Orphaned => self.stats.orphaned_deliveries += 1,
                    ParOutcome::Processed(outputs, staged) => {
                        self.apply_local(to, &outputs);
                        self.dispatch(to, outputs, None);
                        self.absorb_staged(to, staged);
                    }
                }
            }
            Event::Flush { node, neighbor } => self.flush(node, neighbor),
            Event::OobRequest { .. } | Event::OobResponse { .. } => {
                unreachable!("the sharded engine requires an out-of-band-free run")
            }
        }
    }

    // ----- internals ----------------------------------------------------

    /// One end of session bring-up: allocate a neighbor ID for `peer`,
    /// register the adjacency, and dispatch the speaker's full-table
    /// transfer to it. The transfer's advertisements chain to the
    /// adjacency's session-up event (itself a child of `parent`, e.g. the
    /// LinkUp or NodeRestart that caused the bring-up).
    fn establish(
        &mut self,
        me: NodeId,
        peer: NodeId,
        same_island: bool,
        speaks_dbgp: bool,
        trigger: &'static str,
        parent: Option<EventId>,
    ) {
        let peer_as = self.nodes[peer].speaker.asn();
        let id = NeighborId(self.nodes[me].next_neighbor_id);
        self.nodes[me].next_neighbor_id += 1;
        self.nodes[me].neighbor_nodes.insert(id, peer);
        self.nodes[me].ids_by_node.insert(peer, id);
        let mut neighbor =
            if speaks_dbgp { DbgpNeighbor::dbgp(peer_as) } else { DbgpNeighbor::legacy(peer_as) };
        neighbor.same_island = same_island;
        // Re-reading the annotation from the link table (rather than
        // threading it through every call site) keeps restarts and link
        // restores re-establishing with the same commercial relationship.
        if let Some((lo_view, hi_view)) =
            self.links.get(&link_key(me, peer)).and_then(|l| l.classes)
        {
            neighbor.class = Some(if me < peer { lo_view } else { hi_view });
        }
        let root = if self.sink.enabled() {
            self.sink.record_at(
                self.queue.now(),
                me as u32,
                parent,
                TraceKind::SessionFsm {
                    peer: peer as u32,
                    from: "down".into(),
                    to: "up".into(),
                    trigger: trigger.into(),
                },
            )
        } else {
            None
        };
        self.sink.set_ambient_parent(root);
        let outputs = self.nodes[me].speaker.add_neighbor(id, neighbor);
        self.sink.set_ambient_parent(None);
        self.dispatch(me, outputs, root);
    }

    /// One end of session teardown: `me` loses its adjacency to `peer`.
    fn teardown_neighbor(
        &mut self,
        me: NodeId,
        peer: NodeId,
        trigger: &'static str,
        parent: Option<EventId>,
    ) {
        let Some(&id) = self.nodes[me].ids_by_node.get(&peer) else { return };
        self.nodes[me].neighbor_nodes.remove(&id);
        self.nodes[me].ids_by_node.remove(&peer);
        self.nodes[me].pending_out.remove(&id);
        if let Some(staged) = self.staged_sends.get_mut(&me) {
            staged.remove(&id);
        }
        let root = if self.sink.enabled() {
            self.sink.record_at(
                self.queue.now(),
                me as u32,
                parent,
                TraceKind::SessionFsm {
                    peer: peer as u32,
                    from: "up".into(),
                    to: "down".into(),
                    trigger: trigger.into(),
                },
            )
        } else {
            None
        };
        self.sink.set_ambient_parent(root);
        let outputs = self.nodes[me].speaker.neighbor_down(id);
        self.sink.set_ambient_parent(None);
        self.apply_local(me, &outputs);
        self.dispatch(me, outputs, root);
    }

    /// Track FIB updates and churn from `BestChanged` outputs.
    fn apply_local(&mut self, node: NodeId, outputs: &[DbgpOutput]) {
        for output in outputs {
            if let DbgpOutput::BestChanged(prefix, chosen) = output {
                self.stats.best_changes += 1;
                self.nodes[node].counters.best_changes += 1;
                let record = self.churn.entry((node, *prefix)).or_default();
                record.best_changes += 1;
                record.last_change_at = self.queue.now();
                let (installed, next) = match chosen {
                    Some(chosen) => {
                        let next = chosen
                            .neighbor
                            .and_then(|n| self.nodes[node].neighbor_nodes.get(&n).copied());
                        self.nodes[node].fib.insert(*prefix, next);
                        (true, next)
                    }
                    None => {
                        self.nodes[node].fib.remove(prefix);
                        (false, None)
                    }
                };
                let at = self.queue.now();
                if let Some(capture) = &mut self.capture {
                    capture.record(BestChange { at, node, prefix: *prefix, installed, next });
                }
            }
        }
    }

    /// Turn speaker outputs into scheduled deliveries, coalescing per
    /// (neighbor, prefix) over the MRAI window. `cause` is the trace
    /// event (Decode, Originate, SessionFsm, ...) that produced these
    /// outputs; it rides with each pending element so the eventual
    /// Advertise/Withdraw chains back to it.
    fn dispatch(&mut self, node: NodeId, outputs: Vec<DbgpOutput>, cause: Option<EventId>) {
        for output in outputs {
            let (neighbor, prefix, ia) = match output {
                DbgpOutput::SendIa(neighbor, ia) => (neighbor, ia.prefix, Some(ia)),
                DbgpOutput::SendWithdraw(neighbor, prefix) => (neighbor, prefix, None),
                DbgpOutput::BestChanged(..) | DbgpOutput::Rejected(..) => continue,
            };
            if !self.nodes[node].neighbor_nodes.contains_key(&neighbor) {
                continue;
            }
            if self.mrai == 0 {
                self.send_now(node, neighbor, prefix, ia, cause);
                continue;
            }
            self.nodes[node].pending_out.entry(neighbor).or_default().insert(prefix, (ia, cause));
            if self.nodes[node].flush_armed.insert(neighbor) {
                self.queue.schedule(self.mrai, Event::Flush { node, neighbor });
            }
        }
        // A coalescing speaker returns no Send* outputs from the calls
        // that produced `outputs`; it staged them internally. Absorb
        // that delta here, under the committing clock — every serial
        // mutation site (deliveries, originations, session bring-up and
        // teardown) funnels through this function.
        if self.coalesce && self.nodes[node].speaker.has_pending_sends() {
            let staged = self.nodes[node].speaker.take_pending_sends();
            self.absorb_staged(node, staged);
        }
    }

    /// Merge one event's worth of speaker-staged sends into the
    /// sim-level staging area, stamped with the current commit clock.
    /// Absorption happens only at event commit, which all engines
    /// perform in the global `(time, seq)` order — so the staged
    /// contents, the flush points and the flushed frames are identical
    /// across the serial, windowed and sharded engines.
    fn absorb_staged(&mut self, node: NodeId, staged: PendingSends) {
        if staged.is_empty() {
            return;
        }
        self.staged_at = self.queue.now();
        let slot = self.staged_sends.entry(node).or_default();
        for (neighbor, elems) in staged {
            // Per-prefix inserts overwrite: last write wins, matching
            // the implicit-withdraw semantics of a per-change stream.
            slot.entry(neighbor).or_default().extend(elems);
        }
    }

    /// The time barrier: flush every staged send the moment an event
    /// with a strictly later time commits (events sharing the staging
    /// timestamp still precede the flush, so same-instant updates
    /// coalesce into one frame).
    #[inline]
    fn maybe_flush_staged(&mut self, at: SimTime) {
        if !self.staged_sends.is_empty() && at > self.staged_at {
            self.flush_staged();
        }
    }

    /// Flush every staged coalesced send, packing each neighbor's batch
    /// into one multi-NLRI frame (withdrawals first, then IA bodies
    /// from the encode cache — byte-identical to a fresh encode), in
    /// canonical (node, neighbor, prefix) order. With `mrai > 0` the
    /// batch instead joins the neighbor's MRAI window, composing the
    /// two coalescing layers. Coalesced frames carry no per-element
    /// trace causes (`trace: None`).
    fn flush_staged(&mut self) {
        let staged = std::mem::take(&mut self.staged_sends);
        for (node, per_neighbor) in staged {
            for (neighbor, elems) in per_neighbor {
                let Some(&to) = self.nodes[node].neighbor_nodes.get(&neighbor) else { continue };
                if self.mrai > 0 {
                    let pending = self.nodes[node].pending_out.entry(neighbor).or_default();
                    for (prefix, ia) in elems {
                        pending.insert(prefix, (ia, None));
                    }
                    if self.nodes[node].flush_armed.insert(neighbor) {
                        self.queue.schedule(self.mrai, Event::Flush { node, neighbor });
                    }
                    continue;
                }
                let mut withdrawn = Vec::new();
                let mut ias = Vec::with_capacity(elems.len());
                for (prefix, ia) in elems {
                    match ia {
                        Some(ia) => ias.push(ia),
                        None => withdrawn.push(prefix),
                    }
                }
                let count = withdrawn.len() + ias.len();
                let t = self.phase_now();
                let bytes = if withdrawn.is_empty() && ias.len() == 1 {
                    self.cached_wire(node, &ias[0]).1
                } else {
                    let bodies: Vec<Bytes> =
                        ias.iter().map(|ia| self.cached_wire(node, ia).0).collect();
                    if bodies.is_empty() {
                        self.stats.updates_encoded += 1;
                    }
                    DbgpUpdate::encode_frame(&withdrawn, &bodies)
                };
                self.phase_add(t, Phase::Encode);
                if count > 1 {
                    self.stats.frames_coalesced += (count - 1) as u64;
                }
                self.metrics.registry.observe(self.metrics.flush_batch, count as u64);
                let t = self.phase_now();
                self.deliver_on_link(node, to, bytes, None);
                self.phase_add(t, Phase::Queue);
            }
        }
    }

    /// Start an instrumented span, when phase timing is on.
    #[inline]
    fn phase_now(&self) -> Option<std::time::Instant> {
        self.phase_timing.as_ref().map(|_| std::time::Instant::now())
    }

    /// Close an instrumented span into its [`PhaseTimes`] bucket.
    #[inline]
    fn phase_add(&mut self, start: Option<std::time::Instant>, phase: Phase) {
        if let (Some(start), Some(pt)) = (start, self.phase_timing.as_deref_mut()) {
            let ns = start.elapsed().as_nanos() as u64;
            match phase {
                Phase::Decode => pt.decode_ns += ns,
                Phase::Decide => pt.decide_ns += ns,
                Phase::Encode => pt.encode_ns += ns,
                Phase::Queue => pt.queue_ns += ns,
            }
        }
    }

    /// Record the per-element trace events for one outgoing frame
    /// element (Advertise or Withdraw, plus an IslandCrossing child when
    /// the adjacency spans an island boundary). Only called when the
    /// sink is recording.
    fn record_element(
        &mut self,
        node: NodeId,
        to: NodeId,
        prefix: Ipv4Prefix,
        announce: bool,
        cause: Option<EventId>,
    ) -> Option<EventId> {
        let at = self.queue.now();
        let kind = if announce {
            TraceKind::Advertise { prefix, to: to as u32 }
        } else {
            TraceKind::Withdraw { prefix, to: to as u32 }
        };
        let id = self.sink.record_at(at, node as u32, cause, kind);
        if announce {
            let from_island = self.island_of(node);
            let to_island = self.island_of(to);
            if from_island != to_island {
                self.sink.record_at(
                    at,
                    node as u32,
                    id,
                    TraceKind::IslandCrossing { prefix, to: to as u32, from_island, to_island },
                );
            }
        }
        id
    }

    /// The wire form of one outgoing IA, from the node's encode cache
    /// when the speaker has handed us this exact `Arc` before. Returns
    /// `(body, announce_frame)` views into the shared cached buffers.
    fn cached_wire(&mut self, node: NodeId, ia: &Arc<Ia>) -> (Bytes, Bytes) {
        let key = Arc::as_ptr(ia) as usize;
        if let Some(entry) = self.nodes[node].encode_cache.get(&key) {
            self.stats.encode_cache_hits += 1;
            return (entry.body.clone(), entry.announce.clone());
        }
        self.stats.updates_encoded += 1;
        let body = ia.encode();
        let announce = DbgpUpdate::encode_frame(&[], std::slice::from_ref(&body));
        let cache = &mut self.nodes[node].encode_cache;
        if cache.len() >= ENCODE_CACHE_CAP {
            cache.clear();
        }
        cache.insert(
            key,
            EncodeCacheEntry {
                _ia: Arc::clone(ia),
                body: body.clone(),
                announce: announce.clone(),
            },
        );
        (body, announce)
    }

    fn send_now(
        &mut self,
        node: NodeId,
        neighbor: NeighborId,
        prefix: Ipv4Prefix,
        ia: Option<Arc<Ia>>,
        cause: Option<EventId>,
    ) {
        let Some(&to) = self.nodes[node].neighbor_nodes.get(&neighbor) else { return };
        let announce = ia.is_some();
        let t = self.phase_now();
        let bytes = match ia {
            Some(ia) => self.cached_wire(node, &ia).1,
            None => {
                self.stats.updates_encoded += 1;
                DbgpUpdate::encode_frame(std::slice::from_ref(&prefix), &[])
            }
        };
        self.phase_add(t, Phase::Encode);
        let trace = if self.sink.enabled() {
            let element = self.record_element(node, to, prefix, announce, cause);
            let frame = self.sink.record_at(
                self.queue.now(),
                node as u32,
                element,
                TraceKind::Transmit { to: to as u32, bytes: bytes.len() as u32 },
            );
            frame.map(|frame| {
                Box::new(DeliverTrace { frame, causes: element.into_iter().collect() })
            })
        } else {
            None
        };
        let t = self.phase_now();
        self.deliver_on_link(node, to, bytes, trace);
        self.phase_add(t, Phase::Queue);
    }

    fn flush(&mut self, node: NodeId, neighbor: NeighborId) {
        self.nodes[node].flush_armed.remove(&neighbor);
        let Some(pending) = self.nodes[node].pending_out.remove(&neighbor) else { return };
        if pending.is_empty() {
            return;
        }
        let Some(&to) = self.nodes[node].neighbor_nodes.get(&neighbor) else { return };
        let traced = self.sink.enabled();
        let mut withdrawn = Vec::new();
        let mut ias = Vec::with_capacity(pending.len());
        // Per-element trace metadata in frame order: withdraws first,
        // then IAs — matching `DbgpUpdate` encode/decode order so the
        // receiver can zip `causes` against decoded elements.
        let mut wd_meta = Vec::new();
        let mut ia_meta = Vec::new();
        for (prefix, (ia, cause)) in pending {
            match ia {
                Some(ia) => {
                    if traced {
                        ia_meta.push((prefix, cause));
                    }
                    ias.push(ia);
                }
                None => {
                    if traced {
                        wd_meta.push((prefix, cause));
                    }
                    withdrawn.push(prefix);
                }
            }
        }
        // Announce frames for a single IA are cached whole; batched
        // frames are assembled from cached bodies (byte-identical to a
        // fresh `DbgpUpdate::encode`, see `encode_frame`).
        let t = self.phase_now();
        let bytes = if withdrawn.is_empty() && ias.len() == 1 {
            self.cached_wire(node, &ias[0]).1
        } else {
            let bodies: Vec<Bytes> = ias.iter().map(|ia| self.cached_wire(node, ia).0).collect();
            if bodies.is_empty() {
                self.stats.updates_encoded += 1;
            }
            DbgpUpdate::encode_frame(&withdrawn, &bodies)
        };
        self.phase_add(t, Phase::Encode);
        self.metrics
            .registry
            .observe(self.metrics.flush_batch, (withdrawn.len() + ias.len()) as u64);
        let trace = if traced {
            let mut causes = Vec::with_capacity(wd_meta.len() + ia_meta.len());
            for (prefix, cause) in wd_meta {
                if let Some(id) = self.record_element(node, to, prefix, false, cause) {
                    causes.push(id);
                }
            }
            for (prefix, cause) in ia_meta {
                if let Some(id) = self.record_element(node, to, prefix, true, cause) {
                    causes.push(id);
                }
            }
            let frame = self.sink.record_at(
                self.queue.now(),
                node as u32,
                causes.first().copied(),
                TraceKind::Transmit { to: to as u32, bytes: bytes.len() as u32 },
            );
            frame.map(|frame| Box::new(DeliverTrace { frame, causes }))
        } else {
            None
        };
        let t = self.phase_now();
        self.deliver_on_link(node, to, bytes, trace);
        self.phase_add(t, Phase::Queue);
    }

    /// Schedule a control-plane delivery across the `node -> to` link,
    /// applying the link's perturbation model.
    ///
    /// For an unreliable model the RNG draw order per message is fixed —
    /// loss, corruption, duplication, jitter — so a given seed and fault
    /// schedule always perturbs the same messages the same way.
    ///
    /// The buffer arrives refcounted (possibly shared with the encode
    /// cache and other in-flight deliveries); only a corrupting model
    /// copies it, so the flipped byte never leaks into anyone else's
    /// view (copy-on-corrupt).
    fn deliver_on_link(
        &mut self,
        node: NodeId,
        to: NodeId,
        mut bytes: Bytes,
        trace: Option<Box<DeliverTrace>>,
    ) {
        let (mut delay, model, up) = match self.links.get(&link_key(node, to)) {
            Some(l) => (l.delay, l.model, l.up),
            // Adjacency without an explicit link record (not constructed
            // via `link_with`): legacy default of one time unit.
            None => (1, LinkModel::reliable(), true),
        };
        if !up {
            // The adjacency map normally prevents this; a message racing
            // an administrative down is simply lost on the floor.
            self.stats.dropped_messages += 1;
            self.sink.record_at(
                self.queue.now(),
                node as u32,
                trace.as_ref().map(|t| t.frame),
                TraceKind::MessageDropped { to: to as u32 },
            );
            return;
        }
        if !model.is_reliable() {
            let lost = self.rng.chance(model.loss_ppm);
            let corrupt = self.rng.chance(model.corrupt_ppm);
            let duplicate = self.rng.chance(model.duplicate_ppm);
            let jitter = if model.jitter > 0 { self.rng.below(model.jitter + 1) } else { 0 };
            if lost {
                self.stats.dropped_messages += 1;
                self.sink.record_at(
                    self.queue.now(),
                    node as u32,
                    trace.as_ref().map(|t| t.frame),
                    TraceKind::MessageDropped { to: to as u32 },
                );
                return;
            }
            if corrupt && !bytes.is_empty() {
                let idx = self.rng.below(bytes.len() as u64) as usize;
                let flip = 1 + self.rng.below(255) as u8;
                let mut copy = bytes.to_vec();
                copy[idx] ^= flip;
                bytes = Bytes::from(copy);
                self.stats.corrupted_messages += 1;
            }
            delay += jitter;
            if duplicate {
                self.stats.duplicated_messages += 1;
                // Refcount bump: the duplicate shares the original's
                // buffer (and the same causal frame).
                self.queue.schedule(
                    delay + 1,
                    Event::Deliver { to, from: node, bytes: bytes.clone(), trace: trace.clone() },
                );
            }
        }
        self.queue.schedule(delay, Event::Deliver { to, from: node, bytes, trace });
    }

    fn serve_oob(&mut self, to_addr: Ipv4Addr, from: NodeId, payload: Vec<u8>) {
        let Some((owner, service)) = self.services.get_mut(&to_addr) else { return };
        let owner = *owner;
        match service {
            Service::WiserCostExchange => {
                let from_as = self.nodes[from].speaker.asn();
                if let Some(module) = self.nodes[owner].speaker.module_mut(ProtocolId::WISER) {
                    module.deliver_oob(from_as, &payload);
                }
            }
            Service::ModuleInbox(protocol) => {
                let protocol = *protocol;
                let from_as = self.nodes[from].speaker.asn();
                if let Some(module) = self.nodes[owner].speaker.module_mut(protocol) {
                    module.deliver_oob(from_as, &payload);
                }
            }
            Service::Miro(portal) => {
                if let Some(request) = MiroRequest::from_bytes(&payload) {
                    if let Some(offer) = portal.negotiate(request) {
                        let response = offer.to_bytes();
                        self.queue.schedule(
                            self.oob_delay,
                            Event::OobResponse { to: from, from_addr: to_addr, payload: response },
                        );
                    }
                }
            }
            Service::Lookup(store) => {
                // Payload: 1-byte op (0 = put, 1 = get), varint key len,
                // key, value.
                if payload.is_empty() {
                    return;
                }
                let op = payload[0];
                let rest = &payload[1..];
                if op == 0 {
                    if rest.len() < 2 {
                        return;
                    }
                    let klen = rest[0] as usize;
                    if rest.len() < 1 + klen {
                        return;
                    }
                    let key = rest[1..1 + klen].to_vec();
                    let value = rest[1 + klen..].to_vec();
                    store.insert(key, value);
                } else if op == 1 {
                    let key = rest.to_vec();
                    if let Some(value) = store.get(&key).cloned() {
                        self.queue.schedule(
                            self.oob_delay,
                            Event::OobResponse { to: from, from_addr: to_addr, payload: value },
                        );
                    }
                }
            }
        }
    }

    /// Resolve which node (if any) owns `addr`: a registered service, a
    /// node address, or an originated prefix.
    pub(crate) fn owner_of(&self, addr: Ipv4Addr) -> Option<NodeId> {
        if let Some((node, _)) = self.services.get(&addr) {
            return Some(*node);
        }
        if let Some(node) = self.nodes.iter().position(|n| n.addr == addr) {
            return Some(node);
        }
        // Longest-prefix owner across all originated prefixes.
        self.nodes
            .iter()
            .enumerate()
            .flat_map(|(id, n)| {
                n.fib
                    .covering(Ipv4Prefix::new(addr, 32).expect("/32 is valid"))
                    .filter(|(_, next)| next.is_none())
                    .map(move |(p, _)| (p.len(), id))
            })
            .max_by_key(|(len, _)| *len)
            .map(|(_, id)| id)
    }

    /// Data-plane next hop at `node` for `addr` (longest match).
    pub(crate) fn next_hop(&self, node: NodeId, addr: Ipv4Addr) -> Option<Option<NodeId>> {
        self.nodes[node].fib.longest_match(addr).map(|(_, next)| *next)
    }
}
