//! The network simulator: D-BGP speakers on a topology of delayed
//! links, an out-of-band service bus, and a data plane with
//! multi-network-protocol encapsulation — the workspace's substitute for
//! the paper's MiniNeXT testbed (DESIGN.md §2).
//!
//! Control-plane messages are real wire bytes: every IA is encoded with
//! the TLV codec at the sender and decoded at the receiver, so the
//! simulator exercises exactly the serialization path the §5 stress test
//! measures.
//!
//! Links carry an optional [`LinkModel`] (seeded jitter, loss,
//! duplication, corruption) and can be failed, restored and flapped at
//! runtime; nodes can be restarted (session reset + full-table
//! re-transfer). All randomness flows through one seeded
//! [`SimRng`](crate::link::SimRng), so a run is fully determined by its
//! construction sequence and seed — the property the `dbgp-chaos` crate
//! builds its fault-injection harness on.

use crate::engine::{EventQueue, SimTime};
use crate::link::LinkModel;
use crate::link::SimRng;
use bytes::Bytes;
use dbgp_core::{DbgpConfig, DbgpNeighbor, DbgpOutput, DbgpSpeaker, DbgpUpdate, NeighborId};
use dbgp_protocols::{MiroPortal, MiroRequest};
use dbgp_wire::{Ia, Ipv4Addr, Ipv4Prefix, ProtocolId};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Index of a node (one AS) in the simulation.
pub type NodeId = usize;

/// Canonical undirected key for a link between two nodes.
fn link_key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    (a.min(b), a.max(b))
}

/// What travels on the simulated wires and bus.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Event {
    /// Control-plane bytes arriving on a link. The buffer is refcounted:
    /// a fan-out or a duplicating link shares one allocation, and only a
    /// corrupting fault model copies (copy-on-corrupt).
    Deliver { to: NodeId, from: NodeId, bytes: Bytes },
    /// MRAI window expired: flush pending advertisements to a neighbor.
    Flush { node: NodeId, neighbor: NeighborId },
    /// Out-of-band request to a service address.
    OobRequest { to_addr: Ipv4Addr, from: NodeId, payload: Vec<u8> },
    /// Out-of-band response back to a node.
    OobResponse { to: NodeId, from_addr: Ipv4Addr, payload: Vec<u8> },
}

/// A service reachable over the out-of-band bus (the paper's portals and
/// lookup services, §3.4, §5).
pub enum Service {
    /// A Wiser cost-exchange portal: forwards [`dbgp_protocols::CostReport`]
    /// payloads into the owning node's Wiser module.
    WiserCostExchange,
    /// A generic module inbox: forwards raw payloads into the owning
    /// node's decision module for the given protocol via
    /// `DecisionModule::deliver_oob` (used e.g. for HLP's intra-island
    /// LSA flooding).
    ModuleInbox(ProtocolId),
    /// A MIRO service portal: negotiates alternate paths for payment.
    Miro(MiroPortal),
    /// A generic key-value lookup service (Beagle's out-of-band IA store).
    Lookup(HashMap<Vec<u8>, Vec<u8>>),
}

struct Node {
    speaker: DbgpSpeaker,
    /// Neighbor ID -> peer node.
    neighbor_nodes: BTreeMap<NeighborId, NodeId>,
    /// Peer node -> our neighbor ID for it.
    ids_by_node: HashMap<NodeId, NeighborId>,
    /// Forwarding table maintained from `BestChanged` outputs.
    fib: BTreeMap<Ipv4Prefix, Option<NodeId>>,
    /// This node's own address (used as IA next-hop and for tunnels).
    addr: Ipv4Addr,
    /// Out-of-band responses received, for inspection by drivers.
    oob_inbox: Vec<(Ipv4Addr, Vec<u8>)>,
    next_neighbor_id: u32,
    /// Coalesced outbound state per neighbor: prefix -> latest IA
    /// (`None` = withdraw), flushed when the MRAI window closes. The
    /// `Arc` is shared with the speaker's Adj-RIB-Out.
    pending_out: HashMap<NeighborId, BTreeMap<Ipv4Prefix, Option<Arc<Ia>>>>,
    /// Neighbors with a Flush already scheduled.
    flush_armed: std::collections::HashSet<NeighborId>,
    /// Adj-RIB-Out encode cache: wire bytes for an outgoing IA, keyed by
    /// the `Arc`'s pointer identity (the speaker hands the *same* `Arc`
    /// to every neighbor of a class and across re-advertisements of an
    /// unchanged best path, so identity is exactly "same chosen-IA
    /// generation"). Each entry pins its `Arc` so a recycled allocation
    /// can never alias a live key.
    encode_cache: PtrMap<EncodeCacheEntry>,
}

/// Hasher for pointer-keyed caches: the key is an `Arc` address, so one
/// Fibonacci multiply spreads it well enough and the SipHash setup cost
/// disappears from the per-send hot path. Never iterated, so the hash
/// choice cannot leak into event ordering.
#[derive(Default)]
struct PtrHasher(u64);

impl std::hash::Hasher for PtrHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    fn write_usize(&mut self, n: usize) {
        self.0 = (n as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

type PtrMap<V> = HashMap<usize, V, std::hash::BuildHasherDefault<PtrHasher>>;

/// Cached wire form of one outgoing IA.
struct EncodeCacheEntry {
    /// Pins the IA so the pointer key stays unique while cached.
    _ia: Arc<Ia>,
    /// The encoded IA body (the unit batched frames are assembled from).
    body: Bytes,
    /// A ready-made single-IA announce frame (the common MRAI flush).
    announce: Bytes,
}

/// Entries per node before the encode cache is wiped (a crude bound; a
/// routing table that cycles through this many distinct outgoing IAs
/// inside one epoch is churning too hard to cache anyway).
const ENCODE_CACHE_CAP: usize = 8192;

/// One adjacency's static parameters plus its administrative state.
#[derive(Debug, Clone, Copy)]
struct LinkState {
    delay: SimTime,
    same_island: bool,
    speaks_dbgp: bool,
    model: LinkModel,
    up: bool,
}

/// Counters the experiments read out.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Control-plane messages delivered.
    pub messages: u64,
    /// Total control-plane bytes delivered.
    pub bytes: u64,
    /// Out-of-band requests served.
    pub oob_requests: u64,
    /// Simulated time of the last processed event (convergence time).
    pub last_event_at: SimTime,
    /// Deliveries whose bytes failed to decode (corruption, or a driver
    /// injecting garbage). Previously these were silently swallowed.
    pub decode_errors: u64,
    /// Deliveries that arrived after their adjacency was torn down
    /// (in-flight messages racing a link failure or node restart).
    pub orphaned_deliveries: u64,
    /// Messages dropped in flight by a lossy [`LinkModel`].
    pub dropped_messages: u64,
    /// Extra copies delivered by a duplicating [`LinkModel`].
    pub duplicated_messages: u64,
    /// Messages with a byte flipped in flight by a corrupting
    /// [`LinkModel`].
    pub corrupted_messages: u64,
    /// Total `BestChanged` decisions across all nodes (route churn).
    pub best_changes: u64,
    /// IA bodies freshly serialized on the send path, plus withdraw-only
    /// frames (which carry no cacheable IA body).
    pub updates_encoded: u64,
    /// IA bodies whose wire bytes were reused from the Adj-RIB-Out
    /// encode cache instead of being re-serialized.
    pub encode_cache_hits: u64,
}

/// Per-(node, prefix) route-churn record, maintained on every
/// `BestChanged` a speaker emits. The chaos crate's convergence tracker
/// diffs snapshots of these to measure per-fault churn and convergence
/// times.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefixChurn {
    /// How many times this node's best path for the prefix changed.
    pub best_changes: u64,
    /// Simulated time of the most recent change.
    pub last_change_at: SimTime,
}

/// The simulator.
pub struct Sim {
    nodes: Vec<Node>,
    /// Undirected link state, keyed by `(min, max)` node pair.
    links: BTreeMap<(NodeId, NodeId), LinkState>,
    services: HashMap<Ipv4Addr, (NodeId, Service)>,
    queue: EventQueue<Event>,
    stats: SimStats,
    /// Route-churn records per (node, prefix).
    churn: BTreeMap<(NodeId, Ipv4Prefix), PrefixChurn>,
    /// Seeded RNG driving link perturbation models. Only consumed for
    /// links with a non-default model, so fault-free runs are identical
    /// to runs before link models existed.
    rng: SimRng,
    /// Default one-way delay for the out-of-band bus.
    oob_delay: SimTime,
    /// Minimum route advertisement interval: outbound updates to a
    /// neighbor are coalesced per prefix over this window, BGP's
    /// classic damper for transient churn (and the reason real-world
    /// policy oscillations burn bandwidth instead of CPU). Latest state
    /// wins within a window.
    mrai: SimTime,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// An empty simulation.
    pub fn new() -> Self {
        Sim {
            nodes: Vec::new(),
            links: BTreeMap::new(),
            services: HashMap::new(),
            queue: EventQueue::new(),
            stats: SimStats::default(),
            churn: BTreeMap::new(),
            rng: SimRng::new(0),
            oob_delay: 5,
            mrai: 30,
        }
    }

    /// Change the minimum route advertisement interval (0 disables
    /// coalescing entirely).
    pub fn set_mrai(&mut self, mrai: SimTime) {
        self.mrai = mrai;
    }

    /// Re-seed the perturbation RNG. Two runs with the same construction
    /// sequence, seed and fault schedule are byte-identical.
    pub fn set_seed(&mut self, seed: u64) {
        self.rng = SimRng::new(seed);
    }

    /// Add an AS. Its node address is derived from the node index.
    pub fn add_node(&mut self, cfg: DbgpConfig) -> NodeId {
        let id = self.nodes.len();
        let addr = Ipv4Addr::new(10, (id >> 8) as u8, (id & 0xff) as u8, 1);
        self.nodes.push(Node {
            speaker: DbgpSpeaker::new(cfg),
            neighbor_nodes: BTreeMap::new(),
            ids_by_node: HashMap::new(),
            fib: BTreeMap::new(),
            addr,
            oob_inbox: Vec::new(),
            next_neighbor_id: 0,
            pending_out: HashMap::new(),
            flush_armed: std::collections::HashSet::new(),
            encode_cache: PtrMap::default(),
        });
        id
    }

    /// Pre-size the event queue (drivers call this with a multiple of
    /// the topology's edge count so large-run warmup doesn't regrow the
    /// heap).
    pub fn reserve_events(&mut self, additional: usize) {
        self.queue.reserve(additional);
    }

    /// Number of nodes in the simulation.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The node's own address.
    pub fn node_addr(&self, node: NodeId) -> Ipv4Addr {
        self.nodes[node].addr
    }

    /// Access a node's speaker.
    pub fn speaker(&self, node: NodeId) -> &DbgpSpeaker {
        &self.nodes[node].speaker
    }

    /// Mutable access to a node's speaker (to register decision modules).
    pub fn speaker_mut(&mut self, node: NodeId) -> &mut DbgpSpeaker {
        &mut self.nodes[node].speaker
    }

    /// Statistics so far.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Events still scheduled (a quiescent simulation has none).
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Total events processed since construction (the throughput
    /// numerator `sim_bench` reports).
    pub fn events_processed(&self) -> u64 {
        self.queue.processed()
    }

    /// Route-churn records per (node, prefix), cumulative since the
    /// start of the run.
    pub fn churn(&self) -> &BTreeMap<(NodeId, Ipv4Prefix), PrefixChurn> {
        &self.churn
    }

    /// Connect two nodes with symmetric one-way `delay`. `same_island`
    /// marks both ends as intra-island peers.
    pub fn link(&mut self, a: NodeId, b: NodeId, delay: SimTime, same_island: bool) {
        self.link_with(a, b, delay, same_island, true)
    }

    /// Connect with full control over D-BGP capability (`speaks_dbgp =
    /// false` models a legacy BGP-only adjacency).
    pub fn link_with(
        &mut self,
        a: NodeId,
        b: NodeId,
        delay: SimTime,
        same_island: bool,
        speaks_dbgp: bool,
    ) {
        self.links.insert(
            link_key(a, b),
            LinkState { delay, same_island, speaks_dbgp, model: LinkModel::reliable(), up: true },
        );
        for (me, peer) in [(a, b), (b, a)] {
            self.establish(me, peer, same_island, speaks_dbgp);
        }
    }

    /// Attach a perturbation model to an existing link (both directions).
    ///
    /// Panics if the nodes were never linked: a chaos plan naming a
    /// non-existent link is a scenario bug worth failing loudly on.
    pub fn set_link_model(&mut self, a: NodeId, b: NodeId, model: LinkModel) {
        self.links
            .get_mut(&link_key(a, b))
            .unwrap_or_else(|| panic!("set_link_model: no link {a}-{b}"))
            .model = model;
    }

    /// Whether the link between two nodes exists and is up.
    pub fn link_is_up(&self, a: NodeId, b: NodeId) -> bool {
        self.links.get(&link_key(a, b)).is_some_and(|l| l.up)
    }

    /// All links ever created, as `(a, b, up)` with `a < b`, in
    /// deterministic order.
    pub fn links(&self) -> impl Iterator<Item = (NodeId, NodeId, bool)> + '_ {
        self.links.iter().map(|(&(a, b), l)| (a, b, l.up))
    }

    /// Register an out-of-band service at `addr`, owned by `node`.
    pub fn register_service(&mut self, node: NodeId, addr: Ipv4Addr, service: Service) {
        self.services.insert(addr, (node, service));
    }

    /// Originate a prefix at a node.
    pub fn originate(&mut self, node: NodeId, prefix: Ipv4Prefix) {
        let addr = self.nodes[node].addr;
        let outputs = self.nodes[node].speaker.originate(prefix, addr);
        self.apply_local(node, &outputs);
        self.dispatch(node, outputs);
    }

    /// Originate a hand-built IA at a node (replacement protocols use
    /// this to control descriptors).
    pub fn originate_ia(&mut self, node: NodeId, ia: dbgp_wire::Ia) {
        let outputs = self.nodes[node].speaker.originate_ia(ia);
        self.apply_local(node, &outputs);
        self.dispatch(node, outputs);
    }

    /// Withdraw a locally originated prefix.
    pub fn withdraw(&mut self, node: NodeId, prefix: Ipv4Prefix) {
        let outputs = self.nodes[node].speaker.withdraw_origin(prefix);
        self.apply_local(node, &outputs);
        self.dispatch(node, outputs);
    }

    /// Fail the link between two nodes: both speakers see the neighbor
    /// go down, flush its routes, and re-converge (the link-failure
    /// events of §3.5, "about 172 per day" in the wild). The link's
    /// parameters are remembered so [`Sim::restore_link`] can undo this.
    pub fn fail_link(&mut self, a: NodeId, b: NodeId) {
        match self.links.get_mut(&link_key(a, b)) {
            Some(l) if l.up => l.up = false,
            _ => return,
        }
        for (me, peer) in [(a, b), (b, a)] {
            self.teardown_neighbor(me, peer);
        }
    }

    /// Re-establish a previously failed link: the inverse of
    /// [`Sim::fail_link`]. Both ends run session bring-up again — fresh
    /// neighbor IDs, and each speaker re-advertises its full Adj-RIB-Out
    /// to the other, exactly like a BGP session re-establishing after an
    /// outage.
    pub fn restore_link(&mut self, a: NodeId, b: NodeId) {
        let (same_island, speaks_dbgp) = match self.links.get_mut(&link_key(a, b)) {
            Some(l) if !l.up => {
                l.up = true;
                (l.same_island, l.speaks_dbgp)
            }
            _ => return,
        };
        for (me, peer) in [(a, b), (b, a)] {
            self.establish(me, peer, same_island, speaks_dbgp);
        }
    }

    /// Restart a node: every one of its sessions resets and then comes
    /// back up with a full-table re-transfer in both directions — the
    /// paper's §3.5 concern that D-BGP's per-session state must survive
    /// ASes rebooting routers. Neighbors see the peer flap; the
    /// restarting node drops all queued outbound state.
    pub fn restart_node(&mut self, node: NodeId) {
        let peers: Vec<(NodeId, bool, bool)> = self
            .links
            .iter()
            .filter(|(&(x, y), l)| l.up && (x == node || y == node))
            .map(|(&(x, y), l)| (if x == node { y } else { x }, l.same_island, l.speaks_dbgp))
            .collect();
        for &(peer, ..) in &peers {
            self.teardown_neighbor(node, peer);
            self.teardown_neighbor(peer, node);
        }
        // The rebooting router loses its coalescing buffers, encode
        // cache and any undelivered out-of-band responses.
        self.nodes[node].pending_out.clear();
        self.nodes[node].flush_armed.clear();
        self.nodes[node].oob_inbox.clear();
        self.nodes[node].encode_cache.clear();
        for &(peer, same_island, speaks_dbgp) in &peers {
            self.establish(node, peer, same_island, speaks_dbgp);
            self.establish(peer, node, same_island, speaks_dbgp);
        }
    }

    /// Send an out-of-band payload from a node to a service address.
    pub fn oob_send(&mut self, from: NodeId, to_addr: Ipv4Addr, payload: Vec<u8>) {
        self.queue.schedule(self.oob_delay, Event::OobRequest { to_addr, from, payload });
    }

    /// Out-of-band responses a node has received so far.
    pub fn oob_inbox(&self, node: NodeId) -> &[(Ipv4Addr, Vec<u8>)] {
        &self.nodes[node].oob_inbox
    }

    /// The node's forwarding table (prefix -> next-hop node; `None` =
    /// delivered locally).
    pub fn fib(&self, node: NodeId) -> &BTreeMap<Ipv4Prefix, Option<NodeId>> {
        &self.nodes[node].fib
    }

    /// Schedule raw bytes for delivery as if they arrived on the wire
    /// from `from` — a hook for tests and chaos drivers to model
    /// garbage or stale traffic without a sending speaker.
    pub fn inject_raw(&mut self, from: NodeId, to: NodeId, delay: SimTime, bytes: Vec<u8>) {
        self.queue.schedule(delay, Event::Deliver { to, from, bytes: Bytes::from(bytes) });
    }

    /// Run until no events remain or `max_time` is reached. Events at
    /// exactly `max_time` are processed; events beyond it stay queued
    /// (and the clock stays at or before `max_time`), so a later `run`
    /// call picks up exactly where this one stopped. Returns the
    /// statistics snapshot.
    pub fn run(&mut self, max_time: SimTime) -> SimStats {
        while let Some(next_at) = self.queue.peek_time() {
            if next_at > max_time {
                break;
            }
            let (at, event) = self.queue.pop().expect("peeked event must pop");
            self.stats.last_event_at = at;
            match event {
                Event::Deliver { to, from, bytes } => {
                    self.stats.messages += 1;
                    self.stats.bytes += bytes.len() as u64;
                    let mut buf = bytes;
                    let Ok(update) = DbgpUpdate::decode(&mut buf) else {
                        self.stats.decode_errors += 1;
                        continue;
                    };
                    let Some(&from_id) = self.nodes[to].ids_by_node.get(&from) else {
                        self.stats.orphaned_deliveries += 1;
                        continue;
                    };
                    let mut outputs = Vec::new();
                    for prefix in update.withdrawn {
                        outputs.extend(self.nodes[to].speaker.receive_withdraw(from_id, prefix));
                    }
                    for ia in update.ias {
                        outputs.extend(self.nodes[to].speaker.receive_ia(from_id, ia));
                    }
                    self.apply_local(to, &outputs);
                    self.dispatch(to, outputs);
                }
                Event::Flush { node, neighbor } => {
                    self.flush(node, neighbor);
                }
                Event::OobRequest { to_addr, from, payload } => {
                    self.stats.oob_requests += 1;
                    self.serve_oob(to_addr, from, payload);
                }
                Event::OobResponse { to, from_addr, payload } => {
                    self.nodes[to].oob_inbox.push((from_addr, payload));
                }
            }
        }
        self.stats
    }

    // ----- internals ----------------------------------------------------

    /// One end of session bring-up: allocate a neighbor ID for `peer`,
    /// register the adjacency, and dispatch the speaker's full-table
    /// transfer to it.
    fn establish(&mut self, me: NodeId, peer: NodeId, same_island: bool, speaks_dbgp: bool) {
        let peer_as = self.nodes[peer].speaker.asn();
        let id = NeighborId(self.nodes[me].next_neighbor_id);
        self.nodes[me].next_neighbor_id += 1;
        self.nodes[me].neighbor_nodes.insert(id, peer);
        self.nodes[me].ids_by_node.insert(peer, id);
        let mut neighbor =
            if speaks_dbgp { DbgpNeighbor::dbgp(peer_as) } else { DbgpNeighbor::legacy(peer_as) };
        neighbor.same_island = same_island;
        let outputs = self.nodes[me].speaker.add_neighbor(id, neighbor);
        self.dispatch(me, outputs);
    }

    /// One end of session teardown: `me` loses its adjacency to `peer`.
    fn teardown_neighbor(&mut self, me: NodeId, peer: NodeId) {
        let Some(&id) = self.nodes[me].ids_by_node.get(&peer) else { return };
        self.nodes[me].neighbor_nodes.remove(&id);
        self.nodes[me].ids_by_node.remove(&peer);
        self.nodes[me].pending_out.remove(&id);
        let outputs = self.nodes[me].speaker.neighbor_down(id);
        self.apply_local(me, &outputs);
        self.dispatch(me, outputs);
    }

    /// Track FIB updates and churn from `BestChanged` outputs.
    fn apply_local(&mut self, node: NodeId, outputs: &[DbgpOutput]) {
        for output in outputs {
            if let DbgpOutput::BestChanged(prefix, chosen) = output {
                self.stats.best_changes += 1;
                let record = self.churn.entry((node, *prefix)).or_default();
                record.best_changes += 1;
                record.last_change_at = self.queue.now();
                match chosen {
                    Some(chosen) => {
                        let next = chosen
                            .neighbor
                            .and_then(|n| self.nodes[node].neighbor_nodes.get(&n).copied());
                        self.nodes[node].fib.insert(*prefix, next);
                    }
                    None => {
                        self.nodes[node].fib.remove(prefix);
                    }
                }
            }
        }
    }

    /// Turn speaker outputs into scheduled deliveries, coalescing per
    /// (neighbor, prefix) over the MRAI window.
    fn dispatch(&mut self, node: NodeId, outputs: Vec<DbgpOutput>) {
        for output in outputs {
            let (neighbor, prefix, ia) = match output {
                DbgpOutput::SendIa(neighbor, ia) => (neighbor, ia.prefix, Some(ia)),
                DbgpOutput::SendWithdraw(neighbor, prefix) => (neighbor, prefix, None),
                DbgpOutput::BestChanged(..) | DbgpOutput::Rejected(..) => continue,
            };
            if !self.nodes[node].neighbor_nodes.contains_key(&neighbor) {
                continue;
            }
            if self.mrai == 0 {
                self.send_now(node, neighbor, prefix, ia);
                continue;
            }
            self.nodes[node].pending_out.entry(neighbor).or_default().insert(prefix, ia);
            if self.nodes[node].flush_armed.insert(neighbor) {
                self.queue.schedule(self.mrai, Event::Flush { node, neighbor });
            }
        }
    }

    /// The wire form of one outgoing IA, from the node's encode cache
    /// when the speaker has handed us this exact `Arc` before. Returns
    /// `(body, announce_frame)` views into the shared cached buffers.
    fn cached_wire(&mut self, node: NodeId, ia: &Arc<Ia>) -> (Bytes, Bytes) {
        let key = Arc::as_ptr(ia) as usize;
        if let Some(entry) = self.nodes[node].encode_cache.get(&key) {
            self.stats.encode_cache_hits += 1;
            return (entry.body.clone(), entry.announce.clone());
        }
        self.stats.updates_encoded += 1;
        let body = ia.encode();
        let announce = DbgpUpdate::encode_frame(&[], std::slice::from_ref(&body));
        let cache = &mut self.nodes[node].encode_cache;
        if cache.len() >= ENCODE_CACHE_CAP {
            cache.clear();
        }
        cache.insert(
            key,
            EncodeCacheEntry {
                _ia: Arc::clone(ia),
                body: body.clone(),
                announce: announce.clone(),
            },
        );
        (body, announce)
    }

    fn send_now(
        &mut self,
        node: NodeId,
        neighbor: NeighborId,
        prefix: Ipv4Prefix,
        ia: Option<Arc<Ia>>,
    ) {
        let Some(&to) = self.nodes[node].neighbor_nodes.get(&neighbor) else { return };
        let bytes = match ia {
            Some(ia) => self.cached_wire(node, &ia).1,
            None => {
                self.stats.updates_encoded += 1;
                DbgpUpdate::encode_frame(std::slice::from_ref(&prefix), &[])
            }
        };
        self.deliver_on_link(node, to, bytes);
    }

    fn flush(&mut self, node: NodeId, neighbor: NeighborId) {
        self.nodes[node].flush_armed.remove(&neighbor);
        let Some(pending) = self.nodes[node].pending_out.remove(&neighbor) else { return };
        if pending.is_empty() {
            return;
        }
        let Some(&to) = self.nodes[node].neighbor_nodes.get(&neighbor) else { return };
        let mut withdrawn = Vec::new();
        let mut ias = Vec::with_capacity(pending.len());
        for (prefix, ia) in pending {
            match ia {
                Some(ia) => ias.push(ia),
                None => withdrawn.push(prefix),
            }
        }
        // Announce frames for a single IA are cached whole; batched
        // frames are assembled from cached bodies (byte-identical to a
        // fresh `DbgpUpdate::encode`, see `encode_frame`).
        let bytes = if withdrawn.is_empty() && ias.len() == 1 {
            self.cached_wire(node, &ias[0]).1
        } else {
            let bodies: Vec<Bytes> = ias.iter().map(|ia| self.cached_wire(node, ia).0).collect();
            if bodies.is_empty() {
                self.stats.updates_encoded += 1;
            }
            DbgpUpdate::encode_frame(&withdrawn, &bodies)
        };
        self.deliver_on_link(node, to, bytes);
    }

    /// Schedule a control-plane delivery across the `node -> to` link,
    /// applying the link's perturbation model.
    ///
    /// For an unreliable model the RNG draw order per message is fixed —
    /// loss, corruption, duplication, jitter — so a given seed and fault
    /// schedule always perturbs the same messages the same way.
    ///
    /// The buffer arrives refcounted (possibly shared with the encode
    /// cache and other in-flight deliveries); only a corrupting model
    /// copies it, so the flipped byte never leaks into anyone else's
    /// view (copy-on-corrupt).
    fn deliver_on_link(&mut self, node: NodeId, to: NodeId, mut bytes: Bytes) {
        let (mut delay, model, up) = match self.links.get(&link_key(node, to)) {
            Some(l) => (l.delay, l.model, l.up),
            // Adjacency without an explicit link record (not constructed
            // via `link_with`): legacy default of one time unit.
            None => (1, LinkModel::reliable(), true),
        };
        if !up {
            // The adjacency map normally prevents this; a message racing
            // an administrative down is simply lost on the floor.
            self.stats.dropped_messages += 1;
            return;
        }
        if !model.is_reliable() {
            let lost = self.rng.chance(model.loss_ppm);
            let corrupt = self.rng.chance(model.corrupt_ppm);
            let duplicate = self.rng.chance(model.duplicate_ppm);
            let jitter = if model.jitter > 0 { self.rng.below(model.jitter + 1) } else { 0 };
            if lost {
                self.stats.dropped_messages += 1;
                return;
            }
            if corrupt && !bytes.is_empty() {
                let idx = self.rng.below(bytes.len() as u64) as usize;
                let flip = 1 + self.rng.below(255) as u8;
                let mut copy = bytes.to_vec();
                copy[idx] ^= flip;
                bytes = Bytes::from(copy);
                self.stats.corrupted_messages += 1;
            }
            delay += jitter;
            if duplicate {
                self.stats.duplicated_messages += 1;
                // Refcount bump: the duplicate shares the original's
                // buffer.
                self.queue
                    .schedule(delay + 1, Event::Deliver { to, from: node, bytes: bytes.clone() });
            }
        }
        self.queue.schedule(delay, Event::Deliver { to, from: node, bytes });
    }

    fn serve_oob(&mut self, to_addr: Ipv4Addr, from: NodeId, payload: Vec<u8>) {
        let Some((owner, service)) = self.services.get_mut(&to_addr) else { return };
        let owner = *owner;
        match service {
            Service::WiserCostExchange => {
                let from_as = self.nodes[from].speaker.asn();
                if let Some(module) = self.nodes[owner].speaker.module_mut(ProtocolId::WISER) {
                    module.deliver_oob(from_as, &payload);
                }
            }
            Service::ModuleInbox(protocol) => {
                let protocol = *protocol;
                let from_as = self.nodes[from].speaker.asn();
                if let Some(module) = self.nodes[owner].speaker.module_mut(protocol) {
                    module.deliver_oob(from_as, &payload);
                }
            }
            Service::Miro(portal) => {
                if let Some(request) = MiroRequest::from_bytes(&payload) {
                    if let Some(offer) = portal.negotiate(request) {
                        let response = offer.to_bytes();
                        self.queue.schedule(
                            self.oob_delay,
                            Event::OobResponse { to: from, from_addr: to_addr, payload: response },
                        );
                    }
                }
            }
            Service::Lookup(store) => {
                // Payload: 1-byte op (0 = put, 1 = get), varint key len,
                // key, value.
                if payload.is_empty() {
                    return;
                }
                let op = payload[0];
                let rest = &payload[1..];
                if op == 0 {
                    if rest.len() < 2 {
                        return;
                    }
                    let klen = rest[0] as usize;
                    if rest.len() < 1 + klen {
                        return;
                    }
                    let key = rest[1..1 + klen].to_vec();
                    let value = rest[1 + klen..].to_vec();
                    store.insert(key, value);
                } else if op == 1 {
                    let key = rest.to_vec();
                    if let Some(value) = store.get(&key).cloned() {
                        self.queue.schedule(
                            self.oob_delay,
                            Event::OobResponse { to: from, from_addr: to_addr, payload: value },
                        );
                    }
                }
            }
        }
    }

    /// Resolve which node (if any) owns `addr`: a registered service, a
    /// node address, or an originated prefix.
    pub(crate) fn owner_of(&self, addr: Ipv4Addr) -> Option<NodeId> {
        if let Some((node, _)) = self.services.get(&addr) {
            return Some(*node);
        }
        if let Some(node) = self.nodes.iter().position(|n| n.addr == addr) {
            return Some(node);
        }
        // Longest-prefix owner across all originated prefixes.
        self.nodes
            .iter()
            .enumerate()
            .flat_map(|(id, n)| {
                n.fib
                    .iter()
                    .filter(move |(p, next)| next.is_none() && p.contains(addr))
                    .map(move |(p, _)| (p.len(), id))
            })
            .max_by_key(|(len, _)| *len)
            .map(|(_, id)| id)
    }

    /// Data-plane next hop at `node` for `addr` (longest match).
    pub(crate) fn next_hop(&self, node: NodeId, addr: Ipv4Addr) -> Option<Option<NodeId>> {
        self.nodes[node]
            .fib
            .iter()
            .filter(|(p, _)| p.contains(addr))
            .max_by_key(|(p, _)| p.len())
            .map(|(_, next)| *next)
    }
}
