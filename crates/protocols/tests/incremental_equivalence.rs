//! The incremental decision process is an optimization, never a
//! semantic: for every module that declares `incremental_safe`, a
//! speaker with the fast path on and a twin with it forced off must
//! produce byte-identical outputs, installed bests and routes under
//! arbitrary announce/withdraw interleavings — including the two edges
//! the fast path must NOT take (the best's own source re-advertising,
//! and the best being withdrawn). A module that does not declare
//! safety (here: one whose selection inverts the baseline order, so
//! "strictly worse" pruning would flip its winners) must be refused
//! the fast path entirely.

use dbgp_core::module::{CandidateIa, DecisionModule};
use dbgp_core::{DbgpConfig, DbgpNeighbor, DbgpSpeaker, IslandConfig, NeighborId};
use dbgp_protocols::hlp::{HlpModule, HLP_PATH_COST};
use dbgp_protocols::{RankedPolicyModule, WiserModule};
use dbgp_wire::ia::{dkey, PathDescriptor};
use dbgp_wire::{Ia, Ipv4Addr, Ipv4Prefix, IslandId, ProtocolId};
use proptest::prelude::*;

fn p(s: &str) -> Ipv4Prefix {
    s.parse().unwrap()
}

fn prefix() -> Ipv4Prefix {
    p("128.6.0.0/16")
}

/// Neighbor `i` (0..4) speaks for AS `i + 1`.
const NEIGHBORS: usize = 4;

/// An incoming IA from neighbor `n`: the neighbor's own AS first, then
/// the generated tail (kept clear of our AS 9 and the neighbor ASes so
/// loop detection never fires asymmetrically), optionally carrying a
/// protocol cost descriptor.
fn ia_from(n: usize, tail: &[u32], cost: Option<(ProtocolId, u16, u64)>) -> Ia {
    let mut ia = Ia::originate(prefix(), Ipv4Addr::new(10, 0, 0, n as u8 + 1));
    for &hop in tail.iter().rev() {
        ia.prepend_as(hop);
    }
    ia.prepend_as(n as u32 + 1);
    if let Some((proto, key, value)) = cost {
        ia.path_descriptors.push(PathDescriptor::new(proto, key, value.to_be_bytes().to_vec()));
    }
    ia
}

fn add_neighbors(speaker: &mut DbgpSpeaker, island: bool) {
    for n in 0..NEIGHBORS {
        let asn = n as u32 + 1;
        let neighbor =
            if island { DbgpNeighbor::island_peer(asn) } else { DbgpNeighbor::dbgp(asn) };
        speaker.add_neighbor(NeighborId(n as u32), neighbor);
    }
}

/// The modules under test, each with its builder and (for the island
/// protocols) the descriptor key generated announcements carry.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Module {
    Bgp,
    Ranked,
    Wiser,
    Hlp,
}

const MODULES: [Module; 4] = [Module::Bgp, Module::Ranked, Module::Wiser, Module::Hlp];

impl Module {
    fn build(self) -> DbgpSpeaker {
        let island = IslandConfig { id: IslandId(7), abstraction: false };
        match self {
            Module::Bgp => {
                let mut s = DbgpSpeaker::new(DbgpConfig::gulf(9));
                add_neighbors(&mut s, false);
                s
            }
            Module::Ranked => {
                let mut s = DbgpSpeaker::new(DbgpConfig::gulf(9));
                // Rank a handful of concrete paths the generator can
                // hit; everything else falls back to baseline order.
                s.register_module(Box::new(RankedPolicyModule::with_prefs(vec![
                    vec![3, 20],
                    vec![1, 10],
                    vec![2],
                    vec![4, 20, 10],
                ])));
                add_neighbors(&mut s, false);
                s
            }
            Module::Wiser => {
                let mut s =
                    DbgpSpeaker::new(DbgpConfig::island_member(9, island, ProtocolId::WISER));
                s.register_module(Box::new(WiserModule::new(
                    IslandId(7),
                    Ipv4Addr::new(10, 0, 0, 9),
                    5,
                )));
                add_neighbors(&mut s, true);
                s
            }
            Module::Hlp => {
                let mut s = DbgpSpeaker::new(DbgpConfig::island_member(9, island, ProtocolId::HLP));
                s.register_module(Box::new(HlpModule::new(IslandId(7), 9, 5)));
                add_neighbors(&mut s, true);
                s
            }
        }
    }

    /// The path-descriptor slot announcements feed this module's
    /// selection key through (None: cost-less baseline/ranked).
    fn cost_key(self) -> Option<(ProtocolId, u16)> {
        match self {
            Module::Bgp | Module::Ranked => None,
            Module::Wiser => Some((ProtocolId::WISER, dkey::WISER_PATH_COST)),
            Module::Hlp => Some((ProtocolId::HLP, HLP_PATH_COST)),
        }
    }
}

#[derive(Debug, Clone)]
enum Op {
    Announce { neighbor: usize, tail: Vec<u32>, cost: u64 },
    Withdraw { neighbor: usize },
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0..NEIGHBORS, proptest::collection::vec(10u32..40, 0..4), 0u64..100)
                .prop_map(|(neighbor, tail, cost)| Op::Announce { neighbor, tail, cost }),
            (0..NEIGHBORS, proptest::collection::vec(10u32..40, 0..4), 0u64..100)
                .prop_map(|(neighbor, tail, cost)| Op::Announce { neighbor, tail, cost }),
            (0..NEIGHBORS, proptest::collection::vec(10u32..40, 0..4), 0u64..100)
                .prop_map(|(neighbor, tail, cost)| Op::Announce { neighbor, tail, cost }),
            (0..NEIGHBORS).prop_map(|neighbor| Op::Withdraw { neighbor }),
        ],
        1..40,
    )
}

/// Drive fast and slow twins through `ops`, asserting identical outputs
/// and installed bests after every single step. Returns the fast twin's
/// fast-path hit count.
fn assert_twins_equivalent(module: Module, ops: &[Op]) -> u64 {
    let mut fast = module.build();
    let mut slow = module.build();
    slow.set_incremental(false);
    for (step, op) in ops.iter().enumerate() {
        let (fast_out, slow_out) = match op {
            Op::Announce { neighbor, tail, cost } => {
                let ia = ia_from(
                    *neighbor,
                    tail,
                    module.cost_key().map(|(proto, key)| (proto, key, *cost)),
                );
                (
                    fast.receive_ia(NeighborId(*neighbor as u32), ia.clone()),
                    slow.receive_ia(NeighborId(*neighbor as u32), ia),
                )
            }
            Op::Withdraw { neighbor } => (
                fast.receive_withdraw(NeighborId(*neighbor as u32), prefix()),
                slow.receive_withdraw(NeighborId(*neighbor as u32), prefix()),
            ),
        };
        assert_eq!(fast_out, slow_out, "{module:?}: outputs diverged at step {step} on {op:?}");
        assert_eq!(
            fast.best(&prefix()),
            slow.best(&prefix()),
            "{module:?}: installed best diverged at step {step} on {op:?}"
        );
    }
    let fast_routes: Vec<_> = fast.routes().collect();
    let slow_routes: Vec<_> = slow.routes().collect();
    assert_eq!(fast_routes, slow_routes, "{module:?}: final Loc-RIBs diverged");
    assert_eq!(slow.full_scans_avoided(), 0, "the slow twin must never fast-path");
    fast.full_scans_avoided()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random interleavings (duplicate-neighbor re-advertisements and
    /// best-withdrawals arise constantly at 4 neighbors × 40 ops) keep
    /// every incremental-safe module's twins in lockstep.
    #[test]
    fn incremental_equals_full_scan_for_every_safe_module(ops in arb_ops()) {
        for module in MODULES {
            assert_twins_equivalent(module, &ops);
        }
    }
}

/// The two edges the fast path must refuse, pinned deterministically
/// per module: the best's own source re-advertising (the incumbent is
/// replaced, so "worse than the incumbent" proves nothing) and the best
/// itself being withdrawn — plus a duplicate re-advertisement from the
/// losing neighbor, which IS eligible. The strictly-worse arrival
/// must fast-path at least once in the sequence.
#[test]
fn readvertisement_and_best_withdrawal_edges_hold_per_module() {
    for module in MODULES {
        let worse_cost = 80;
        let ops = vec![
            // A good route, then a strictly worse challenger.
            Op::Announce { neighbor: 0, tail: vec![10], cost: 2 },
            Op::Announce { neighbor: 1, tail: vec![20, 21, 22], cost: worse_cost },
            // The losing neighbor re-advertises (still worse): eligible.
            Op::Announce { neighbor: 1, tail: vec![20, 21, 23], cost: worse_cost },
            // The BEST's source re-advertises a much worse route: the
            // incumbent itself is replaced — never eligible. Selection
            // must move to neighbor 1.
            Op::Announce { neighbor: 0, tail: vec![10, 11, 12, 13], cost: 99 },
            // Withdraw the non-best, then the best.
            Op::Announce { neighbor: 2, tail: vec![30, 31, 32, 33], cost: 99 },
            Op::Withdraw { neighbor: 2 },
            Op::Withdraw { neighbor: 1 },
            Op::Withdraw { neighbor: 0 },
        ];
        let hits = assert_twins_equivalent(module, &ops);
        assert!(hits > 0, "{module:?}: the strictly-worse arrival never fast-pathed");
    }
}

/// A selection order the baseline's "strictly worse" pruning inverts:
/// longest path wins. The module keeps `incremental_safe` at its
/// default `false`, so the speaker must refuse the fast path — and the
/// long (baseline-worse) arrival must still WIN, which is exactly the
/// outcome a wrongly-applied fast path would have skipped.
#[derive(Debug)]
struct LongestPathWins;

impl DecisionModule for LongestPathWins {
    fn protocol(&self) -> ProtocolId {
        ProtocolId::BGP
    }

    fn select_best(
        &mut self,
        _prefix: Ipv4Prefix,
        candidates: &[CandidateIa<'_>],
    ) -> Option<usize> {
        candidates
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| (c.ia.hop_count(), c.neighbor_as))
            .map(|(i, _)| i)
    }
}

#[test]
fn a_module_without_the_safety_declaration_is_refused_the_fast_path() {
    let mut speaker = DbgpSpeaker::new(DbgpConfig::gulf(9));
    speaker.register_module(Box::new(LongestPathWins));
    add_neighbors(&mut speaker, false);
    speaker.receive_ia(NeighborId(0), ia_from(0, &[10], None));
    assert_eq!(speaker.best(&prefix()).unwrap().neighbor, Some(NeighborId(0)));
    // Baseline-strictly-worse (longer path, different neighbor): the
    // textbook fast-path candidate — but under this module it wins, so
    // taking the fast path would install the wrong route.
    speaker.receive_ia(NeighborId(1), ia_from(1, &[20, 21, 22], None));
    assert_eq!(
        speaker.best(&prefix()).unwrap().neighbor,
        Some(NeighborId(1)),
        "the longest path must win under the module's order"
    );
    assert_eq!(
        speaker.full_scans_avoided(),
        0,
        "an unsafe module must never be granted the fast path"
    );
    // Withdrawing the loser is also ineligible without the declaration.
    speaker.receive_withdraw(NeighborId(0), prefix());
    assert_eq!(speaker.full_scans_avoided(), 0);
    assert_eq!(speaker.best(&prefix()).unwrap().neighbor, Some(NeighborId(1)));
}
