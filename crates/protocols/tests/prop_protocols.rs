//! Property tests across the protocol modules: codec totality,
//! composition invariants, scaling bounds and attestation security.

use dbgp_crypto::KeyRegistry;
use dbgp_protocols::hlp::{LinkStateDb, Lsa};
use dbgp_protocols::pathlet::{decode_pathlets, encode_pathlets, Pathlet, PathletDb, PathletNode};
use dbgp_protocols::rbgp::BackupPath;
use dbgp_protocols::scion::PathSet;
use dbgp_protocols::{MiroOffer, MiroRequest};
use dbgp_wire::{Ipv4Addr, Ipv4Prefix};
use proptest::prelude::*;

fn arb_prefix() -> impl Strategy<Value = Ipv4Prefix> {
    (any::<u32>(), 8u8..=28).prop_map(|(a, l)| Ipv4Prefix::new(Ipv4Addr(a), l).unwrap())
}

fn arb_pathlet() -> impl Strategy<Value = Pathlet> {
    (
        1u32..10_000,
        1u32..100,
        prop_oneof![
            (1u32..100).prop_map(PathletNode::Router),
            arb_prefix().prop_map(PathletNode::Dest),
        ],
    )
        .prop_map(|(fid, from, to)| Pathlet { fid, from: PathletNode::Router(from), to })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn pathlet_codec_roundtrips(pathlets in proptest::collection::vec(arb_pathlet(), 0..8)) {
        let encoded = encode_pathlets(&pathlets);
        prop_assert_eq!(decode_pathlets(&encoded), Some(pathlets));
    }

    #[test]
    fn pathlet_codec_never_panics_on_noise(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = decode_pathlets(&data);
    }

    /// Every composed header is walkable: each FID exists, consecutive
    /// pathlets chain end-to-start, and the last ends at a prefix
    /// covering the destination.
    #[test]
    fn composed_headers_are_walkable(
        pathlets in proptest::collection::vec(arb_pathlet(), 1..16),
        dest in arb_prefix(),
        start in 1u32..100,
    ) {
        let mut db = PathletDb::new();
        for p in &pathlets {
            db.insert(p.clone());
        }
        for header in db.compose(start, &dest, 10) {
            let mut at = PathletNode::Router(start);
            for fid in &header.fids {
                let p = db.get(*fid).expect("header references a known FID");
                prop_assert_eq!(&p.from, &at, "chain break at fid {}", fid);
                at = p.to.clone();
            }
            match at {
                PathletNode::Dest(covered) => {
                    prop_assert!(covered == dest || covered.covers(&dest));
                }
                other => prop_assert!(false, "header ends mid-island: {other:?}"),
            }
        }
    }

    /// Composition never returns duplicate headers and respects the cap.
    #[test]
    fn composition_is_capped_and_duplicate_free(
        pathlets in proptest::collection::vec(arb_pathlet(), 1..20),
        dest in arb_prefix(),
        cap in 1usize..8,
    ) {
        let mut db = PathletDb::new();
        for p in &pathlets {
            db.insert(p.clone());
        }
        let headers = db.compose(1, &dest, cap);
        prop_assert!(headers.len() <= cap);
        let mut seen = std::collections::HashSet::new();
        for h in &headers {
            prop_assert!(seen.insert(h.fids.clone()), "duplicate {:?}", h.fids);
        }
    }

    #[test]
    fn scion_path_set_roundtrips(paths in proptest::collection::vec(
        proptest::collection::vec(1u32..10_000, 1..8), 0..6)) {
        let ps = PathSet { paths };
        prop_assert_eq!(PathSet::from_bytes(&ps.to_bytes()), Some(ps));
    }

    #[test]
    fn scion_path_set_never_panics(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = PathSet::from_bytes(&data);
    }

    #[test]
    fn miro_codecs_roundtrip(dst in arb_prefix(), price in any::<u64>(),
                             path in proptest::collection::vec(1u32..100_000, 0..6),
                             endpoint in any::<u32>()) {
        let req = MiroRequest { dst, max_price: price };
        prop_assert_eq!(MiroRequest::from_bytes(&req.to_bytes()), Some(req));
        let offer = MiroOffer { path, price, tunnel_endpoint: Ipv4Addr(endpoint) };
        prop_assert_eq!(MiroOffer::from_bytes(&offer.to_bytes()), Some(offer));
    }

    #[test]
    fn rbgp_backup_roundtrips(ases in proptest::collection::vec(1u32..1_000_000, 0..10)) {
        let b = BackupPath { ases };
        prop_assert_eq!(BackupPath::from_bytes(&b.to_bytes()), Some(b));
    }

    #[test]
    fn lsa_codec_roundtrips(router in 1u32..1000, seq in any::<u64>(),
                            links in proptest::collection::vec((1u32..1000, 1u64..10_000), 0..8)) {
        let lsa = Lsa { router, seq, links };
        prop_assert_eq!(Lsa::from_bytes(&lsa.to_bytes()), Some(lsa));
    }

    /// Dijkstra over random LSDBs: triangle inequality over discovered
    /// distances, and symmetry when the graph is symmetric.
    #[test]
    fn dijkstra_respects_triangle_inequality(
        edges in proptest::collection::vec((0u32..8, 0u32..8, 1u64..100), 1..20),
    ) {
        let mut adj: std::collections::HashMap<u32, Vec<(u32, u64)>> = Default::default();
        for &(a, b, c) in &edges {
            if a == b {
                continue;
            }
            adj.entry(a).or_default().push((b, c));
            adj.entry(b).or_default().push((a, c));
        }
        let mut db = LinkStateDb::new();
        for (router, links) in &adj {
            db.integrate(Lsa { router: *router, seq: 1, links: links.clone() });
        }
        let d0 = db.shortest_paths(0);
        for &u in adj.keys() {
            let du = db.shortest_paths(u);
            if let (Some(&a), Some(&b)) = (d0.get(&u), du.get(&0)) {
                prop_assert_eq!(a, b, "symmetric graph, asymmetric distance");
            }
            for (&v, &dv) in &du {
                if let Some(&direct) = d0.get(&v) {
                    if let Some(&to_u) = d0.get(&u) {
                        prop_assert!(direct <= to_u + dv, "triangle violated: d(0,{v})");
                    }
                }
            }
        }
    }

    /// Attestation chains: any prefix+path signs and verifies; flipping
    /// any byte of any tag breaks verification.
    #[test]
    fn attestation_chains_sign_verify_and_tamper_detect(
        prefix in arb_prefix(),
        path in proptest::collection::vec(1u32..100_000, 1..6),
        flip_byte in any::<u8>(),
    ) {
        let mut reg = KeyRegistry::new(b"prop-anchor");
        let subject = prefix.to_string().into_bytes();
        let mut chain = dbgp_crypto::AttestationChain::new();
        for w in path.windows(2) {
            chain.sign(&mut reg, w[0], w[1], &subject);
        }
        if path.len() >= 2 {
            chain.sign(&mut reg, *path.last().unwrap(), 999_999, &subject);
        } else {
            chain.sign(&mut reg, path[0], 999_999, &subject);
        }
        prop_assert_eq!(chain.verify(&mut reg, &subject), Ok(()));
        // Tamper with one tag byte.
        let hop = (flip_byte as usize) % chain.hops.len();
        let byte = (flip_byte as usize / 7) % 32;
        chain.hops[hop].tag[byte] ^= 0x01;
        prop_assert!(chain.verify(&mut reg, &subject).is_err());
    }
}
