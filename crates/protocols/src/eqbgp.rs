//! EQ-BGP-style end-to-end QoS as a critical fix (paper Table 1, §6.3).
//!
//! The §6.3 *bottleneck-bandwidth archetype* is drawn from this family:
//! each upgraded AS exposes its ingress bandwidth, advertisements carry
//! the running minimum, and selection maximizes the bottleneck. The
//! paper calls this "one of the most difficult objective functions with
//! which to see incremental benefits", because the true bottleneck may
//! sit inside a gulf AS that exposes nothing — which is why Figure 10
//! dips below the status quo at low adoption.

use dbgp_core::module::{CandidateIa, DecisionModule, ExportContext};
use dbgp_wire::ia::{dkey, PathDescriptor};
use dbgp_wire::{Ia, Ipv4Prefix, ProtocolId};

/// Read the bottleneck bandwidth recorded so far on an IA.
pub fn bottleneck_bw(ia: &Ia) -> Option<u64> {
    let d = ia.path_descriptor(ProtocolId::EQBGP, dkey::EQBGP_BOTTLENECK_BW)?;
    Some(u64::from_be_bytes(d.value.as_slice().try_into().ok()?))
}

fn set_bottleneck_bw(ia: &mut Ia, bw: u64) {
    ia.path_descriptors
        .retain(|d| !(d.owned_by(ProtocolId::EQBGP) && d.key == dkey::EQBGP_BOTTLENECK_BW));
    ia.path_descriptors.push(PathDescriptor::new(
        ProtocolId::EQBGP,
        dkey::EQBGP_BOTTLENECK_BW,
        bw.to_be_bytes().to_vec(),
    ));
}

/// The bottleneck-bandwidth decision module.
#[derive(Debug, Clone)]
pub struct BottleneckBwModule {
    /// This AS's ingress-link bandwidth, folded into every export.
    ingress_bw: u64,
}

impl BottleneckBwModule {
    /// Create the module with our ingress bandwidth.
    pub fn new(ingress_bw: u64) -> Self {
        BottleneckBwModule { ingress_bw }
    }
}

impl DecisionModule for BottleneckBwModule {
    fn protocol(&self) -> ProtocolId {
        ProtocolId::EQBGP
    }

    fn select_best(
        &mut self,
        _prefix: Ipv4Prefix,
        candidates: &[CandidateIa<'_>],
    ) -> Option<usize> {
        // Highest known bottleneck bandwidth; candidates without the
        // descriptor expose nothing and rank lowest. Ties fall back to
        // shortest path.
        candidates
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| {
                (
                    bottleneck_bw(c.ia).unwrap_or(0),
                    std::cmp::Reverse(c.ia.hop_count()),
                    std::cmp::Reverse(c.neighbor_as),
                )
            })
            .map(|(i, _)| i)
    }

    fn export(&mut self, ia: &mut Ia, _ctx: ExportContext) {
        let incoming = bottleneck_bw(ia).unwrap_or(u64::MAX);
        set_bottleneck_bw(ia, incoming.min(self.ingress_bw));
    }

    fn decorate_origin(&mut self, ia: &mut Ia, _local_as: u32) {
        set_bottleneck_bw(ia, self.ingress_bw);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbgp_core::module::ExportContext;
    use dbgp_core::NeighborId;
    use dbgp_wire::Ipv4Addr;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn ctx() -> ExportContext {
        ExportContext {
            neighbor: NeighborId(0),
            neighbor_as: 42,
            local_as: 7,
            prefix: p("10.0.0.0/8"),
        }
    }

    #[test]
    fn export_takes_running_minimum() {
        let mut wide = BottleneckBwModule::new(1000);
        let mut narrow = BottleneckBwModule::new(50);
        let mut ia = Ia::originate(p("10.0.0.0/8"), Ipv4Addr::new(1, 1, 1, 1));
        wide.decorate_origin(&mut ia, 1);
        assert_eq!(bottleneck_bw(&ia), Some(1000));
        narrow.export(&mut ia, ctx());
        assert_eq!(bottleneck_bw(&ia), Some(50));
        wide.export(&mut ia, ctx());
        assert_eq!(bottleneck_bw(&ia), Some(50), "minimum sticks");
    }

    #[test]
    fn selection_maximizes_bottleneck() {
        let mut m = BottleneckBwModule::new(100);
        let mut fat = Ia::originate(p("10.0.0.0/8"), Ipv4Addr::new(1, 1, 1, 1));
        fat.prepend_as(1);
        fat.prepend_as(2);
        set_bottleneck_bw(&mut fat, 900);
        let mut thin = Ia::originate(p("10.0.0.0/8"), Ipv4Addr::new(2, 2, 2, 2));
        thin.prepend_as(3);
        set_bottleneck_bw(&mut thin, 20);
        let cands = [
            CandidateIa { neighbor: NeighborId(0), neighbor_as: 3, ia: &thin },
            CandidateIa { neighbor: NeighborId(1), neighbor_as: 1, ia: &fat },
        ];
        assert_eq!(m.select_best(p("10.0.0.0/8"), &cands), Some(1));
    }

    #[test]
    fn descriptor_survives_wire() {
        let mut ia = Ia::originate(p("10.0.0.0/8"), Ipv4Addr::new(1, 1, 1, 1));
        set_bottleneck_bw(&mut ia, 777);
        let ia = Ia::decode(ia.encode()).unwrap();
        assert_eq!(bottleneck_bw(&ia), Some(777));
    }

    #[test]
    fn bandwidth_free_candidates_rank_last() {
        let mut m = BottleneckBwModule::new(100);
        let mut unknown = Ia::originate(p("10.0.0.0/8"), Ipv4Addr::new(1, 1, 1, 1));
        unknown.prepend_as(1);
        let mut known = Ia::originate(p("10.0.0.0/8"), Ipv4Addr::new(2, 2, 2, 2));
        known.prepend_as(2);
        known.prepend_as(3);
        set_bottleneck_bw(&mut known, 10);
        let cands = [
            CandidateIa { neighbor: NeighborId(0), neighbor_as: 1, ia: &unknown },
            CandidateIa { neighbor: NeighborId(1), neighbor_as: 2, ia: &known },
        ];
        assert_eq!(m.select_best(p("10.0.0.0/8"), &cands), Some(1));
    }
}
