//! HLP (Subramanian et al., SIGCOMM'05) over D-BGP: a hybrid
//! link-state / path-vector replacement protocol — Table 1's last row
//! and the §3.1/§3.2 motivating case for island-ID abstraction.
//!
//! HLP islands run link-state *internally* (flooded LSAs + shortest-path
//! computation) and path-vector externally. Because their within-island
//! paths "cannot be expressed in a path vector", such islands **must**
//! list only their island ID in the shared path vector (paper §3.2) —
//! D-BGP's loop detection then works at island granularity for them.
//!
//! Pieces:
//! * [`Lsa`] — a router's link-state advertisement with sequence-number
//!   supersession, flooded over the intra-island channel;
//! * [`LinkStateDb`] — the LSDB with Dijkstra shortest paths;
//! * [`HlpModule`] — the decision module one island member runs:
//!   external candidates are ranked by (external hop count, internal
//!   link-state distance to the member that presented them), and the
//!   module exposes the island's HLP path costs in a path descriptor
//!   ([`dkey::WISER_PATH_COST`]'s HLP analogue lives under its own key).

use bytes::{Buf, Bytes, BytesMut};
use dbgp_core::module::{CandidateIa, DecisionModule, ExportContext};
use dbgp_wire::ia::PathDescriptor;
use dbgp_wire::varint::{get_uvarint, put_uvarint};
use dbgp_wire::{Ia, Ipv4Prefix, IslandId, ProtocolId};
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// Descriptor key for HLP's accumulated path cost (it disseminates
/// "path costs" per Table 1).
pub const HLP_PATH_COST: u16 = 30;

/// A link-state advertisement: one router's view of its links.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lsa {
    /// Originating router.
    pub router: u32,
    /// Monotonic sequence number; higher supersedes.
    pub seq: u64,
    /// (neighbor router, link cost) pairs.
    pub links: Vec<(u32, u64)>,
}

impl Lsa {
    /// Serialize for flooding.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        put_uvarint(&mut buf, self.router as u64);
        put_uvarint(&mut buf, self.seq);
        put_uvarint(&mut buf, self.links.len() as u64);
        for (n, c) in &self.links {
            put_uvarint(&mut buf, *n as u64);
            put_uvarint(&mut buf, *c);
        }
        buf.to_vec()
    }

    /// Parse a flooded LSA.
    pub fn from_bytes(data: &[u8]) -> Option<Self> {
        let mut buf = Bytes::copy_from_slice(data);
        let router = get_uvarint(&mut buf).ok()? as u32;
        let seq = get_uvarint(&mut buf).ok()?;
        let n = get_uvarint(&mut buf).ok()? as usize;
        if n > data.len() {
            return None;
        }
        let mut links = Vec::with_capacity(n);
        for _ in 0..n {
            let neighbor = get_uvarint(&mut buf).ok()? as u32;
            let cost = get_uvarint(&mut buf).ok()?;
            links.push((neighbor, cost));
        }
        (!buf.has_remaining()).then_some(Lsa { router, seq, links })
    }
}

/// Reusable Dijkstra working state. `select_best` costs every external
/// candidate with a link-state distance, so the heap and settled set
/// are kept (cleared, not dropped) between runs instead of being
/// reallocated per call.
#[derive(Debug, Clone, Default)]
struct DijkstraScratch {
    heap: BinaryHeap<Reverse<(u64, u32)>>,
    visited: HashSet<u32>,
}

/// The link-state database one island member maintains.
#[derive(Debug, Clone, Default)]
pub struct LinkStateDb {
    lsas: HashMap<u32, Lsa>,
    /// Interior-mutable so the read-only query API stays `&self` (the
    /// scratch never outlives one query; queries don't nest).
    scratch: RefCell<DijkstraScratch>,
}

impl LinkStateDb {
    /// An empty LSDB.
    pub fn new() -> Self {
        Self::default()
    }

    /// Integrate a flooded LSA. Returns `true` if it was new or
    /// superseded an older one (and should be re-flooded), `false` if
    /// stale.
    pub fn integrate(&mut self, lsa: Lsa) -> bool {
        match self.lsas.get(&lsa.router) {
            Some(existing) if existing.seq >= lsa.seq => false,
            _ => {
                self.lsas.insert(lsa.router, lsa);
                true
            }
        }
    }

    /// Number of routers known.
    pub fn len(&self) -> usize {
        self.lsas.len()
    }

    /// True if no LSAs are stored.
    pub fn is_empty(&self) -> bool {
        self.lsas.is_empty()
    }

    /// Dijkstra from `source`: cost to every reachable router.
    pub fn shortest_paths(&self, source: u32) -> HashMap<u32, u64> {
        let mut dist = HashMap::new();
        self.run_dijkstra(source, None, &mut dist);
        dist
    }

    /// Cost from `source` to `target`, if reachable. Stops as soon as
    /// `target` settles rather than exploring the whole island.
    pub fn distance(&self, source: u32, target: u32) -> Option<u64> {
        let mut dist = HashMap::new();
        self.run_dijkstra(source, Some(target), &mut dist);
        dist.get(&target).copied()
    }

    /// Dijkstra with an explicit settled set: a popped router that is
    /// already settled is a stale heap entry and is skipped outright,
    /// and settled neighbors are never re-relaxed (their distance is
    /// final), so each router's adjacency is expanded exactly once.
    fn run_dijkstra(&self, source: u32, target: Option<u32>, dist: &mut HashMap<u32, u64>) {
        let mut scratch = self.scratch.borrow_mut();
        let DijkstraScratch { heap, visited } = &mut *scratch;
        heap.clear();
        visited.clear();
        dist.insert(source, 0);
        heap.push(Reverse((0, source)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if !visited.insert(u) {
                continue;
            }
            if target == Some(u) {
                break;
            }
            let Some(lsa) = self.lsas.get(&u) else { continue };
            for &(v, cost) in &lsa.links {
                if visited.contains(&v) {
                    continue;
                }
                let nd = d.saturating_add(cost);
                if nd < dist.get(&v).copied().unwrap_or(u64::MAX) {
                    dist.insert(v, nd);
                    heap.push(Reverse((nd, v)));
                }
            }
        }
    }
}

/// Read the HLP path cost from an IA.
pub fn hlp_cost(ia: &Ia) -> Option<u64> {
    let d = ia.path_descriptor(ProtocolId::HLP, HLP_PATH_COST)?;
    Some(u64::from_be_bytes(d.value.as_slice().try_into().ok()?))
}

fn set_hlp_cost(ia: &mut Ia, cost: u64) {
    ia.path_descriptors.retain(|d| !(d.owned_by(ProtocolId::HLP) && d.key == HLP_PATH_COST));
    ia.path_descriptors.push(PathDescriptor::new(
        ProtocolId::HLP,
        HLP_PATH_COST,
        cost.to_be_bytes().to_vec(),
    ));
}

/// The HLP decision module for one island member AS.
///
/// `member_of` maps fellow island members' AS numbers to their router
/// IDs in the LSDB, so external candidates presented by a member can be
/// costed with the member's link-state distance.
pub struct HlpModule {
    /// Our island.
    pub island: IslandId,
    /// Our router ID in the island's link-state graph.
    pub router: u32,
    lsdb: LinkStateDb,
    member_routers: HashMap<u32, u32>,
    /// Cost of our own ingress (added at export, like HLP's path costs).
    internal_cost: u64,
    seq: u64,
    /// Selection-epoch fence: bumped whenever the LSDB or the member
    /// map changes, because the selection key's internal-distance term
    /// reads both.
    epoch: u64,
}

impl HlpModule {
    /// Create a module for an island member.
    pub fn new(island: IslandId, router: u32, internal_cost: u64) -> Self {
        HlpModule {
            island,
            router,
            lsdb: LinkStateDb::new(),
            member_routers: HashMap::new(),
            internal_cost,
            seq: 0,
            epoch: 0,
        }
    }

    /// Declare that fellow member `asn` is router `router` in the LSDB.
    pub fn register_member(&mut self, asn: u32, router: u32) {
        self.member_routers.insert(asn, router);
        self.epoch += 1;
    }

    /// The LSDB (for inspection and flooding integration).
    pub fn lsdb(&self) -> &LinkStateDb {
        &self.lsdb
    }

    /// Produce our next own-LSA describing `links` (neighbor router,
    /// cost), with a fresh sequence number.
    pub fn make_lsa(&mut self, links: Vec<(u32, u64)>) -> Lsa {
        self.seq += 1;
        let lsa = Lsa { router: self.router, seq: self.seq, links };
        self.lsdb.integrate(lsa.clone());
        self.epoch += 1;
        lsa
    }

    /// Handle a flooded LSA (also reachable through
    /// [`DecisionModule::deliver_oob`]). Returns whether to re-flood.
    pub fn receive_lsa(&mut self, lsa: Lsa) -> bool {
        let fresh = self.lsdb.integrate(lsa);
        if fresh {
            // The link-state distances the selection key reads may have
            // shifted; stale LSAs change nothing and keep the fence.
            self.epoch += 1;
        }
        fresh
    }

    fn internal_distance_to(&self, member_as: u32) -> u64 {
        self.member_routers
            .get(&member_as)
            .and_then(|&r| self.lsdb.distance(self.router, r))
            .unwrap_or(0)
    }
}

impl DecisionModule for HlpModule {
    fn protocol(&self) -> ProtocolId {
        ProtocolId::HLP
    }

    fn select_best(
        &mut self,
        _prefix: Ipv4Prefix,
        candidates: &[CandidateIa<'_>],
    ) -> Option<usize> {
        // Rank by accumulated HLP cost (external) plus our link-state
        // distance to the member that presented the candidate; then hop
        // count; then neighbor.
        candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| {
                let external = hlp_cost(c.ia).unwrap_or(0);
                let internal = self.internal_distance_to(c.neighbor_as);
                (external.saturating_add(internal), c.ia.hop_count(), c.neighbor_as)
            })
            .map(|(i, _)| i)
    }

    fn export(&mut self, ia: &mut Ia, _ctx: ExportContext) {
        let incoming = hlp_cost(ia).unwrap_or(0);
        set_hlp_cost(ia, incoming.saturating_add(self.internal_cost));
    }

    fn decorate_origin(&mut self, ia: &mut Ia, _local_as: u32) {
        set_hlp_cost(ia, 0);
    }

    fn deliver_oob(&mut self, _from: u32, payload: &[u8]) {
        if let Some(lsa) = Lsa::from_bytes(payload) {
            self.receive_lsa(lsa);
        }
    }

    // Incremental-safety proof: (1) `select_best` is `min_by_key` over
    // `(external + internal distance, hop count, neighbor AS)` and
    // `compare_candidates` is that key's order (an exact key tie across
    // distinct neighbors leaves the first-minimal — lowest neighbor id
    // — in place, and a strictly greater challenger never enters the
    // minimal set); (2) `accept` is the side-effect-free default;
    // (3) the key reads `lsdb` and `member_routers`, both fenced by the
    // epoch bumps above. `internal_cost` is export-only.
    fn incremental_safe(&self) -> bool {
        true
    }

    fn compare_candidates(
        &mut self,
        _prefix: Ipv4Prefix,
        a: &CandidateIa<'_>,
        b: &CandidateIa<'_>,
    ) -> std::cmp::Ordering {
        let key = |c: &CandidateIa<'_>| {
            let external = hlp_cost(c.ia).unwrap_or(0);
            let internal = self.internal_distance_to(c.neighbor_as);
            (external.saturating_add(internal), c.ia.hop_count(), c.neighbor_as)
        };
        key(a).cmp(&key(b))
    }

    fn selection_epoch(&self) -> u64 {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbgp_core::NeighborId;
    use dbgp_wire::Ipv4Addr;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn lsa_codec_roundtrip() {
        let lsa = Lsa { router: 7, seq: 42, links: vec![(8, 10), (9, 3)] };
        assert_eq!(Lsa::from_bytes(&lsa.to_bytes()), Some(lsa));
        assert_eq!(Lsa::from_bytes(&[0xff; 2]), None);
    }

    #[test]
    fn lsdb_sequence_supersession() {
        let mut db = LinkStateDb::new();
        assert!(db.integrate(Lsa { router: 1, seq: 2, links: vec![(2, 5)] }));
        assert!(!db.integrate(Lsa { router: 1, seq: 1, links: vec![(2, 99)] }), "stale");
        assert!(!db.integrate(Lsa { router: 1, seq: 2, links: vec![(2, 99)] }), "same seq");
        assert!(db.integrate(Lsa { router: 1, seq: 3, links: vec![(2, 1)] }));
        assert_eq!(db.distance(1, 2), Some(1));
    }

    #[test]
    fn dijkstra_finds_shortest_paths() {
        // 1 --5-- 2 --1-- 4
        //  \--1-- 3 --1--/
        let mut db = LinkStateDb::new();
        db.integrate(Lsa { router: 1, seq: 1, links: vec![(2, 5), (3, 1)] });
        db.integrate(Lsa { router: 2, seq: 1, links: vec![(1, 5), (4, 1)] });
        db.integrate(Lsa { router: 3, seq: 1, links: vec![(1, 1), (4, 1)] });
        db.integrate(Lsa { router: 4, seq: 1, links: vec![(2, 1), (3, 1)] });
        assert_eq!(db.distance(1, 4), Some(2), "via router 3");
        assert_eq!(db.distance(1, 2), Some(3), "via 3 and 4 beats the direct 5");
        assert_eq!(db.distance(1, 99), None);
    }

    /// A graph engineered to push the same router into the heap several
    /// times with improving distances (the stale entries must be
    /// skipped, not re-expanded), queried repeatedly so the reused
    /// scratch state is proven to reset between runs.
    #[test]
    fn dijkstra_skips_stale_entries_and_reuses_scratch() {
        let mut db = LinkStateDb::new();
        db.integrate(Lsa { router: 1, seq: 1, links: vec![(2, 10), (3, 1)] });
        db.integrate(Lsa { router: 3, seq: 1, links: vec![(2, 2), (4, 20)] });
        db.integrate(Lsa { router: 2, seq: 1, links: vec![(4, 1)] });
        db.integrate(Lsa { router: 4, seq: 1, links: vec![] });
        for round in 0..3 {
            assert_eq!(db.distance(1, 2), Some(3), "1-3-2 beats direct (round {round})");
            assert_eq!(db.distance(1, 4), Some(4), "1-3-2-4 beats 1-3-4 (round {round})");
            let all = db.shortest_paths(1);
            assert_eq!(all.get(&3), Some(&1));
            assert_eq!(all.get(&2), Some(&3));
            assert_eq!(all.get(&4), Some(&4));
        }
        assert_eq!(db.distance(1, 99), None, "unreachable after scratch reuse");
    }

    #[test]
    fn module_floods_and_ranks_by_hybrid_cost() {
        // Island members: us (router 1), A (router 2, AS 200), B
        // (router 3, AS 300). Link-state: we are close to B, far from A.
        let mut m = HlpModule::new(IslandId(5), 1, 4);
        m.register_member(200, 2);
        m.register_member(300, 3);
        m.make_lsa(vec![(2, 50), (3, 1)]);
        m.deliver_oob(0, &Lsa { router: 2, seq: 1, links: vec![(1, 50)] }.to_bytes());
        m.deliver_oob(0, &Lsa { router: 3, seq: 1, links: vec![(1, 1)] }.to_bytes());
        assert_eq!(m.lsdb().len(), 3);

        // Two candidates with equal external cost: the one presented by
        // the link-state-closer member must win despite a longer
        // external hop count.
        let mut via_a = Ia::originate(p("10.0.0.0/8"), Ipv4Addr(1));
        via_a.prepend_as(200);
        set_hlp_cost(&mut via_a, 10);
        let mut via_b = Ia::originate(p("10.0.0.0/8"), Ipv4Addr(2));
        via_b.prepend_as(999);
        via_b.prepend_as(300);
        set_hlp_cost(&mut via_b, 10);
        let cands = [
            CandidateIa { neighbor: NeighborId(0), neighbor_as: 200, ia: &via_a },
            CandidateIa { neighbor: NeighborId(1), neighbor_as: 300, ia: &via_b },
        ];
        assert_eq!(m.select_best(p("10.0.0.0/8"), &cands), Some(1));
    }

    #[test]
    fn export_accumulates_cost() {
        let mut m = HlpModule::new(IslandId(5), 1, 7);
        let mut ia = Ia::originate(p("10.0.0.0/8"), Ipv4Addr(1));
        m.decorate_origin(&mut ia, 1);
        assert_eq!(hlp_cost(&ia), Some(0));
        m.export(
            &mut ia,
            ExportContext {
                neighbor: NeighborId(0),
                neighbor_as: 42,
                local_as: 1,
                prefix: p("10.0.0.0/8"),
            },
        );
        assert_eq!(hlp_cost(&ia), Some(7));
        let decoded = Ia::decode(ia.encode()).unwrap();
        assert_eq!(hlp_cost(&decoded), Some(7));
    }

    #[test]
    fn reflooding_stops_on_stale_lsas() {
        let mut m = HlpModule::new(IslandId(5), 1, 0);
        let lsa = Lsa { router: 9, seq: 5, links: vec![] };
        assert!(m.receive_lsa(lsa.clone()), "first sight: reflood");
        assert!(!m.receive_lsa(lsa), "second sight: drop (flood terminates)");
    }
}
