//! Address-format evolution support (paper §3.2): stub islands using a
//! non-baseline address format (IPv6, content names, ...) originate an
//! IA for a *gateway* plus an island descriptor pointing at a lookup
//! service that maps new-format addresses to within-island gateways.
//! "This would let islands route traffic among themselves using the new
//! format."
//!
//! We model the new format as opaque byte-string addresses (enough for
//! IPv6 or NDN-style names) and provide both the descriptor plumbing and
//! the lookup-service payloads carried over the out-of-band bus.

use bytes::{Buf, Bytes, BytesMut};
use dbgp_core::module::{CandidateIa, DecisionModule, ExportContext};
use dbgp_wire::ia::{dkey, IslandDescriptor};
use dbgp_wire::varint::{get_uvarint, put_uvarint};
use dbgp_wire::{Ia, Ipv4Addr, Ipv4Prefix, IslandId, ProtocolId};
use std::collections::HashMap;

/// An address in the island's new format: opaque bytes (an IPv6
/// address, a content name, ...).
pub type NewFormatAddr = Vec<u8>;

/// Find address-lookup services advertised along an IA's path:
/// (island, service address) pairs.
pub fn lookup_services(ia: &Ia) -> Vec<(IslandId, Ipv4Addr)> {
    ia.island_descriptors
        .iter()
        .filter(|d| d.key == dkey::ADDR_LOOKUP_SERVICE && d.value.len() == 4)
        .map(|d| (d.island, Ipv4Addr(u32::from_be_bytes(d.value.as_slice().try_into().unwrap()))))
        .collect()
}

/// A mapping query: "which gateway do I tunnel to for this new-format
/// address?"
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapQuery {
    /// The new-format address to resolve.
    pub addr: NewFormatAddr,
}

impl MapQuery {
    /// Serialize for the out-of-band bus.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        put_uvarint(&mut buf, self.addr.len() as u64);
        buf.extend_from_slice(&self.addr);
        buf.to_vec()
    }

    /// Parse from the out-of-band bus.
    pub fn from_bytes(data: &[u8]) -> Option<Self> {
        let mut buf = Bytes::copy_from_slice(data);
        let n = get_uvarint(&mut buf).ok()? as usize;
        if buf.remaining() != n {
            return None;
        }
        Some(MapQuery { addr: buf.to_vec() })
    }
}

/// The mapping service an island operates: new-format address →
/// baseline-format gateway.
#[derive(Debug, Clone, Default)]
pub struct AddressMapService {
    entries: HashMap<NewFormatAddr, Ipv4Addr>,
}

impl AddressMapService {
    /// An empty service.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a mapping.
    pub fn register(&mut self, addr: NewFormatAddr, gateway: Ipv4Addr) {
        self.entries.insert(addr, gateway);
    }

    /// Resolve a query; `None` if the address is unknown.
    pub fn resolve(&self, query: &MapQuery) -> Option<Ipv4Addr> {
        self.entries.get(&query.addr).copied()
    }

    /// Number of registered mappings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no mappings are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Decision module for a stub island evolving its address format: BGP
/// selection plus the lookup-service island descriptor on everything it
/// originates or forwards.
#[derive(Debug, Clone)]
pub struct AddrMapModule {
    island: IslandId,
    service_addr: Ipv4Addr,
}

impl AddrMapModule {
    /// Create the module with the island's lookup-service address.
    pub fn new(island: IslandId, service_addr: Ipv4Addr) -> Self {
        AddrMapModule { island, service_addr }
    }

    fn attach(&self, ia: &mut Ia) {
        let exists = ia
            .island_descriptors
            .iter()
            .any(|d| d.island == self.island && d.key == dkey::ADDR_LOOKUP_SERVICE);
        if !exists {
            ia.island_descriptors.push(IslandDescriptor::new(
                self.island,
                // The lookup service is protocol-agnostic infrastructure;
                // we file it under the baseline's ID.
                ProtocolId::BGP,
                dkey::ADDR_LOOKUP_SERVICE,
                self.service_addr.octets().to_vec(),
            ));
        }
    }
}

impl DecisionModule for AddrMapModule {
    fn protocol(&self) -> ProtocolId {
        ProtocolId::BGP
    }

    fn select_best(
        &mut self,
        _prefix: Ipv4Prefix,
        candidates: &[CandidateIa<'_>],
    ) -> Option<usize> {
        candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| (c.ia.hop_count(), c.neighbor_as))
            .map(|(i, _)| i)
    }

    fn export(&mut self, ia: &mut Ia, _ctx: ExportContext) {
        self.attach(ia);
    }

    fn decorate_origin(&mut self, ia: &mut Ia, _local_as: u32) {
        self.attach(ia);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn query_codec_roundtrip() {
        let q = MapQuery { addr: b"2001:db8::42".to_vec() };
        assert_eq!(MapQuery::from_bytes(&q.to_bytes()), Some(q));
        assert_eq!(MapQuery::from_bytes(&[5, 1]), None);
    }

    #[test]
    fn service_resolves_registered_addresses() {
        let mut svc = AddressMapService::new();
        svc.register(b"2001:db8::42".to_vec(), Ipv4Addr::new(192, 0, 2, 1));
        svc.register(b"/ndn/video/cat".to_vec(), Ipv4Addr::new(192, 0, 2, 2));
        assert_eq!(
            svc.resolve(&MapQuery { addr: b"2001:db8::42".to_vec() }),
            Some(Ipv4Addr::new(192, 0, 2, 1))
        );
        assert_eq!(svc.resolve(&MapQuery { addr: b"unknown".to_vec() }), None);
        assert_eq!(svc.len(), 2);
    }

    #[test]
    fn descriptor_survives_gulf_transit() {
        let mut module = AddrMapModule::new(IslandId(70), Ipv4Addr::new(198, 18, 0, 1));
        let mut ia = Ia::originate(p("203.0.113.0/24"), Ipv4Addr::new(9, 9, 9, 9));
        module.decorate_origin(&mut ia, 1);
        let mut ia = Ia::decode(ia.encode()).unwrap();
        ia.prepend_as(4000); // gulf hop
        let ia = Ia::decode(ia.encode()).unwrap();
        assert_eq!(lookup_services(&ia), vec![(IslandId(70), Ipv4Addr::new(198, 18, 0, 1))]);
    }

    #[test]
    fn attach_is_idempotent() {
        let module = AddrMapModule::new(IslandId(70), Ipv4Addr::new(198, 18, 0, 1));
        let mut ia = Ia::originate(p("203.0.113.0/24"), Ipv4Addr::new(9, 9, 9, 9));
        module.attach(&mut ia);
        module.attach(&mut ia);
        assert_eq!(lookup_services(&ia).len(), 1);
    }
}
