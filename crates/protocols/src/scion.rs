//! A SCION-like path-based replacement protocol (paper §2.4, Figure 3).
//!
//! The property D-BGP must rescue (Figure 3): a path-based island exposes
//! *multiple* within-island paths to a destination, but redistributing
//! into BGP keeps only one. Over D-BGP, the island encodes its full path
//! set in an island descriptor ([`dkey::SCION_PATHS`]); sources in other
//! islands extract it, choose a within-island path, and encode it in a
//! packet header, encapsulated in IPv4 to cross the gulf (§3.4).
//!
//! Paths are expressed at border-router granularity (`br70 br50 br10
//! br1` in the paper's Figure 4), so islands reveal nothing about their
//! interior topology beyond the routers sources must name.

use bytes::{Buf, Bytes, BytesMut};
use dbgp_core::module::{CandidateIa, DecisionModule, ExportContext};
use dbgp_wire::ia::{dkey, IslandDescriptor};
use dbgp_wire::varint::{get_uvarint, put_uvarint};
use dbgp_wire::{Ia, Ipv4Prefix, IslandId, ProtocolId};

/// A set of within-island paths, each a sequence of border-router IDs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PathSet {
    /// The paths, destination-side router last.
    pub paths: Vec<Vec<u32>>,
}

impl PathSet {
    /// Encode into an island-descriptor value.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        put_uvarint(&mut buf, self.paths.len() as u64);
        for path in &self.paths {
            put_uvarint(&mut buf, path.len() as u64);
            for router in path {
                put_uvarint(&mut buf, *router as u64);
            }
        }
        buf.to_vec()
    }

    /// Decode from an island-descriptor value.
    pub fn from_bytes(data: &[u8]) -> Option<Self> {
        let mut buf = Bytes::copy_from_slice(data);
        let npaths = get_uvarint(&mut buf).ok()? as usize;
        if npaths > data.len() {
            return None;
        }
        let mut paths = Vec::with_capacity(npaths);
        for _ in 0..npaths {
            let len = get_uvarint(&mut buf).ok()? as usize;
            if len > data.len() {
                return None;
            }
            let mut path = Vec::with_capacity(len);
            for _ in 0..len {
                path.push(get_uvarint(&mut buf).ok()? as u32);
            }
            paths.push(path);
        }
        (!buf.has_remaining()).then_some(PathSet { paths })
    }
}

/// Extract every SCION island's path set from an IA.
pub fn path_sets(ia: &Ia) -> Vec<(IslandId, PathSet)> {
    ia.island_descriptors_for(ProtocolId::SCION)
        .filter(|d| d.key == dkey::SCION_PATHS)
        .filter_map(|d| PathSet::from_bytes(&d.value).map(|ps| (d.island, ps)))
        .collect()
}

/// Total number of within-island paths an IA exposes (the Figure-9
/// "extra paths" quantity), per-island counts capped at `cap`.
pub fn total_paths(ia: &Ia, cap: usize) -> usize {
    path_sets(ia).iter().map(|(_, ps)| ps.paths.len().min(cap)).sum()
}

/// The path-based forwarding header a source constructs (§3.4): the
/// chosen within-island router sequence, carried inside an IPv4
/// encapsulation across gulfs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScionHeader {
    /// Router IDs to traverse inside the island.
    pub hops: Vec<u32>,
}

impl ScionHeader {
    /// Serialize for encapsulation.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        put_uvarint(&mut buf, self.hops.len() as u64);
        for hop in &self.hops {
            put_uvarint(&mut buf, *hop as u64);
        }
        buf.to_vec()
    }

    /// Parse at an island ingress.
    pub fn from_bytes(data: &[u8]) -> Option<Self> {
        let mut buf = Bytes::copy_from_slice(data);
        let n = get_uvarint(&mut buf).ok()? as usize;
        if n > data.len() {
            return None;
        }
        let mut hops = Vec::with_capacity(n);
        for _ in 0..n {
            hops.push(get_uvarint(&mut buf).ok()? as u32);
        }
        Some(ScionHeader { hops })
    }
}

/// The SCION-like decision module for an island border AS.
#[derive(Debug, Clone)]
pub struct ScionModule {
    island: IslandId,
    /// The within-island paths this border AS exposes.
    own_paths: PathSet,
    /// Per-island path cap (the experiments use 10).
    cap: usize,
}

impl ScionModule {
    /// Create the module with the paths this island will expose.
    pub fn new(island: IslandId, own_paths: PathSet) -> Self {
        ScionModule { island, own_paths, cap: 10 }
    }

    /// Pick a within-island path from a received IA for the given
    /// upstream island and build the forwarding header for it.
    pub fn choose_path(ia: &Ia, island: IslandId) -> Option<ScionHeader> {
        let sets = path_sets(ia);
        let (_, set) = sets.into_iter().find(|(id, _)| *id == island)?;
        // Shortest exposed path; a real deployment would apply policy.
        let hops = set.paths.into_iter().min_by_key(|p| p.len())?;
        Some(ScionHeader { hops })
    }

    fn attach(&self, ia: &mut Ia) {
        let exists = ia
            .island_descriptors_for(ProtocolId::SCION)
            .any(|d| d.island == self.island && d.key == dkey::SCION_PATHS);
        if !exists && !self.own_paths.paths.is_empty() {
            ia.island_descriptors.push(IslandDescriptor::new(
                self.island,
                ProtocolId::SCION,
                dkey::SCION_PATHS,
                self.own_paths.to_bytes(),
            ));
        }
    }
}

impl DecisionModule for ScionModule {
    fn protocol(&self) -> ProtocolId {
        ProtocolId::SCION
    }

    fn select_best(
        &mut self,
        _prefix: Ipv4Prefix,
        candidates: &[CandidateIa<'_>],
    ) -> Option<usize> {
        // Path-based archetype: prefer the inter-island path exposing the
        // most within-island paths; tie on shortest path vector.
        candidates
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| {
                (
                    total_paths(c.ia, self.cap),
                    std::cmp::Reverse(c.ia.hop_count()),
                    std::cmp::Reverse(c.neighbor_as),
                )
            })
            .map(|(i, _)| i)
    }

    fn export(&mut self, ia: &mut Ia, _ctx: ExportContext) {
        self.attach(ia);
    }

    fn decorate_origin(&mut self, ia: &mut Ia, _local_as: u32) {
        self.attach(ia);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbgp_core::NeighborId;
    use dbgp_wire::Ipv4Addr;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn two_path_set() -> PathSet {
        // The Figure-4 SCION descriptor: br70 br50 br10 br1 and
        // br70 br20 br5 br1.
        PathSet { paths: vec![vec![70, 50, 10, 1], vec![70, 20, 5, 1]] }
    }

    #[test]
    fn path_set_codec_roundtrip() {
        let ps = two_path_set();
        assert_eq!(PathSet::from_bytes(&ps.to_bytes()), Some(ps));
        assert_eq!(PathSet::from_bytes(&[0xff; 2]), None);
    }

    #[test]
    fn empty_path_set_roundtrips() {
        let ps = PathSet::default();
        assert_eq!(PathSet::from_bytes(&ps.to_bytes()), Some(ps));
    }

    #[test]
    fn header_codec_roundtrip() {
        let h = ScionHeader { hops: vec![70, 50, 10, 1] };
        assert_eq!(ScionHeader::from_bytes(&h.to_bytes()), Some(h));
    }

    #[test]
    fn both_figure3_paths_survive_the_gulf() {
        // The Figure-3 failure D-BGP fixes: both within-island paths must
        // reach the source intact after wire transit.
        let mut module = ScionModule::new(IslandId(800), two_path_set());
        let mut ia = Ia::originate(p("131.3.0.0/24"), Ipv4Addr::new(9, 9, 9, 9));
        module.decorate_origin(&mut ia, 1);
        let ia = Ia::decode(ia.encode()).unwrap();
        let sets = path_sets(&ia);
        assert_eq!(sets.len(), 1);
        assert_eq!(sets[0].1.paths.len(), 2, "both paths visible, unlike plain BGP");
    }

    #[test]
    fn choose_path_picks_shortest_and_builds_header() {
        let mut set = two_path_set();
        set.paths.push(vec![70, 1]); // a shorter one
        let mut ia = Ia::originate(p("131.3.0.0/24"), Ipv4Addr::new(9, 9, 9, 9));
        ia.island_descriptors.push(IslandDescriptor::new(
            IslandId(800),
            ProtocolId::SCION,
            dkey::SCION_PATHS,
            set.to_bytes(),
        ));
        let header = ScionModule::choose_path(&ia, IslandId(800)).unwrap();
        assert_eq!(header.hops, vec![70, 1]);
        assert_eq!(ScionModule::choose_path(&ia, IslandId(999)), None);
    }

    #[test]
    fn total_paths_caps_per_island() {
        let big = PathSet { paths: (0..25).map(|i| vec![i, i + 1]).collect() };
        let mut ia = Ia::originate(p("10.0.0.0/8"), Ipv4Addr::new(1, 1, 1, 1));
        ia.island_descriptors.push(IslandDescriptor::new(
            IslandId(1),
            ProtocolId::SCION,
            dkey::SCION_PATHS,
            big.to_bytes(),
        ));
        ia.island_descriptors.push(IslandDescriptor::new(
            IslandId(2),
            ProtocolId::SCION,
            dkey::SCION_PATHS,
            two_path_set().to_bytes(),
        ));
        assert_eq!(total_paths(&ia, 10), 12);
    }

    #[test]
    fn module_prefers_richer_path_exposure() {
        let mut module = ScionModule::new(IslandId(1), PathSet::default());
        let mut rich = Ia::originate(p("10.0.0.0/8"), Ipv4Addr::new(1, 1, 1, 1));
        rich.prepend_as(5);
        rich.prepend_as(6);
        rich.island_descriptors.push(IslandDescriptor::new(
            IslandId(2),
            ProtocolId::SCION,
            dkey::SCION_PATHS,
            two_path_set().to_bytes(),
        ));
        let mut poor = Ia::originate(p("10.0.0.0/8"), Ipv4Addr::new(2, 2, 2, 2));
        poor.prepend_as(7);
        let cands = [
            CandidateIa { neighbor: NeighborId(0), neighbor_as: 7, ia: &poor },
            CandidateIa { neighbor: NeighborId(1), neighbor_as: 5, ia: &rich },
        ];
        assert_eq!(
            module.select_best(p("10.0.0.0/8"), &cands),
            Some(1),
            "two exposed paths beat a shorter exposure-free route"
        );
    }
}
