//! Pathlet Routing (Godfrey et al., SIGCOMM'09) deployed over D-BGP: the
//! paper's worked example of a *replacement protocol* (§2.4, §6.1,
//! Figures 6–8).
//!
//! Pathlet Routing advertises *pathlets* — path fragments named by
//! forwarding IDs (FIDs) — that sources concatenate into end-to-end
//! routes encoded in packet headers. Over D-BGP:
//!
//! * within an island, pathlets travel in the protocol's own
//!   advertisement format ([`PathletAd`], one pathlet per advertisement,
//!   as in our Beagle-equivalent implementation);
//! * at island egress, an **egress translation module** packs the
//!   exportable pathlets into an IA island descriptor
//!   ([`dkey::PATHLET_PATHLETS`]) so they can cross gulfs;
//! * at island ingress, an **ingress translation module** unpacks IAs
//!   back into pathlet advertisements;
//! * a **redistribution module** synthesizes plain-BGP reachability for
//!   destinations covered by pathlets so gulf ASes can still route
//!   (paper §3.3 and the Figure-8 experiment).
//!
//! This file is the analogue of the 509 + 293 lines the paper reports
//! for basic Pathlet Routing plus its across-gulf deployment.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use dbgp_core::module::{CandidateIa, DecisionModule, ExportContext};
use dbgp_wire::ia::{dkey, IslandDescriptor};
use dbgp_wire::varint::{get_uvarint, put_uvarint};
use dbgp_wire::{Ia, Ipv4Prefix, IslandId, ProtocolId};
use std::collections::{BTreeMap, HashMap, HashSet};

/// One endpoint of a pathlet hop: a router, or a delegated destination
/// prefix (the `9: (dr4, 131.1.4.0/24)` form of the paper's Figure 7).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PathletNode {
    /// A (border) router, by opaque ID.
    Router(u32),
    /// A destination prefix this pathlet terminates at.
    Dest(Ipv4Prefix),
}

/// A pathlet: a named fragment from one node to another.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Pathlet {
    /// Forwarding ID sources put in packet headers to use this pathlet.
    pub fid: u32,
    /// Start node.
    pub from: PathletNode,
    /// End node.
    pub to: PathletNode,
}

impl Pathlet {
    /// A router-to-router pathlet.
    pub fn between(fid: u32, from: u32, to: u32) -> Self {
        Pathlet { fid, from: PathletNode::Router(from), to: PathletNode::Router(to) }
    }

    /// A pathlet terminating at a destination prefix.
    pub fn to_dest(fid: u32, from: u32, dest: Ipv4Prefix) -> Self {
        Pathlet { fid, from: PathletNode::Router(from), to: PathletNode::Dest(dest) }
    }
}

fn encode_node(buf: &mut BytesMut, node: &PathletNode) {
    match node {
        PathletNode::Router(id) => {
            buf.put_u8(0);
            put_uvarint(buf, *id as u64);
        }
        PathletNode::Dest(prefix) => {
            buf.put_u8(1);
            prefix.encode(buf);
        }
    }
}

fn decode_node(buf: &mut Bytes) -> Option<PathletNode> {
    if !buf.has_remaining() {
        return None;
    }
    match buf.get_u8() {
        0 => Some(PathletNode::Router(get_uvarint(buf).ok()? as u32)),
        1 => Some(PathletNode::Dest(Ipv4Prefix::decode(buf).ok()?)),
        _ => None,
    }
}

/// Encode a pathlet set into the island-descriptor wire form.
pub fn encode_pathlets(pathlets: &[Pathlet]) -> Vec<u8> {
    let mut buf = BytesMut::new();
    put_uvarint(&mut buf, pathlets.len() as u64);
    for p in pathlets {
        put_uvarint(&mut buf, p.fid as u64);
        encode_node(&mut buf, &p.from);
        encode_node(&mut buf, &p.to);
    }
    buf.to_vec()
}

/// Decode a pathlet set from the island-descriptor wire form.
pub fn decode_pathlets(data: &[u8]) -> Option<Vec<Pathlet>> {
    let mut buf = Bytes::copy_from_slice(data);
    let n = get_uvarint(&mut buf).ok()? as usize;
    if n > data.len() {
        return None;
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let fid = get_uvarint(&mut buf).ok()? as u32;
        let from = decode_node(&mut buf)?;
        let to = decode_node(&mut buf)?;
        out.push(Pathlet { fid, from, to });
    }
    buf.has_remaining().then_some(()).map_or(Some(out), |_| None)
}

/// Pathlet Routing's own intra-island advertisement: one pathlet, flooded
/// hop by hop (the paper's basic implementation carries "individual
/// pathlets" per advertisement).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathletAd {
    /// The island originating the pathlet.
    pub island: IslandId,
    /// The pathlet itself.
    pub pathlet: Pathlet,
}

/// The packet header a source builds: the FID sequence to traverse.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PathletHeader {
    /// Forwarding IDs, first to pop at the front.
    pub fids: Vec<u32>,
}

impl PathletHeader {
    /// Serialize for the data plane.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        put_uvarint(&mut buf, self.fids.len() as u64);
        for fid in &self.fids {
            put_uvarint(&mut buf, *fid as u64);
        }
        buf.to_vec()
    }

    /// Parse from the data plane.
    pub fn from_bytes(data: &[u8]) -> Option<Self> {
        let mut buf = Bytes::copy_from_slice(data);
        let n = get_uvarint(&mut buf).ok()? as usize;
        if n > data.len() {
            return None;
        }
        let mut fids = Vec::with_capacity(n);
        for _ in 0..n {
            fids.push(get_uvarint(&mut buf).ok()? as u32);
        }
        Some(PathletHeader { fids })
    }
}

/// A database of known pathlets with end-to-end composition.
#[derive(Debug, Clone, Default)]
pub struct PathletDb {
    pathlets: BTreeMap<u32, Pathlet>,
    by_from: HashMap<PathletNode, Vec<u32>>,
}

impl PathletDb {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or replace) a pathlet.
    pub fn insert(&mut self, pathlet: Pathlet) {
        if let Some(old) = self.pathlets.insert(pathlet.fid, pathlet.clone()) {
            if let Some(v) = self.by_from.get_mut(&old.from) {
                v.retain(|f| *f != old.fid);
            }
        }
        self.by_from.entry(pathlet.from.clone()).or_default().push(pathlet.fid);
    }

    /// Number of known pathlets.
    pub fn len(&self) -> usize {
        self.pathlets.len()
    }

    /// True if no pathlets are known.
    pub fn is_empty(&self) -> bool {
        self.pathlets.is_empty()
    }

    /// Look up a pathlet by FID.
    pub fn get(&self, fid: u32) -> Option<&Pathlet> {
        self.pathlets.get(&fid)
    }

    /// All pathlets, FID order.
    pub fn iter(&self) -> impl Iterator<Item = &Pathlet> {
        self.pathlets.values()
    }

    /// Every distinct FID-sequence from `start` to a destination covered
    /// by `dest`, found by depth-first composition (cycle-free, capped at
    /// `max_paths` results).
    pub fn compose(&self, start: u32, dest: &Ipv4Prefix, max_paths: usize) -> Vec<PathletHeader> {
        let mut out = Vec::new();
        let mut stack = Vec::new();
        let mut visited = HashSet::new();
        self.dfs(&PathletNode::Router(start), dest, &mut stack, &mut visited, &mut out, max_paths);
        out
    }

    fn dfs(
        &self,
        at: &PathletNode,
        dest: &Ipv4Prefix,
        stack: &mut Vec<u32>,
        visited: &mut HashSet<PathletNode>,
        out: &mut Vec<PathletHeader>,
        max_paths: usize,
    ) {
        if out.len() >= max_paths {
            return;
        }
        if let PathletNode::Dest(covered) = at {
            if covered == dest || covered.covers(dest) {
                out.push(PathletHeader { fids: stack.clone() });
            }
            return;
        }
        if !visited.insert(at.clone()) {
            return;
        }
        if let Some(fids) = self.by_from.get(at) {
            let mut fids = fids.clone();
            fids.sort_unstable();
            for fid in fids {
                let pathlet = &self.pathlets[&fid];
                stack.push(fid);
                self.dfs(&pathlet.to, dest, stack, visited, out, max_paths);
                stack.pop();
            }
        }
        visited.remove(at);
    }
}

/// Ingress translation (paper §3.3): unpack a received IA into the
/// pathlet advertisements the intra-island protocol floods.
pub fn ingress_translate(ia: &Ia) -> Vec<PathletAd> {
    let mut out = Vec::new();
    for d in ia.island_descriptors_for(ProtocolId::PATHLET) {
        if d.key != dkey::PATHLET_PATHLETS {
            continue;
        }
        if let Some(pathlets) = decode_pathlets(&d.value) {
            for pathlet in pathlets {
                out.push(PathletAd { island: d.island, pathlet });
            }
        }
    }
    out
}

/// Egress translation (paper §3.3): pack pathlets into the island
/// descriptor attached to an outgoing IA.
pub fn egress_translate(island: IslandId, pathlets: &[Pathlet]) -> IslandDescriptor {
    IslandDescriptor::new(
        island,
        ProtocolId::PATHLET,
        dkey::PATHLET_PATHLETS,
        encode_pathlets(pathlets),
    )
}

/// The Pathlet Routing decision module for an island border AS.
#[derive(Debug, Clone)]
pub struct PathletModule {
    /// Our island.
    island: IslandId,
    /// Our border router's ID (composition starts here).
    border_router: u32,
    /// Pathlets we expose to the rest of the Internet.
    own_pathlets: Vec<Pathlet>,
    /// Everything we have learned (own + ingress-translated).
    db: PathletDb,
    /// Cap on composed paths per destination, mirroring the paper's
    /// ten-paths-per-inter-island-path experiment cap.
    max_paths: usize,
}

impl PathletModule {
    /// Create a module for an island border AS.
    pub fn new(island: IslandId, border_router: u32, own_pathlets: Vec<Pathlet>) -> Self {
        let mut db = PathletDb::new();
        for p in &own_pathlets {
            db.insert(p.clone());
        }
        PathletModule { island, border_router, own_pathlets, db, max_paths: 10 }
    }

    /// The pathlet database (own + learned).
    pub fn db(&self) -> &PathletDb {
        &self.db
    }

    /// Learn a pathlet from the intra-island protocol or a translated IA.
    pub fn learn(&mut self, ad: PathletAd) {
        self.db.insert(ad.pathlet);
    }

    /// Compose end-to-end headers toward `dest`.
    pub fn routes_to(&self, dest: &Ipv4Prefix) -> Vec<PathletHeader> {
        self.db.compose(self.border_router, dest, self.max_paths)
    }

    /// Redistribution module (paper §3.3): the set of destination
    /// prefixes reachable through known pathlets, which the border AS
    /// re-originates into plain BGP so gulf ASes keep baseline
    /// connectivity.
    pub fn redistributed_prefixes(&self) -> Vec<Ipv4Prefix> {
        let mut out: Vec<Ipv4Prefix> = self
            .db
            .iter()
            .filter_map(|p| match &p.to {
                PathletNode::Dest(prefix) => Some(*prefix),
                _ => None,
            })
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

impl DecisionModule for PathletModule {
    fn protocol(&self) -> ProtocolId {
        ProtocolId::PATHLET
    }

    fn select_best(
        &mut self,
        _prefix: Ipv4Prefix,
        candidates: &[CandidateIa<'_>],
    ) -> Option<usize> {
        // Ingress translation: learn every candidate's pathlets, then
        // prefer the IA that exposes the most pathlets (more route
        // choice), tie-broken by shortest inter-island path.
        for c in candidates {
            for ad in ingress_translate(c.ia) {
                self.db.insert(ad.pathlet);
            }
        }
        candidates
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| {
                let pathlet_count: usize =
                    c.ia.island_descriptors_for(ProtocolId::PATHLET)
                        .filter(|d| d.key == dkey::PATHLET_PATHLETS)
                        .filter_map(|d| decode_pathlets(&d.value))
                        .map(|v| v.len())
                        .sum();
                (
                    pathlet_count,
                    std::cmp::Reverse(c.ia.hop_count()),
                    std::cmp::Reverse(c.neighbor_as),
                )
            })
            .map(|(i, _)| i)
    }

    fn export(&mut self, ia: &mut Ia, _ctx: ExportContext) {
        // Egress translation: attach our own exportable pathlets if not
        // already present.
        let already = ia
            .island_descriptors_for(ProtocolId::PATHLET)
            .any(|d| d.island == self.island && d.key == dkey::PATHLET_PATHLETS);
        if !already && !self.own_pathlets.is_empty() {
            ia.island_descriptors.push(egress_translate(self.island, &self.own_pathlets));
        }
    }

    fn decorate_origin(&mut self, ia: &mut Ia, _local_as: u32) {
        if !self.own_pathlets.is_empty() {
            ia.island_descriptors.push(egress_translate(self.island, &self.own_pathlets));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbgp_core::NeighborId;
    use dbgp_wire::Ipv4Addr;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn d() -> Ipv4Prefix {
        p("131.1.4.0/24")
    }

    #[test]
    fn pathlet_codec_roundtrip() {
        let pathlets = vec![
            Pathlet::between(1, 100, 200),
            Pathlet::to_dest(9, 200, d()),
            Pathlet::between(5, 200, 400),
        ];
        let encoded = encode_pathlets(&pathlets);
        assert_eq!(decode_pathlets(&encoded), Some(pathlets));
    }

    #[test]
    fn pathlet_codec_rejects_garbage() {
        assert_eq!(decode_pathlets(&[0xff; 3]), None);
    }

    #[test]
    fn header_codec_roundtrip() {
        let h = PathletHeader { fids: vec![3, 6, 8] };
        assert_eq!(PathletHeader::from_bytes(&h.to_bytes()), Some(h));
    }

    #[test]
    fn db_composes_figure7_paths() {
        // Island D of the paper's Figure 7:
        //   1: (dr1, dr2)   3: (dr1, dr3)   5: (dr2, dr4)
        //   4: (dr3, dr4)   9: (dr4, 131.1.4.0/24)
        // Two distinct dr1 -> dest paths must compose: [1,5,9] and [3,4,9].
        let mut db = PathletDb::new();
        for pathlet in [
            Pathlet::between(1, 1, 2),
            Pathlet::between(3, 1, 3),
            Pathlet::between(5, 2, 4),
            Pathlet::between(4, 3, 4),
            Pathlet::to_dest(9, 4, d()),
        ] {
            db.insert(pathlet);
        }
        let mut headers = db.compose(1, &d(), 10);
        headers.sort_by(|a, b| a.fids.cmp(&b.fids));
        assert_eq!(
            headers,
            vec![PathletHeader { fids: vec![1, 5, 9] }, PathletHeader { fids: vec![3, 4, 9] },]
        );
    }

    #[test]
    fn compose_handles_cycles() {
        let mut db = PathletDb::new();
        db.insert(Pathlet::between(1, 1, 2));
        db.insert(Pathlet::between(2, 2, 1)); // cycle back
        db.insert(Pathlet::to_dest(3, 2, d()));
        let headers = db.compose(1, &d(), 10);
        assert_eq!(headers, vec![PathletHeader { fids: vec![1, 3] }]);
    }

    #[test]
    fn compose_respects_max_paths_cap() {
        let mut db = PathletDb::new();
        // 4 parallel 1->2 pathlets and 4 parallel 2->dest pathlets: 16
        // combinations, capped at 10.
        for i in 0..4 {
            db.insert(Pathlet::between(10 + i, 1, 2));
            db.insert(Pathlet::to_dest(20 + i, 2, d()));
        }
        assert_eq!(db.compose(1, &d(), 10).len(), 10);
        assert_eq!(db.compose(1, &d(), 100).len(), 16);
    }

    #[test]
    fn covering_prefix_matches_more_specific_dest() {
        let mut db = PathletDb::new();
        db.insert(Pathlet::to_dest(1, 1, p("131.1.0.0/16")));
        assert_eq!(db.compose(1, &p("131.1.4.0/24"), 10).len(), 1);
        assert_eq!(db.compose(1, &p("131.2.0.0/24"), 10).len(), 0);
    }

    #[test]
    fn translation_roundtrip_through_ia() {
        let island = IslandId(700);
        let pathlets = vec![Pathlet::between(1, 1, 2), Pathlet::to_dest(9, 2, d())];
        let mut ia = Ia::originate(d(), Ipv4Addr::new(9, 9, 9, 9));
        ia.island_descriptors.push(egress_translate(island, &pathlets));
        // Cross a gulf: encode + decode the IA.
        let ia = Ia::decode(ia.encode()).unwrap();
        let ads = ingress_translate(&ia);
        assert_eq!(ads.len(), 2);
        assert!(ads.iter().all(|ad| ad.island == island));
        assert_eq!(ads[0].pathlet, pathlets[0]);
        assert_eq!(ads[1].pathlet, pathlets[1]);
    }

    #[test]
    fn module_learns_and_composes_across_islands() {
        // Island G exposes 1->2 and an inter-island pathlet 8: (2, dr50);
        // island D exposes 9: (50, dest). Our border router is 1.
        let mut module = PathletModule::new(IslandId(1), 1, vec![]);
        module.learn(PathletAd { island: IslandId(2), pathlet: Pathlet::between(7, 1, 2) });
        module.learn(PathletAd { island: IslandId(2), pathlet: Pathlet::between(8, 2, 50) });
        module.learn(PathletAd { island: IslandId(3), pathlet: Pathlet::to_dest(9, 50, d()) });
        let headers = module.routes_to(&d());
        assert_eq!(headers, vec![PathletHeader { fids: vec![7, 8, 9] }]);
    }

    #[test]
    fn module_export_attaches_own_pathlets_once() {
        let own = vec![Pathlet::between(1, 1, 2)];
        let mut module = PathletModule::new(IslandId(5), 1, own);
        let mut ia = Ia::originate(d(), Ipv4Addr::new(9, 9, 9, 9));
        let ctx =
            ExportContext { neighbor: NeighborId(0), neighbor_as: 42, local_as: 7, prefix: d() };
        module.export(&mut ia, ctx);
        module.export(&mut ia, ctx);
        let n = ia
            .island_descriptors_for(ProtocolId::PATHLET)
            .filter(|desc| desc.island == IslandId(5))
            .count();
        assert_eq!(n, 1);
    }

    #[test]
    fn module_select_prefers_more_pathlets() {
        let mut module = PathletModule::new(IslandId(1), 1, vec![]);
        let mut rich = Ia::originate(d(), Ipv4Addr::new(9, 9, 9, 9));
        rich.prepend_as(10);
        rich.island_descriptors.push(egress_translate(
            IslandId(2),
            &[Pathlet::between(1, 1, 2), Pathlet::to_dest(2, 2, d())],
        ));
        let mut poor = Ia::originate(d(), Ipv4Addr::new(8, 8, 8, 8));
        poor.prepend_as(11);
        let cands = [
            CandidateIa { neighbor: NeighborId(0), neighbor_as: 11, ia: &poor },
            CandidateIa { neighbor: NeighborId(1), neighbor_as: 10, ia: &rich },
        ];
        assert_eq!(module.select_best(d(), &cands), Some(1));
        // Selection also ingress-translated both candidates' pathlets.
        assert_eq!(module.db().len(), 2);
    }

    #[test]
    fn redistribution_lists_dest_prefixes() {
        let mut module = PathletModule::new(IslandId(1), 1, vec![]);
        module.learn(PathletAd { island: IslandId(2), pathlet: Pathlet::to_dest(9, 4, d()) });
        module.learn(PathletAd {
            island: IslandId(2),
            pathlet: Pathlet::to_dest(8, 4, p("10.0.0.0/8")),
        });
        module.learn(PathletAd { island: IslandId(2), pathlet: Pathlet::between(1, 1, 4) });
        assert_eq!(module.redistributed_prefixes(), vec![p("10.0.0.0/8"), d()]);
    }

    #[test]
    fn db_replacing_fid_updates_index() {
        let mut db = PathletDb::new();
        db.insert(Pathlet::between(1, 1, 2));
        db.insert(Pathlet::between(1, 3, 4)); // same FID, new endpoints
        assert_eq!(db.len(), 1);
        assert_eq!(db.get(1), Some(&Pathlet::between(1, 3, 4)));
        db.insert(Pathlet::to_dest(2, 4, d()));
        assert_eq!(db.compose(3, &d(), 10).len(), 1);
        assert_eq!(db.compose(1, &d(), 10).len(), 0, "old edge removed");
    }
}
