//! Wiser (Mahajan, Wetherall, Anderson — NSDI'07) deployed over D-BGP:
//! the paper's worked example of a *critical fix* (§2.2, §3.4, §6.1).
//!
//! Wiser extends BGP with a per-path *cost* that downstream ASes
//! accumulate; selecting the lowest-cost path lets ASes limit ingress
//! traffic. Because a cheating AS could inflate its internal costs,
//! Wiser is a *two-way* protocol: neighbouring Wiser islands periodically
//! exchange the total costs they receive from each other and use the
//! ratio to scale incoming costs into their own currency.
//!
//! Over D-BGP:
//! * the path cost rides in a path descriptor
//!   ([`dkey::WISER_PATH_COST`]) and crosses gulfs via pass-through;
//! * each island advertises a *cost-exchange portal* address in an
//!   island descriptor ([`dkey::WISER_PORTAL`]), so islands separated by
//!   a gulf can still run the two-way exchange out-of-band (§3.4) —
//!   until the first report arrives the scaling factor "must be guessed"
//!   (the paper's words); we guess 1.0;
//! * everything else (loop detection, dissemination) is inherited from
//!   the shared IA machinery. This whole file is the analogue of the 255
//!   lines of per-protocol code the paper reports for Wiser.

use dbgp_core::module::{CandidateIa, DecisionModule, ExportContext, ImportContext};
use dbgp_wire::ia::{dkey, IslandDescriptor, PathDescriptor};
use dbgp_wire::{Ia, Ipv4Addr, Ipv4Prefix, IslandId, ProtocolId};
use std::collections::HashMap;

/// Fixed-point denominator for scaling factors (3 decimal digits).
const SCALE_ONE: u64 = 1000;

/// Read a Wiser path cost from an IA, if present.
pub fn path_cost(ia: &Ia) -> Option<u64> {
    let d = ia.path_descriptor(ProtocolId::WISER, dkey::WISER_PATH_COST)?;
    Some(u64::from_be_bytes(d.value.as_slice().try_into().ok()?))
}

/// Set (replacing) the Wiser path cost on an IA.
pub fn set_path_cost(ia: &mut Ia, cost: u64) {
    ia.path_descriptors
        .retain(|d| !(d.owned_by(ProtocolId::WISER) && d.key == dkey::WISER_PATH_COST));
    ia.path_descriptors.push(PathDescriptor::new(
        ProtocolId::WISER,
        dkey::WISER_PATH_COST,
        cost.to_be_bytes().to_vec(),
    ));
}

/// All Wiser cost-exchange portals advertised along an IA's path.
pub fn portals(ia: &Ia) -> Vec<(IslandId, Ipv4Addr)> {
    ia.island_descriptors_for(ProtocolId::WISER)
        .filter(|d| d.key == dkey::WISER_PORTAL && d.value.len() == 4)
        .map(|d| (d.island, Ipv4Addr(u32::from_be_bytes(d.value.as_slice().try_into().unwrap()))))
        .collect()
}

/// An out-of-band cost report: "I am AS `reporter`, and the Wiser costs
/// I received from your island total `sum` over `count` paths."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostReport {
    /// The reporting AS.
    pub reporter: u32,
    /// Sum of received costs.
    pub sum: u64,
    /// Number of paths the sum covers.
    pub count: u64,
}

impl CostReport {
    /// Serialize for the out-of-band channel.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(20);
        out.extend_from_slice(&self.reporter.to_be_bytes());
        out.extend_from_slice(&self.sum.to_be_bytes());
        out.extend_from_slice(&self.count.to_be_bytes());
        out
    }

    /// Parse from the out-of-band channel.
    pub fn from_bytes(data: &[u8]) -> Option<Self> {
        if data.len() != 20 {
            return None;
        }
        Some(CostReport {
            reporter: u32::from_be_bytes(data[0..4].try_into().unwrap()),
            sum: u64::from_be_bytes(data[4..12].try_into().unwrap()),
            count: u64::from_be_bytes(data[12..20].try_into().unwrap()),
        })
    }
}

/// The Wiser decision module.
#[derive(Debug, Clone)]
pub struct WiserModule {
    /// Our island ID (used for the portal island descriptor).
    island: IslandId,
    /// Our cost-exchange portal address, advertised in island
    /// descriptors.
    portal: Ipv4Addr,
    /// Our internal cost of carrying traffic, added at each export.
    internal_cost: u64,
    /// Per-upstream-AS scaling factor, fixed-point over [`SCALE_ONE`].
    /// 1.0 until a cost report teaches us better.
    scale: HashMap<u32, u64>,
    /// Latest cost received per (neighbour AS, prefix): the basis of our
    /// outgoing cost reports. Keyed per prefix so re-running selection
    /// (which re-consults `accept`) never double-counts a path.
    received: HashMap<(u32, Ipv4Prefix), u64>,
    /// Sum/count of costs we advertised toward each neighbouring AS.
    sent: HashMap<u32, (u64, u64)>,
    /// Which neighbour AS supplied the currently chosen path per prefix,
    /// so the export filter can apply the right scaling factor.
    chosen_source: HashMap<Ipv4Prefix, u32>,
    /// Selection-epoch fence: bumped whenever `scale` changes, because
    /// the selection key reads it. All other mutable state (`received`,
    /// `sent`, `chosen_source`) never feeds the key.
    epoch: u64,
}

impl WiserModule {
    /// Create a Wiser module for an island member.
    pub fn new(island: IslandId, portal: Ipv4Addr, internal_cost: u64) -> Self {
        WiserModule {
            island,
            portal,
            internal_cost,
            scale: HashMap::new(),
            received: HashMap::new(),
            sent: HashMap::new(),
            chosen_source: HashMap::new(),
            epoch: 0,
        }
    }

    /// The scaling factor currently applied to costs from `neighbor_as`
    /// (fixed-point over 1000; 1000 = 1.0).
    pub fn scale_for(&self, neighbor_as: u32) -> u64 {
        self.scale.get(&neighbor_as).copied().unwrap_or(SCALE_ONE)
    }

    fn scaled_cost(&self, neighbor_as: u32, cost: u64) -> u64 {
        cost.saturating_mul(self.scale_for(neighbor_as)) / SCALE_ONE
    }

    /// The cost report this module would send to the island it hears
    /// costs from via `neighbor_as` (used by the out-of-band exchange).
    pub fn make_report(&self, local_as: u32, neighbor_as: u32) -> CostReport {
        let (sum, count) = self
            .received
            .iter()
            .filter(|((asn, _), _)| *asn == neighbor_as)
            .fold((0u64, 0u64), |(s, c), (_, &cost)| (s.saturating_add(cost), c + 1));
        CostReport { reporter: local_as, sum, count }
    }

    fn attach_portal(&self, ia: &mut Ia) {
        let exists = ia
            .island_descriptors_for(ProtocolId::WISER)
            .any(|d| d.island == self.island && d.key == dkey::WISER_PORTAL);
        if !exists {
            ia.island_descriptors.push(IslandDescriptor::new(
                self.island,
                ProtocolId::WISER,
                dkey::WISER_PORTAL,
                self.portal.octets().to_vec(),
            ));
        }
    }
}

impl DecisionModule for WiserModule {
    fn protocol(&self) -> ProtocolId {
        ProtocolId::WISER
    }

    fn accept(&mut self, ctx: ImportContext<'_>) -> bool {
        if let Some(cost) = path_cost(ctx.ia) {
            // Idempotent: selection re-consults accept() on every
            // redecide, so record the latest cost per path rather than
            // accumulating.
            self.received.insert((ctx.neighbor_as, ctx.prefix), cost);
        }
        true
    }

    fn select_best(&mut self, prefix: Ipv4Prefix, candidates: &[CandidateIa<'_>]) -> Option<usize> {
        // Lowest scaled cost; paths without a cost rank as if free is
        // unknowable — they sort after costed paths so Wiser information
        // is used whenever it exists. Ties: shortest path, lowest AS.
        let best = candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| {
                let cost = path_cost(c.ia)
                    .map(|raw| self.scaled_cost(c.neighbor_as, raw))
                    .unwrap_or(u64::MAX);
                (cost, c.ia.hop_count(), c.neighbor_as)
            })
            .map(|(i, _)| i)?;
        self.chosen_source.insert(prefix, candidates[best].neighbor_as);
        Some(best)
    }

    fn export(&mut self, ia: &mut Ia, ctx: ExportContext) {
        // New cost = scale(received cost) + our internal cost. The
        // incoming cost is whatever descriptor the chosen IA carried
        // (already copied through by the factory).
        let incoming = path_cost(ia).unwrap_or(0);
        let source = self.chosen_source.get(&ctx.prefix).copied().unwrap_or(0);
        let outgoing = self.scaled_cost(source, incoming).saturating_add(self.internal_cost);
        set_path_cost(ia, outgoing);
        self.attach_portal(ia);
        let slot = self.sent.entry(ctx.neighbor_as).or_insert((0, 0));
        slot.0 = slot.0.saturating_add(outgoing);
        slot.1 += 1;
    }

    fn decorate_origin(&mut self, ia: &mut Ia, _local_as: u32) {
        set_path_cost(ia, 0);
        self.attach_portal(ia);
    }

    /// Receive a neighbour island's cost report and recompute the
    /// scaling factor for costs arriving from it:
    /// `scale = (what we advertised to them) / (what they say they
    /// received from us)`, the normalization of Mahajan et al. §4.2 that
    /// makes the two islands' cost currencies comparable and defeats
    /// unilateral inflation.
    fn deliver_oob(&mut self, from: u32, payload: &[u8]) {
        let Some(report) = CostReport::from_bytes(payload) else { return };
        let (sent_sum, sent_count) = self.sent.get(&from).copied().unwrap_or((0, 0));
        if report.sum == 0 || report.count == 0 || sent_count == 0 {
            return;
        }
        let our_avg = sent_sum / sent_count;
        let their_avg = report.sum / report.count;
        if their_avg == 0 {
            return;
        }
        let scale = (our_avg.saturating_mul(SCALE_ONE)) / their_avg;
        self.scale.insert(from, scale.max(1));
        // The selection key just moved for every path from `from`:
        // invalidate the incremental fast path until each prefix's next
        // full scan re-records the epoch.
        self.epoch += 1;
    }

    // Incremental-safety proof: (1) `select_best` is `min_by_key` over
    // `(scaled cost, hop count, neighbor AS)` and `compare_candidates`
    // is that key's order — ties beyond it cannot occur between
    // *distinct* neighbors of one speaker only when neighbor AS differs,
    // and when two neighbors share an AS the first-minimal winner is the
    // lower neighbor id, which is exactly the enumeration order the
    // fast path's "strictly worse" test preserves (a strictly greater
    // key never enters the minimal set); (2) `accept` records the
    // latest received cost — idempotent by construction (see comment
    // there) and never read by the key; (3) the only key-feeding state
    // is `scale`, fenced by the epoch bump in `deliver_oob`. The
    // `chosen_source` side effect in `select_best` is export-only state,
    // and a skipped scan means the winner (hence its source AS) is
    // unchanged.
    fn incremental_safe(&self) -> bool {
        true
    }

    fn compare_candidates(
        &mut self,
        _prefix: Ipv4Prefix,
        a: &CandidateIa<'_>,
        b: &CandidateIa<'_>,
    ) -> std::cmp::Ordering {
        let key = |c: &CandidateIa<'_>| {
            let cost =
                path_cost(c.ia).map(|raw| self.scaled_cost(c.neighbor_as, raw)).unwrap_or(u64::MAX);
            (cost, c.ia.hop_count(), c.neighbor_as)
        };
        key(a).cmp(&key(b))
    }

    fn selection_epoch(&self) -> u64 {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbgp_core::NeighborId;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn ia_with_cost(hops: &[u32], cost: u64) -> Ia {
        let mut ia = Ia::originate(p("128.6.0.0/16"), Ipv4Addr::new(9, 9, 9, 9));
        for &h in hops.iter().rev() {
            ia.prepend_as(h);
        }
        set_path_cost(&mut ia, cost);
        ia
    }

    fn module() -> WiserModule {
        WiserModule::new(IslandId(7), Ipv4Addr::new(163, 42, 5, 0), 10)
    }

    #[test]
    fn cost_descriptor_roundtrip() {
        let ia = ia_with_cost(&[1], 12345);
        assert_eq!(path_cost(&ia), Some(12345));
        let decoded = Ia::decode(ia.encode()).unwrap();
        assert_eq!(path_cost(&decoded), Some(12345));
    }

    #[test]
    fn set_cost_replaces_existing() {
        let mut ia = ia_with_cost(&[1], 5);
        set_path_cost(&mut ia, 9);
        assert_eq!(path_cost(&ia), Some(9));
        let n = ia.path_descriptors.iter().filter(|d| d.key == dkey::WISER_PATH_COST).count();
        assert_eq!(n, 1);
    }

    #[test]
    fn selects_lowest_cost_even_if_longer() {
        // The Figure-1 scenario: shortest path has the highest cost.
        let mut m = module();
        let cheap_long = ia_with_cost(&[1, 2, 3], 50);
        let costly_short = ia_with_cost(&[4], 500);
        let cands = [
            CandidateIa { neighbor: NeighborId(0), neighbor_as: 4, ia: &costly_short },
            CandidateIa { neighbor: NeighborId(1), neighbor_as: 1, ia: &cheap_long },
        ];
        assert_eq!(m.select_best(p("128.6.0.0/16"), &cands), Some(1));
    }

    #[test]
    fn costless_paths_rank_last() {
        let mut m = module();
        let costed = ia_with_cost(&[1, 2, 3, 4], 1_000_000);
        let mut costless = Ia::originate(p("128.6.0.0/16"), Ipv4Addr::new(9, 9, 9, 9));
        costless.prepend_as(5);
        let cands = [
            CandidateIa { neighbor: NeighborId(0), neighbor_as: 5, ia: &costless },
            CandidateIa { neighbor: NeighborId(1), neighbor_as: 1, ia: &costed },
        ];
        assert_eq!(m.select_best(p("128.6.0.0/16"), &cands), Some(1));
    }

    #[test]
    fn export_accumulates_internal_cost_and_attaches_portal() {
        let mut m = module();
        let mut ia = ia_with_cost(&[1], 100);
        m.export(
            &mut ia,
            ExportContext {
                neighbor: NeighborId(0),
                neighbor_as: 42,
                local_as: 7,
                prefix: p("128.6.0.0/16"),
            },
        );
        assert_eq!(path_cost(&ia), Some(110));
        assert_eq!(portals(&ia), vec![(IslandId(7), Ipv4Addr::new(163, 42, 5, 0))]);
    }

    #[test]
    fn origin_decoration_sets_zero_cost() {
        let mut m = module();
        let mut ia = Ia::originate(p("128.6.0.0/16"), Ipv4Addr::new(9, 9, 9, 9));
        m.decorate_origin(&mut ia, 7);
        assert_eq!(path_cost(&ia), Some(0));
        assert_eq!(portals(&ia).len(), 1);
    }

    #[test]
    fn cost_report_roundtrip() {
        let report = CostReport { reporter: 65000, sum: 12345, count: 17 };
        assert_eq!(CostReport::from_bytes(&report.to_bytes()), Some(report));
        assert_eq!(CostReport::from_bytes(&[1, 2, 3]), None);
    }

    #[test]
    fn oob_report_recalibrates_scale() {
        let mut m = module();
        // We advertised costs averaging 200 to AS 42...
        for cost in [150u64, 250] {
            let mut ia = ia_with_cost(&[1], cost - 10);
            m.export(
                &mut ia,
                ExportContext {
                    neighbor: NeighborId(0),
                    neighbor_as: 42,
                    local_as: 7,
                    prefix: p("128.6.0.0/16"),
                },
            );
        }
        // ...and AS 42's island reports receiving an average of 400 from
        // us (their currency runs 2x hot). Scale becomes 0.5.
        let report = CostReport { reporter: 42, sum: 800, count: 2 };
        m.deliver_oob(42, &report.to_bytes());
        assert_eq!(m.scale_for(42), 500, "0.5 in fixed-point");
        // Costs from AS 42 are now halved before comparison.
        let mut inflated = module();
        inflated.scale.insert(42, 500);
        let from_42 = ia_with_cost(&[42], 1000);
        let from_1 = ia_with_cost(&[1, 2], 700);
        let cands = [
            CandidateIa { neighbor: NeighborId(0), neighbor_as: 42, ia: &from_42 },
            CandidateIa { neighbor: NeighborId(1), neighbor_as: 1, ia: &from_1 },
        ];
        // Scaled: 42 -> 500, 1 -> 700: the inflated path wins after
        // normalization.
        assert_eq!(inflated.select_best(p("128.6.0.0/16"), &cands), Some(0));
    }

    #[test]
    fn report_reflects_received_costs() {
        let mut m = module();
        let ia = ia_with_cost(&[42], 300);
        m.accept(ImportContext {
            neighbor: NeighborId(0),
            neighbor_as: 42,
            prefix: p("128.6.0.0/16"),
            ia: &ia,
        });
        let report = m.make_report(7, 42);
        assert_eq!(report, CostReport { reporter: 7, sum: 300, count: 1 });
    }

    #[test]
    fn bad_oob_payload_ignored() {
        let mut m = module();
        m.deliver_oob(42, b"junk");
        assert_eq!(m.scale_for(42), SCALE_ONE);
    }

    #[test]
    fn portal_not_duplicated() {
        let m = module();
        let mut ia = ia_with_cost(&[1], 5);
        m.attach_portal(&mut ia);
        m.attach_portal(&mut ia);
        assert_eq!(portals(&ia).len(), 1);
    }
}
