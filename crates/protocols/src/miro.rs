//! MIRO (Xu & Rexford, SIGCOMM'06) deployed over D-BGP: the paper's
//! worked example of a *custom protocol* sold as a value-added service
//! (§2.3, §3.4, Figure 2).
//!
//! MIRO islands sell alternate paths. The problem D-BGP solves for them
//! is **discovery**: with plain BGP, a transit island stuck with a bad
//! path cannot even find out that a MIRO island off-path offers better
//! ones. Over D-BGP, the MIRO island attaches an island descriptor with
//! its service portal's address ([`dkey::MIRO_PORTAL`]); the descriptor
//! is passed through gulfs, so any AS that hears *any* IA touching the
//! island (on-path discovery) — or an IA for the portal's own prefix
//! (off-path discovery) — can contact the portal out-of-band, negotiate
//! a path for payment, and tunnel traffic to it (§3.4's four-step walk).

use bytes::{Buf, Bytes, BytesMut};
use dbgp_core::module::{CandidateIa, DecisionModule, ExportContext};
use dbgp_wire::ia::{dkey, IslandDescriptor};
use dbgp_wire::varint::{get_uvarint, put_uvarint};
use dbgp_wire::{Ia, Ipv4Addr, Ipv4Prefix, IslandId, ProtocolId};

/// Discover MIRO service portals advertised along an IA's path.
pub fn find_portals(ia: &Ia) -> Vec<(IslandId, Ipv4Addr)> {
    ia.island_descriptors_for(ProtocolId::MIRO)
        .filter(|d| d.key == dkey::MIRO_PORTAL && d.value.len() == 4)
        .map(|d| (d.island, Ipv4Addr(u32::from_be_bytes(d.value.as_slice().try_into().unwrap()))))
        .collect()
}

/// A customer's request to a MIRO portal: "offer me alternate paths to
/// `dst`, costing at most `max_price`."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MiroRequest {
    /// Destination the customer wants alternatives for.
    pub dst: Ipv4Prefix,
    /// Price ceiling.
    pub max_price: u64,
}

impl MiroRequest {
    /// Serialize for the out-of-band channel.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        self.dst.encode(&mut buf);
        put_uvarint(&mut buf, self.max_price);
        buf.to_vec()
    }

    /// Parse from the out-of-band channel.
    pub fn from_bytes(data: &[u8]) -> Option<Self> {
        let mut buf = Bytes::copy_from_slice(data);
        let dst = Ipv4Prefix::decode(&mut buf).ok()?;
        let max_price = get_uvarint(&mut buf).ok()?;
        (!buf.has_remaining()).then_some(MiroRequest { dst, max_price })
    }
}

/// One alternate path a MIRO portal offers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MiroOffer {
    /// AS-level path of the alternative.
    pub path: Vec<u32>,
    /// Price to use it.
    pub price: u64,
    /// Tunnel entry point the customer must encapsulate toward.
    pub tunnel_endpoint: Ipv4Addr,
}

impl MiroOffer {
    /// Serialize one offer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        put_uvarint(&mut buf, self.path.len() as u64);
        for asn in &self.path {
            put_uvarint(&mut buf, *asn as u64);
        }
        put_uvarint(&mut buf, self.price);
        buf.extend_from_slice(&self.tunnel_endpoint.octets());
        buf.to_vec()
    }

    /// Parse one offer.
    pub fn from_bytes(data: &[u8]) -> Option<Self> {
        let mut buf = Bytes::copy_from_slice(data);
        let n = get_uvarint(&mut buf).ok()? as usize;
        if n > data.len() {
            return None;
        }
        let mut path = Vec::with_capacity(n);
        for _ in 0..n {
            path.push(get_uvarint(&mut buf).ok()? as u32);
        }
        let price = get_uvarint(&mut buf).ok()?;
        if buf.remaining() != 4 {
            return None;
        }
        let tunnel_endpoint = Ipv4Addr(buf.get_u32());
        Some(MiroOffer { path, price, tunnel_endpoint })
    }
}

/// The server side of a MIRO island: the portal customers negotiate
/// with. Lives behind the out-of-band bus in the simulator.
#[derive(Debug, Clone, Default)]
pub struct MiroPortal {
    offers: Vec<(Ipv4Prefix, MiroOffer)>,
    /// Completed sales: (destination, price) — bookkeeping for the
    /// value-added-service story.
    pub sales: Vec<(Ipv4Prefix, u64)>,
}

impl MiroPortal {
    /// An empty portal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an alternate path for sale.
    pub fn offer(&mut self, dst: Ipv4Prefix, offer: MiroOffer) {
        self.offers.push((dst, offer));
    }

    /// Handle a customer request: the cheapest in-budget offer whose
    /// destination covers the request.
    pub fn negotiate(&mut self, request: MiroRequest) -> Option<MiroOffer> {
        let chosen = self
            .offers
            .iter()
            .filter(|(dst, offer)| {
                (dst == &request.dst || dst.covers(&request.dst))
                    && offer.price <= request.max_price
            })
            .min_by_key(|(_, offer)| offer.price)
            .map(|(dst, offer)| (*dst, offer.clone()))?;
        self.sales.push((chosen.0, chosen.1.price));
        Some(chosen.1)
    }
}

/// A tunnel established after negotiation: encapsulate packets for
/// `inner_dst` toward `entry`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tunnel {
    /// Tunnel entry (outer destination).
    pub entry: Ipv4Addr,
    /// Real destination (inner header).
    pub inner_dst: Ipv4Addr,
}

/// The MIRO decision module for an island selling alternate paths. MIRO
/// runs *in parallel* with the baseline (§2.3): it never takes over path
/// selection, it only advertises the service.
#[derive(Debug, Clone)]
pub struct MiroModule {
    island: IslandId,
    portal_addr: Ipv4Addr,
}

impl MiroModule {
    /// Create the module with the portal customers should contact.
    pub fn new(island: IslandId, portal_addr: Ipv4Addr) -> Self {
        MiroModule { island, portal_addr }
    }

    fn attach(&self, ia: &mut Ia) {
        let exists = ia
            .island_descriptors_for(ProtocolId::MIRO)
            .any(|d| d.island == self.island && d.key == dkey::MIRO_PORTAL);
        if !exists {
            ia.island_descriptors.push(IslandDescriptor::new(
                self.island,
                ProtocolId::MIRO,
                dkey::MIRO_PORTAL,
                self.portal_addr.octets().to_vec(),
            ));
        }
    }
}

impl DecisionModule for MiroModule {
    fn protocol(&self) -> ProtocolId {
        ProtocolId::MIRO
    }

    fn select_best(
        &mut self,
        _prefix: Ipv4Prefix,
        candidates: &[CandidateIa<'_>],
    ) -> Option<usize> {
        // Custom protocols route *selected* traffic out-of-band; baseline
        // selection stays BGP-like.
        candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| (c.ia.hop_count(), c.neighbor_as))
            .map(|(i, _)| i)
    }

    fn export(&mut self, ia: &mut Ia, _ctx: ExportContext) {
        self.attach(ia);
    }

    fn decorate_origin(&mut self, ia: &mut Ia, _local_as: u32) {
        self.attach(ia);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn request_codec_roundtrip() {
        let r = MiroRequest { dst: p("131.1.0.0/16"), max_price: 500 };
        assert_eq!(MiroRequest::from_bytes(&r.to_bytes()), Some(r));
        assert_eq!(MiroRequest::from_bytes(&[1]), None);
    }

    #[test]
    fn offer_codec_roundtrip() {
        let o = MiroOffer {
            path: vec![100, 200, 300],
            price: 250,
            tunnel_endpoint: Ipv4Addr::new(173, 82, 2, 0),
        };
        assert_eq!(MiroOffer::from_bytes(&o.to_bytes()), Some(o));
        assert_eq!(MiroOffer::from_bytes(&[0xff; 2]), None);
    }

    #[test]
    fn portal_negotiates_cheapest_in_budget() {
        let mut portal = MiroPortal::new();
        portal.offer(
            p("131.1.0.0/16"),
            MiroOffer { path: vec![1, 2], price: 300, tunnel_endpoint: Ipv4Addr(1) },
        );
        portal.offer(
            p("131.1.0.0/16"),
            MiroOffer { path: vec![1, 3, 4], price: 100, tunnel_endpoint: Ipv4Addr(2) },
        );
        let offer =
            portal.negotiate(MiroRequest { dst: p("131.1.0.0/16"), max_price: 500 }).unwrap();
        assert_eq!(offer.price, 100);
        assert_eq!(portal.sales.len(), 1);
    }

    #[test]
    fn portal_respects_budget_and_coverage() {
        let mut portal = MiroPortal::new();
        portal.offer(
            p("131.1.0.0/16"),
            MiroOffer { path: vec![1], price: 300, tunnel_endpoint: Ipv4Addr(1) },
        );
        assert!(portal.negotiate(MiroRequest { dst: p("131.1.0.0/16"), max_price: 100 }).is_none());
        assert!(portal.negotiate(MiroRequest { dst: p("10.0.0.0/8"), max_price: 1000 }).is_none());
        // A more specific destination is covered by the /16 offer.
        assert!(portal
            .negotiate(MiroRequest { dst: p("131.1.5.0/24"), max_price: 1000 })
            .is_some());
    }

    #[test]
    fn portal_descriptor_survives_gulf_transit() {
        let mut module = MiroModule::new(IslandId(1007), Ipv4Addr::new(173, 82, 2, 0));
        let mut ia = Ia::originate(p("131.4.0.0/24"), Ipv4Addr::new(9, 9, 9, 9));
        module.decorate_origin(&mut ia, 11);
        // Cross a gulf hop: wire round-trip then another AS prepends.
        let mut ia = Ia::decode(ia.encode()).unwrap();
        ia.prepend_as(4000);
        let ia = Ia::decode(ia.encode()).unwrap();
        assert_eq!(find_portals(&ia), vec![(IslandId(1007), Ipv4Addr::new(173, 82, 2, 0))]);
    }

    #[test]
    fn attach_is_idempotent() {
        let module = MiroModule::new(IslandId(1007), Ipv4Addr::new(173, 82, 2, 0));
        let mut ia = Ia::originate(p("131.4.0.0/24"), Ipv4Addr::new(9, 9, 9, 9));
        module.attach(&mut ia);
        module.attach(&mut ia);
        assert_eq!(find_portals(&ia).len(), 1);
    }
}
