//! Per-node ranked path policies: the decision-process override used by
//! the stability gadget suite (`crates/stability`).
//!
//! Griffin–Shepherd–Wilfong gadgets (BAD-GADGET, DISAGREE, dispute
//! wheels) are defined by each node *ranking* concrete AS-level paths —
//! "I prefer reaching the origin via my clockwise neighbor over my
//! direct link". [`RankedPolicyModule`] expresses exactly that: an
//! ordered list of AS-path sequences, most preferred first. It registers
//! under [`ProtocolId::BGP`], so installing it on a speaker *replaces*
//! the baseline shortest-path decision process for that node only — the
//! same per-node evolvability D-BGP's §3.3 pipeline provides, here bent
//! toward the policies that make BGP stability precarious.
//!
//! Ranking semantics: a candidate whose AS-level path equals the i-th
//! ranked sequence gets rank i; candidates matching no sequence (or
//! whose path vector contains abstracted island elements) rank below all
//! listed paths. Ties — including everything unlisted — fall back to the
//! baseline key, keeping selection a total order so replays stay
//! deterministic.

use dbgp_core::module::{baseline_key, CandidateIa, DecisionModule};
use dbgp_telemetry::SelectionReason;
use dbgp_wire::ia::PathElem;
use dbgp_wire::{Ia, Ipv4Prefix, ProtocolId};

/// Extract the pure AS-number sequence of an IA's path vector. `None`
/// when the path contains island abstractions or AS-sets — gadget
/// policies only rank concrete AS paths.
pub fn as_sequence(ia: &Ia) -> Option<Vec<u32>> {
    ia.path_vector
        .iter()
        .map(|e| match e {
            PathElem::As(a) => Some(*a),
            PathElem::Island(_) | PathElem::AsSet(_) => None,
        })
        .collect()
}

/// A decision module that orders candidates by an explicit path ranking,
/// falling back to baseline BGP order for unlisted paths.
#[derive(Debug, Clone, Default)]
pub struct RankedPolicyModule {
    prefs: Vec<Vec<u32>>,
}

impl RankedPolicyModule {
    /// A module with no rankings: behaves exactly like the baseline.
    pub fn new() -> Self {
        Self::default()
    }

    /// A module ranking `prefs` (most preferred first). Each entry is an
    /// AS-level path as received: first hop first, origin AS last.
    pub fn with_prefs(prefs: Vec<Vec<u32>>) -> Self {
        RankedPolicyModule { prefs }
    }

    /// Append a path at the bottom of the current ranking.
    pub fn prefer(mut self, path: Vec<u32>) -> Self {
        self.prefs.push(path);
        self
    }

    /// The ranked paths, most preferred first.
    pub fn prefs(&self) -> &[Vec<u32>] {
        &self.prefs
    }

    /// Rank of a candidate: index into the preference list, or
    /// `prefs.len()` for unlisted / non-AS paths.
    pub fn rank_of(&self, ia: &Ia) -> usize {
        match as_sequence(ia) {
            Some(seq) => self.prefs.iter().position(|p| *p == seq).unwrap_or(self.prefs.len()),
            None => self.prefs.len(),
        }
    }
}

impl DecisionModule for RankedPolicyModule {
    fn protocol(&self) -> ProtocolId {
        ProtocolId::BGP
    }

    // The ranking only reorders selection; outgoing IAs are untouched,
    // so exports stay shareable across the fan-out.
    fn export_is_uniform(&self) -> bool {
        true
    }

    // Incremental-safety proof: (1) `select_best` is `min_by_key` over
    // `(rank_of, baseline_key)` and `compare_candidates` is exactly that
    // key's order — a strict total order, since the baseline key's
    // neighbor-id rung breaks every rank tie; (2) `accept` is the
    // side-effect-free default; (3) `prefs` is fixed at construction
    // (the builder consumes `self`), so the key reads no mutable state
    // and the constant epoch 0 fences everything there is to fence.
    fn incremental_safe(&self) -> bool {
        true
    }

    fn compare_candidates(
        &mut self,
        _prefix: Ipv4Prefix,
        a: &CandidateIa<'_>,
        b: &CandidateIa<'_>,
    ) -> std::cmp::Ordering {
        (self.rank_of(a.ia), baseline_key(a)).cmp(&(self.rank_of(b.ia), baseline_key(b)))
    }

    fn select_best(
        &mut self,
        _prefix: Ipv4Prefix,
        candidates: &[CandidateIa<'_>],
    ) -> Option<usize> {
        candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| (self.rank_of(c.ia), baseline_key(c)))
            .map(|(i, _)| i)
    }

    fn explain_best(
        &mut self,
        _prefix: Ipv4Prefix,
        candidates: &[CandidateIa<'_>],
        best: usize,
    ) -> SelectionReason {
        if candidates.len() == 1 {
            return SelectionReason::OnlyCandidate;
        }
        let winner_rank = self.rank_of(candidates[best].ia);
        let runner_up = candidates
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != best)
            .map(|(_, c)| (self.rank_of(c.ia), baseline_key(c)))
            .min();
        match runner_up {
            Some((r, _)) if winner_rank != r => SelectionReason::ModulePreference,
            Some((_, k)) if baseline_key(&candidates[best]).0 != k.0 => {
                SelectionReason::ShortestPath
            }
            Some((_, k)) if baseline_key(&candidates[best]).1 != k.1 => SelectionReason::NeighborAs,
            Some(_) => SelectionReason::NeighborId,
            None => SelectionReason::OnlyCandidate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbgp_core::neighbor::NeighborId;
    use dbgp_wire::Ipv4Addr;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn ia(hops: &[u32]) -> Ia {
        let mut ia = Ia::originate(p("128.6.0.0/16"), Ipv4Addr::new(1, 1, 1, 1));
        for &h in hops.iter().rev() {
            ia.prepend_as(h);
        }
        ia
    }

    #[test]
    fn ranked_path_beats_shorter_unlisted_path() {
        // BAD-GADGET's essence: prefer the longer via-neighbor path.
        let via = ia(&[2, 0]);
        let direct = ia(&[0]);
        let cands = [
            CandidateIa { neighbor: NeighborId(0), neighbor_as: 100, ia: &direct },
            CandidateIa { neighbor: NeighborId(1), neighbor_as: 102, ia: &via },
        ];
        let mut m = RankedPolicyModule::new().prefer(vec![2, 0]).prefer(vec![0]);
        assert_eq!(m.select_best(p("128.6.0.0/16"), &cands), Some(1));
        assert_eq!(m.explain_best(p("128.6.0.0/16"), &cands, 1), SelectionReason::ModulePreference);
    }

    #[test]
    fn unlisted_paths_fall_back_to_baseline_order() {
        let a = ia(&[7, 0]);
        let b = ia(&[9, 0]);
        let cands = [
            CandidateIa { neighbor: NeighborId(0), neighbor_as: 107, ia: &a },
            CandidateIa { neighbor: NeighborId(1), neighbor_as: 109, ia: &b },
        ];
        let mut m = RankedPolicyModule::new().prefer(vec![3, 0]);
        // Neither is ranked: lowest neighbor AS wins, like the baseline.
        assert_eq!(m.select_best(p("128.6.0.0/16"), &cands), Some(0));
    }

    #[test]
    fn island_abstracted_paths_are_never_ranked() {
        let mut abstracted = ia(&[5, 0]);
        abstracted.declare_membership(dbgp_wire::IslandId(900), 2).unwrap();
        abstracted.abstract_island(dbgp_wire::IslandId(900), 2).unwrap();
        assert_eq!(as_sequence(&abstracted), None);
        let m = RankedPolicyModule::new().prefer(vec![5, 0]);
        assert_eq!(m.rank_of(&abstracted), 1);
    }

    #[test]
    fn empty_ranking_is_baseline() {
        let short = ia(&[1, 0]);
        let long = ia(&[3, 4, 0]);
        let cands = [
            CandidateIa { neighbor: NeighborId(0), neighbor_as: 103, ia: &long },
            CandidateIa { neighbor: NeighborId(1), neighbor_as: 101, ia: &short },
        ];
        assert_eq!(RankedPolicyModule::new().select_best(p("128.6.0.0/16"), &cands), Some(1));
    }
}
