//! R-BGP (Kushman et al., NSDI'07) over D-BGP: pre-announced backup
//! paths for fast failover — one of Table 1's critical fixes
//! ("⋆ Extra backup paths").
//!
//! R-BGP's core idea is that an AS advertises, alongside its best path,
//! one *failover path* that is maximally disjoint from it; when the
//! primary fails, traffic shifts instantly instead of waiting for
//! re-convergence. Over D-BGP the backup path rides in a path
//! descriptor ([`dkey::RBGP_BACKUP`]) and crosses gulfs by pass-through,
//! so non-contiguous R-BGP islands still learn each other's backups.
//!
//! Like Wiser, R-BGP is a two-way protocol in full generality (the
//! paper's §3.5 notes D-BGP carries its downstream messages
//! out-of-band); the part reproduced here is the one-way dissemination
//! of backup paths plus the failover decision.

use bytes::{Buf, Bytes, BytesMut};
use dbgp_core::module::{CandidateIa, DecisionModule, ExportContext};
use dbgp_wire::ia::{dkey, PathDescriptor};
use dbgp_wire::varint::{get_uvarint, put_uvarint};
use dbgp_wire::{Ia, Ipv4Prefix, ProtocolId};
use std::collections::HashMap;

/// A backup path: the AS-level alternative to the advertised best path.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BackupPath {
    /// AS numbers of the alternative, next hop first.
    pub ases: Vec<u32>,
}

impl BackupPath {
    /// Serialize into a path-descriptor value.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        put_uvarint(&mut buf, self.ases.len() as u64);
        for asn in &self.ases {
            put_uvarint(&mut buf, *asn as u64);
        }
        buf.to_vec()
    }

    /// Parse from a path-descriptor value.
    pub fn from_bytes(data: &[u8]) -> Option<Self> {
        let mut buf = Bytes::copy_from_slice(data);
        let n = get_uvarint(&mut buf).ok()? as usize;
        if n > data.len() {
            return None;
        }
        let mut ases = Vec::with_capacity(n);
        for _ in 0..n {
            ases.push(get_uvarint(&mut buf).ok()? as u32);
        }
        (!buf.has_remaining()).then_some(BackupPath { ases })
    }

    /// How many ASes this backup shares with `primary` (lower = more
    /// disjoint = better failover).
    pub fn overlap(&self, primary: &[u32]) -> usize {
        self.ases.iter().filter(|a| primary.contains(a)).count()
    }
}

/// Read the backup path carried by an IA, if any.
pub fn backup_path(ia: &Ia) -> Option<BackupPath> {
    let d = ia.path_descriptor(ProtocolId::RBGP, dkey::RBGP_BACKUP)?;
    BackupPath::from_bytes(&d.value)
}

fn set_backup(ia: &mut Ia, backup: &BackupPath) {
    ia.path_descriptors.retain(|d| !(d.owned_by(ProtocolId::RBGP) && d.key == dkey::RBGP_BACKUP));
    ia.path_descriptors.push(PathDescriptor::new(
        ProtocolId::RBGP,
        dkey::RBGP_BACKUP,
        backup.to_bytes(),
    ));
}

/// The R-BGP decision module: BGP-like selection, but it remembers the
/// runner-up as the failover path and advertises it downstream.
#[derive(Debug, Clone, Default)]
pub struct RbgpModule {
    /// The failover candidate recorded per prefix at the last selection.
    failover: HashMap<Ipv4Prefix, BackupPath>,
}

impl RbgpModule {
    /// Create the module.
    pub fn new() -> Self {
        Self::default()
    }

    /// The failover path currently held for a prefix (what the data
    /// plane switches to when the primary dies).
    pub fn failover_for(&self, prefix: &Ipv4Prefix) -> Option<&BackupPath> {
        self.failover.get(prefix)
    }
}

fn path_ases(ia: &Ia) -> Vec<u32> {
    ia.path_vector
        .iter()
        .filter_map(|e| match e {
            dbgp_wire::PathElem::As(a) => Some(*a),
            _ => None,
        })
        .collect()
}

impl DecisionModule for RbgpModule {
    fn protocol(&self) -> ProtocolId {
        ProtocolId::RBGP
    }

    fn select_best(&mut self, prefix: Ipv4Prefix, candidates: &[CandidateIa<'_>]) -> Option<usize> {
        let best = candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| (c.ia.hop_count(), c.neighbor_as))
            .map(|(i, _)| i)?;
        // The failover is the most-disjoint other candidate; failing
        // that, the chosen path's own advertised backup.
        let primary = path_ases(candidates[best].ia);
        let runner_up = candidates
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != best)
            .map(|(_, c)| BackupPath { ases: path_ases(c.ia) })
            .min_by_key(|b| (b.overlap(&primary), b.ases.len()));
        let failover = runner_up.or_else(|| backup_path(candidates[best].ia));
        match failover {
            Some(f) => {
                self.failover.insert(prefix, f);
            }
            None => {
                self.failover.remove(&prefix);
            }
        }
        Some(best)
    }

    fn export(&mut self, ia: &mut Ia, ctx: ExportContext) {
        if let Some(failover) = self.failover.get(&ctx.prefix) {
            set_backup(ia, failover);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbgp_core::NeighborId;
    use dbgp_wire::Ipv4Addr;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn ia(hops: &[u32]) -> Ia {
        let mut ia = Ia::originate(p("10.0.0.0/8"), Ipv4Addr::new(1, 1, 1, 1));
        for &h in hops.iter().rev() {
            ia.prepend_as(h);
        }
        ia
    }

    #[test]
    fn backup_codec_roundtrip() {
        let b = BackupPath { ases: vec![10, 20, 30] };
        assert_eq!(BackupPath::from_bytes(&b.to_bytes()), Some(b));
        assert_eq!(BackupPath::from_bytes(&[0xff, 0xff]), None);
    }

    #[test]
    fn overlap_counts_shared_ases() {
        let b = BackupPath { ases: vec![1, 2, 3] };
        assert_eq!(b.overlap(&[2, 3, 4]), 2);
        assert_eq!(b.overlap(&[9]), 0);
    }

    #[test]
    fn selection_records_most_disjoint_failover() {
        let mut m = RbgpModule::new();
        let primary = ia(&[1, 2]);
        let overlapping = ia(&[1, 3]); // shares AS 1 with primary
        let disjoint = ia(&[7, 8, 9]); // longer but fully disjoint
        let cands = [
            CandidateIa { neighbor: NeighborId(0), neighbor_as: 1, ia: &primary },
            CandidateIa { neighbor: NeighborId(1), neighbor_as: 1, ia: &overlapping },
            CandidateIa { neighbor: NeighborId(2), neighbor_as: 7, ia: &disjoint },
        ];
        assert_eq!(m.select_best(p("10.0.0.0/8"), &cands), Some(0), "shortest wins");
        let failover = m.failover_for(&p("10.0.0.0/8")).unwrap();
        assert_eq!(failover.ases, vec![7, 8, 9], "fully disjoint backup preferred");
    }

    #[test]
    fn export_attaches_backup_and_survives_wire() {
        let mut m = RbgpModule::new();
        let primary = ia(&[1, 2]);
        let alt = ia(&[3, 4]);
        let cands = [
            CandidateIa { neighbor: NeighborId(0), neighbor_as: 1, ia: &primary },
            CandidateIa { neighbor: NeighborId(1), neighbor_as: 3, ia: &alt },
        ];
        m.select_best(p("10.0.0.0/8"), &cands);
        let mut out = primary.clone();
        m.export(
            &mut out,
            ExportContext {
                neighbor: NeighborId(9),
                neighbor_as: 99,
                local_as: 5,
                prefix: p("10.0.0.0/8"),
            },
        );
        let decoded = Ia::decode(out.encode()).unwrap();
        assert_eq!(backup_path(&decoded).unwrap().ases, vec![3, 4]);
    }

    #[test]
    fn single_candidate_inherits_upstream_backup() {
        let mut m = RbgpModule::new();
        let mut only = ia(&[1, 2]);
        set_backup(&mut only, &BackupPath { ases: vec![8, 9] });
        let cands = [CandidateIa { neighbor: NeighborId(0), neighbor_as: 1, ia: &only }];
        m.select_best(p("10.0.0.0/8"), &cands);
        assert_eq!(m.failover_for(&p("10.0.0.0/8")).unwrap().ases, vec![8, 9]);
    }

    #[test]
    fn no_candidates_clears_failover() {
        let mut m = RbgpModule::new();
        let only = ia(&[1]);
        let cands = [CandidateIa { neighbor: NeighborId(0), neighbor_as: 1, ia: &only }];
        m.select_best(p("10.0.0.0/8"), &cands);
        assert!(m.failover_for(&p("10.0.0.0/8")).is_none(), "single candidate, no backup");
    }
}
