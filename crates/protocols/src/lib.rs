#![warn(missing_docs)]

//! Inter-domain routing protocols deployed over D-BGP.
//!
//! One module per protocol from the paper's experiments and examples,
//! each implementing `dbgp_core::DecisionModule` plus the protocol's own
//! machinery (portals, translation modules, headers, attestations):
//!
//! * [`wiser`] — Wiser path costs with out-of-band cost exchange
//!   (critical fix; §2.2, §3.4, §6.1);
//! * [`pathlet`] — Pathlet Routing with ingress/egress translation and
//!   redistribution modules (replacement; §2.4, §6.1, Figures 6–8);
//! * [`scion`] — a SCION-like path-based protocol exposing multiple
//!   within-island paths (replacement; §2.4, Figure 3);
//! * [`miro`] — MIRO alternate-path service with portal discovery and
//!   negotiation (custom protocol; §2.3, Figure 2);
//! * [`bgpsec`] — BGPSec-lite attestation chains over `dbgp-crypto`
//!   (critical fix; §3.2, §3.5);
//! * [`eqbgp`] — EQ-BGP-style bottleneck bandwidth (critical fix and the
//!   Figure-10 archetype);
//! * [`ranked`] — explicit per-node path rankings, the decision-process
//!   override the stability gadget suite uses to express
//!   Griffin-gadget policies.
//!
//! Together, the per-protocol deployment code here mirrors the paper's
//! §6.1 measurement that D-BGP reduces "deploy a new protocol across
//! gulfs" to a few hundred lines per protocol.

pub mod addrmap;
pub mod bgpsec;
pub mod eqbgp;
pub mod hlp;
pub mod miro;
pub mod pathlet;
pub mod ranked;
pub mod rbgp;
pub mod scion;
pub mod wiser;

pub use addrmap::{AddrMapModule, AddressMapService, MapQuery};
pub use bgpsec::{BgpsecModule, ChainStatus};
pub use eqbgp::BottleneckBwModule;
pub use hlp::{HlpModule, LinkStateDb, Lsa};
pub use miro::{MiroModule, MiroOffer, MiroPortal, MiroRequest, Tunnel};
pub use pathlet::{Pathlet, PathletAd, PathletDb, PathletHeader, PathletModule, PathletNode};
pub use ranked::{as_sequence, RankedPolicyModule};
pub use rbgp::{BackupPath, RbgpModule};
pub use scion::{PathSet, ScionHeader, ScionModule};
pub use wiser::{CostReport, WiserModule};
