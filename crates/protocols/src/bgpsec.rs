//! BGPSec-lite over D-BGP: secure path attestations as a critical fix
//! (paper §2.2, §3.2, §3.5).
//!
//! Each hop appends an attestation — keyed over (signer, intended next
//! AS, prefix, previous attestation) — to a chain carried in a path
//! descriptor ([`dkey::BGPSEC_ATTESTATION`]). A receiver verifies the
//! chain against its trust anchor and the IA's path vector.
//!
//! The paper is explicit about the limits D-BGP inherits here (§3.5):
//! pass-through cannot *accelerate* BGPSec's benefits, because an
//! attacker can always spoof toward the first gulf AS — an unbroken
//! chain of participation is required. We reproduce that, too: the
//! module can run in `enforce` mode (drop candidates whose chain is
//! broken — only safe inside a contiguous secure island) or monitor mode
//! (prefer verified paths but accept others, the realistic partial-
//! deployment posture).

use dbgp_core::module::{CandidateIa, DecisionModule, ExportContext, ImportContext};
use dbgp_crypto::{AttestationChain, KeyRegistry};
use dbgp_wire::ia::{dkey, PathDescriptor};
use dbgp_wire::{Ia, Ipv4Prefix, PathElem, ProtocolId};

/// Outcome of verifying an IA's attestation chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainStatus {
    /// Chain present, cryptographically valid, and consistent with the
    /// path vector up to the first non-AS element.
    Valid,
    /// No attestation descriptor at all.
    Absent,
    /// Chain present but broken (bad tag, broken target linkage, or
    /// mismatch with the path vector).
    Broken,
}

/// Read the attestation chain from an IA.
pub fn chain_of(ia: &Ia) -> Option<AttestationChain> {
    let d = ia.path_descriptor(ProtocolId::BGPSEC, dkey::BGPSEC_ATTESTATION)?;
    AttestationChain::from_bytes(&d.value)
}

fn set_chain(ia: &mut Ia, chain: &AttestationChain) {
    ia.path_descriptors
        .retain(|d| !(d.owned_by(ProtocolId::BGPSEC) && d.key == dkey::BGPSEC_ATTESTATION));
    ia.path_descriptors.push(PathDescriptor::new(
        ProtocolId::BGPSEC,
        dkey::BGPSEC_ATTESTATION,
        chain.to_bytes(),
    ));
}

fn subject_for(prefix: &Ipv4Prefix) -> Vec<u8> {
    prefix.to_string().into_bytes()
}

/// Verify an IA's chain against the trust anchor and its own path
/// vector: signers must match the trailing AS entries of the path,
/// oldest (origin) last.
pub fn verify(ia: &Ia, registry: &mut KeyRegistry, local_as: u32) -> ChainStatus {
    let Some(chain) = chain_of(ia) else { return ChainStatus::Absent };
    if chain.hops.is_empty() {
        return ChainStatus::Absent;
    }
    if chain.verify(registry, &subject_for(&ia.prefix)).is_err() {
        return ChainStatus::Broken;
    }
    // The last attestation must be addressed to us.
    if chain.hops.last().map(|h| h.target) != Some(local_as) {
        return ChainStatus::Broken;
    }
    // Signers (origin first) must equal the path vector read back-to-
    // front, for as many trailing AS entries as there are attestations.
    // (Island elements interrupt the check: an abstracted island cannot
    // be attested per-AS, one of the structural reasons the paper notes
    // BGPSec benefits need contiguity.)
    let mut path_ases: Vec<u32> = ia
        .path_vector
        .iter()
        .rev()
        .map_while(|e| match e {
            PathElem::As(asn) => Some(*asn),
            _ => None,
        })
        .collect();
    path_ases.truncate(chain.hops.len());
    if path_ases.len() < chain.hops.len() {
        return ChainStatus::Broken;
    }
    for (hop, asn) in chain.hops.iter().zip(path_ases.iter()) {
        if hop.signer != *asn {
            return ChainStatus::Broken;
        }
    }
    ChainStatus::Valid
}

/// The BGPSec-lite decision module.
pub struct BgpsecModule {
    local_as: u32,
    registry: KeyRegistry,
    /// Enforce mode drops unverifiable candidates entirely.
    enforce: bool,
}

impl BgpsecModule {
    /// Create the module. `registry` is the shared trust anchor (every
    /// participant constructs it from the same master secret).
    pub fn new(local_as: u32, registry: KeyRegistry, enforce: bool) -> Self {
        BgpsecModule { local_as, registry, enforce }
    }

    /// Verify an IA with this module's trust anchor.
    pub fn status(&mut self, ia: &Ia) -> ChainStatus {
        verify(ia, &mut self.registry, self.local_as)
    }
}

impl DecisionModule for BgpsecModule {
    fn protocol(&self) -> ProtocolId {
        ProtocolId::BGPSEC
    }

    fn accept(&mut self, ctx: ImportContext<'_>) -> bool {
        if !self.enforce {
            return true;
        }
        verify(ctx.ia, &mut self.registry, self.local_as) == ChainStatus::Valid
    }

    fn select_best(
        &mut self,
        _prefix: Ipv4Prefix,
        candidates: &[CandidateIa<'_>],
    ) -> Option<usize> {
        // Prefer verified chains, then shortest path (monitor-mode
        // ranking; under enforce, accept() already filtered).
        candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| {
                let rank = match verify(c.ia, &mut self.registry, self.local_as) {
                    ChainStatus::Valid => 0u8,
                    ChainStatus::Absent => 1,
                    ChainStatus::Broken => 2,
                };
                (rank, c.ia.hop_count(), c.neighbor_as)
            })
            .map(|(i, _)| i)
    }

    fn export(&mut self, ia: &mut Ia, ctx: ExportContext) {
        // Extend the chain toward this specific neighbor. The chain is
        // per-export-target, which is exactly why BGPSec attestations
        // cannot be aggregated (§3.5).
        let mut chain = chain_of(ia).unwrap_or_default();
        chain.sign(&mut self.registry, ctx.local_as, ctx.neighbor_as, &subject_for(&ia.prefix));
        set_chain(ia, &chain);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbgp_core::module::ExportContext;
    use dbgp_core::NeighborId;
    use dbgp_wire::Ipv4Addr;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn anchor() -> KeyRegistry {
        KeyRegistry::new(b"test-trust-anchor")
    }

    fn export_ctx(local_as: u32, neighbor_as: u32) -> ExportContext {
        ExportContext { neighbor: NeighborId(0), neighbor_as, local_as, prefix: p("128.6.0.0/16") }
    }

    /// Simulate a fully secure 3-hop advertisement: origin 1 -> 2 -> 3,
    /// final delivery target `last_target`.
    fn secure_path(last_target: u32) -> Ia {
        let mut ia = Ia::originate(p("128.6.0.0/16"), Ipv4Addr::new(9, 9, 9, 9));
        let hops = [(1u32, 2u32), (2, 3), (3, last_target)];
        for (signer, target) in hops {
            let mut module = BgpsecModule::new(signer, anchor(), false);
            module.export(&mut ia, export_ctx(signer, target));
            ia.prepend_as(signer);
        }
        ia
    }

    #[test]
    fn full_chain_verifies() {
        let ia = secure_path(99);
        let mut module = BgpsecModule::new(99, anchor(), false);
        assert_eq!(module.status(&ia), ChainStatus::Valid);
    }

    #[test]
    fn wire_roundtrip_preserves_validity() {
        let ia = Ia::decode(secure_path(99).encode()).unwrap();
        let mut module = BgpsecModule::new(99, anchor(), false);
        assert_eq!(module.status(&ia), ChainStatus::Valid);
    }

    #[test]
    fn chain_for_someone_else_rejected() {
        // Delivered to 99 but we are 98: a replayed advertisement.
        let ia = secure_path(99);
        let mut module = BgpsecModule::new(98, anchor(), false);
        assert_eq!(module.status(&ia), ChainStatus::Broken);
    }

    #[test]
    fn hijacked_origin_detected() {
        // Attacker AS 66 prepends itself as origin without a key.
        let mut ia = secure_path(99);
        ia.path_vector.push(PathElem::As(66)); // claims 66 originated
        let mut module = BgpsecModule::new(99, anchor(), false);
        assert_eq!(module.status(&ia), ChainStatus::Broken);
    }

    #[test]
    fn unsigned_gulf_hop_breaks_chain() {
        // A gulf AS (4000) forwards without signing: path grows, chain
        // does not, and the final target no longer matches us.
        let mut ia = secure_path(4000);
        ia.prepend_as(4000);
        let mut module = BgpsecModule::new(99, anchor(), false);
        assert_eq!(
            module.status(&ia),
            ChainStatus::Broken,
            "pass-through cannot fake an unbroken chain of participation"
        );
    }

    #[test]
    fn absent_chain_reported() {
        let mut ia = Ia::originate(p("10.0.0.0/8"), Ipv4Addr::new(1, 1, 1, 1));
        ia.prepend_as(5);
        let mut module = BgpsecModule::new(99, anchor(), false);
        assert_eq!(module.status(&ia), ChainStatus::Absent);
    }

    #[test]
    fn monitor_mode_prefers_valid_chain() {
        let valid = secure_path(99);
        let mut unsigned = Ia::originate(p("128.6.0.0/16"), Ipv4Addr::new(8, 8, 8, 8));
        unsigned.prepend_as(7); // shorter path, no attestations
        let mut module = BgpsecModule::new(99, anchor(), false);
        let cands = [
            CandidateIa { neighbor: NeighborId(0), neighbor_as: 7, ia: &unsigned },
            CandidateIa { neighbor: NeighborId(1), neighbor_as: 3, ia: &valid },
        ];
        assert_eq!(module.select_best(p("128.6.0.0/16"), &cands), Some(1));
    }

    #[test]
    fn enforce_mode_filters_unverified() {
        let mut module = BgpsecModule::new(99, anchor(), true);
        let mut unsigned = Ia::originate(p("128.6.0.0/16"), Ipv4Addr::new(8, 8, 8, 8));
        unsigned.prepend_as(7);
        let accepted = module.accept(dbgp_core::module::ImportContext {
            neighbor: NeighborId(0),
            neighbor_as: 7,
            prefix: p("128.6.0.0/16"),
            ia: &unsigned,
        });
        assert!(!accepted);
        let valid = secure_path(99);
        let accepted = module.accept(dbgp_core::module::ImportContext {
            neighbor: NeighborId(1),
            neighbor_as: 3,
            prefix: p("128.6.0.0/16"),
            ia: &valid,
        });
        assert!(accepted);
    }

    #[test]
    fn different_trust_anchor_rejects_everything() {
        let ia = secure_path(99);
        let mut module = BgpsecModule::new(99, KeyRegistry::new(b"other-anchor"), false);
        assert_eq!(module.status(&ia), ChainStatus::Broken);
    }
}
