//! Convergence measurement.
//!
//! A [`ConvergenceTracker`] measures what one disturbance cost the
//! control plane as a [`ConvergenceWindow`]: how long the network took
//! to quiesce, how many messages that cost, and how much per-prefix
//! route churn it caused.
//!
//! Two measurement backends, picked automatically per window:
//!
//! * **Event bus** — when the simulator has a [`dbgp_telemetry`]
//!   recorder attached ([`dbgp_sim::Sim::enable_telemetry`]), the
//!   tracker remembers the recorder's id watermark at `begin` and
//!   derives the window by scanning the trace events recorded since:
//!   `Deliver` → messages/bytes, `Decision` → best-route changes and
//!   per-`(node, prefix)` churn, `MessageDropped` → drops,
//!   `DecodeError` → decode failures.
//! * **Stats diff** — without a recorder (or if the ring evicted events
//!   past the watermark) it falls back to diffing the simulator's
//!   cumulative [`SimStats`] and churn map, the pre-telemetry behavior.
//!
//! Both backends count the same underlying occurrences (the simulator
//! emits exactly one trace event per counted statistic), so a scenario
//! produces identical windows with or without a recorder attached.

use dbgp_sim::sim::{NodeId, PrefixChurn};
use dbgp_sim::{Sim, SimStats, SimTime};
use dbgp_telemetry::TraceKind;
use dbgp_wire::Ipv4Prefix;
use std::collections::BTreeMap;

/// Snapshot-and-diff measurement of one disturbance.
#[derive(Debug, Clone)]
pub struct ConvergenceTracker {
    started_at: SimTime,
    stats: SimStats,
    churn: BTreeMap<(NodeId, Ipv4Prefix), PrefixChurn>,
    /// Recorder id watermark at the last baseline, when the sim had a
    /// trace recorder attached.
    watermark: Option<u64>,
}

/// What one disturbance cost the control plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvergenceWindow {
    /// Display label (usually the fault's).
    pub label: String,
    /// Simulated time when the window opened.
    pub started_at: SimTime,
    /// Time of the last event processed inside the window.
    pub quiesced_at: SimTime,
    /// `quiesced_at - started_at`: the convergence time. Zero when the
    /// disturbance caused no control-plane activity at all.
    pub convergence_time: SimTime,
    /// Control-plane messages delivered in the window.
    pub messages: u64,
    /// Control-plane bytes delivered in the window.
    pub bytes: u64,
    /// `BestChanged` decisions in the window (total route churn).
    pub best_changes: u64,
    /// Messages lost to lossy link models in the window.
    pub dropped_messages: u64,
    /// Deliveries that failed to decode in the window.
    pub decode_errors: u64,
    /// Distinct `(node, prefix)` pairs whose best route changed.
    pub affected_routes: u64,
    /// The largest per-`(node, prefix)` change count — the flap-damped
    /// worst case.
    pub max_route_churn: u64,
}

impl ConvergenceTracker {
    /// Open a measurement window at the simulator's current state.
    pub fn begin(sim: &Sim) -> Self {
        ConvergenceTracker {
            started_at: sim.now(),
            stats: sim.stats(),
            churn: sim.churn().clone(),
            watermark: sim.trace_recorder().map(|r| r.next_id()),
        }
    }

    /// Close the window: measure the activity since
    /// [`begin`](ConvergenceTracker::begin) (or the previous
    /// [`window`](ConvergenceTracker::window) call) and re-baseline, so
    /// one tracker can measure a whole sequence of disturbances.
    pub fn window(&mut self, sim: &Sim, label: impl Into<String>) -> ConvergenceWindow {
        let stats = sim.stats();
        // Activity quiesced at the last processed event; a window with
        // no activity has zero width.
        let quiesced_at = stats.last_event_at.max(self.started_at);
        let bus = self.watermark.and_then(|wm| {
            let rec = sim.trace_recorder()?;
            // The ring dropped part of the window: the scan would
            // undercount, so fall back to the stats diff.
            if rec.evicted() > wm {
                return None;
            }
            let mut messages = 0u64;
            let mut bytes = 0u64;
            let mut best_changes = 0u64;
            let mut dropped_messages = 0u64;
            let mut decode_errors = 0u64;
            let mut churn: BTreeMap<(u32, Ipv4Prefix), u64> = BTreeMap::new();
            rec.for_each_since(wm, |ev| match &ev.kind {
                TraceKind::Deliver { bytes: n, .. } => {
                    messages += 1;
                    bytes += u64::from(*n);
                }
                TraceKind::Decision { prefix, .. } => {
                    best_changes += 1;
                    *churn.entry((ev.node, *prefix)).or_default() += 1;
                }
                TraceKind::MessageDropped { .. } => dropped_messages += 1,
                TraceKind::DecodeError { .. } => decode_errors += 1,
                _ => {}
            });
            let affected_routes = churn.len() as u64;
            let max_route_churn = churn.values().copied().max().unwrap_or(0);
            Some((
                messages,
                bytes,
                best_changes,
                dropped_messages,
                decode_errors,
                affected_routes,
                max_route_churn,
            ))
        });
        let (
            messages,
            bytes,
            best_changes,
            dropped_messages,
            decode_errors,
            affected_routes,
            max_route_churn,
        ) = bus.unwrap_or_else(|| {
            let mut affected_routes = 0u64;
            let mut max_route_churn = 0u64;
            for (key, record) in sim.churn() {
                let before = self.churn.get(key).map(|c| c.best_changes).unwrap_or(0);
                let delta = record.best_changes - before;
                if delta > 0 {
                    affected_routes += 1;
                    max_route_churn = max_route_churn.max(delta);
                }
            }
            (
                stats.messages - self.stats.messages,
                stats.bytes - self.stats.bytes,
                stats.best_changes - self.stats.best_changes,
                stats.dropped_messages - self.stats.dropped_messages,
                stats.decode_errors - self.stats.decode_errors,
                affected_routes,
                max_route_churn,
            )
        });
        let window = ConvergenceWindow {
            label: label.into(),
            started_at: self.started_at,
            quiesced_at,
            convergence_time: quiesced_at - self.started_at,
            messages,
            bytes,
            best_changes,
            dropped_messages,
            decode_errors,
            affected_routes,
            max_route_churn,
        };
        self.started_at = sim.now();
        self.stats = stats;
        self.churn = sim.churn().clone();
        self.watermark = sim.trace_recorder().map(|r| r.next_id());
        window
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbgp_core::DbgpConfig;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn windows_report_deltas_not_totals() {
        let mut sim = Sim::new();
        let a = sim.add_node(DbgpConfig::gulf(1));
        let b = sim.add_node(DbgpConfig::gulf(2));
        let c = sim.add_node(DbgpConfig::gulf(3));
        sim.link(a, b, 10, false);
        sim.link(b, c, 10, false);
        sim.originate(a, p("10.0.0.0/8"));
        sim.run(1_000_000);

        let mut tracker = ConvergenceTracker::begin(&sim);
        sim.fail_link(a, b);
        sim.run(2_000_000);
        let w1 = tracker.window(&sim, "down");
        assert!(w1.best_changes >= 2, "b and c lose the route");
        assert!(w1.affected_routes >= 2);
        assert!(w1.convergence_time > 0);

        sim.restore_link(a, b);
        sim.run(3_000_000);
        let w2 = tracker.window(&sim, "up");
        assert!(w2.best_changes >= 2, "b and c re-learn the route");
        assert!(w2.started_at >= w1.quiesced_at, "windows do not overlap");

        // A window with no disturbance measures nothing.
        sim.run(4_000_000);
        let w3 = tracker.window(&sim, "idle");
        assert_eq!(w3.messages, 0);
        assert_eq!(w3.best_changes, 0);
        assert_eq!(w3.convergence_time, 0);
    }

    #[test]
    fn bus_backed_windows_match_stats_diff_windows() {
        let build = |recorder: bool| {
            let mut sim = Sim::new();
            if recorder {
                sim.enable_telemetry(std::rc::Rc::new(dbgp_telemetry::TraceRecorder::unbounded()));
            }
            let a = sim.add_node(DbgpConfig::gulf(1));
            let b = sim.add_node(DbgpConfig::gulf(2));
            let c = sim.add_node(DbgpConfig::gulf(3));
            sim.link(a, b, 10, false);
            sim.link(b, c, 10, false);
            sim.originate(a, p("10.0.0.0/8"));
            sim.run(1_000_000);
            let mut tracker = ConvergenceTracker::begin(&sim);
            let mut windows = Vec::new();
            sim.fail_link(a, b);
            sim.run(2_000_000);
            windows.push(tracker.window(&sim, "down"));
            sim.restore_link(a, b);
            sim.run(3_000_000);
            windows.push(tracker.window(&sim, "up"));
            windows
        };
        let plain = build(false);
        let traced = build(true);
        assert_eq!(plain, traced);
        assert!(traced[0].messages > 0, "the measurement is not vacuous");
    }
}
