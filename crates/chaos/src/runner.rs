//! Scenario execution: replay a [`FaultPlan`] against a simulation,
//! measuring a [`ConvergenceWindow`] per fault.

use crate::plan::{Fault, FaultPlan};
use crate::tracker::{ConvergenceTracker, ConvergenceWindow};
use dbgp_sim::{Sim, SimStats, SimTime};

/// One executed fault and what it cost.
#[derive(Debug, Clone)]
pub struct FaultRecord {
    /// When the fault was scheduled.
    pub at: SimTime,
    /// The fault.
    pub fault: Fault,
    /// The convergence window that followed it (up to the next fault
    /// or the settle horizon, whichever came first).
    pub window: ConvergenceWindow,
}

/// The outcome of a scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Per-fault records, in injection order.
    pub records: Vec<FaultRecord>,
    /// Cumulative simulator statistics at the end.
    pub final_stats: SimStats,
    /// Simulated time when the run finished.
    pub finished_at: SimTime,
    /// True when no events remained — the network truly quiesced
    /// within the settle horizon.
    pub quiesced: bool,
}

impl ScenarioReport {
    /// The worst per-fault convergence time observed.
    pub fn max_convergence_time(&self) -> SimTime {
        self.records.iter().map(|r| r.window.convergence_time).max().unwrap_or(0)
    }

    /// Total route churn (`BestChanged` decisions) across all faults.
    pub fn total_best_changes(&self) -> u64 {
        self.records.iter().map(|r| r.window.best_changes).sum()
    }
}

/// Replays fault plans deterministically.
///
/// Execution model: faults are applied in schedule order. Before each
/// fault the simulation runs up to the fault's timestamp; after the
/// last fault it runs for `settle` more simulated time. Each fault's
/// convergence window closes at the next fault's timestamp (faults may
/// deliberately overlap a previous fault's convergence — that is what
/// flap damping experiments need) or at the settle horizon.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioRunner {
    /// Extra simulated time after the last fault for the network to
    /// quiesce.
    pub settle: SimTime,
}

impl Default for ScenarioRunner {
    fn default() -> Self {
        // Generous relative to MRAI (30) and typical link delays (10):
        // any scenario that has not quiesced after this is oscillating.
        ScenarioRunner { settle: 10_000_000 }
    }
}

impl ScenarioRunner {
    /// A runner with an explicit settle horizon.
    pub fn new(settle: SimTime) -> Self {
        ScenarioRunner { settle }
    }

    /// Apply one fault to the simulation immediately.
    pub fn apply(sim: &mut Sim, fault: Fault) {
        match fault {
            Fault::LinkDown { a, b } => sim.fail_link(a, b),
            Fault::LinkUp { a, b } => sim.restore_link(a, b),
            Fault::SetLinkModel { a, b, model } => sim.set_link_model(a, b, model),
            Fault::NodeRestart { node } => sim.restart_node(node),
        }
    }

    /// Run the plan to completion.
    pub fn run(&self, sim: &mut Sim, plan: &FaultPlan) -> ScenarioReport {
        let faults = plan.sorted();
        let mut records = Vec::with_capacity(faults.len());
        for (i, timed) in faults.iter().enumerate() {
            sim.run(timed.at);
            let mut tracker = ConvergenceTracker::begin(sim);
            Self::apply(sim, timed.fault);
            let horizon = match faults.get(i + 1) {
                Some(next) => next.at,
                None => timed.at + self.settle,
            };
            sim.run(horizon);
            let window = tracker.window(sim, timed.fault.label());
            records.push(FaultRecord { at: timed.at, fault: timed.fault, window });
        }
        let finished_at = sim.now();
        ScenarioReport {
            records,
            final_stats: sim.stats(),
            finished_at,
            quiesced: sim.pending_events() == 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbgp_core::DbgpConfig;
    use dbgp_wire::Ipv4Prefix;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn flap_plan_converges_back_to_the_original_route() {
        let mut sim = Sim::new();
        let nodes: Vec<_> = (1..=3).map(|asn| sim.add_node(DbgpConfig::gulf(asn))).collect();
        sim.link(nodes[0], nodes[1], 10, false);
        sim.link(nodes[1], nodes[2], 10, false);
        sim.originate(nodes[0], p("10.0.0.0/8"));
        sim.run(1_000_000);
        let fib_before = sim.fib(nodes[2]).clone();

        let plan = FaultPlan::new().link_flap(nodes[0], nodes[1], 2_000_000, 2_500_000);
        let report = ScenarioRunner::default().run(&mut sim, &plan);

        assert_eq!(report.records.len(), 2);
        assert!(report.quiesced, "flap scenario must quiesce");
        assert_eq!(report.records[0].window.label, "link-down 0-1");
        assert!(report.records[0].window.best_changes >= 2, "down wave reached both nodes");
        assert!(report.records[1].window.best_changes >= 2, "up wave restored both nodes");
        assert_eq!(sim.fib(nodes[2]), &fib_before, "route restored after the flap");
        assert!(report.max_convergence_time() > 0);
    }

    #[test]
    fn windows_close_at_the_next_fault() {
        let mut sim = Sim::new();
        let a = sim.add_node(DbgpConfig::gulf(1));
        let b = sim.add_node(DbgpConfig::gulf(2));
        sim.link(a, b, 10, false);
        sim.originate(a, p("10.0.0.0/8"));
        sim.run(1_000_000);
        // Two faults 100 apart: the first window must not extend past
        // the second fault's injection time.
        let plan = FaultPlan::new().link_flap(a, b, 2_000_000, 2_000_100);
        let report = ScenarioRunner::new(5_000).run(&mut sim, &plan);
        assert!(report.records[0].window.quiesced_at <= 2_000_100);
    }
}
