//! Routing invariants checked at quiescence.
//!
//! After a scenario's faults have been injected and the simulator has
//! quiesced, these checks walk the control- and data-plane state every
//! node holds and look for the classic inter-domain failure modes:
//!
//! * **forwarding loops** — a packet following installed FIBs revisits
//!   a node;
//! * **black holes** — a node forwards toward a neighbor that has no
//!   route (transient during convergence, a bug at quiescence);
//! * **path-vector violations** — a best path whose mixed AS/island
//!   path vector repeats an element or contains the holder's own AS,
//!   i.e. the unified loop detection of G-R5 failed;
//! * **pass-through damage** — an IA that crossed a gulf lost the
//!   non-local protocol descriptors it was carrying (CF-R1 / the
//!   paper's Figure 8 experiment), checked for explicitly registered
//!   (observer, prefix, protocol) expectations.

use dbgp_sim::sim::NodeId;
use dbgp_sim::Sim;
use dbgp_wire::{Ipv4Prefix, PathElem, ProtocolId};
use std::collections::BTreeSet;

/// What the checker found. Empty vectors everywhere means the network
/// is clean.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InvariantReport {
    /// `(prefix, cycle)` — following FIBs for `prefix` revisits a node;
    /// `cycle` is the walk from its first node to the repeat.
    pub forwarding_loops: Vec<(Ipv4Prefix, Vec<NodeId>)>,
    /// `(prefix, node)` — `node` is forwarded to for `prefix` but has
    /// no route for it.
    pub black_holes: Vec<(Ipv4Prefix, NodeId)>,
    /// `(node, prefix, why)` — the node's best path vector violates
    /// loop-freeness.
    pub path_vector_violations: Vec<(NodeId, Ipv4Prefix, String)>,
    /// `(node, prefix, why)` — a registered pass-through expectation
    /// does not hold.
    pub pass_through_violations: Vec<(NodeId, Ipv4Prefix, String)>,
}

impl InvariantReport {
    /// True when every invariant held.
    pub fn ok(&self) -> bool {
        self.violation_count() == 0
    }

    /// Total number of violations across all categories.
    pub fn violation_count(&self) -> usize {
        self.forwarding_loops.len()
            + self.black_holes.len()
            + self.path_vector_violations.len()
            + self.pass_through_violations.len()
    }

    /// One-line summary ("clean" or per-category counts).
    pub fn summary(&self) -> String {
        if self.ok() {
            "clean".to_string()
        } else {
            format!(
                "{} loops, {} black holes, {} path-vector, {} pass-through",
                self.forwarding_loops.len(),
                self.black_holes.len(),
                self.path_vector_violations.len(),
                self.pass_through_violations.len()
            )
        }
    }
}

/// The invariant checker. Construct, register any pass-through
/// expectations, then [`check`](Invariants::check) a quiescent sim.
#[derive(Debug, Clone, Default)]
pub struct Invariants {
    pass_through: Vec<(NodeId, Ipv4Prefix, ProtocolId)>,
}

impl Invariants {
    /// A checker with no pass-through expectations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Require that `observer`'s best route for `prefix` still carries
    /// at least one path or island descriptor owned by `protocol` —
    /// the CF-R1 pass-through property across whatever gulfs separate
    /// the observer from the origin.
    pub fn expect_pass_through(
        mut self,
        observer: NodeId,
        prefix: Ipv4Prefix,
        protocol: ProtocolId,
    ) -> Self {
        self.pass_through.push((observer, prefix, protocol));
        self
    }

    /// Run every check against the simulator's current state.
    pub fn check(&self, sim: &Sim) -> InvariantReport {
        let mut report = InvariantReport::default();
        self.check_forwarding(sim, &mut report);
        self.check_path_vectors(sim, &mut report);
        self.check_pass_through(sim, &mut report);
        report
    }

    /// Walk installed FIBs for every (node, prefix) and flag loops and
    /// black holes. Each distinct loop/hole is reported once.
    fn check_forwarding(&self, sim: &Sim, report: &mut InvariantReport) {
        let mut prefixes: BTreeSet<Ipv4Prefix> = BTreeSet::new();
        for node in 0..sim.node_count() {
            prefixes.extend(sim.fib(node).keys().copied());
        }
        for prefix in prefixes {
            let mut looped: BTreeSet<NodeId> = BTreeSet::new();
            let mut holed: BTreeSet<NodeId> = BTreeSet::new();
            for start in 0..sim.node_count() {
                if !sim.fib(start).contains_key(&prefix) {
                    continue;
                }
                let mut walk = vec![start];
                let mut seen: BTreeSet<NodeId> = BTreeSet::from([start]);
                let mut cur = start;
                loop {
                    match sim.fib(cur).get(&prefix) {
                        // Delivered locally: a clean walk.
                        Some(None) => break,
                        Some(Some(next)) => {
                            if !seen.insert(*next) {
                                if looped.insert(*next) {
                                    walk.push(*next);
                                    report.forwarding_loops.push((prefix, walk));
                                }
                                break;
                            }
                            walk.push(*next);
                            cur = *next;
                        }
                        // Forwarded to a node with no route.
                        None => {
                            if holed.insert(cur) {
                                report.black_holes.push((prefix, cur));
                            }
                            break;
                        }
                    }
                }
            }
        }
    }

    /// G-R5: every installed best path's mixed AS/island path vector
    /// must be loop-free and must not contain the holder itself.
    fn check_path_vectors(&self, sim: &Sim, report: &mut InvariantReport) {
        for node in 0..sim.node_count() {
            let own_asn = sim.speaker(node).asn();
            for (prefix, chosen) in sim.speaker(node).routes() {
                let ia = &chosen.ia;
                if ia.contains_as(own_asn) {
                    report.path_vector_violations.push((
                        node,
                        *prefix,
                        format!("own AS {own_asn} appears in the path vector"),
                    ));
                }
                let mut seen_as: BTreeSet<u32> = BTreeSet::new();
                let mut seen_island: BTreeSet<u32> = BTreeSet::new();
                for elem in &ia.path_vector {
                    let duplicate = match elem {
                        PathElem::As(asn) => !seen_as.insert(*asn),
                        PathElem::Island(island) => !seen_island.insert(island.0),
                        // AS_SET members may repeat across aggregation
                        // boundaries; skip them like BGP does.
                        PathElem::AsSet(_) => false,
                    };
                    if duplicate {
                        report.path_vector_violations.push((
                            node,
                            *prefix,
                            format!("repeated element {elem:?} in the path vector"),
                        ));
                        break;
                    }
                }
            }
        }
    }

    /// CF-R1: registered observers must still see the non-local
    /// protocol's descriptors on their best route.
    fn check_pass_through(&self, sim: &Sim, report: &mut InvariantReport) {
        for &(observer, prefix, protocol) in &self.pass_through {
            let Some(chosen) = sim.speaker(observer).best(&prefix) else {
                report.pass_through_violations.push((
                    observer,
                    prefix,
                    format!("no route at all (expected {protocol:?} descriptors)"),
                ));
                continue;
            };
            let ia = &chosen.ia;
            let has_descriptor = ia.path_descriptors_for(protocol).next().is_some()
                || ia.island_descriptors_for(protocol).next().is_some();
            if !has_descriptor {
                report.pass_through_violations.push((
                    observer,
                    prefix,
                    format!("best route carries no {protocol:?} descriptors"),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbgp_core::DbgpConfig;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn converged_chain_is_clean() {
        let mut sim = Sim::new();
        let nodes: Vec<_> = (1..=4).map(|asn| sim.add_node(DbgpConfig::gulf(asn))).collect();
        for w in nodes.windows(2) {
            sim.link(w[0], w[1], 10, false);
        }
        sim.originate(nodes[0], p("10.0.0.0/8"));
        sim.run(10_000_000);
        let report = Invariants::new().check(&sim);
        assert!(report.ok(), "unexpected violations: {report:?}");
        assert_eq!(report.summary(), "clean");
    }

    #[test]
    fn missing_pass_through_is_flagged() {
        let mut sim = Sim::new();
        let a = sim.add_node(DbgpConfig::gulf(1));
        let b = sim.add_node(DbgpConfig::gulf(2));
        sim.link(a, b, 10, false);
        sim.originate(a, p("10.0.0.0/8"));
        sim.run(10_000_000);
        // b's route exists but plain BGP IAs carry no Wiser descriptors.
        let report = Invariants::new()
            .expect_pass_through(b, p("10.0.0.0/8"), ProtocolId::WISER)
            .check(&sim);
        assert_eq!(report.pass_through_violations.len(), 1);
        assert!(!report.ok());
        // And an expectation for a missing route reports differently.
        let report = Invariants::new()
            .expect_pass_through(b, p("99.0.0.0/8"), ProtocolId::WISER)
            .check(&sim);
        assert!(report.pass_through_violations[0].2.contains("no route"));
    }
}
