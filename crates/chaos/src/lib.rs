//! # dbgp-chaos — churn for the D-BGP control plane
//!
//! Deterministic fault injection and robustness checking for the
//! simulated D-BGP deployment: timed [`FaultPlan`]s of link failures,
//! flaps, loss bursts and node restarts, executed by a
//! [`ScenarioRunner`] that interleaves them with simulator quiescence,
//! a [`ConvergenceTracker`] measuring per-prefix churn and convergence
//! times, and an [`invariants`] checker that walks forwarding state at
//! quiescence looking for loops, black holes, path-vector violations
//! and pass-through damage. Multi-seed sweeps fan out across the
//! [`sweep`] worker pool with seed-ordered results.

#![warn(missing_docs)]

pub mod invariants;
pub mod plan;
pub mod runner;
pub mod scenario;
pub mod sweep;
pub mod tracker;

pub use invariants::{InvariantReport, Invariants};
pub use plan::{Fault, FaultPlan, TimedFault};
pub use runner::{FaultRecord, ScenarioReport, ScenarioRunner};
pub use sweep::sweep_seeds;
pub use tracker::{ConvergenceTracker, ConvergenceWindow};
