//! Declarative fault schedules.
//!
//! A [`FaultPlan`] is a timed list of [`Fault`]s — link failures and
//! repairs, perturbation-model changes, node restarts — that a
//! [`ScenarioRunner`](crate::ScenarioRunner) replays against a running
//! simulation. Plans are plain data: deterministic, comparable,
//! composable, and independent of any particular topology until run.

use dbgp_sim::sim::NodeId;
use dbgp_sim::{LinkModel, SimTime};

/// One injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Administratively fail the link between two nodes
    /// ([`Sim::fail_link`](dbgp_sim::Sim::fail_link)).
    LinkDown {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Repair a previously failed link
    /// ([`Sim::restore_link`](dbgp_sim::Sim::restore_link)): fresh
    /// sessions, full-table re-transfer both ways.
    LinkUp {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Replace the perturbation model on a link (both directions) —
    /// used to start and stop loss bursts, jitter storms, and
    /// corruption windows.
    SetLinkModel {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// The model to install.
        model: LinkModel,
    },
    /// Restart a node: every session resets and comes back with a
    /// full-table re-transfer — the paper's §3.5 router-reboot concern.
    NodeRestart {
        /// The rebooting node.
        node: NodeId,
    },
}

impl Fault {
    /// Short stable label for reports ("link-down 2-5").
    pub fn label(&self) -> String {
        match self {
            Fault::LinkDown { a, b } => format!("link-down {a}-{b}"),
            Fault::LinkUp { a, b } => format!("link-up {a}-{b}"),
            Fault::SetLinkModel { a, b, model } => {
                if model.is_reliable() {
                    format!("link-heal {a}-{b}")
                } else {
                    format!("link-degrade {a}-{b}")
                }
            }
            Fault::NodeRestart { node } => format!("restart {node}"),
        }
    }
}

/// A fault pinned to a simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedFault {
    /// Absolute simulated time at which to inject.
    pub at: SimTime,
    /// What to inject.
    pub fault: Fault,
}

/// A timed schedule of faults. Build it fluently, then hand it to a
/// [`ScenarioRunner`](crate::ScenarioRunner).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<TimedFault>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule a single fault.
    pub fn at(mut self, at: SimTime, fault: Fault) -> Self {
        self.faults.push(TimedFault { at, fault });
        self
    }

    /// One flap: the link goes down at `down_at` and comes back at
    /// `up_at`.
    pub fn link_flap(self, a: NodeId, b: NodeId, down_at: SimTime, up_at: SimTime) -> Self {
        assert!(up_at > down_at, "flap must come back up after it goes down");
        self.at(down_at, Fault::LinkDown { a, b }).at(up_at, Fault::LinkUp { a, b })
    }

    /// Periodic flapping: `count` flaps starting at `first_down`, one
    /// every `period`, each lasting `downtime` (< `period`).
    pub fn link_flaps(
        mut self,
        a: NodeId,
        b: NodeId,
        first_down: SimTime,
        period: SimTime,
        downtime: SimTime,
        count: usize,
    ) -> Self {
        assert!(downtime < period, "flaps must not overlap");
        for i in 0..count as u64 {
            let down = first_down + i * period;
            self = self.link_flap(a, b, down, down + downtime);
        }
        self
    }

    /// A loss burst: install `model` on the link at `start`, restore a
    /// reliable link at `start + duration`, then flap the link so the
    /// session reset's full-table re-transfer heals whatever state the
    /// burst destroyed. The healing flap matters: the simulated control
    /// plane (like BGP over a dead TCP session) has no retransmission,
    /// so lost updates never arrive on their own.
    pub fn loss_burst(
        self,
        a: NodeId,
        b: NodeId,
        start: SimTime,
        duration: SimTime,
        model: LinkModel,
    ) -> Self {
        let end = start + duration;
        self.at(start, Fault::SetLinkModel { a, b, model })
            .at(end, Fault::SetLinkModel { a, b, model: LinkModel::reliable() })
            .link_flap(a, b, end + 1, end + 2)
    }

    /// Restart `node` at `at`.
    pub fn node_restart(self, node: NodeId, at: SimTime) -> Self {
        self.at(at, Fault::NodeRestart { node })
    }

    /// The schedule sorted by injection time (stable: faults at the
    /// same instant keep build order).
    pub fn sorted(&self) -> Vec<TimedFault> {
        let mut faults = self.faults.clone();
        faults.sort_by_key(|tf| tf.at);
        faults
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flaps_expand_to_down_up_pairs() {
        let plan = FaultPlan::new().link_flaps(0, 1, 100, 1000, 50, 3);
        assert_eq!(plan.len(), 6);
        let sorted = plan.sorted();
        assert_eq!(sorted[0], TimedFault { at: 100, fault: Fault::LinkDown { a: 0, b: 1 } });
        assert_eq!(sorted[1], TimedFault { at: 150, fault: Fault::LinkUp { a: 0, b: 1 } });
        assert_eq!(sorted[4].at, 2100);
    }

    #[test]
    fn sorted_is_stable_for_simultaneous_faults() {
        let plan = FaultPlan::new()
            .at(500, Fault::LinkDown { a: 0, b: 1 })
            .at(100, Fault::NodeRestart { node: 2 })
            .at(500, Fault::LinkUp { a: 3, b: 4 });
        let sorted = plan.sorted();
        assert_eq!(sorted[0].fault, Fault::NodeRestart { node: 2 });
        assert_eq!(sorted[1].fault, Fault::LinkDown { a: 0, b: 1 });
        assert_eq!(sorted[2].fault, Fault::LinkUp { a: 3, b: 4 });
    }

    #[test]
    fn loss_burst_ends_with_a_healing_flap() {
        let model = LinkModel::reliable().loss_ppm(800_000);
        let plan = FaultPlan::new().loss_burst(1, 2, 1000, 500, model);
        let sorted = plan.sorted();
        assert_eq!(sorted.len(), 4);
        assert_eq!(sorted[0].fault, Fault::SetLinkModel { a: 1, b: 2, model });
        assert!(
            matches!(sorted[1].fault, Fault::SetLinkModel { model, .. } if model.is_reliable())
        );
        assert!(matches!(sorted[2].fault, Fault::LinkDown { .. }));
        assert!(matches!(sorted[3].fault, Fault::LinkUp { .. }));
    }
}
