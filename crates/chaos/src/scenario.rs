//! Canonical scenarios: topology lowerings the chaos tests and the
//! `chaos_table` benchmark share.
//!
//! Each builder returns a fully wired, *not yet converged* simulation
//! plus the handles a fault plan needs (node indices, the prefix under
//! test). Callers originate, converge, then hand a plan to a
//! [`ScenarioRunner`](crate::ScenarioRunner).

use dbgp_core::{DbgpConfig, IslandConfig};
use dbgp_protocols::rbgp::RbgpModule;
use dbgp_protocols::wiser::WiserModule;
use dbgp_sim::{Sim, SimTime};
use dbgp_telemetry::query::TraceLog;
use dbgp_telemetry::TraceRecorder;
use dbgp_topology::AsGraph;
use dbgp_wire::{Ipv4Addr, Ipv4Prefix, IslandId, ProtocolId};
use std::rc::Rc;

/// The prefix every scenario's destination originates (Rutgers' /16,
/// the paper's running example).
pub fn scenario_prefix() -> Ipv4Prefix {
    "128.6.0.0/16".parse().unwrap()
}

/// Lower a relationship-annotated [`AsGraph`] into a simulation of
/// plain gulf (BGP-over-D-BGP) speakers. Node `i` gets AS number
/// `i + 1`; every edge becomes a symmetric link with the given delay.
/// Edges are added in deterministic `(min, max)` order.
pub fn sim_from_graph(graph: &AsGraph, delay: SimTime) -> Sim {
    let mut sim = Sim::new();
    // Flooding puts roughly one in-flight delivery per directed edge in
    // the queue at peak; pre-size so warmup never regrows the heap.
    sim.reserve_events(2 * graph.edge_count());
    for node in 0..graph.len() {
        sim.add_node(DbgpConfig::gulf(node as u32 + 1));
    }
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(graph.edge_count());
    for a in 0..graph.len() {
        for adj in graph.neighbors(a) {
            if a < adj.neighbor {
                edges.push((a, adj.neighbor));
            }
        }
    }
    edges.sort_unstable();
    for (a, b) in edges {
        sim.link(a, b, delay, false);
    }
    sim
}

/// The Figure 8 deployment testbed with Wiser islands on both sides of
/// a two-path BGP gulf (the §6.1 experiment, with the G2 gulf split in
/// two so the cheap Wiser exit rides the *longer* BGP path).
pub struct Figure8Wiser {
    /// The wired simulation.
    pub sim: Sim,
    /// Destination D (island A).
    pub d: usize,
    /// Island A's expensive border AS.
    pub a2: usize,
    /// Island A's cheap border AS.
    pub a3: usize,
    /// Gulf AS on the short path.
    pub g1: usize,
    /// First gulf AS on the long path.
    pub g2a: usize,
    /// Second gulf AS on the long path.
    pub g2b: usize,
    /// Source S (island B).
    pub s: usize,
}

/// Build the Figure 8 Wiser deployment: island A (D, A2 expensive, A3
/// cheap), a gulf of G1 (short) and G2a-G2b (long), island B (S).
pub fn figure8_wiser() -> Figure8Wiser {
    let island_a = IslandConfig { id: IslandId(900), abstraction: false };
    let island_b = IslandConfig { id: IslandId(901), abstraction: false };
    let mut sim = Sim::new();
    let d = sim.add_node(DbgpConfig::island_member(10, island_a, ProtocolId::WISER));
    let a2 = sim.add_node(DbgpConfig::island_member(11, island_a, ProtocolId::WISER));
    let a3 = sim.add_node(DbgpConfig::island_member(12, island_a, ProtocolId::WISER));
    let g1 = sim.add_node(DbgpConfig::gulf(4000));
    let g2a = sim.add_node(DbgpConfig::gulf(4001));
    let g2b = sim.add_node(DbgpConfig::gulf(4002));
    let s = sim.add_node(DbgpConfig::island_member(20, island_b, ProtocolId::WISER));

    // The short exit (via A2/G1) is expensive, the long exit (via
    // A3/G2a/G2b) cheap — the Figure 1 inversion Wiser must surface.
    let portal = |n: u8| Ipv4Addr::new(163, 42, 5, n);
    sim.speaker_mut(d).register_module(Box::new(WiserModule::new(IslandId(900), portal(0), 5)));
    sim.speaker_mut(a2).register_module(Box::new(WiserModule::new(IslandId(900), portal(0), 500)));
    sim.speaker_mut(a3).register_module(Box::new(WiserModule::new(IslandId(900), portal(0), 10)));
    sim.speaker_mut(s).register_module(Box::new(WiserModule::new(IslandId(901), portal(1), 5)));

    sim.link(d, a2, 10, true);
    sim.link(d, a3, 10, true);
    sim.link(a2, g1, 10, false);
    sim.link(a3, g2a, 10, false);
    sim.link(g2a, g2b, 10, false);
    sim.link(g1, s, 10, false);
    sim.link(g2b, s, 10, false);
    Figure8Wiser { sim, d, a2, a3, g1, g2a, g2b, s }
}

/// The R-BGP failover diamond, lowered from
/// [`dbgp_topology::fixtures::rbgp_diamond`]: destination (node 0), a
/// short transit (1), a long transit pair (2, 3), and a source (4)
/// running R-BGP so the long path is staged as a disjoint backup.
pub struct RbgpDiamond {
    /// The wired simulation.
    pub sim: Sim,
    /// Destination.
    pub d: usize,
    /// Short (primary) transit.
    pub short: usize,
    /// First hop of the long (backup) path.
    pub long_a: usize,
    /// Second hop of the long (backup) path.
    pub long_b: usize,
    /// Source running R-BGP.
    pub s: usize,
}

/// Build the diamond with an R-BGP source.
pub fn rbgp_diamond() -> RbgpDiamond {
    let graph = dbgp_topology::fixtures::rbgp_diamond();
    let mut sim = Sim::new();
    for node in 0..graph.len() {
        if node == 4 {
            let mut cfg = DbgpConfig::gulf(node as u32 + 1);
            cfg.active = ProtocolId::RBGP;
            sim.add_node(cfg);
        } else {
            sim.add_node(DbgpConfig::gulf(node as u32 + 1));
        }
    }
    sim.speaker_mut(4).register_module(Box::new(RbgpModule::new()));
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for a in 0..graph.len() {
        for adj in graph.neighbors(a) {
            if a < adj.neighbor {
                edges.push((a, adj.neighbor));
            }
        }
    }
    edges.sort_unstable();
    for (a, b) in edges {
        sim.link(a, b, 10, false);
    }
    RbgpDiamond { sim, d: 0, short: 1, long_a: 2, long_b: 3, s: 4 }
}

/// Run the `fig8-wiser-flap` chaos scenario (the same fault plan
/// `chaos_table` reports on) with an unbounded trace recorder attached
/// and return the recorded log — the fixture behind `trace_query` and
/// its pinned-answer tests.
pub fn traced_fig8_wiser_flap() -> TraceLog {
    let mut f = figure8_wiser();
    f.sim.enable_telemetry(Rc::new(TraceRecorder::unbounded()));
    f.sim.originate(f.d, scenario_prefix());
    f.sim.run(10_000_000);
    let plan = crate::FaultPlan::new()
        .link_flaps(f.g2a, f.g2b, 20_000_000, 40_000_000, 10_000_000, 2)
        .link_flap(f.g1, f.s, 110_000_000, 130_000_000);
    crate::ScenarioRunner::default().run(&mut f.sim, &plan);
    TraceLog::from_recorder(f.sim.trace_recorder().expect("recorder attached"), "fig8-wiser-flap")
}

/// Run the `rbgp-diamond-failover` scenario traced: converge on the
/// short primary, kill the destination-primary link, converge again on
/// the staged disjoint backup.
pub fn traced_rbgp_diamond_failover() -> TraceLog {
    let diamond = rbgp_diamond();
    let (mut sim, d, short) = (diamond.sim, diamond.d, diamond.short);
    sim.enable_telemetry(Rc::new(TraceRecorder::unbounded()));
    sim.originate(d, scenario_prefix());
    sim.run(10_000_000);
    sim.fail_link(d, short);
    sim.run(60_000_000);
    TraceLog::from_recorder(
        sim.trace_recorder().expect("recorder attached"),
        "rbgp-diamond-failover",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_lowering_converges() {
        let graph = dbgp_topology::fixtures::waxman_50(1);
        let mut sim = sim_from_graph(&graph, 10);
        assert_eq!(sim.node_count(), 50);
        sim.originate(0, scenario_prefix());
        sim.run(100_000_000);
        assert_eq!(sim.pending_events(), 0, "quiesces");
        for node in 1..sim.node_count() {
            assert!(
                sim.speaker(node).best(&scenario_prefix()).is_some(),
                "node {node} learned the prefix"
            );
        }
    }
}
