//! Multi-seed scenario sweeps on the worker pool (Tier A).
//!
//! Chaos studies rarely care about one seed: confidence comes from
//! running the same fault plan across a family of seeded topologies
//! and aggregating. Each seed builds, runs and tears down its own
//! [`crate::ScenarioRunner`] world, so seeds share nothing and the
//! sweep is embarrassingly parallel. Results come back **in seed
//! order** (the ordered-reduce contract of [`dbgp_par::par_map`]), so
//! a parallel sweep is indistinguishable from the serial loop it
//! replaces — same values, same order, any thread count.

/// Run `scenario` once per seed on `threads` workers, returning the
/// per-seed results in the order of `seeds`.
///
/// `scenario` must be a pure function of its seed (build the sim, seed
/// it, run the plan, report) — the usual shape of every chaos sweep in
/// this repo. With `threads == 1` the sweep degenerates to the plain
/// serial loop on the calling thread.
pub fn sweep_seeds<R, F>(seeds: &[u64], threads: usize, scenario: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    let pool = dbgp_par::Pool::new(threads);
    dbgp_par::par_map(&pool, seeds, |_, &seed| scenario(seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{scenario_prefix, sim_from_graph};
    use crate::{FaultPlan, ScenarioRunner};
    use dbgp_topology::fixtures::waxman_50;

    /// One small churn scenario, reduced to comparable numbers.
    fn churn_digest(seed: u64) -> (u64, u64, u64, bool) {
        let graph = waxman_50(seed);
        let mut sim = sim_from_graph(&graph, 10);
        sim.set_seed(seed);
        sim.originate(0, scenario_prefix());
        sim.run(100_000_000);
        let edges: Vec<(usize, usize, bool)> = sim.links().collect();
        let (a, b, _) = edges[edges.len() / 2];
        let plan = FaultPlan::new().link_flap(a, b, 110_000_000, 140_000_000);
        let report = ScenarioRunner::default().run(&mut sim, &plan);
        let stats = report.final_stats;
        (stats.messages, stats.best_changes, sim.events_processed(), report.quiesced)
    }

    #[test]
    fn parallel_sweep_matches_serial_loop_in_value_and_order() {
        let seeds: Vec<u64> = (0..6).collect();
        let serial: Vec<_> = seeds.iter().map(|&s| churn_digest(s)).collect();
        for threads in [1, 2, 4] {
            let swept = sweep_seeds(&seeds, threads, churn_digest);
            assert_eq!(serial, swept, "sweep diverged at {threads} threads");
        }
    }
}
