//! Pinned answers for the `trace_query` provenance queries over the two
//! canonical traced scenarios. The simulator is deterministic, so these
//! answers are exact: if one changes, either the scenario or the
//! telemetry instrumentation changed semantics.

use dbgp_chaos::scenario::{traced_fig8_wiser_flap, traced_rbgp_diamond_failover};
use dbgp_telemetry::query::{convergence_timeline, path_of, why_selected};
use dbgp_telemetry::TraceKind;

const PREFIX: &str = "128.6.0.0/16";

#[test]
fn rbgp_failover_why_selected_blames_the_link_down() {
    let log = traced_rbgp_diamond_failover();
    // AS 5 is the R-BGP source; after the primary d-short link dies it
    // must sit on the staged disjoint backup.
    let w = why_selected(&log, 5, PREFIX).expect("source has a route");
    assert_eq!(w.path, "4 3 1", "failed over to the long path");
    assert_eq!(w.hops, 3);
    assert_eq!(w.why, "only-candidate", "the withdraw left a single path");
    // The provenance walks decision -> decode -> withdraw -> session
    // down -> link down: the root cause is the injected fault.
    let kinds: Vec<&str> = w.provenance.iter().map(|h| h.kind.as_str()).collect();
    assert_eq!(kinds, ["decision", "decode", "withdraw", "session-fsm", "link-down"]);
}

#[test]
fn rbgp_failover_timeline_is_rooted_and_converges() {
    let log = traced_rbgp_diamond_failover();
    let t = convergence_timeline(&log);
    assert_eq!(t.decisions, 8, "5 initial installs + loss + 2 failover installs");
    assert_eq!(t.messages, 10);
    assert_eq!(t.converged_at, 240);
    // Every best-path change has a complete causal chain back to a root.
    assert!(t.entries.iter().all(|e| e.root.is_some()));
    // Post-fault changes share the link-down event as their root.
    let post_fault: Vec<_> = t.entries.iter().filter(|e| e.at >= 160).collect();
    assert_eq!(post_fault.len(), 3);
    let root = post_fault[0].root.unwrap();
    assert!(post_fault.iter().all(|e| e.root == Some(root)));
    assert!(matches!(log.find(root).unwrap().kind, TraceKind::LinkDown { .. }));
    // The loss at the short transit, then the source's failover install.
    assert!(!post_fault[0].selected, "the short transit loses all paths first");
    assert!(post_fault[1].selected && post_fault[1].asn == 5, "the source fails over");
}

#[test]
fn rbgp_failover_path_of_spans_fault_to_reinstall() {
    let log = traced_rbgp_diamond_failover();
    let last =
        log.events.iter().rev().find(|e| matches!(e.kind, TraceKind::Decision { .. })).unwrap().id;
    let p = path_of(&log, last).unwrap();
    // Root-first chain: fault -> session down -> withdraw -> decode ->
    // re-advertise of the backup -> decode -> final install.
    let kinds: Vec<&str> = p.chain.iter().map(|h| h.kind.as_str()).collect();
    assert_eq!(
        kinds,
        ["link-down", "session-fsm", "withdraw", "decode", "advertise", "decode", "decision"]
    );
    assert_eq!(p.chain.first().unwrap().at, 160, "fault injected at t=160");
    assert_eq!(p.chain.last().unwrap().at, 240);
}

#[test]
fn fig8_flap_why_selected_shows_the_wiser_inversion() {
    let log = traced_fig8_wiser_flap();
    // After the flap storm heals, source S (AS 20) must be back on the
    // cheap-but-long Wiser exit — preferred by the module over the
    // shorter expensive path, the paper's Figure 1 inversion.
    let w = why_selected(&log, 20, PREFIX).expect("source has a route");
    assert_eq!(w.path, "4002 4001 12 10", "the long cheap exit via A3");
    assert_eq!(w.hops, 4);
    assert_eq!(w.candidates, 2, "the short expensive path is still a candidate");
    assert_eq!(w.why, "module-preference", "Wiser overrode shortest-path");
    assert_eq!(w.at, 560);
    // Rooted at the healing link-up of the flapped gulf link.
    let root = w.provenance.last().unwrap();
    assert_eq!(root.kind, "link-up");
    assert_eq!(root.at, 480);
}

#[test]
fn fig8_flap_timeline_matches_the_chaos_table_totals() {
    let log = traced_fig8_wiser_flap();
    let t = convergence_timeline(&log);
    // Same underlying occurrences results/chaos.json counts for this
    // scenario: 30 delivered messages, 18 best-path changes.
    assert_eq!(t.messages, 30);
    assert_eq!(t.decisions, 18);
    assert_eq!(t.converged_at, 560);
    assert!(t.entries.iter().all(|e| e.root.is_some()));
}
