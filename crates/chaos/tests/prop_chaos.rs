//! The chaos harness's core promise, property-tested: a scenario is a
//! pure function of (topology, seed, fault plan). Two executions with
//! the same inputs must produce identical statistics, churn records,
//! and final forwarding state; and invariants must hold at quiescence
//! whenever the plan repairs everything it breaks.

use dbgp_chaos::{FaultPlan, Invariants, ScenarioRunner};
use dbgp_core::DbgpConfig;
use dbgp_sim::{LinkModel, Sim};
use dbgp_wire::{Ipv4Addr, Ipv4Prefix};
use proptest::prelude::*;

/// A random connected undirected graph on `n` nodes: a random spanning
/// tree plus extra edges.
fn arb_graph() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (3usize..9).prop_flat_map(|n| {
        let tree = proptest::collection::vec(any::<u32>(), n - 1);
        let extras = proptest::collection::vec((0..n, 0..n), 0..n);
        (Just(n), tree, extras).prop_map(|(n, parents, extras)| {
            let mut edges: Vec<(usize, usize)> =
                (1..n).map(|v| (v, (parents[v - 1] as usize) % v)).collect();
            for (a, b) in extras {
                if a != b {
                    edges.push((a.min(b), a.max(b)));
                }
            }
            edges.sort();
            edges.dedup();
            (n, edges)
        })
    })
}

fn prefix_for(node: usize) -> Ipv4Prefix {
    Ipv4Prefix::new(Ipv4Addr::new(172, 16, node as u8, 0), 24).unwrap()
}

fn build(n: usize, edges: &[(usize, usize)], seed: u64) -> Sim {
    let mut sim = Sim::new();
    sim.set_seed(seed);
    for asn in 0..n {
        sim.add_node(DbgpConfig::gulf(asn as u32 + 1));
    }
    for &(a, b) in edges {
        sim.link(a, b, 5 + (a + b) as u64 % 7, false);
        sim.set_link_model(
            a,
            b,
            LinkModel::reliable().jitter(((a + b) % 5) as u64).duplicate_ppm(120_000),
        );
    }
    sim
}

/// Derive a fault plan from the topology and a pair of selector values:
/// a flap of one tree edge (repaired), plus a restart of one node.
fn plan_for(edges: &[(usize, usize)], n: usize, flap_sel: usize, restart_sel: usize) -> FaultPlan {
    let (a, b) = edges[flap_sel % edges.len()];
    FaultPlan::new().link_flap(a, b, 2_000_000, 4_000_000).node_restart(restart_sel % n, 6_000_000)
}

/// Execute the full scenario and capture everything observable.
fn execute(
    n: usize,
    edges: &[(usize, usize)],
    seed: u64,
    flap_sel: usize,
    restart_sel: usize,
) -> (dbgp_sim::SimStats, Vec<String>, Vec<String>) {
    let mut sim = build(n, edges, seed);
    sim.originate(0, prefix_for(0));
    sim.run(1_000_000);
    let plan = plan_for(edges, n, flap_sel, restart_sel);
    let report = ScenarioRunner::new(50_000_000).run(&mut sim, &plan);
    let fibs = (0..n).map(|node| format!("{:?}", sim.fib(node))).collect();
    let windows =
        report.records.iter().map(|r| format!("{:?}@{} {:?}", r.fault, r.at, r.window)).collect();
    (report.final_stats, fibs, windows)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same seed + same plan => byte-identical stats, fault windows and
    /// final FIBs. A different seed perturbs jitter/duplication, yet
    /// the final forwarding state still matches the clean outcome
    /// (duplication and jitter are semantically invisible).
    #[test]
    fn scenarios_are_deterministic(
        (n, edges) in arb_graph(),
        seed in any::<u64>(),
        flap_sel in 0usize..64,
        restart_sel in 0usize..64,
    ) {
        let run1 = execute(n, &edges, seed, flap_sel, restart_sel);
        let run2 = execute(n, &edges, seed, flap_sel, restart_sel);
        prop_assert_eq!(&run1.0, &run2.0, "SimStats diverged");
        prop_assert_eq!(&run1.1, &run2.1, "final FIBs diverged");
        prop_assert_eq!(&run1.2, &run2.2, "per-fault windows diverged");

        // Different seed: same converged forwarding state regardless.
        let run3 = execute(n, &edges, seed ^ 0x5DEECE66D, flap_sel, restart_sel);
        prop_assert_eq!(&run1.1, &run3.1, "seed changed the converged FIBs");
    }

    /// A repaired scenario always quiesces clean: no loops, no black
    /// holes, no path-vector violations, full reachability.
    #[test]
    fn repaired_scenarios_quiesce_clean(
        (n, edges) in arb_graph(),
        seed in any::<u64>(),
        flap_sel in 0usize..64,
        restart_sel in 0usize..64,
    ) {
        let mut sim = build(n, &edges, seed);
        sim.originate(0, prefix_for(0));
        sim.run(1_000_000);
        let plan = plan_for(&edges, n, flap_sel, restart_sel);
        let report = ScenarioRunner::new(50_000_000).run(&mut sim, &plan);
        prop_assert!(report.quiesced, "scenario failed to quiesce");
        let check = Invariants::new().check(&sim);
        prop_assert!(check.ok(), "invariant violations: {:?}", check);
        for node in 1..n {
            prop_assert!(
                sim.speaker(node).best(&prefix_for(0)).is_some(),
                "node {} lost the route after repair", node
            );
        }
    }
}
