//! Equivalence against the committed pre-interning baseline.
//!
//! `results/chaos.json` was generated before IAs were interned behind
//! `Arc`, before wire buffers became shared `Bytes`, and before the
//! Adj-RIB-Out encode caches existed. Re-running a scenario here and
//! matching its totals field-for-field proves the optimized pipeline
//! is behaviorally identical to the seed: same messages, same wire
//! bytes, same best-path churn, same fault-window convergence times.

use dbgp_chaos::scenario::{figure8_wiser, scenario_prefix};
use dbgp_chaos::{FaultPlan, ScenarioRunner};
use serde_json::Value;

const BASELINE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/chaos.json");

/// SHA-256 of the committed `results/chaos.json`, pinned when the
/// lookahead-windowed parallel engine landed. `chaos_table` must
/// reproduce this artifact byte-for-byte at *any* `--threads` count —
/// scenario rows fan out on the worker pool (Tier A) and each row's
/// simulation replays deterministically — so a changed hash means a
/// nondeterminism bug (or an intentional scenario change, in which
/// case regenerate and re-pin alongside the diff that explains it).
const BASELINE_SHA256: &str = "43f13a19aaa90aa577c40dff166de9fbdcd46b6078de27b8d335405fb667d08e";

#[test]
fn committed_chaos_artifact_hash_is_pinned() {
    let raw = std::fs::read(BASELINE).expect("committed results/chaos.json");
    let digest = dbgp_crypto::Sha256::digest(&raw);
    let hex: String = digest.iter().map(|b| format!("{b:02x}")).collect();
    assert_eq!(
        hex, BASELINE_SHA256,
        "results/chaos.json drifted from the pinned artifact; \
         rerun `chaos_table` at --threads 1 and 2 — if both agree on the \
         new bytes the change is intentional and the pin moves with it"
    );
}

fn field<'a>(v: &'a Value, key: &str) -> &'a Value {
    v.as_object()
        .unwrap_or_else(|| panic!("not an object while looking for {key:?}"))
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or_else(|| panic!("missing field {key:?}"))
}

fn u64_field(v: &Value, key: &str) -> u64 {
    field(v, key).as_u64().unwrap_or_else(|| panic!("field {key:?} is not a u64"))
}

#[test]
fn fig8_wiser_flap_matches_committed_pre_interning_baseline() {
    let raw = std::fs::read_to_string(BASELINE).expect("committed results/chaos.json");
    let doc = serde_json::from_str(&raw).expect("baseline parses");
    let golden = field(&doc, "scenarios")
        .as_array()
        .expect("scenarios array")
        .iter()
        .find(|s| field(s, "scenario").as_str() == Some("fig8-wiser-flap"))
        .expect("fig8-wiser-flap in baseline");

    // Reproduce the chaos_table scenario exactly (seed-free: figure 8
    // uses reliable links, so the run is a pure function of the plan).
    let mut f = figure8_wiser();
    f.sim.originate(f.d, scenario_prefix());
    f.sim.run(10_000_000);
    let plan = FaultPlan::new()
        .link_flaps(f.g2a, f.g2b, 20_000_000, 40_000_000, 10_000_000, 2)
        .link_flap(f.g1, f.s, 110_000_000, 130_000_000);
    let report = ScenarioRunner::default().run(&mut f.sim, &plan);

    assert!(report.quiesced, "scenario quiesces");
    assert_eq!(report.finished_at, u64_field(golden, "finished_at"), "finish time");

    let totals = field(golden, "totals");
    let stats = report.final_stats;
    assert_eq!(stats.messages, u64_field(totals, "messages"), "messages");
    assert_eq!(stats.bytes, u64_field(totals, "bytes"), "wire bytes");
    assert_eq!(stats.best_changes, u64_field(totals, "best_changes"), "best changes");
    assert_eq!(stats.dropped_messages, u64_field(totals, "dropped_messages"), "drops");
    assert_eq!(stats.decode_errors, u64_field(totals, "decode_errors"), "decode errors");
    assert_eq!(
        stats.orphaned_deliveries,
        u64_field(totals, "orphaned_deliveries"),
        "orphaned deliveries"
    );

    // Per-fault convergence windows match one-for-one.
    let faults = field(golden, "faults").as_array().expect("faults array");
    assert_eq!(report.records.len(), faults.len(), "fault count");
    for (record, golden_fault) in report.records.iter().zip(faults) {
        assert_eq!(record.at, u64_field(golden_fault, "at"), "fault time");
        assert_eq!(
            record.window.convergence_time,
            u64_field(golden_fault, "convergence_time"),
            "convergence time of {}",
            record.window.label
        );
        assert_eq!(
            record.window.messages,
            u64_field(golden_fault, "messages"),
            "window messages of {}",
            record.window.label
        );
        assert_eq!(
            record.window.bytes,
            u64_field(golden_fault, "bytes"),
            "window bytes of {}",
            record.window.label
        );
    }
}
