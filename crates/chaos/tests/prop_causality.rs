//! Property tests for the telemetry causality model: in a traced
//! `waxman_50` flood, the causal chain of any node's route install is
//! acyclic, rooted at the originating AS's `Originate` event, and the
//! advertisement hops it records agree with the path vector the
//! decision installed — the same consistency the chaos path-vector
//! invariant checks on the final RIBs.

use dbgp_chaos::scenario::sim_from_graph;
use dbgp_chaos::Invariants;
use dbgp_telemetry::query::TraceLog;
use dbgp_telemetry::{TraceKind, TraceRecorder};
use dbgp_topology::fixtures::waxman_50;
use dbgp_wire::{Ipv4Addr, Ipv4Prefix};
use proptest::prelude::*;
use std::rc::Rc;

fn traced_waxman_flood(seed: u64, origin: usize) -> (dbgp_sim::Sim, TraceLog, Ipv4Prefix) {
    let graph = waxman_50(seed);
    let mut sim = sim_from_graph(&graph, 10);
    sim.enable_telemetry(Rc::new(TraceRecorder::unbounded()));
    sim.set_seed(seed);
    let prefix = Ipv4Prefix::new(Ipv4Addr::new(128, 6, 0, 0), 16).unwrap();
    sim.originate(origin, prefix);
    sim.run(200_000_000);
    assert_eq!(sim.pending_events(), 0, "flood quiesces");
    let log = TraceLog::from_recorder(sim.trace_recorder().unwrap(), "waxman-flood");
    (sim, log, prefix)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn install_chains_are_acyclic_rooted_and_path_consistent(
        seed in 0u64..500,
        origin in 0usize..50,
        probe in 0usize..50,
    ) {
        let (sim, log, _prefix) = traced_waxman_flood(seed, origin);

        // The network the trace describes satisfies the routing
        // invariants (path-vector consistency included).
        prop_assert!(Invariants::new().check(&sim).ok());

        // The probed node's final install for the prefix.
        let decision = log
            .events
            .iter()
            .rev()
            .find(|e| e.node == probe as u32 && matches!(e.kind, TraceKind::Decision { .. }))
            .expect("every node decided at least once");
        let (path, selected) = match &decision.kind {
            TraceKind::Decision { path, selected, .. } => (path.clone(), *selected),
            _ => unreachable!(),
        };
        prop_assert!(selected, "a quiesced flood leaves every node routed");

        let chain = log.causal_chain(decision.id);
        prop_assert!(!chain.is_empty());

        // Acyclic: every parent strictly precedes its child, so ids are
        // strictly decreasing along the walk (and the walk terminated).
        for pair in chain.windows(2) {
            prop_assert!(pair[1].id < pair[0].id, "parent ids strictly precede children");
        }

        // Rooted at the originating AS.
        let root = chain.last().unwrap();
        prop_assert_eq!(root.node, origin as u32);
        let root_is_originate = matches!(root.kind, TraceKind::Originate { .. });
        prop_assert!(root_is_originate);

        // The Advertise hops along the chain, origin outward, are
        // exactly the installed path vector read right-to-left — the
        // trace agrees with the path-vector invariant.
        let advertisers: Vec<u32> = chain
            .iter()
            .rev()
            .filter(|e| matches!(e.kind, TraceKind::Advertise { .. }))
            .map(|e| log.asn_of(e.node))
            .collect();
        let mut path_asns: Vec<u32> =
            path.split_whitespace().map(|a| a.parse().unwrap()).collect();
        path_asns.reverse();
        if probe == origin {
            prop_assert!(advertisers.is_empty(), "the origin's route is local");
            prop_assert!(path_asns.is_empty());
        } else {
            prop_assert_eq!(advertisers, path_asns);
        }
    }
}
