//! Churn scenarios end to end: fault plans against the paper
//! topologies, invariants at quiescence, and the Figure 8 pass-through
//! property (CF-R1) surviving link flaps across the gulf.

use dbgp_chaos::scenario::{figure8_wiser, scenario_prefix, sim_from_graph};
use dbgp_chaos::{Fault, FaultPlan, Invariants, ScenarioRunner};
use dbgp_protocols::wiser;
use dbgp_sim::LinkModel;
use dbgp_topology::fixtures::waxman_50;
use dbgp_wire::ProtocolId;

#[test]
fn figure8_pass_through_survives_gulf_flaps() {
    let mut f = figure8_wiser();
    let prefix = scenario_prefix();
    f.sim.originate(f.d, prefix);
    f.sim.run(10_000_000);

    // Baseline: the §6.1 result — S sees Wiser costs across the gulf
    // and prefers the cheap-but-long exit.
    let best = f.sim.speaker(f.s).best(&prefix).expect("converged");
    assert_eq!(best.ia.hop_count(), 4, "cheap long path wins");
    let baseline_cost = wiser::path_cost(&best.ia).expect("cost visible across the gulf");

    // Flap the long path's gulf link twice, then once more on the
    // short side — churn on both sides of the Figure 8 gulf.
    let plan = FaultPlan::new()
        .link_flaps(f.g2a, f.g2b, 20_000_000, 40_000_000, 10_000_000, 2)
        .link_flap(f.g1, f.s, 110_000_000, 130_000_000);
    let report = ScenarioRunner::default().run(&mut f.sim, &plan);
    assert!(report.quiesced, "figure 8 must quiesce after the flaps");
    assert_eq!(report.records.len(), 6);

    // While the long path was down, S must have fallen back to the
    // expensive short exit (route churn at S), and afterwards returned.
    assert!(report.total_best_changes() >= 4, "flaps actually churned routes");

    // The tentpole check: after all that churn the IA at S still
    // carries island A's Wiser descriptors — pass-through state was
    // rebuilt intact by the re-advertisement waves, not lost in the
    // gulf (CF-R1 across Figure 8).
    let invariants = Invariants::new().expect_pass_through(f.s, prefix, ProtocolId::WISER);
    let check = invariants.check(&f.sim);
    assert!(check.ok(), "violations after churn: {check:?}");
    let best = f.sim.speaker(f.s).best(&prefix).expect("still converged");
    assert_eq!(best.ia.hop_count(), 4, "back on the cheap long path");
    assert_eq!(
        wiser::path_cost(&best.ia),
        Some(baseline_cost),
        "Wiser cost descriptor identical after churn"
    );
    let portals = wiser::portals(&best.ia);
    assert!(
        portals.iter().any(|(island, _)| island.0 == 900),
        "island A's portal descriptor survived: {portals:?}"
    );
}

#[test]
fn figure8_node_restart_rebuilds_pass_through_state() {
    let mut f = figure8_wiser();
    let prefix = scenario_prefix();
    f.sim.originate(f.d, prefix);
    f.sim.run(10_000_000);

    // Restart a gulf AS: its sessions reset and every table crossing it
    // is re-transferred (§3.5). The pass-through descriptors must come
    // back with them.
    let plan = FaultPlan::new().node_restart(f.g2b, 20_000_000);
    let report = ScenarioRunner::default().run(&mut f.sim, &plan);
    assert!(report.quiesced);
    assert!(report.records[0].window.messages > 0, "restart triggered a full-table re-transfer");
    let check = Invariants::new().expect_pass_through(f.s, prefix, ProtocolId::WISER).check(&f.sim);
    assert!(check.ok(), "violations after restart: {check:?}");
    assert_eq!(f.sim.speaker(f.s).best(&prefix).unwrap().ia.hop_count(), 4);
}

#[test]
fn waxman_flap_storm_stays_loop_free_and_black_hole_free() {
    let graph = waxman_50(3);
    let mut sim = sim_from_graph(&graph, 10);
    sim.set_seed(3);
    let prefix = scenario_prefix();
    sim.originate(0, prefix);
    sim.run(100_000_000);

    // Flap two links chosen deterministically from the edge list, plus
    // a restart of a transit node, all overlapping.
    let edges: Vec<(usize, usize, bool)> = sim.links().collect();
    let (a1, b1, _) = edges[edges.len() / 3];
    let (a2, b2, _) = edges[2 * edges.len() / 3];
    let plan = FaultPlan::new()
        .link_flaps(a1, b1, 110_000_000, 30_000_000, 10_000_000, 3)
        .link_flap(a2, b2, 120_000_000, 160_000_000)
        .node_restart(1, 150_000_000);
    let runner = ScenarioRunner::new(200_000_000);
    let report = runner.run(&mut sim, &plan);

    assert!(report.quiesced, "waxman scenario must quiesce");
    let check = Invariants::new().check(&sim);
    assert!(
        check.forwarding_loops.is_empty(),
        "forwarding loops at quiescence: {:?}",
        check.forwarding_loops
    );
    assert!(check.black_holes.is_empty(), "black holes at quiescence: {:?}", check.black_holes);
    assert!(check.path_vector_violations.is_empty());
    // Every AS still reaches the destination (the graph stays connected
    // because all faults are repaired).
    for node in 1..sim.node_count() {
        assert!(sim.speaker(node).best(&prefix).is_some(), "node {node} lost the route");
    }
}

#[test]
fn loss_burst_with_healing_flap_resynchronizes() {
    let graph = waxman_50(5);
    let mut sim = sim_from_graph(&graph, 10);
    sim.set_seed(5);
    let prefix = scenario_prefix();
    sim.originate(0, prefix);
    sim.run(100_000_000);

    // Degrade one link hard, then restart one of its endpoints inside
    // the burst window so full-table re-transfers actually traverse the
    // lossy link.
    let edges: Vec<(usize, usize, bool)> = sim.links().collect();
    let (a, b, _) = edges[edges.len() / 2];
    let storm = LinkModel::reliable().loss_ppm(600_000).jitter(7).duplicate_ppm(100_000);
    let plan = FaultPlan::new()
        .loss_burst(a, b, 110_000_000, 50_000_000, storm)
        .at(120_000_000, Fault::NodeRestart { node: a });
    let report = ScenarioRunner::new(300_000_000).run(&mut sim, &plan);

    assert!(report.quiesced);
    // The burst + restart traffic must have actually exercised the
    // lossy model.
    let stats = sim.stats();
    assert!(
        stats.dropped_messages + stats.duplicated_messages > 0,
        "the storm perturbed something: {stats:?}"
    );
    // After the healing flap, no loops, no black holes, full
    // reachability.
    let check = Invariants::new().check(&sim);
    assert!(check.ok(), "violations after burst: {check:?}");
    for node in 1..sim.node_count() {
        assert!(sim.speaker(node).best(&prefix).is_some(), "node {node} lost the route");
    }
}
