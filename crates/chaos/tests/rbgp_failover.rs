//! The acceptance scenario for link repair: an R-BGP source fails over
//! to its staged disjoint backup when the primary's link dies, and
//! returns to the primary after `restore_link` — driven both directly
//! and through a declarative `FaultPlan`.

use dbgp_chaos::scenario::{rbgp_diamond, scenario_prefix};
use dbgp_chaos::{FaultPlan, Invariants, ScenarioRunner};
use dbgp_protocols::rbgp::backup_path;

#[test]
fn rbgp_fails_over_and_returns_after_repair() {
    let diamond = rbgp_diamond();
    let (mut sim, d, short, s) = (diamond.sim, diamond.d, diamond.short, diamond.s);
    let prefix = scenario_prefix();
    sim.originate(d, prefix);
    sim.run(10_000_000);

    // Converged: the short path is primary. (The backup lives in the
    // source's own R-BGP module — it is multi-homed — so failover is
    // asserted behaviorally below; `backup_path` would only show on IAs
    // re-advertised downstream of an R-BGP AS.)
    let best = sim.speaker(s).best(&prefix).expect("converged");
    assert_eq!(best.ia.hop_count(), 2, "primary is the short path");
    assert_eq!(sim.fib(s).get(&prefix).copied().flatten(), Some(short));
    assert!(backup_path(&best.ia).is_none(), "plain upstreams attach no backup descriptor");

    // Primary link dies.
    sim.fail_link(d, short);
    sim.run(60_000_000);
    let best = sim.speaker(s).best(&prefix).expect("failover keeps the destination reachable");
    assert_eq!(best.ia.hop_count(), 3, "switched to the disjoint long path");
    assert_eq!(sim.fib(s).get(&prefix).copied().flatten(), Some(diamond.long_b));

    // Repair: the source must come back to the shorter primary.
    sim.restore_link(d, short);
    sim.run(120_000_000);
    let best = sim.speaker(s).best(&prefix).expect("still reachable");
    assert_eq!(best.ia.hop_count(), 2, "back on the primary after repair");
    assert_eq!(sim.fib(s).get(&prefix).copied().flatten(), Some(short));

    // And the repaired network is invariant-clean.
    let report = Invariants::new().check(&sim);
    assert!(report.ok(), "violations after repair: {report:?}");
}

#[test]
fn the_same_story_as_a_fault_plan() {
    let diamond = rbgp_diamond();
    let (mut sim, d, short, s) = (diamond.sim, diamond.d, diamond.short, diamond.s);
    let prefix = scenario_prefix();
    sim.originate(d, prefix);
    sim.run(10_000_000);

    let plan = FaultPlan::new().link_flap(d, short, 20_000_000, 80_000_000);
    let report = ScenarioRunner::default().run(&mut sim, &plan);

    assert!(report.quiesced);
    assert_eq!(report.records.len(), 2);
    // The down window re-routed the source; the up window brought it
    // back — both visible as route churn at the source.
    assert!(report.records[0].window.best_changes >= 1, "failover churned");
    assert!(report.records[1].window.best_changes >= 1, "repair churned");
    assert_eq!(
        sim.fib(s).get(&prefix).copied().flatten(),
        Some(short),
        "primary restored at the end of the flap"
    );
    assert!(Invariants::new().check(&sim).ok());
}
