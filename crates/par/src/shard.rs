//! Topology sharding for the parallel discrete-event engine.
//!
//! [`partition`] is a METIS-lite greedy edge-cut partitioner: it walks
//! the nodes in a deterministic breadth-first order (seeded from the
//! highest-degree node) and assigns each node to the shard holding the
//! most of its already-assigned neighbors, subject to a balance cap.
//! That keeps link-connected clusters together — a delivery between
//! same-shard nodes never crosses a shard boundary — while bounding the
//! load skew, and it is a pure function of the edge list, so every run
//! (and every thread count) sees the same partition.
//!
//! [`ShardChannel`] is the cross-shard mailbox the sharded engine
//! exchanges events through at window boundaries. Determinism forbids a
//! blocking bounded queue (a producer stalling on a full channel would
//! make the commit order scheduler-dependent), so the bound here is a
//! *capacity hint*: the buffer is pre-sized to it, occupancy is tracked
//! as a high-water mark, and overflow grows the buffer instead of
//! blocking. The engine drains every channel at the next window
//! barrier, so occupancy is bounded in practice by one lookahead
//! window's fan-out.

/// A deterministic k-way node partition of an undirected graph.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Shard index per node.
    pub assignment: Vec<u16>,
    /// Number of shards actually used.
    pub shards: usize,
    /// Edges whose endpoints land in different shards.
    pub cut_edges: usize,
    /// Total edges considered.
    pub total_edges: usize,
    /// Nodes per shard.
    pub loads: Vec<usize>,
}

impl Partition {
    /// Fraction of edges crossing shard boundaries (0 when edgeless).
    pub fn edge_cut_fraction(&self) -> f64 {
        if self.total_edges == 0 {
            0.0
        } else {
            self.cut_edges as f64 / self.total_edges as f64
        }
    }
}

/// Greedily partition `n` nodes with undirected `edges` into `k`
/// shards, minimizing the edge cut under a ±5% balance cap.
///
/// Deterministic: identical inputs yield identical assignments. Nodes
/// unreachable from the seed component are assigned in index order by
/// the same greedy rule.
pub fn partition(n: usize, edges: &[(usize, usize)], k: usize) -> Partition {
    let k = k.max(1).min(n.max(1));
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut total_edges = 0usize;
    for &(a, b) in edges {
        if a == b || a >= n || b >= n {
            continue;
        }
        adj[a].push(b as u32);
        adj[b].push(a as u32);
        total_edges += 1;
    }

    const UNASSIGNED: u16 = u16::MAX;
    let mut assignment = vec![UNASSIGNED; n];
    let mut loads = vec![0usize; k];
    // Allow ~5% skew over the ideal shard size before the cap bites.
    let cap = (n.div_ceil(k) * 21).div_ceil(20).max(1);

    // Deterministic BFS order from the highest-degree node, restarting
    // (in index order) for every disconnected component.
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let seed = (0..n).max_by_key(|&v| (adj[v].len(), std::cmp::Reverse(v)));
    let mut queue = std::collections::VecDeque::new();
    let mut next_unseen = 0usize;
    if let Some(s) = seed {
        seen[s] = true;
        queue.push_back(s as u32);
    }
    while order.len() < n {
        let Some(v) = queue.pop_front() else {
            while next_unseen < n && seen[next_unseen] {
                next_unseen += 1;
            }
            if next_unseen == n {
                break;
            }
            seen[next_unseen] = true;
            queue.push_back(next_unseen as u32);
            continue;
        };
        order.push(v);
        for &w in &adj[v as usize] {
            if !seen[w as usize] {
                seen[w as usize] = true;
                queue.push_back(w);
            }
        }
    }

    // Greedy assignment: most already-assigned neighbors wins; ties go
    // to the lighter shard, then the lower index.
    let mut affinity = vec![0usize; k];
    for &v in &order {
        for a in affinity.iter_mut() {
            *a = 0;
        }
        for &w in &adj[v as usize] {
            let s = assignment[w as usize];
            if s != UNASSIGNED {
                affinity[s as usize] += 1;
            }
        }
        let mut best = 0usize;
        let mut best_key = (isize::MIN, usize::MAX);
        for (s, &aff) in affinity.iter().enumerate() {
            if loads[s] >= cap {
                continue;
            }
            // Prefer affinity, break ties toward the emptier shard.
            let key = (aff as isize, usize::MAX - loads[s]);
            if key > best_key {
                best_key = key;
                best = s;
            }
        }
        assignment[v as usize] = best as u16;
        loads[best] += 1;
    }

    let cut_edges = edges
        .iter()
        .filter(|&&(a, b)| a != b && a < n && b < n && assignment[a] != assignment[b])
        .count();
    Partition { assignment, shards: k, cut_edges, total_edges, loads }
}

/// A grow-on-overflow mailbox with a capacity hint and occupancy
/// accounting, used for window-boundary cross-shard event exchange.
#[derive(Debug)]
pub struct ShardChannel<T> {
    staged: Vec<T>,
    capacity_hint: usize,
    high_water: usize,
    pushes: u64,
    overflows: u64,
}

impl<T> ShardChannel<T> {
    /// A channel pre-sized to `capacity_hint` slots.
    pub fn with_capacity(capacity_hint: usize) -> Self {
        ShardChannel {
            staged: Vec::with_capacity(capacity_hint),
            capacity_hint,
            high_water: 0,
            pushes: 0,
            overflows: 0,
        }
    }

    /// Stage one item. Never blocks: exceeding the capacity hint grows
    /// the buffer and counts an overflow (a tuning signal, not an
    /// error — blocking would make commit order scheduler-dependent).
    pub fn push(&mut self, item: T) {
        if self.staged.len() >= self.capacity_hint {
            self.overflows += 1;
        }
        self.staged.push(item);
        self.pushes += 1;
        self.high_water = self.high_water.max(self.staged.len());
    }

    /// Move all staged items out, keeping the allocation.
    pub fn drain(&mut self) -> std::vec::Drain<'_, T> {
        self.staged.drain(..)
    }

    /// Items currently staged.
    pub fn len(&self) -> usize {
        self.staged.len()
    }

    /// True when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.staged.is_empty()
    }

    /// Peak occupancy observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Total items ever pushed.
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Pushes that exceeded the capacity hint.
    pub fn overflows(&self) -> u64 {
        self.overflows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> Vec<(usize, usize)> {
        (0..n).map(|i| (i, (i + 1) % n)).collect()
    }

    #[test]
    fn partition_is_deterministic_and_balanced() {
        let edges = ring(100);
        let a = partition(100, &edges, 4);
        let b = partition(100, &edges, 4);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.loads.iter().sum::<usize>(), 100);
        for &l in &a.loads {
            assert!(l <= 27, "load {l} blew the 5% balance cap");
        }
    }

    #[test]
    fn ring_cut_is_near_optimal() {
        // A ring cut into k contiguous arcs needs exactly k cut edges;
        // greedy BFS growth should stay within a small factor of that.
        let edges = ring(1000);
        let p = partition(1000, &edges, 4);
        assert_eq!(p.total_edges, 1000);
        assert!(p.cut_edges <= 16, "greedy cut {} far from optimal 4", p.cut_edges);
        assert!(p.edge_cut_fraction() <= 0.016);
    }

    #[test]
    fn clique_assignments_cover_all_shards() {
        let mut edges = Vec::new();
        for a in 0..40 {
            for b in (a + 1)..40 {
                edges.push((a, b));
            }
        }
        let p = partition(40, &edges, 4);
        for s in 0..4u16 {
            assert!(p.assignment.contains(&s), "shard {s} unused");
        }
    }

    #[test]
    fn disconnected_components_and_degenerate_inputs() {
        // Two disjoint rings plus an isolated node.
        let mut edges = ring(10);
        edges.extend(ring(10).iter().map(|&(a, b)| (a + 10, b + 10)));
        let p = partition(21, &edges, 2);
        assert_eq!(p.assignment.len(), 21);
        assert!(p.assignment.iter().all(|&s| s < 2));

        let empty = partition(0, &[], 4);
        assert!(empty.assignment.is_empty());
        assert_eq!(empty.edge_cut_fraction(), 0.0);

        // More shards than nodes clamps.
        let tiny = partition(2, &[(0, 1)], 8);
        assert!(tiny.shards <= 2);
    }

    #[test]
    fn one_shard_means_no_cut() {
        let p = partition(50, &ring(50), 1);
        assert!(p.assignment.iter().all(|&s| s == 0));
        assert_eq!(p.cut_edges, 0);
    }

    #[test]
    fn shard_channel_tracks_occupancy_without_blocking() {
        let mut ch: ShardChannel<u32> = ShardChannel::with_capacity(2);
        ch.push(1);
        ch.push(2);
        ch.push(3); // over the hint: grows, never blocks
        assert_eq!(ch.len(), 3);
        assert_eq!(ch.high_water(), 3);
        assert_eq!(ch.overflows(), 1);
        let drained: Vec<u32> = ch.drain().collect();
        assert_eq!(drained, vec![1, 2, 3]);
        assert!(ch.is_empty());
        assert_eq!(ch.pushes(), 3);
        assert_eq!(ch.high_water(), 3, "high water survives a drain");
    }
}
