//! Topology sharding for the parallel discrete-event engine.
//!
//! [`partition`] is a METIS-lite greedy edge-cut partitioner: it walks
//! the nodes in a deterministic breadth-first order (seeded from the
//! highest-degree node) and assigns each node to the shard holding the
//! most of its already-assigned neighbors, subject to a balance cap.
//! That keeps link-connected clusters together — a delivery between
//! same-shard nodes never crosses a shard boundary — while bounding the
//! load skew, and it is a pure function of the edge list, so every run
//! (and every thread count) sees the same partition.
//!
//! [`ShardChannel`] is the cross-shard mailbox the sharded engine
//! exchanges events through at window boundaries. Determinism forbids a
//! blocking bounded queue (a producer stalling on a full channel would
//! make the commit order scheduler-dependent), so the bound here is a
//! *capacity hint*: the buffer is pre-sized to it, occupancy is tracked
//! as a high-water mark, and overflow grows the buffer instead of
//! blocking. The engine drains every channel at the next window
//! barrier, so occupancy is bounded in practice by one lookahead
//! window's fan-out.

/// A deterministic k-way node partition of an undirected graph.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Shard index per node.
    pub assignment: Vec<u16>,
    /// Number of shards actually used.
    pub shards: usize,
    /// Edges whose endpoints land in different shards.
    pub cut_edges: usize,
    /// Total edges considered.
    pub total_edges: usize,
    /// Nodes per shard.
    pub loads: Vec<usize>,
    /// Summed node weight per shard (equals `loads` when the partition
    /// was unweighted).
    pub weight_loads: Vec<u64>,
}

impl Partition {
    /// Fraction of edges crossing shard boundaries (0 when edgeless).
    pub fn edge_cut_fraction(&self) -> f64 {
        if self.total_edges == 0 {
            0.0
        } else {
            self.cut_edges as f64 / self.total_edges as f64
        }
    }
}

/// Greedily partition `n` nodes with undirected `edges` into `k`
/// shards, minimizing the edge cut under a ±5% balance cap.
///
/// Deterministic: identical inputs yield identical assignments. Nodes
/// unreachable from the seed component are assigned in index order by
/// the same greedy rule.
pub fn partition(n: usize, edges: &[(usize, usize)], k: usize) -> Partition {
    let k = k.max(1).min(n.max(1));
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut total_edges = 0usize;
    for &(a, b) in edges {
        if a == b || a >= n || b >= n {
            continue;
        }
        adj[a].push(b as u32);
        adj[b].push(a as u32);
        total_edges += 1;
    }

    const UNASSIGNED: u16 = u16::MAX;
    let mut assignment = vec![UNASSIGNED; n];
    let mut loads = vec![0usize; k];
    // Allow ~5% skew over the ideal shard size before the cap bites.
    let cap = (n.div_ceil(k) * 21).div_ceil(20).max(1);

    // Deterministic BFS order from the highest-degree node, restarting
    // (in index order) for every disconnected component.
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let seed = (0..n).max_by_key(|&v| (adj[v].len(), std::cmp::Reverse(v)));
    let mut queue = std::collections::VecDeque::new();
    let mut next_unseen = 0usize;
    if let Some(s) = seed {
        seen[s] = true;
        queue.push_back(s as u32);
    }
    while order.len() < n {
        let Some(v) = queue.pop_front() else {
            while next_unseen < n && seen[next_unseen] {
                next_unseen += 1;
            }
            if next_unseen == n {
                break;
            }
            seen[next_unseen] = true;
            queue.push_back(next_unseen as u32);
            continue;
        };
        order.push(v);
        for &w in &adj[v as usize] {
            if !seen[w as usize] {
                seen[w as usize] = true;
                queue.push_back(w);
            }
        }
    }

    // Greedy assignment: most already-assigned neighbors wins; ties go
    // to the lighter shard, then the lower index.
    let mut affinity = vec![0usize; k];
    for &v in &order {
        for a in affinity.iter_mut() {
            *a = 0;
        }
        for &w in &adj[v as usize] {
            let s = assignment[w as usize];
            if s != UNASSIGNED {
                affinity[s as usize] += 1;
            }
        }
        let mut best = 0usize;
        let mut best_key = (isize::MIN, usize::MAX);
        for (s, &aff) in affinity.iter().enumerate() {
            if loads[s] >= cap {
                continue;
            }
            // Prefer affinity, break ties toward the emptier shard.
            let key = (aff as isize, usize::MAX - loads[s]);
            if key > best_key {
                best_key = key;
                best = s;
            }
        }
        assignment[v as usize] = best as u16;
        loads[best] += 1;
    }

    let cut_edges = edges
        .iter()
        .filter(|&&(a, b)| a != b && a < n && b < n && assignment[a] != assignment[b])
        .count();
    let weight_loads = loads.iter().map(|&l| l as u64).collect();
    Partition { assignment, shards: k, cut_edges, total_edges, loads, weight_loads }
}

/// [`partition`], but balancing *weighted* load instead of node count:
/// each node carries a weight (an activity proxy — e.g. its degree, or
/// a measured event count) and no shard may exceed ~5% over the ideal
/// weight share. A greedy affinity pass seeds the assignment, then a
/// repartition pass moves nodes out of overweight shards (least
/// internal affinity first) and finishes with bounded
/// Kernighan–Lin-style sweeps that move boundary nodes only when the
/// move reduces the edge cut without breaking the weight cap.
///
/// This exists because node-count balance is the wrong invariant for
/// hub-heavy graphs: on the CAIDA-like `hier_50k` tier the unweighted
/// partitioner puts the 12-member tier-1 clique and its big transit
/// cones on one shard — balanced in *nodes*, but carrying 66% of all
/// *events*. Weighting by degree spreads the hubs.
///
/// Deterministic: identical inputs yield identical assignments.
/// `weights` shorter than `n` is padded with weight 1; zero weights
/// count as 1 so every node costs something to host.
pub fn partition_weighted(
    n: usize,
    edges: &[(usize, usize)],
    k: usize,
    weights: &[u64],
) -> Partition {
    let k = k.max(1).min(n.max(1));
    let w = |v: usize| weights.get(v).copied().unwrap_or(1).max(1);
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut total_edges = 0usize;
    for &(a, b) in edges {
        if a == b || a >= n || b >= n {
            continue;
        }
        adj[a].push(b as u32);
        adj[b].push(a as u32);
        total_edges += 1;
    }
    let total_weight: u64 = (0..n).map(w).sum();
    // ~5% skew over the ideal weight share, but never below the
    // heaviest single node — some node has to host it.
    let cap =
        (total_weight.div_ceil(k as u64) * 21).div_ceil(20).max((0..n).map(w).max().unwrap_or(1));

    const UNASSIGNED: u16 = u16::MAX;
    let mut assignment = vec![UNASSIGNED; n];
    let mut weight_loads = vec![0u64; k];

    // Same deterministic BFS order as `partition`.
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let seed = (0..n).max_by_key(|&v| (adj[v].len(), std::cmp::Reverse(v)));
    let mut queue = std::collections::VecDeque::new();
    let mut next_unseen = 0usize;
    if let Some(s) = seed {
        seen[s] = true;
        queue.push_back(s as u32);
    }
    while order.len() < n {
        let Some(v) = queue.pop_front() else {
            while next_unseen < n && seen[next_unseen] {
                next_unseen += 1;
            }
            if next_unseen == n {
                break;
            }
            seen[next_unseen] = true;
            queue.push_back(next_unseen as u32);
            continue;
        };
        order.push(v);
        for &w in &adj[v as usize] {
            if !seen[w as usize] {
                seen[w as usize] = true;
                queue.push_back(w);
            }
        }
    }

    // Greedy seed: most already-assigned neighbors wins among shards
    // with weight room; ties toward the lighter shard. If every shard
    // is at cap (rounding), the lightest takes it.
    let mut affinity = vec![0usize; k];
    for &v in &order {
        for a in affinity.iter_mut() {
            *a = 0;
        }
        for &nb in &adj[v as usize] {
            let s = assignment[nb as usize];
            if s != UNASSIGNED {
                affinity[s as usize] += 1;
            }
        }
        let vw = w(v as usize);
        let mut best: Option<usize> = None;
        let mut best_key = (isize::MIN, u64::MAX);
        for (s, &aff) in affinity.iter().enumerate() {
            if weight_loads[s] + vw > cap {
                continue;
            }
            let key = (aff as isize, u64::MAX - weight_loads[s]);
            if key > best_key {
                best_key = key;
                best = Some(s);
            }
        }
        let best =
            best.unwrap_or_else(|| (0..k).min_by_key(|&s| (weight_loads[s], s)).expect("k >= 1"));
        assignment[v as usize] = best as u16;
        weight_loads[best] += vw;
    }

    // Repartition pass: drain overweight shards. Nodes leave in order
    // of least internal affinity (they cost the least cut to move),
    // ties by index, and land on the shard with the most affinity for
    // them among those with room, else the lightest.
    let internal_affinity = |v: usize, assignment: &[u16]| -> usize {
        adj[v].iter().filter(|&&nb| assignment[nb as usize] == assignment[v]).count()
    };
    while let Some(over) = (0..k).find(|&s| weight_loads[s] > cap) {
        let candidate = (0..n)
            .filter(|&v| assignment[v] == over as u16)
            .min_by_key(|&v| (internal_affinity(v, &assignment), v));
        let Some(v) = candidate else { break };
        let vw = w(v);
        let mut aff = vec![0usize; k];
        for &nb in &adj[v] {
            let s = assignment[nb as usize];
            if s != UNASSIGNED && s as usize != over {
                aff[s as usize] += 1;
            }
        }
        let target = (0..k)
            .filter(|&s| s != over && weight_loads[s] + vw <= cap)
            .max_by_key(|&s| (aff[s], u64::MAX - weight_loads[s], std::cmp::Reverse(s)));
        let Some(target) = target else { break };
        assignment[v] = target as u16;
        weight_loads[over] -= vw;
        weight_loads[target] += vw;
    }

    // Bounded KL-lite sweeps: move a node to a neighboring shard only
    // when that strictly reduces the cut and keeps the cap.
    for _sweep in 0..2 {
        let mut moved = false;
        for &v in &order {
            let v = v as usize;
            let cur = assignment[v] as usize;
            let mut aff = vec![0usize; k];
            for &nb in &adj[v] {
                let s = assignment[nb as usize];
                if s != UNASSIGNED {
                    aff[s as usize] += 1;
                }
            }
            let vw = w(v);
            let target = (0..k)
                .filter(|&s| s != cur && weight_loads[s] + vw <= cap)
                .max_by_key(|&s| (aff[s], u64::MAX - weight_loads[s], std::cmp::Reverse(s)));
            if let Some(t) = target {
                if aff[t] > aff[cur] {
                    assignment[v] = t as u16;
                    weight_loads[cur] -= vw;
                    weight_loads[t] += vw;
                    moved = true;
                }
            }
        }
        if !moved {
            break;
        }
    }

    let mut loads = vec![0usize; k];
    for &s in &assignment {
        loads[s as usize] += 1;
    }
    let cut_edges = edges
        .iter()
        .filter(|&&(a, b)| a != b && a < n && b < n && assignment[a] != assignment[b])
        .count();
    Partition { assignment, shards: k, cut_edges, total_edges, loads, weight_loads }
}

/// A grow-on-overflow mailbox with a capacity hint and occupancy
/// accounting, used for window-boundary cross-shard event exchange.
#[derive(Debug)]
pub struct ShardChannel<T> {
    staged: Vec<T>,
    capacity_hint: usize,
    high_water: usize,
    pushes: u64,
    overflows: u64,
}

impl<T> ShardChannel<T> {
    /// A channel pre-sized to `capacity_hint` slots.
    pub fn with_capacity(capacity_hint: usize) -> Self {
        ShardChannel {
            staged: Vec::with_capacity(capacity_hint),
            capacity_hint,
            high_water: 0,
            pushes: 0,
            overflows: 0,
        }
    }

    /// Stage one item. Never blocks: exceeding the capacity hint grows
    /// the buffer and counts an overflow (a tuning signal, not an
    /// error — blocking would make commit order scheduler-dependent).
    pub fn push(&mut self, item: T) {
        if self.staged.len() >= self.capacity_hint {
            self.overflows += 1;
        }
        self.staged.push(item);
        self.pushes += 1;
        self.high_water = self.high_water.max(self.staged.len());
    }

    /// Move all staged items out, keeping the allocation.
    pub fn drain(&mut self) -> std::vec::Drain<'_, T> {
        self.staged.drain(..)
    }

    /// Items currently staged.
    pub fn len(&self) -> usize {
        self.staged.len()
    }

    /// True when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.staged.is_empty()
    }

    /// Peak occupancy observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Total items ever pushed.
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Pushes that exceeded the capacity hint.
    pub fn overflows(&self) -> u64 {
        self.overflows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> Vec<(usize, usize)> {
        (0..n).map(|i| (i, (i + 1) % n)).collect()
    }

    #[test]
    fn partition_is_deterministic_and_balanced() {
        let edges = ring(100);
        let a = partition(100, &edges, 4);
        let b = partition(100, &edges, 4);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.loads.iter().sum::<usize>(), 100);
        for &l in &a.loads {
            assert!(l <= 27, "load {l} blew the 5% balance cap");
        }
    }

    #[test]
    fn ring_cut_is_near_optimal() {
        // A ring cut into k contiguous arcs needs exactly k cut edges;
        // greedy BFS growth should stay within a small factor of that.
        let edges = ring(1000);
        let p = partition(1000, &edges, 4);
        assert_eq!(p.total_edges, 1000);
        assert!(p.cut_edges <= 16, "greedy cut {} far from optimal 4", p.cut_edges);
        assert!(p.edge_cut_fraction() <= 0.016);
    }

    #[test]
    fn clique_assignments_cover_all_shards() {
        let mut edges = Vec::new();
        for a in 0..40 {
            for b in (a + 1)..40 {
                edges.push((a, b));
            }
        }
        let p = partition(40, &edges, 4);
        for s in 0..4u16 {
            assert!(p.assignment.contains(&s), "shard {s} unused");
        }
    }

    #[test]
    fn disconnected_components_and_degenerate_inputs() {
        // Two disjoint rings plus an isolated node.
        let mut edges = ring(10);
        edges.extend(ring(10).iter().map(|&(a, b)| (a + 10, b + 10)));
        let p = partition(21, &edges, 2);
        assert_eq!(p.assignment.len(), 21);
        assert!(p.assignment.iter().all(|&s| s < 2));

        let empty = partition(0, &[], 4);
        assert!(empty.assignment.is_empty());
        assert_eq!(empty.edge_cut_fraction(), 0.0);

        // More shards than nodes clamps.
        let tiny = partition(2, &[(0, 1)], 8);
        assert!(tiny.shards <= 2);
    }

    #[test]
    fn one_shard_means_no_cut() {
        let p = partition(50, &ring(50), 1);
        assert!(p.assignment.iter().all(|&s| s == 0));
        assert_eq!(p.cut_edges, 0);
    }

    /// A miniature `hier_50k`: a 12-node hub clique (heavy, every stub
    /// hangs off it) plus light stubs. This is the shape where
    /// node-count balance concentrates the event load on one shard.
    fn hub_clique(stubs: usize) -> (usize, Vec<(usize, usize)>, Vec<u64>) {
        let hubs = 12usize;
        let n = hubs + stubs;
        let mut edges = Vec::new();
        for a in 0..hubs {
            for b in (a + 1)..hubs {
                edges.push((a, b));
            }
        }
        // Preferential attachment in miniature: stub i hangs off hub
        // i % 3, so three hubs carry almost all stub adjacency.
        for i in 0..stubs {
            edges.push((hubs + i, i % 3));
        }
        // Degree as the activity proxy.
        let mut weights = vec![0u64; n];
        for &(a, b) in &edges {
            weights[a] += 1;
            weights[b] += 1;
        }
        (n, edges, weights)
    }

    #[test]
    fn weighted_partition_spreads_hub_weight_that_unweighted_concentrates() {
        let (n, edges, weights) = hub_clique(120);
        let total: u64 = weights.iter().sum();

        // The unweighted partitioner balances node count, which lands
        // the whole clique (and with it most of the weight) together —
        // the documented 66%-one-shard case.
        let plain = partition(n, &edges, 4);
        let mut plain_weight = vec![0u64; 4];
        for (v, &s) in plain.assignment.iter().enumerate() {
            plain_weight[s as usize] += weights[v];
        }
        let plain_max = *plain_weight.iter().max().unwrap();
        assert!(
            plain_max * 2 > total,
            "expected the unweighted partition to concentrate >50% of the \
             weight (got {plain_weight:?}); if this starts failing, the \
             seed partitioner changed and the weighted variant needs re-review"
        );

        // The weighted partitioner must respect the ~5% weight cap
        // (floored at the heaviest single node).
        let p = partition_weighted(n, &edges, 4, &weights);
        let cap = (total.div_ceil(4) * 21).div_ceil(20).max(*weights.iter().max().unwrap());
        for (s, &wl) in p.weight_loads.iter().enumerate() {
            assert!(wl <= cap, "shard {s} weight {wl} blew the cap {cap}: {:?}", p.weight_loads);
        }
        assert_eq!(p.weight_loads.iter().sum::<u64>(), total);
        assert_eq!(p.loads.iter().sum::<usize>(), n);
    }

    #[test]
    fn weighted_partition_is_deterministic() {
        let (n, edges, weights) = hub_clique(200);
        let a = partition_weighted(n, &edges, 3, &weights);
        let b = partition_weighted(n, &edges, 3, &weights);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.weight_loads, b.weight_loads);
    }

    #[test]
    fn weighted_partition_with_unit_weights_stays_balanced_and_cut_stays_sane() {
        // With all weights 1 the weighted variant solves the same
        // problem as `partition`; it need not match assignments, but
        // balance and cut quality must hold.
        let edges = ring(100);
        let p = partition_weighted(100, &edges, 4, &vec![1; 100]);
        for &l in &p.loads {
            assert!(l <= 27, "load {l} blew the balance cap: {:?}", p.loads);
        }
        assert!(p.cut_edges <= 16, "ring cut {} far from optimal 4", p.cut_edges);
        // Degenerate inputs mirror `partition`.
        let empty = partition_weighted(0, &[], 4, &[]);
        assert!(empty.assignment.is_empty());
        let short = partition_weighted(5, &ring(5), 2, &[7]); // weights padded
        assert_eq!(short.assignment.len(), 5);
    }

    #[test]
    fn unweighted_partition_reports_weight_loads_equal_to_loads() {
        let p = partition(60, &ring(60), 3);
        let as_w: Vec<u64> = p.loads.iter().map(|&l| l as u64).collect();
        assert_eq!(p.weight_loads, as_w);
    }

    #[test]
    fn shard_channel_tracks_occupancy_without_blocking() {
        let mut ch: ShardChannel<u32> = ShardChannel::with_capacity(2);
        ch.push(1);
        ch.push(2);
        ch.push(3); // over the hint: grows, never blocks
        assert_eq!(ch.len(), 3);
        assert_eq!(ch.high_water(), 3);
        assert_eq!(ch.overflows(), 1);
        let drained: Vec<u32> = ch.drain().collect();
        assert_eq!(drained, vec![1, 2, 3]);
        assert!(ch.is_empty());
        assert_eq!(ch.pushes(), 3);
        assert_eq!(ch.high_water(), 3, "high water survives a drain");
    }
}
