//! Deterministic parallel execution primitives.
//!
//! Everything in this repo is built around sealed deterministic units: a
//! simulation (or a differential scenario, or a random schedule) takes a
//! seed and produces a value, with no hidden shared state. That makes
//! scenario-level parallelism trivially safe — the only thing a parallel
//! runner must guarantee is that *results come back in input order* so
//! downstream consumers (reports, golden files, shrinking loops) see the
//! same sequence a serial loop would have produced.
//!
//! This crate provides exactly that, with no dependencies beyond `std`:
//!
//! - [`Pool`]: a persistent worker pool (plain `std::thread` workers, a
//!   mutex-protected injector queue, and a completion latch). The thread
//!   that submits a batch participates in draining it, so a pool built
//!   with `threads = N` applies exactly `N` threads of compute.
//! - [`par_map`] / [`par_map_reduce`]: ordered fork–join maps. Results
//!   land in a pre-sized slot vector by input index, so the output order
//!   is the input order regardless of how the scheduler interleaved the
//!   jobs.
//! - [`configured_threads`]: the process-wide thread-count knob. CLI
//!   `--threads N` flags and the `DBGP_THREADS` environment variable both
//!   funnel through here; `1` means "use the existing serial paths".
//! - [`partition`] / [`ShardChannel`]: METIS-lite greedy edge-cut
//!   sharding of a node/link graph, plus the window-boundary mailboxes
//!   the sharded engine in `dbgp-sim` exchanges cross-shard events
//!   through.
//!
//! # The ordered-reduce contract
//!
//! `par_map_reduce(pool, items, f)` is observationally equivalent to
//! `items.iter().enumerate().map(|(i, x)| f(i, x)).collect()` provided
//! `f` is a pure function of its arguments. Jobs may run on any worker
//! in any interleaving, but each result is written into its own
//! pre-allocated slot and the slots are read out in index order after
//! the batch barrier. If any job panics, the panic is re-raised on the
//! submitting thread *after* the batch completes, so a panicking check
//! inside one scenario cannot strand worker threads mid-job.

use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};
use std::thread::{self, JoinHandle};

mod shard;

pub use shard::{partition, partition_weighted, Partition, ShardChannel};

/// A unit of work queued on the pool. Lifetime-erased: see the safety
/// comment in [`Pool::run_batch`].
type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    jobs: VecDeque<Job>,
    /// Jobs queued or currently executing in the open batch.
    pending: usize,
    /// First panic payload captured from a job, re-raised by the submitter.
    panic: Option<Box<dyn std::any::Any + Send + 'static>>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signalled when a job is queued (or on shutdown).
    work_ready: Condvar,
    /// Signalled when `pending` reaches zero.
    batch_done: Condvar,
}

impl PoolShared {
    fn lock(&self) -> std::sync::MutexGuard<'_, PoolState> {
        // A panicking job is captured by `catch_unwind` below, so the
        // mutex can only be poisoned by a panic in this module itself;
        // recover rather than cascade.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Pop-and-run jobs until the queue is empty. Returns the number run.
    fn drain(&self) -> usize {
        let mut ran = 0;
        loop {
            let job = {
                let mut st = self.lock();
                match st.jobs.pop_front() {
                    Some(j) => j,
                    None => return ran,
                }
            };
            let result = panic::catch_unwind(AssertUnwindSafe(job));
            let mut st = self.lock();
            if let Err(payload) = result {
                if st.panic.is_none() {
                    st.panic = Some(payload);
                }
            }
            st.pending -= 1;
            if st.pending == 0 {
                self.batch_done.notify_all();
            }
            ran += 1;
        }
    }
}

/// A persistent worker pool with a batch-submission API.
///
/// `Pool::new(n)` spawns `n - 1` background workers; the submitting
/// thread is the `n`-th. Batches are submitted with [`Pool::run_batch`]
/// (usually via [`par_map`]) and block until every job in the batch has
/// finished, which is what makes non-`'static` borrows in jobs sound.
pub struct Pool {
    shared: std::sync::Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl Pool {
    /// A pool applying `threads` total threads of compute (the caller
    /// counts as one). `threads` is clamped to at least 1; a 1-thread
    /// pool spawns no workers and runs batches inline.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = std::sync::Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                jobs: VecDeque::new(),
                pending: 0,
                panic: None,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            batch_done: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|i| {
                let shared = std::sync::Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("dbgp-par-{i}"))
                    .spawn(move || loop {
                        {
                            let mut st = shared.lock();
                            while st.jobs.is_empty() && !st.shutdown {
                                st = shared.work_ready.wait(st).unwrap_or_else(|e| e.into_inner());
                            }
                            if st.shutdown && st.jobs.is_empty() {
                                return;
                            }
                        }
                        shared.drain();
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        Pool { shared, workers, threads }
    }

    /// A pool sized by [`configured_threads`].
    pub fn from_env() -> Self {
        Pool::new(configured_threads())
    }

    /// Total threads of compute this pool applies (including the caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run a batch of scoped jobs to completion.
    ///
    /// Blocks until every job has run; a panic from any job is re-raised
    /// here once the batch has fully drained.
    ///
    /// # Safety argument (lifetime erasure)
    ///
    /// Jobs may borrow from the caller's stack (`'scope`), but are stored
    /// as `'static` trait objects so plain `std::thread` workers can hold
    /// them. This is sound because this function does not return until
    /// `pending == 0`, i.e. until every job — including any that borrowed
    /// from the caller — has finished executing. No job outlives the
    /// borrowed data.
    pub fn run_batch<'scope>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
        if jobs.is_empty() {
            return;
        }
        let n = jobs.len();
        {
            let mut st = self.shared.lock();
            debug_assert_eq!(st.pending, 0, "overlapping batches on one pool");
            st.pending = n;
            for job in jobs {
                // SAFETY: see the lifetime-erasure argument above — the
                // barrier below outlives every job.
                let job: Job =
                    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job) };
                st.jobs.push_back(job);
            }
            self.shared.work_ready.notify_all();
        }
        // Participate: the submitting thread is a worker for this batch.
        self.shared.drain();
        let mut st = self.shared.lock();
        while st.pending > 0 {
            st = self.shared.batch_done.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if let Some(payload) = st.panic.take() {
            drop(st);
            panic::resume_unwind(payload);
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.lock();
            st.shutdown = true;
            self.shared.work_ready.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Ordered parallel map: apply `f` to every item, returning results in
/// input order. `f(i, &items[i])` may run on any pool thread.
pub fn par_map<T, R, F>(pool: &Pool, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    if pool.threads() <= 1 || items.len() == 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    {
        let f = &f;
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = slots
            .iter_mut()
            .zip(items.iter())
            .enumerate()
            .map(|(i, (slot, item))| {
                Box::new(move || {
                    *slot = Some(f(i, item));
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_batch(jobs);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("batch barrier guarantees every slot is filled"))
        .collect()
}

/// Ordered parallel map-reduce: like [`par_map`], but the map results are
/// folded left-to-right in input order with `reduce`, starting from
/// `init`. Because the fold runs serially over the ordered results, any
/// non-commutative reduction (string building, first-error-wins) behaves
/// exactly as in a serial loop.
pub fn par_map_reduce<T, R, A, F, G>(pool: &Pool, items: &[T], f: F, init: A, reduce: G) -> A
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
    G: FnMut(A, R) -> A,
{
    par_map(pool, items, f).into_iter().fold(init, reduce)
}

/// The process-wide thread-count default: `DBGP_THREADS` if set to a
/// positive integer, otherwise [`std::thread::available_parallelism`].
/// CLI `--threads` flags override this per invocation.
pub fn configured_threads() -> usize {
    if let Ok(v) = std::env::var("DBGP_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_map_preserves_input_order() {
        let pool = Pool::new(4);
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(&pool, &items, |i, &x| {
            // Skew per-job runtime so completion order differs from
            // submission order.
            let mut acc = x;
            for _ in 0..((100 - i) * 50) {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            let _ = acc;
            (i, x * 2)
        });
        for (i, (idx, doubled)) in out.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*doubled, items[i] * 2);
        }
    }

    #[test]
    fn par_map_matches_serial_map() {
        let pool = Pool::new(3);
        let items: Vec<u32> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|&x| (x as u64) * x as u64 + 7).collect();
        let parallel = par_map(&pool, &items, |_, &x| (x as u64) * x as u64 + 7);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = Pool::new(1);
        assert_eq!(pool.threads(), 1);
        let out = par_map(&pool, &[1, 2, 3], |_, &x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn scoped_borrows_are_visible_after_the_batch() {
        let pool = Pool::new(4);
        let hits = AtomicUsize::new(0);
        let items: Vec<usize> = (0..64).collect();
        let _ = par_map(&pool, &items, |_, _| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn ordered_reduce_is_left_to_right() {
        let pool = Pool::new(4);
        let items: Vec<u32> = (0..20).collect();
        let joined = par_map_reduce(
            &pool,
            &items,
            |_, &x| x.to_string(),
            String::new(),
            |mut acc, s| {
                if !acc.is_empty() {
                    acc.push(',');
                }
                acc.push_str(&s);
                acc
            },
        );
        let expected: Vec<String> = items.iter().map(|x| x.to_string()).collect();
        assert_eq!(joined, expected.join(","));
    }

    #[test]
    fn pool_survives_sequential_batches() {
        let pool = Pool::new(2);
        for round in 0..50 {
            let items: Vec<usize> = (0..8).collect();
            let out = par_map(&pool, &items, |_, &x| x + round);
            assert_eq!(out, items.iter().map(|x| x + round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn job_panic_is_reraised_on_submitter() {
        let pool = Pool::new(4);
        let items: Vec<usize> = (0..16).collect();
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            par_map(&pool, &items, |i, _| {
                if i == 7 {
                    panic!("job 7 failed");
                }
                i
            })
        }));
        assert!(result.is_err());
        // The pool must still be usable after a panicking batch.
        let out = par_map(&pool, &items, |i, _| i);
        assert_eq!(out, items);
    }

    #[test]
    fn configured_threads_is_at_least_one() {
        assert!(configured_threads() >= 1);
    }
}
