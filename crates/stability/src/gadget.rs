//! The gadget fixture library: classic stability gadgets as
//! topology-plus-policy specs reusable by the simulator, the oracle
//! reference model, and the schedule explorer.
//!
//! A [`Gadget`] wraps a differential [`Scenario`] (so the existing
//! [`build_production`] / [`build_reference`] plumbing does the heavy
//! lifting) plus optional per-node path *rankings*. Rankings install
//! the stability override — [`RankedPolicyModule`] in the production
//! simulator, [`RefModule::Ranked`] in the reference model — which
//! replaces baseline BGP selection with an explicit path preference
//! list, exactly the policy freedom the Stable Paths Problem gadgets
//! (Griffin–Shepherd–Wilfong) exploit.
//!
//! Node 0 is always the origin. AS numbers follow the differential
//! harness's `10 + 7·i` convention, so the committed
//! `eqbgp-legacy-livelock` fixture promotes into the catalog with the
//! same ASNs it was shrunk with.

use dbgp_oracle::scenario::{apply_fault_production, apply_fault_reference};
use dbgp_oracle::{
    build_production, build_reference, scenario_from_json, Fault, IslandSpec, NodeSpec, RefModule,
    RefNet, Scenario,
};
use dbgp_protocols::RankedPolicyModule;
use dbgp_sim::Sim;
use dbgp_topology::wheel_edges;
use dbgp_wire::{Ipv4Prefix, ProtocolId};
use std::str::FromStr;

/// Island ID shared by every protocol-bearing gadget node (matches the
/// differential fixtures, which use island 900).
pub const GADGET_ISLAND: u32 = 900;

/// The prefix every gadget originates (the differential fixtures'
/// prefix, so promoted fixtures keep their exact wire images).
pub fn gadget_prefix() -> Ipv4Prefix {
    Ipv4Prefix::from_str("128.6.0.0/16").expect("literal prefix parses")
}

/// AS number of gadget node `i` — the differential harness convention.
pub fn gadget_asn(i: usize) -> u32 {
    10 + 7 * i as u32
}

/// A stability gadget: one named topology + policy instance, run under
/// one protocol variant.
#[derive(Debug, Clone)]
pub struct Gadget {
    /// Gadget name (`bad-gadget`, `disagree`, `wheel-5`, ...).
    pub name: String,
    /// Protocol variant label (`ranked`, `bgp`, `wiser`, `hlp`,
    /// `eqbgp`).
    pub protocol: &'static str,
    /// The underlying differential scenario (topology, islands,
    /// originations, fault plan).
    pub scenario: Scenario,
    /// Per-node ranked-path overrides: `Some(prefs)` registers the
    /// stability ranking module on that node; AS-path sequences, most
    /// preferred first.
    pub rankings: Vec<Option<Vec<Vec<u32>>>>,
}

impl Gadget {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.scenario.nodes.len()
    }

    /// AS number of node `i`.
    pub fn asn(&self, i: usize) -> u32 {
        self.scenario.nodes[i].asn
    }

    /// Origin node index (first origination).
    pub fn origin(&self) -> usize {
        self.scenario.originations[0].0
    }

    /// Whether the (undirected) link `a`–`b` exists, and if so whether
    /// it speaks D-BGP (`false` = legacy BGP session: island
    /// descriptors are stripped in transit).
    pub fn link(&self, a: usize, b: usize) -> Option<bool> {
        self.scenario
            .links
            .iter()
            .find(|&&(x, y, _)| (x, y) == (a, b) || (x, y) == (b, a))
            .map(|&(_, _, dbgp)| dbgp)
    }

    /// Up-front neighbor list of node `i` (faults not applied).
    pub fn neighbors(&self, i: usize) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .scenario
            .links
            .iter()
            .filter_map(|&(a, b, _)| {
                if a == i {
                    Some(b)
                } else if b == i {
                    Some(a)
                } else {
                    None
                }
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Build the oracle reference network, register ranking overrides,
    /// and apply the originations (pending frames are queued, nothing
    /// is delivered yet).
    pub fn build_ref(&self) -> RefNet {
        let mut net = build_reference(&self.scenario);
        for (i, prefs) in self.rankings.iter().enumerate() {
            if let Some(prefs) = prefs {
                net.speaker_mut(i).register_module(RefModule::Ranked { prefs: prefs.clone() });
            }
        }
        for &(node, prefix) in &self.scenario.originations {
            net.originate(node, prefix);
        }
        net
    }

    /// Build the production simulator (MRAI 0, uniform link delay),
    /// register ranking overrides, and apply the originations.
    pub fn build_sim(&self) -> Sim {
        let mut sim = build_production(&self.scenario);
        for (i, prefs) in self.rankings.iter().enumerate() {
            if let Some(prefs) = prefs {
                sim.speaker_mut(i)
                    .register_module(Box::new(RankedPolicyModule::with_prefs(prefs.clone())));
            }
        }
        for &(node, prefix) in &self.scenario.originations {
            sim.originate(node, prefix);
        }
        sim
    }

    /// Apply fault `f` to a reference network built from this gadget.
    pub fn apply_fault_ref(&self, net: &mut RefNet, f: &Fault) {
        apply_fault_reference(net, f);
    }

    /// Apply fault `f` to a simulator built from this gadget.
    pub fn apply_fault_sim(&self, sim: &mut Sim, f: &Fault) {
        apply_fault_production(sim, f);
    }
}

/// AS-path sequence for the node path `hops` (first hop first).
fn asns(hops: &[usize]) -> Vec<u32> {
    hops.iter().map(|&i| gadget_asn(i)).collect()
}

fn protocol_spec(protocol: &str) -> Option<IslandSpec> {
    let id = match protocol {
        "ranked" | "bgp" => return None,
        "wiser" => ProtocolId::WISER.0,
        "eqbgp" => ProtocolId::EQBGP.0,
        "hlp" => ProtocolId::HLP.0,
        other => panic!("unknown gadget protocol variant {other:?}"),
    };
    Some(IslandSpec { id: GADGET_ISLAND, abstraction: false, protocol: id })
}

/// Build a wheel-topology gadget: spokes `(0, i)` and a rim ring, with
/// per-variant policies. For the `ranked` variant, `ring_prefs` picks
/// between prefer-clockwise (the dispute wheel) and prefer-direct
/// (wheel-free) rankings.
fn wheel_gadget(name: &str, k: usize, protocol: &'static str, prefer_ring: bool) -> Gadget {
    let spec = protocol_spec(protocol);
    let nodes: Vec<NodeSpec> =
        (0..=k).map(|i| NodeSpec { asn: gadget_asn(i), island: spec }).collect();
    let links: Vec<(usize, usize, bool)> =
        wheel_edges(k).into_iter().map(|(a, b)| (a, b, true)).collect();
    let rankings: Vec<Option<Vec<Vec<u32>>>> = if protocol == "ranked" {
        (0..=k)
            .map(|i| {
                if i == 0 {
                    None
                } else {
                    let next = if i == k { 1 } else { i + 1 };
                    let ring = asns(&[next, 0]);
                    let direct = asns(&[0]);
                    let prefs = if prefer_ring { vec![ring, direct] } else { vec![direct, ring] };
                    Some(prefs)
                }
            })
            .collect()
    } else {
        vec![None; k + 1]
    };
    Gadget {
        name: name.to_string(),
        protocol,
        scenario: Scenario {
            nodes,
            links,
            originations: vec![(0, gadget_prefix())],
            faults: vec![],
        },
        rankings,
    }
}

/// BAD-GADGET: the size-3 dispute wheel with prefer-clockwise rankings.
/// No stable path assignment exists; every schedule diverges.
pub fn bad_gadget(protocol: &'static str) -> Gadget {
    wheel_gadget("bad-gadget", 3, protocol, true)
}

/// GOOD-GADGET: the same 3-ring topology with prefer-direct rankings —
/// dispute-wheel-free, converges on every schedule.
pub fn good_gadget(protocol: &'static str) -> Gadget {
    wheel_gadget("good-gadget", 3, protocol, false)
}

/// DISAGREE: two rim nodes each preferring the path through the other.
/// A dispute wheel exists, but so do two stable states; which one (if
/// any) a run reaches depends on the schedule. Under the global-FIFO
/// schedule the perfectly symmetric message race recurs forever.
pub fn disagree(protocol: &'static str) -> Gadget {
    wheel_gadget("disagree", 2, protocol, true)
}

/// Parametric dispute wheel of size `k` with prefer-clockwise rankings
/// (`wheel(3, _)` is BAD-GADGET, `wheel(2, _)` DISAGREE).
pub fn wheel(k: usize, protocol: &'static str) -> Gadget {
    wheel_gadget(&format!("wheel-{k}"), k, protocol, true)
}

/// The BGP-wedgie gadget (RFC 4264 in miniature): origin 0 is
/// multihomed to a backup provider 1 and a primary provider 2, both
/// reaching an upstream 3. Node 1 treats its customer link as backup
/// (prefers the long route via the upstream); node 3 prefers the
/// route via 1. Flapping the backup link `0`–`1` returns the topology
/// to its initial shape, but routing latches onto the other stable
/// state — 1 never falls back to its direct link once the upstream
/// route exists. Every phase converges under the global-FIFO
/// schedule, so the hysteresis is deterministic.
pub fn wedgie() -> Gadget {
    let nodes: Vec<NodeSpec> =
        (0..4).map(|i| NodeSpec { asn: gadget_asn(i), island: None }).collect();
    let links = vec![(0, 1, true), (0, 2, true), (1, 3, true), (2, 3, true)];
    let rankings = vec![
        None,
        // 1: backup semantics — prefer the upstream route, use the
        // direct customer link only as a last resort.
        Some(vec![asns(&[3, 2, 0]), asns(&[0])]),
        // 2: primary — prefer the direct customer link.
        Some(vec![asns(&[0]), asns(&[3, 1, 0])]),
        // 3: prefer the route via the backup provider.
        Some(vec![asns(&[1, 0]), asns(&[2, 0])]),
    ];
    Gadget {
        name: "wedgie".to_string(),
        protocol: "ranked",
        scenario: Scenario {
            nodes,
            links,
            originations: vec![(0, gadget_prefix())],
            faults: vec![Fault::LinkDown(0, 1), Fault::LinkRestore(0, 1)],
        },
        rankings,
    }
}

/// The committed differential fixture, promoted into the gadget
/// library: three EQ-BGP islanders whose `0`–`2` link is a legacy BGP
/// session. The stripped bandwidth descriptor makes node 2 score its
/// direct route 0 while scoring the route *through* node 1 at 100, and
/// node 1 score the route through node 2 at 500 — a size-2 dispute
/// wheel the differential harness caught livelocking (PR 4).
pub fn eqbgp_legacy_livelock(protocol: &'static str) -> Gadget {
    let raw = include_str!("../../oracle/fixtures/eqbgp-legacy-livelock.json");
    let value = serde_json::from_str(raw).expect("fixture is valid JSON");
    let mut scenario = scenario_from_json(&value).expect("fixture is a valid scenario");
    if protocol == "bgp" {
        for node in &mut scenario.nodes {
            node.island = None;
        }
    } else {
        assert_eq!(protocol, "eqbgp", "fixture variants: eqbgp (native) or bgp (baseline)");
    }
    let n = scenario.nodes.len();
    Gadget {
        name: "eqbgp-legacy-livelock".to_string(),
        protocol,
        scenario,
        rankings: vec![None; n],
    }
}

/// The full catalog: every gadget × protocol case the stability table
/// reports on.
pub fn catalog() -> Vec<Gadget> {
    vec![
        good_gadget("ranked"),
        good_gadget("bgp"),
        good_gadget("wiser"),
        good_gadget("hlp"),
        bad_gadget("ranked"),
        bad_gadget("bgp"),
        bad_gadget("wiser"),
        bad_gadget("hlp"),
        disagree("ranked"),
        disagree("bgp"),
        disagree("eqbgp"),
        wedgie(),
        wheel(4, "ranked"),
        wheel(4, "bgp"),
        wheel(5, "ranked"),
        wheel(5, "bgp"),
        eqbgp_legacy_livelock("eqbgp"),
        eqbgp_legacy_livelock("bgp"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_required_breadth() {
        let cases = catalog();
        let gadgets: std::collections::BTreeSet<&str> =
            cases.iter().map(|g| g.name.as_str()).collect();
        let protocols: std::collections::BTreeSet<&str> =
            cases.iter().map(|g| g.protocol).collect();
        assert!(gadgets.len() >= 5, "need at least 5 gadgets, have {gadgets:?}");
        assert!(protocols.len() >= 3, "need at least 3 protocols, have {protocols:?}");
    }

    #[test]
    fn fixture_promotes_with_original_asns() {
        let g = eqbgp_legacy_livelock("eqbgp");
        assert_eq!(g.node_count(), 3);
        assert_eq!((g.asn(0), g.asn(1), g.asn(2)), (10, 17, 24));
        assert_eq!(g.link(0, 2), Some(false), "the 0-2 link is the legacy session");
        assert_eq!(g.link(0, 1), Some(true));
    }

    #[test]
    fn ranked_gadgets_rank_received_paths() {
        let g = bad_gadget("ranked");
        // Node 1 prefers the clockwise route through node 2.
        assert_eq!(
            g.rankings[1].as_ref().unwrap(),
            &vec![vec![gadget_asn(2), gadget_asn(0)], vec![gadget_asn(0)]]
        );
    }

    #[test]
    fn builders_mirror_each_other() {
        for g in [bad_gadget("ranked"), disagree("eqbgp"), good_gadget("wiser")] {
            let net = g.build_ref();
            let sim = g.build_sim();
            assert_eq!(net.node_count(), sim.node_count());
            assert!(net.pending() > 0, "{}: originations queued frames", g.name);
        }
    }
}
