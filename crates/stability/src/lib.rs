#![warn(missing_docs)]

//! dbgp-stability: the stability gadget suite (DESIGN.md §14).
//!
//! D-BGP lets islands deploy protocols whose selection rules are *not*
//! shortest-path — and arbitrary path preferences are exactly what
//! makes BGP divergence possible (the Stable Paths Problem,
//! Griffin–Shepherd–Wilfong). This crate closes the loop between that
//! theory and the workspace's three execution engines:
//!
//! * [`gadget`] — the fixture library: BAD-GADGET, GOOD-GADGET,
//!   DISAGREE, the RFC 4264 wedgie, parametric dispute wheels of size
//!   `k`, and the promoted `eqbgp-legacy-livelock` differential
//!   fixture, each as a topology + per-node decision-process spec
//!   buildable into a production [`dbgp_sim::Sim`], an oracle
//!   [`dbgp_oracle::RefNet`], or the schedule explorer;
//! * [`detect`] — a static dispute-wheel detector over the concrete
//!   policy rank functions (ranked overrides, baseline BGP, Wiser,
//!   HLP, EQ-BGP with legacy-link descriptor loss);
//! * [`classify`] — the outcome classifier: global-FIFO runs with
//!   sound recurrent-state-cycle detection, a seeded-random schedule
//!   pool, the schedule explorer, and a production-simulator
//!   cross-check, folded into `converge` / `stable-oscillation` /
//!   `livelock` / `unknown` labels;
//! * [`table`] — prediction vs. observation for every gadget ×
//!   protocol case, rendered as the deterministic, CI-gated
//!   `results/stability.json`.
//!
//! The contract is one-sided, as the theory is: `safe` (no wheel) is
//! a hard guarantee and any divergence fails the table; a
//! `dispute-wheel` prediction is conservative, and rows that converge
//! anyway must be on the documented allowlist.

pub mod classify;
pub mod detect;
pub mod gadget;
pub mod table;

pub use classify::{capture_tail_period, classify, ClassifyConfig, Observation, Outcome};
pub use detect::{predict, Prediction};
pub use gadget::{
    bad_gadget, catalog, disagree, eqbgp_legacy_livelock, gadget_asn, gadget_prefix, good_gadget,
    wedgie, wheel, Gadget, GADGET_ISLAND,
};
pub use table::{build_row, render_json, row_consistent, Row, CONSERVATIVE_OK};
