//! The stability table: one row per gadget × protocol case, with the
//! static prediction checked against the observed dynamics, rendered
//! as deterministic JSON for `results/stability.json`.

use crate::classify::{classify, ClassifyConfig, Observation, Outcome};
use crate::detect::{predict, Prediction};
use crate::gadget::Gadget;
use serde_json::{json, Value};

/// Dispute-wheel rows that are *allowed* to converge: the wheel is
/// real, but a stable state exists and the run falls into it. Each
/// entry is documented in DESIGN.md §14 / EXPERIMENTS.md.
///
/// * `wedgie × ranked` — the RFC 4264 hysteresis gadget: every phase
///   converges; the wheel shows up as *which* stable state you land
///   in, not as divergence.
/// * `disagree × *` and `wheel-{2k} × ranked` — even wheels have
///   stable states; schedules that break the symmetric race converge.
///   (Under the global-FIFO schedule the symmetric race recurs, so
///   these usually observe `livelock` anyway; the entries cover
///   budget variations.)
pub const CONSERVATIVE_OK: &[(&str, &str)] =
    &[("wedgie", "ranked"), ("disagree", "ranked"), ("wheel-4", "ranked")];

/// One stability-table row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Gadget name.
    pub gadget: String,
    /// Protocol variant label.
    pub protocol: &'static str,
    /// The static prediction.
    pub prediction: Prediction,
    /// Everything the dynamic probes observed.
    pub observation: Observation,
    /// Whether prediction and observation are consistent under the
    /// one-sided contract (see [`row_consistent`]).
    pub consistent: bool,
    /// Dispute-wheel row that converged anyway (documented, allowed).
    pub conservative: bool,
}

/// The one-sided consistency contract:
///
/// * `safe` is a guarantee — the row must converge, every pool
///   schedule must quiesce, and the explorer (when run) must come
///   back clean;
/// * `dispute-wheel` predicts *possible* divergence — observed
///   livelock or stable oscillation confirms it, and observed
///   convergence is acceptable only for the documented
///   [`CONSERVATIVE_OK`] rows.
///
/// Returns `(consistent, conservative)`.
pub fn row_consistent(g: &Gadget, prediction: Prediction, obs: &Observation) -> (bool, bool) {
    match prediction {
        Prediction::Safe => {
            let converged = obs.outcome == Outcome::Converge;
            let pool_clean = obs.pool_quiesced == obs.pool_schedules;
            let explorer_clean = matches!(obs.explorer, "quiesced" | "skipped");
            let sim_clean = obs.sim_agrees != Some(false);
            (converged && pool_clean && explorer_clean && sim_clean, false)
        }
        Prediction::DisputeWheel => match obs.outcome {
            Outcome::Livelock | Outcome::StableOscillation => {
                (obs.sim_agrees != Some(false), false)
            }
            Outcome::Converge => {
                let allowed = CONSERVATIVE_OK
                    .iter()
                    .any(|&(name, proto)| name == g.name && proto == g.protocol);
                (allowed && obs.sim_agrees != Some(false), true)
            }
            Outcome::Unknown => (false, false),
        },
    }
}

/// Build one row: predict, observe, check.
pub fn build_row(g: &Gadget, cfg: &ClassifyConfig) -> Row {
    let prediction = predict(g);
    let observation = classify(g, cfg);
    let (consistent, conservative) = row_consistent(g, prediction, &observation);
    Row {
        gadget: g.name.clone(),
        protocol: g.protocol,
        prediction,
        observation,
        consistent,
        conservative,
    }
}

fn opt_u64(v: Option<u64>) -> Value {
    match v {
        Some(v) => json!(v),
        None => Value::Null,
    }
}

fn opt_bool(v: Option<bool>) -> Value {
    match v {
        Some(v) => json!(v),
        None => Value::Null,
    }
}

/// Render rows (sorted by gadget, then protocol) into the
/// `results/stability.json` document. Pure function of the rows, so
/// the bytes are identical at any thread count.
pub fn render_json(rows: &[Row], quick: bool) -> Value {
    let mut rows: Vec<&Row> = rows.iter().collect();
    rows.sort_by(|a, b| (&a.gadget, a.protocol).cmp(&(&b.gadget, b.protocol)));
    let gadgets: std::collections::BTreeSet<&str> =
        rows.iter().map(|r| r.gadget.as_str()).collect();
    let protocols: std::collections::BTreeSet<&str> = rows.iter().map(|r| r.protocol).collect();
    let json_rows: Vec<Value> = rows
        .iter()
        .map(|r| {
            let o = &r.observation;
            json!({
                "gadget": r.gadget,
                "protocol": r.protocol,
                "prediction": r.prediction.label(),
                "observed": o.outcome.label(),
                "consistent": r.consistent,
                "conservative": r.conservative,
                "cycle_length": opt_u64(o.cycle_length),
                "preperiod": opt_u64(o.preperiod),
                "routing_changes": opt_u64(o.routing_changes),
                "fifo_deliveries": opt_u64(o.fifo_deliveries),
                "schedules_explored": 1 + o.pool_schedules + o.explorer_schedules,
                "pool_quiesced": o.pool_quiesced,
                "explorer": o.explorer,
                "wedged": opt_bool(o.wedged),
                "sim_agrees": opt_bool(o.sim_agrees),
                "sim_tail_period": opt_u64(o.sim_tail_period),
            })
        })
        .collect();
    json!({
        "schema": "dbgp-stability/v1",
        "quick": quick,
        "gadget_count": gadgets.len(),
        "protocol_count": protocols.len(),
        "rows": json_rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadget::{bad_gadget, good_gadget};

    #[test]
    fn safe_rows_hard_assert_convergence() {
        let cfg = ClassifyConfig::quick();
        let row = build_row(&good_gadget("bgp"), &cfg);
        assert_eq!(row.prediction, Prediction::Safe);
        assert!(row.consistent);
        assert!(!row.conservative);
    }

    #[test]
    fn known_divergent_gadget_is_never_reported_converged() {
        let cfg = ClassifyConfig::quick();
        let row = build_row(&bad_gadget("ranked"), &cfg);
        assert_eq!(row.prediction, Prediction::DisputeWheel);
        assert_eq!(row.observation.outcome, Outcome::Livelock);
        assert_ne!(row.observation.outcome.label(), "converge");
        assert!(row.consistent);
    }

    #[test]
    fn render_is_sorted_and_counts_coverage() {
        let cfg = ClassifyConfig::quick();
        let rows =
            vec![build_row(&good_gadget("bgp"), &cfg), build_row(&bad_gadget("ranked"), &cfg)];
        let doc = render_json(&rows, true);
        let out = doc.get("rows").unwrap().as_array().unwrap();
        assert_eq!(out[0].get("gadget"), Some(&json!("bad-gadget")));
        assert_eq!(out[1].get("gadget"), Some(&json!("good-gadget")));
        assert_eq!(doc.get("schema"), Some(&json!("dbgp-stability/v1")));
    }
}
