//! The outcome classifier: run a gadget's dynamics and label them
//! `converge`, `stable-oscillation`, `livelock`, or `unknown`.
//!
//! Three independent probes feed one [`Observation`]:
//!
//! 1. **Global-FIFO with state-cycle detection**
//!    ([`dbgp_oracle::run_fifo_classified`]) — the primary label. A
//!    recurrent global state is a *proof* of divergence, and the
//!    routing digest inside the cycle separates livelock (best paths
//!    flap forever) from stable oscillation (only message state
//!    churns).
//! 2. **Seeded-random schedule pool** (the PR 5 style `TestRng`
//!    schedules) — how many of N random interleavings quiesce. A
//!    dispute wheel with stable states (DISAGREE) livelocks under the
//!    symmetric FIFO race yet quiesces under almost every random
//!    schedule; the pool records that texture.
//! 3. **The PR 4 schedule explorer** ([`dbgp_oracle::explore`]) —
//!    exhaustive over the first deliveries, with routing invariants
//!    checked at every quiescent end state. For `safe`-predicted rows
//!    the explorer must come back clean.
//!
//! A production-simulator cross-check replays the same gadget on the
//! event-driven engine (uniform delay, MRAI 0 — delivery order equals
//! global send order) and asserts it agrees with the FIFO label; for
//! livelocks, the bounded best-route capture exposes the periodic tail.
//!
//! Gadgets with fault plans (the wedgie) are classified per quiescent
//! phase under a deterministically chosen seeded schedule, and the
//! observation records whether the final routing state differs from
//! the pre-fault one (`wedged`) even though the topology is back to
//! its initial shape.

use crate::gadget::Gadget;
use dbgp_oracle::scenario::LINK_DELAY;
use dbgp_oracle::{
    check_routing_invariants, explore, run_fifo_classified, ExplorerConfig, FifoOutcome, RefNet,
};
use dbgp_sim::BestChange;
use proptest::test_runner::TestRng;

/// The observed stability class of one gadget run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Every probe quiesced.
    Converge,
    /// A recurrent global-state cycle with no routing changes inside
    /// it: messages churn forever, best paths do not.
    StableOscillation,
    /// A recurrent global-state cycle in which best paths flap.
    Livelock,
    /// Budget ran out with no proof either way.
    Unknown,
}

impl Outcome {
    /// Stable table label.
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::Converge => "converge",
            Outcome::StableOscillation => "stable-oscillation",
            Outcome::Livelock => "livelock",
            Outcome::Unknown => "unknown",
        }
    }
}

/// Classifier budgets.
#[derive(Debug, Clone, Copy)]
pub struct ClassifyConfig {
    /// Delivery budget for the FIFO cycle-detection probe.
    pub fifo_budget: u64,
    /// Seeded-random schedules in the pool sweep.
    pub pool_seeds: u64,
    /// Per-schedule delivery budget in the pool sweep.
    pub pool_budget: u64,
    /// Explorer bounds (exhaustive prefix + random tail schedules).
    pub explorer: ExplorerConfig,
    /// Simulated-time ceiling for the production cross-check.
    pub sim_horizon: u64,
    /// Best-route capture ring size for the production cross-check.
    pub sim_capture: usize,
}

impl ClassifyConfig {
    /// Full budgets — what the committed `results/stability.json` uses.
    pub fn full() -> Self {
        ClassifyConfig {
            fifo_budget: 2_500,
            pool_seeds: 64,
            pool_budget: 2_500,
            explorer: ExplorerConfig {
                branch_depth: 4,
                random_schedules: 64,
                max_deliveries: 2_500,
            },
            sim_horizon: 60_000,
            sim_capture: 256,
        }
    }

    /// Reduced budgets for the CI smoke job. Labels must not change —
    /// only coverage counts do.
    pub fn quick() -> Self {
        ClassifyConfig {
            fifo_budget: 800,
            pool_seeds: 16,
            pool_budget: 800,
            explorer: ExplorerConfig { branch_depth: 3, random_schedules: 16, max_deliveries: 800 },
            sim_horizon: 60_000,
            sim_capture: 128,
        }
    }
}

/// Everything the probes observed about one gadget run.
#[derive(Debug, Clone)]
pub struct Observation {
    /// The primary label.
    pub outcome: Outcome,
    /// FIFO deliveries to quiescence (convergent runs only).
    pub fifo_deliveries: Option<u64>,
    /// Proven state-cycle length in deliveries (divergent runs only).
    pub cycle_length: Option<u64>,
    /// Deliveries before the cycle is entered.
    pub preperiod: Option<u64>,
    /// Routing (Loc-RIB/FIB) changes within one cycle.
    pub routing_changes: Option<u64>,
    /// Seeded-random schedules attempted.
    pub pool_schedules: u64,
    /// How many of them quiesced within budget.
    pub pool_quiesced: u64,
    /// Explorer verdict: `quiesced`, `proven-oscillation`,
    /// `budget-exhausted`, `invariant-violation`, or `skipped`
    /// (fault-plan gadgets).
    pub explorer: &'static str,
    /// Schedules the explorer checked (0 unless `quiesced`).
    pub explorer_schedules: u64,
    /// Fault-plan gadgets: does the final routing state differ from
    /// the pre-fault one although the topology is restored?
    pub wedged: Option<bool>,
    /// Production simulator agreement with the FIFO label.
    pub sim_agrees: Option<bool>,
    /// Period of the production best-route capture tail (livelocks).
    pub sim_tail_period: Option<u64>,
}

/// Deliver frames in a seeded-random order until quiescence or budget.
/// Returns `Some(deliveries)` on quiescence.
fn random_run(net: &mut RefNet, rng: &mut TestRng, budget: u64) -> Option<u64> {
    let mut delivered = 0u64;
    while net.pending() > 0 {
        if delivered >= budget {
            return None;
        }
        let links = net.deliverable();
        let (from, to) = links[rng.below(links.len() as u64) as usize];
        net.deliver_from(from, to);
        delivered += 1;
    }
    Some(delivered)
}

/// Smallest period of the capture tail: the last `2p` records must
/// repeat with shift `p` in `(node, prefix, installed, next)` —
/// timestamps advance, the flap pattern does not.
pub fn capture_tail_period(records: &[BestChange]) -> Option<u64> {
    let eq = |a: &BestChange, b: &BestChange| {
        a.node == b.node && a.prefix == b.prefix && a.installed == b.installed && a.next == b.next
    };
    for p in 1..=records.len() / 2 {
        let tail = &records[records.len() - 2 * p..];
        if (0..p).all(|i| eq(&tail[i], &tail[i + p])) {
            return Some(p as u64);
        }
    }
    None
}

fn pool_sweep(base: &RefNet, cfg: &ClassifyConfig) -> (u64, u64) {
    let mut quiesced = 0u64;
    for seed in 0..cfg.pool_seeds {
        let mut net = base.clone();
        let mut rng = TestRng::for_case("stability-pool", seed);
        if random_run(&mut net, &mut rng, cfg.pool_budget).is_some() {
            quiesced += 1;
        }
    }
    (cfg.pool_seeds, quiesced)
}

/// Classify a gadget with a fault plan: every phase (the initial
/// bring-up and each fault) runs to quiescence under the global-FIFO
/// schedule, and the observation records whether the final routing
/// state differs from the pre-fault one (`wedged`). A fault-pair plan
/// restores the topology exactly, so a wedge is pure hysteresis. The
/// production simulator replays the identical phase sequence and must
/// agree on quiescence.
fn classify_faulted(g: &Gadget, cfg: &ClassifyConfig) -> Observation {
    let base = g.build_ref();
    let (pool_schedules, pool_quiesced) = pool_sweep(&base, cfg);

    let mut net = base;
    let mut outcome = Outcome::Converge;
    let mut fifo_total = 0u64;
    let mut cycle = (None, None, None);
    let mut phases_done = 0usize;
    let mut before = String::new();
    for phase in 0..=g.scenario.faults.len() {
        if phase > 0 {
            g.apply_fault_ref(&mut net, &g.scenario.faults[phase - 1]);
        }
        match run_fifo_classified(&mut net, cfg.fifo_budget) {
            FifoOutcome::Quiesced { deliveries } => fifo_total += deliveries,
            FifoOutcome::Oscillation { preperiod, period, routing_changes } => {
                outcome = if routing_changes > 0 {
                    Outcome::Livelock
                } else {
                    Outcome::StableOscillation
                };
                cycle = (Some(period), Some(preperiod), Some(routing_changes));
                break;
            }
            FifoOutcome::BudgetExhausted { .. } => {
                outcome = Outcome::Unknown;
                break;
            }
        }
        phases_done = phase + 1;
        if phase == 0 {
            before = net.routing_digest();
        }
    }
    let all_phases = phases_done == g.scenario.faults.len() + 1;
    let wedged = if all_phases && outcome == Outcome::Converge {
        Some(net.routing_digest() != before)
    } else {
        None
    };

    // Production replay of the same phase sequence.
    let mut sim = g.build_sim();
    let mut horizon = cfg.sim_horizon;
    sim.run(horizon);
    let mut sim_quiesced = sim.pending_events() == 0;
    for fault in &g.scenario.faults {
        g.apply_fault_sim(&mut sim, fault);
        horizon += cfg.sim_horizon;
        sim.run(horizon);
        sim_quiesced &= sim.pending_events() == 0;
    }
    let sim_agrees = match outcome {
        Outcome::Converge => Some(sim_quiesced),
        Outcome::Livelock | Outcome::StableOscillation => Some(!sim_quiesced),
        Outcome::Unknown => None,
    };

    Observation {
        outcome,
        fifo_deliveries: if all_phases && outcome == Outcome::Converge {
            Some(fifo_total)
        } else {
            None
        },
        cycle_length: cycle.0,
        preperiod: cycle.1,
        routing_changes: cycle.2,
        pool_schedules,
        pool_quiesced,
        explorer: "skipped",
        explorer_schedules: 0,
        wedged,
        sim_agrees,
        sim_tail_period: None,
    }
}

/// Run every probe on one gadget and fold the results.
pub fn classify(g: &Gadget, cfg: &ClassifyConfig) -> Observation {
    if !g.scenario.faults.is_empty() {
        return classify_faulted(g, cfg);
    }

    let base = g.build_ref();

    // Probe 1: global FIFO with sound state-cycle detection.
    let mut fifo_net = base.clone();
    let fifo = run_fifo_classified(&mut fifo_net, cfg.fifo_budget);
    let (outcome, fifo_deliveries, cycle_length, preperiod, routing_changes) = match fifo {
        FifoOutcome::Quiesced { deliveries } => {
            (Outcome::Converge, Some(deliveries), None, None, None)
        }
        FifoOutcome::Oscillation { preperiod, period, routing_changes } => {
            let outcome =
                if routing_changes > 0 { Outcome::Livelock } else { Outcome::StableOscillation };
            (outcome, None, Some(period), Some(preperiod), Some(routing_changes))
        }
        FifoOutcome::BudgetExhausted { .. } => (Outcome::Unknown, None, None, None, None),
    };

    // Probe 2: the seeded-random schedule pool.
    let (pool_schedules, pool_quiesced) = pool_sweep(&base, cfg);

    // Probe 3: the schedule explorer with routing invariants.
    let origins = &g.scenario.originations;
    let (explorer, explorer_schedules) =
        match explore(&base, &cfg.explorer, &|net| check_routing_invariants(net, origins)) {
            Ok(report) => ("quiesced", report.schedules),
            Err(e) if e.contains("proven oscillation") => ("proven-oscillation", 0),
            Err(e) if e.contains("budget exhausted") => ("budget-exhausted", 0),
            Err(_) => ("invariant-violation", 0),
        };

    // Cross-check: the production simulator on the same gadget. With
    // uniform delay and MRAI 0 its delivery order equals global send
    // order, so it must agree with the FIFO label.
    let mut sim = g.build_sim();
    sim.capture_best_changes(cfg.sim_capture);
    sim.run(cfg.sim_horizon);
    let sim_quiesced = sim.pending_events() == 0;
    let (sim_agrees, sim_tail_period) = match outcome {
        Outcome::Converge => ((Some(sim_quiesced)), None),
        Outcome::Livelock | Outcome::StableOscillation => {
            let tail =
                if sim_quiesced { None } else { capture_tail_period(&sim.captured_changes()) };
            (Some(!sim_quiesced), tail)
        }
        Outcome::Unknown => (None, None),
    };

    Observation {
        outcome,
        fifo_deliveries,
        cycle_length,
        preperiod,
        routing_changes,
        pool_schedules,
        pool_quiesced,
        explorer,
        explorer_schedules,
        wedged: None,
        sim_agrees,
        sim_tail_period,
    }
}

/// Simulated-time horizon equivalent of `deliveries` FIFO steps.
pub fn horizon_for(deliveries: u64) -> u64 {
    deliveries.saturating_mul(2 * LINK_DELAY)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadget::{bad_gadget, disagree, good_gadget, wedgie};

    fn cfg() -> ClassifyConfig {
        ClassifyConfig::quick()
    }

    #[test]
    fn good_gadget_converges_everywhere() {
        let obs = classify(&good_gadget("ranked"), &cfg());
        assert_eq!(obs.outcome, Outcome::Converge);
        assert_eq!(obs.pool_quiesced, obs.pool_schedules);
        assert_eq!(obs.explorer, "quiesced");
        assert_eq!(obs.sim_agrees, Some(true));
    }

    #[test]
    fn bad_gadget_livelocks_with_a_proven_cycle() {
        let obs = classify(&bad_gadget("ranked"), &cfg());
        assert_eq!(obs.outcome, Outcome::Livelock);
        assert!(obs.cycle_length.unwrap() > 0);
        assert!(obs.routing_changes.unwrap() > 0);
        assert_eq!(obs.pool_quiesced, 0, "no schedule stabilizes BAD-GADGET");
        assert_eq!(obs.explorer, "proven-oscillation");
        assert_eq!(obs.sim_agrees, Some(true), "production engine flaps forever too");
        assert!(obs.sim_tail_period.is_some(), "capture tail is periodic");
    }

    #[test]
    fn disagree_livelocks_under_fifo_but_random_schedules_settle() {
        let obs = classify(&disagree("ranked"), &cfg());
        assert_eq!(obs.outcome, Outcome::Livelock, "the symmetric FIFO race recurs");
        assert!(obs.pool_quiesced > 0, "random schedules break the symmetry");
    }

    #[test]
    fn wedgie_converges_per_phase_and_latches() {
        let obs = classify(&wedgie(), &cfg());
        assert_eq!(obs.outcome, Outcome::Converge);
        assert_eq!(obs.wedged, Some(true), "flap returns topology, not routing");
    }
}
