//! Regenerates the stability table: every gadget × protocol case in
//! the catalog is predicted (static dispute-wheel detection), observed
//! (FIFO cycle detection, seeded schedule pool, schedule explorer,
//! production cross-check), and checked for consistency.
//!
//! Usage: `stability_table [--quick] [--threads N] [--out PATH]` —
//! default output `results/stability.json`. Rows are sealed
//! deterministic units fanned out across the worker pool and reduced
//! in catalog order, then sorted by (gadget, protocol) before
//! rendering: the output is byte-identical at any thread count.
//! Exits non-zero if any row is inconsistent, so CI gates on the
//! prediction-vs-observation contract, not just on the file's shape.

use dbgp_stability::{build_row, catalog, render_json, ClassifyConfig, Row};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut quick = false;
    let mut threads = dbgp_par::configured_threads();
    let mut out_path = String::from("results/stability.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs a positive integer");
            }
            "--out" => out_path = args.next().expect("--out needs a path"),
            other => panic!("unknown argument {other:?} (try --quick / --threads N / --out PATH)"),
        }
    }
    let cfg = if quick { ClassifyConfig::quick() } else { ClassifyConfig::full() };

    let cases = catalog();
    let pool = dbgp_par::Pool::new(threads.max(1));
    let rows: Vec<Row> = dbgp_par::par_map(&pool, &cases, |_, g| build_row(g, &cfg));

    let mut failures = 0usize;
    for row in &rows {
        let o = &row.observation;
        println!(
            "{:<22} {:<8} predicted={:<13} observed={:<18} {}{}",
            row.gadget,
            row.protocol,
            row.prediction.label(),
            o.outcome.label(),
            if row.consistent { "ok" } else { "INCONSISTENT" },
            if row.conservative { " (conservative)" } else { "" },
        );
        if !row.consistent {
            failures += 1;
        }
    }

    let doc = render_json(&rows, quick);
    let rendered = serde_json::to_string_pretty(&doc).expect("table serializes");
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    std::fs::write(&out_path, rendered + "\n").expect("write stability table");
    println!("wrote {out_path} ({} rows)", rows.len());

    if failures > 0 {
        eprintln!("{failures} row(s) violate the prediction/observation contract");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
