//! Static dispute-wheel detection over a gadget's policy graph.
//!
//! The detector builds, for every node, the concrete rank key its
//! decision process assigns to every simple path to the origin — the
//! same keys the production modules and the oracle reference use — and
//! searches for a *dispute wheel* (Griffin–Shepherd–Wilfong): nodes
//! `u_0..u_{k-1}` with spoke paths `Q_i` and rim paths `R_i` from
//! `u_i` to `u_{i+1}` such that every `u_i` strictly prefers the rim
//! route `R_i · Q_{i+1}` to its own spoke `Q_i`.
//!
//! The search is a cycle check on the *dispute digraph*: one vertex per
//! `(node, spoke path)` pair, an arc `(u, Q_u) → (v, Q_v)` whenever
//! some rim `R` makes `R · Q_v` a simple path that `u` strictly
//! prefers to `Q_u`. Any cycle is a dispute wheel.
//!
//! The predictor is deliberately one-sided, exactly as the theory is:
//!
//! * [`Prediction::Safe`] (no wheel) is a *guarantee* — the gadget
//!   converges on every schedule, and the stability table hard-asserts
//!   the observed dynamics agree;
//! * [`Prediction::DisputeWheel`] is *conservative* — divergence is
//!   possible but not certain (DISAGREE has a wheel yet always has a
//!   stable state to fall into), so observed convergence is recorded
//!   as a documented conservative row, never an error.

use crate::gadget::Gadget;
use dbgp_oracle::scenario::{eqbgp_bw, hlp_cost, wiser_cost};
use dbgp_wire::ProtocolId;

/// The detector's verdict on one gadget instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Prediction {
    /// No dispute wheel: convergence on every schedule is guaranteed.
    Safe,
    /// A dispute wheel exists: divergence is possible (not certain).
    DisputeWheel,
}

impl Prediction {
    /// Stable table label.
    pub fn label(&self) -> &'static str {
        match self {
            Prediction::Safe => "safe",
            Prediction::DisputeWheel => "dispute-wheel",
        }
    }
}

/// How one node ranks candidate routes — mirrors the concrete decision
/// modules, including protocol descriptors and their loss over legacy
/// links.
enum NodeKind<'a> {
    Bgp,
    Ranked(&'a [Vec<u32>]),
    Wiser,
    Eqbgp,
    Hlp,
}

fn node_kind<'a>(g: &'a Gadget, i: usize) -> NodeKind<'a> {
    if let Some(prefs) = &g.rankings[i] {
        return NodeKind::Ranked(prefs);
    }
    match &g.scenario.nodes[i].island {
        None => NodeKind::Bgp,
        Some(spec) => match ProtocolId(spec.protocol) {
            ProtocolId::WISER => NodeKind::Wiser,
            ProtocolId::EQBGP => NodeKind::Eqbgp,
            ProtocolId::HLP => NodeKind::Hlp,
            other => panic!("dispute-wheel detector does not model protocol {other:?}"),
        },
    }
}

/// Bottleneck-bandwidth score of a path as *received* by its first
/// node, modeling descriptor loss: every hop over a legacy (non-D-BGP)
/// link strips the EQ-BGP descriptor, and an EQ-BGP exporter restarts
/// the bottleneck from its own ingress bandwidth
/// (`unwrap_or(u64::MAX).min(bw)`), while the receiver *scores* a
/// stripped descriptor as 0. This asymmetry is exactly the
/// `eqbgp-legacy-livelock` wheel.
fn eqbgp_score(g: &Gadget, path: &[usize]) -> u64 {
    let mut desc: Option<u64> = None;
    // Walk origin -> ... -> first hop, folding exports and link strips.
    for w in path.windows(2).rev() {
        let (to, from) = (w[0], w[1]);
        let sent = match node_kind(g, from) {
            NodeKind::Eqbgp => Some(desc.unwrap_or(u64::MAX).min(eqbgp_bw(g.asn(from)))),
            _ => desc,
        };
        let speaks_dbgp = g.link(from, to).expect("path follows existing links");
        desc = if speaks_dbgp { sent } else { None };
    }
    desc.unwrap_or(0)
}

/// Lexicographic rank key node `path[0]` assigns to the route along
/// `path` (ending at the origin). Smaller is preferred. The key
/// mirrors the concrete modules' selection order, with the baseline
/// `(hop count, neighbor AS)` tail — neighbor ASNs are unique per
/// node, so the key is a strict total order over distinct first hops.
fn rank_key(g: &Gadget, path: &[usize]) -> Vec<u64> {
    let node = path[0];
    let hops = &path[1..];
    let len = hops.len() as u64;
    let first_asn = u64::from(g.asn(hops[0]));
    match node_kind(g, node) {
        NodeKind::Bgp => vec![len, first_asn],
        NodeKind::Ranked(prefs) => {
            let seq: Vec<u32> = hops.iter().map(|&i| g.asn(i)).collect();
            let rank = prefs.iter().position(|p| *p == seq).unwrap_or(prefs.len()) as u64;
            vec![rank, len, first_asn]
        }
        NodeKind::Wiser => {
            let cost: u64 = hops.iter().map(|&i| wiser_cost(g.asn(i))).sum();
            vec![cost, len, first_asn]
        }
        NodeKind::Hlp => {
            let cost: u64 = hops.iter().map(|&i| hlp_cost(g.asn(i))).sum();
            vec![cost, len, first_asn]
        }
        NodeKind::Eqbgp => vec![u64::MAX - eqbgp_score(g, path), len, first_asn],
    }
}

/// All simple paths `from -> to` over the gadget's links, excluding
/// any node in `forbidden`. Paths include both endpoints.
fn simple_paths(g: &Gadget, from: usize, to: usize, forbidden: &[usize]) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut stack = vec![from];
    fn dfs(
        g: &Gadget,
        to: usize,
        forbidden: &[usize],
        stack: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        let cur = *stack.last().unwrap();
        if cur == to {
            out.push(stack.clone());
            return;
        }
        for next in g.neighbors(cur) {
            if stack.contains(&next) || (forbidden.contains(&next) && next != to) {
                continue;
            }
            stack.push(next);
            dfs(g, to, forbidden, stack, out);
            stack.pop();
        }
    }
    dfs(g, to, forbidden, &mut stack, &mut out);
    out
}

/// Cycle check on a digraph in adjacency-list form (iterative
/// three-color DFS).
fn has_cycle(adj: &[Vec<usize>]) -> bool {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color = vec![Color::White; adj.len()];
    for start in 0..adj.len() {
        if color[start] != Color::White {
            continue;
        }
        // Stack of (vertex, next-edge-index).
        let mut stack = vec![(start, 0usize)];
        color[start] = Color::Gray;
        while let Some(&mut (v, ref mut edge)) = stack.last_mut() {
            if *edge < adj[v].len() {
                let w = adj[v][*edge];
                *edge += 1;
                match color[w] {
                    Color::Gray => return true,
                    Color::White => {
                        color[w] = Color::Gray;
                        stack.push((w, 0));
                    }
                    Color::Black => {}
                }
            } else {
                color[v] = Color::Black;
                stack.pop();
            }
        }
    }
    false
}

/// Predict the gadget's stability class from its static policy graph.
/// Faults are ignored: the prediction is about the all-links-up
/// topology (the wedgie's fault flap returns to exactly that).
pub fn predict(g: &Gadget) -> Prediction {
    let n = g.node_count();
    assert!(n <= 10, "the dispute-wheel search enumerates simple paths; keep gadgets small");
    let origin = g.origin();

    // Spoke candidates: every simple path node -> origin.
    let spokes: Vec<Vec<Vec<usize>>> = (0..n)
        .map(|u| if u == origin { Vec::new() } else { simple_paths(g, u, origin, &[]) })
        .collect();

    let mut verts: Vec<(usize, usize)> = Vec::new();
    for (u, paths) in spokes.iter().enumerate() {
        for pi in 0..paths.len() {
            verts.push((u, pi));
        }
    }

    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); verts.len()];
    for (vi, &(u, pu)) in verts.iter().enumerate() {
        let spoke_key = rank_key(g, &spokes[u][pu]);
        for (wi, &(v, pv)) in verts.iter().enumerate() {
            if v == u {
                continue;
            }
            let q = &spokes[v][pv];
            if q.contains(&u) {
                continue;
            }
            // Rims u -> v must avoid the origin and q's interior, so
            // the spliced route stays a simple path ending at origin.
            let mut forbidden = q.clone();
            forbidden.push(origin);
            let rims = simple_paths(g, u, v, &forbidden);
            let preferred = rims.iter().any(|r| {
                let mut full = r.clone();
                full.extend_from_slice(&q[1..]);
                rank_key(g, &full) < spoke_key
            });
            if preferred {
                adj[vi].push(wi);
            }
        }
    }

    if has_cycle(&adj) {
        Prediction::DisputeWheel
    } else {
        Prediction::Safe
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadget::{bad_gadget, disagree, eqbgp_legacy_livelock, good_gadget, wedgie, wheel};

    #[test]
    fn bad_gadget_has_a_wheel_good_gadget_does_not() {
        assert_eq!(predict(&bad_gadget("ranked")), Prediction::DisputeWheel);
        assert_eq!(predict(&good_gadget("ranked")), Prediction::Safe);
    }

    #[test]
    fn baseline_and_monotone_protocols_are_safe_everywhere() {
        for g in [
            bad_gadget("bgp"),
            bad_gadget("wiser"),
            bad_gadget("hlp"),
            disagree("bgp"),
            wheel(5, "bgp"),
            eqbgp_legacy_livelock("bgp"),
        ] {
            assert_eq!(predict(&g), Prediction::Safe, "{} × {}", g.name, g.protocol);
        }
    }

    #[test]
    fn disagree_and_wedgie_have_wheels() {
        assert_eq!(predict(&disagree("ranked")), Prediction::DisputeWheel);
        assert_eq!(predict(&wedgie()), Prediction::DisputeWheel);
        assert_eq!(predict(&wheel(4, "ranked")), Prediction::DisputeWheel);
        assert_eq!(predict(&wheel(5, "ranked")), Prediction::DisputeWheel);
    }

    #[test]
    fn legacy_descriptor_strip_creates_the_eqbgp_wheel() {
        // Native fixture: stripped descriptors make a k=2 wheel.
        assert_eq!(predict(&eqbgp_legacy_livelock("eqbgp")), Prediction::DisputeWheel);
        // All-D-BGP links on the same topology: bottleneck bandwidth
        // is consistent, ties fall to hop count — wheel-free.
        let mut g = eqbgp_legacy_livelock("eqbgp");
        for link in &mut g.scenario.links {
            link.2 = true;
        }
        assert_eq!(predict(&g), Prediction::Safe);
    }

    #[test]
    fn eqbgp_scores_model_the_strip() {
        let g = eqbgp_legacy_livelock("eqbgp");
        // Node 2's direct route crosses the legacy link: scored 0.
        assert_eq!(eqbgp_score(&g, &[2, 0]), 0);
        // Through node 1 the descriptor survives: min(100, 300) = 100.
        assert_eq!(eqbgp_score(&g, &[2, 1, 0]), 100);
        // Node 1 direct: 100. Through node 2: the strip happened
        // upstream, node 2 restarts the bottleneck at its own 500.
        assert_eq!(eqbgp_score(&g, &[1, 0]), 100);
        assert_eq!(eqbgp_score(&g, &[1, 2, 0]), 500);
    }
}
