//! S3 property test: randomly generated dispute-wheel-free policy
//! graphs converge on every explored schedule.
//!
//! Each case draws a random connected topology (spanning tree plus
//! extra edges) and gives every node a *strictly monotone* ranking:
//! all simple paths to the origin, ordered by length, ties shuffled by
//! the seeded RNG. Extending a path can never improve its rank, so by
//! the Griffin–Shepherd–Wilfong telescoping argument no dispute wheel
//! can exist — the detector must say `safe`, and the dynamics must
//! converge under the FIFO schedule, the full seeded pool, and the
//! schedule explorer.
//!
//! On failure the offending gadget is shrunk by deleting links (the
//! rankings stay monotone — unlisted or vanished paths fall back to
//! baseline order) and the minimal counterexample is reported with
//! its seed, so the failure replays deterministically.

use dbgp_oracle::{NodeSpec, Scenario};
use dbgp_stability::{
    classify, gadget_asn, gadget_prefix, predict, ClassifyConfig, Gadget, Outcome, Prediction,
};
use proptest::test_runner::TestRng;

const CASES: u64 = 24;

/// All simple paths `from -> 0` over `links`, as node sequences
/// including both endpoints.
fn simple_paths_to_origin(
    n: usize,
    links: &[(usize, usize, bool)],
    from: usize,
) -> Vec<Vec<usize>> {
    let mut adj = vec![Vec::new(); n];
    for &(a, b, _) in links {
        adj[a].push(b);
        adj[b].push(a);
    }
    let mut out = Vec::new();
    let mut stack = vec![from];
    fn dfs(adj: &[Vec<usize>], stack: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        let cur = *stack.last().unwrap();
        if cur == 0 {
            out.push(stack.clone());
            return;
        }
        for &next in &adj[cur] {
            if !stack.contains(&next) {
                stack.push(next);
                dfs(adj, stack, out);
                stack.pop();
            }
        }
    }
    dfs(&adj, &mut stack, &mut out);
    out
}

/// Build a random gadget whose rankings are strictly monotone.
fn random_monotone_gadget(rng: &mut TestRng, case: u64) -> Gadget {
    let n = 3 + rng.below(4) as usize; // 3..=6 nodes
    let mut links: Vec<(usize, usize, bool)> = Vec::new();
    for i in 1..n {
        let parent = rng.below(i as u64) as usize;
        links.push((parent, i, true));
    }
    for _ in 0..rng.below(n as u64) {
        let a = rng.below(n as u64) as usize;
        let b = rng.below(n as u64) as usize;
        let (a, b) = (a.min(b), a.max(b));
        if a != b && !links.iter().any(|&(x, y, _)| (x, y) == (a, b)) {
            links.push((a, b, true));
        }
    }
    let rankings: Vec<Option<Vec<Vec<u32>>>> = (0..n)
        .map(|i| {
            if i == 0 {
                return None;
            }
            let mut paths = simple_paths_to_origin(n, &links, i);
            // Strictly monotone: rank by length; ties in seeded
            // random order (the shuffle key is drawn per path).
            let mut keyed: Vec<(usize, u64, Vec<usize>)> =
                paths.drain(..).map(|p| (p.len(), rng.below(1 << 30), p)).collect();
            keyed.sort_by_key(|a| (a.0, a.1));
            Some(
                keyed
                    .into_iter()
                    .map(|(_, _, p)| p[1..].iter().map(|&v| gadget_asn(v)).collect())
                    .collect(),
            )
        })
        .collect();
    Gadget {
        name: format!("monotone-{case}"),
        protocol: "ranked",
        scenario: Scenario {
            nodes: (0..n).map(|i| NodeSpec { asn: gadget_asn(i), island: None }).collect(),
            links,
            originations: vec![(0, gadget_prefix())],
            faults: vec![],
        },
        rankings,
    }
}

/// The property: detector says safe, and every probe converges.
fn check(g: &Gadget) -> Result<(), String> {
    if predict(g) != Prediction::Safe {
        return Err("detector reported a dispute wheel for a strictly monotone instance".into());
    }
    let obs = classify(g, &ClassifyConfig::quick());
    if obs.outcome != Outcome::Converge {
        return Err(format!("FIFO outcome was {:?}", obs.outcome));
    }
    if obs.pool_quiesced != obs.pool_schedules {
        return Err(format!(
            "only {}/{} pool schedules quiesced",
            obs.pool_quiesced, obs.pool_schedules
        ));
    }
    if obs.explorer != "quiesced" {
        return Err(format!("explorer verdict was {:?}", obs.explorer));
    }
    if obs.sim_agrees != Some(true) {
        return Err("production simulator disagreed with the FIFO label".into());
    }
    Ok(())
}

/// Greedy link-deletion shrink: keep removing any link whose removal
/// still reproduces a failure. Deterministic, so the reported minimal
/// gadget is a stable artifact of the seed.
fn shrink(mut g: Gadget) -> (Gadget, String) {
    let mut err = check(&g).expect_err("shrink starts from a failing gadget");
    loop {
        let mut reduced = false;
        for i in 0..g.scenario.links.len() {
            let mut candidate = g.clone();
            candidate.scenario.links.remove(i);
            if let Err(e) = check(&candidate) {
                g = candidate;
                err = e;
                reduced = true;
                break;
            }
        }
        if !reduced {
            return (g, err);
        }
    }
}

#[test]
fn monotone_policy_graphs_converge_on_every_explored_schedule() {
    for case in 0..CASES {
        let mut rng = TestRng::for_case("stability-monotone", case);
        let g = random_monotone_gadget(&mut rng, case);
        if check(&g).is_err() {
            let (minimal, err) = shrink(g);
            panic!(
                "case {case} (seeded, replayable): {err}\nminimal gadget: {} nodes, links {:?}, \
                 rankings {:?}",
                minimal.node_count(),
                minimal.scenario.links,
                minimal.rankings,
            );
        }
    }
}
