//! S1 regression: the `eqbgp-legacy-livelock` differential fixture,
//! promoted into the gadget library, must classify as a `livelock`
//! with the exact cycle the differential harness found when it shrank
//! the divergence (PR 4): nodes 1 and 2 flapping between their direct
//! spoke and the route through each other, period 4 routing changes,
//! global-state cycle of 8 deliveries after a preperiod of 4.

use dbgp_stability::{
    capture_tail_period, classify, eqbgp_legacy_livelock, ClassifyConfig, Outcome,
};
use std::collections::BTreeSet;

#[test]
fn promoted_fixture_classifies_as_livelock_with_the_pinned_cycle() {
    let g = eqbgp_legacy_livelock("eqbgp");
    let obs = classify(&g, &ClassifyConfig::quick());
    assert_eq!(obs.outcome, Outcome::Livelock, "the legacy strip is a genuine livelock");
    // The pinned cycle: these constants are the fixture's identity.
    // If they move, the decision process or the reference semantics
    // changed — re-derive them alongside the diff that explains it.
    assert_eq!(obs.cycle_length, Some(8), "global-state cycle length");
    assert_eq!(obs.preperiod, Some(4), "deliveries before the cycle");
    assert_eq!(obs.routing_changes, Some(4), "route flaps within one cycle");
    assert_eq!(obs.sim_agrees, Some(true), "production engine livelocks too");
    assert_eq!(obs.sim_tail_period, Some(4), "production flap period");
    assert!(obs.pool_quiesced > 0, "stable states exist off the FIFO race");
}

#[test]
fn fixture_cycle_is_the_two_node_route_flap() {
    let g = eqbgp_legacy_livelock("eqbgp");
    let mut sim = g.build_sim();
    sim.capture_best_changes(64);
    sim.run(60_000);
    assert!(sim.pending_events() > 0, "production engine must not quiesce");
    let recs = sim.captured_changes();
    let period = capture_tail_period(&recs).expect("capture tail is periodic");
    assert_eq!(period, 4);
    let tail: BTreeSet<(usize, bool, Option<usize>)> =
        recs[recs.len() - 4..].iter().map(|c| (c.node, c.installed, c.next)).collect();
    // The k=2 dispute wheel: node 1 alternates between its direct
    // spoke (next hop 0) and the route through node 2; node 2
    // mirrors it through node 1. Nothing ever uninstalls — the flap
    // is between installed routes.
    let expected: BTreeSet<(usize, bool, Option<usize>)> =
        [(1, true, Some(0)), (1, true, Some(2)), (2, true, Some(0)), (2, true, Some(1))]
            .into_iter()
            .collect();
    assert_eq!(tail, expected, "the flap set is nodes 1 and 2 swapping spokes");
}

#[test]
fn baseline_bgp_on_the_same_topology_is_clean() {
    // The livelock is the protocol interaction, not the topology:
    // plain BGP over the identical links (legacy session included)
    // converges on the shortest paths.
    let g = eqbgp_legacy_livelock("bgp");
    let obs = classify(&g, &ClassifyConfig::quick());
    assert_eq!(obs.outcome, Outcome::Converge);
    assert_eq!(obs.pool_quiesced, obs.pool_schedules);
    assert_eq!(obs.explorer, "quiesced");
}
