//! S4: per-node decision-process overrides must survive `restart_node`
//! churn. A restart tears down and re-establishes every session; the
//! registered module set is part of the speaker's configuration and
//! must keep steering selection after the rebuild.
//!
//! The determinism side of the contract — `results/chaos.json` stays
//! byte-identical (sha256 `43f13a19…`) while overrides are unused — is
//! enforced by `crates/chaos/tests/golden_baseline.rs`, which runs in
//! the same tier-1 suite as this file: the ranked module only acts on
//! speakers it is explicitly registered on, and the best-change
//! capture is inert until `capture_best_changes` is called.

use dbgp_core::DbgpConfig;
use dbgp_protocols::RankedPolicyModule;
use dbgp_sim::Sim;
use dbgp_wire::Ipv4Prefix;
use std::str::FromStr;

fn prefix() -> Ipv4Prefix {
    Ipv4Prefix::from_str("128.6.0.0/16").unwrap()
}

/// Diamond: origin 0, two equal-length routes to node 2 (via 1, asn
/// 17, and via 3, asn 31). Baseline BGP tie-breaks to the lower
/// neighbor AS (via 1); the override on node 2 prefers the route
/// through 3.
fn diamond() -> Sim {
    let mut sim = Sim::new();
    sim.set_mrai(0);
    for asn in [10, 17, 24, 31] {
        sim.add_node(DbgpConfig::gulf(asn));
    }
    sim.link(0, 1, 10, false);
    sim.link(1, 2, 10, false);
    sim.link(0, 3, 10, false);
    sim.link(3, 2, 10, false);
    sim.speaker_mut(2)
        .register_module(Box::new(RankedPolicyModule::with_prefs(vec![vec![31, 10]])));
    sim.originate(0, prefix());
    sim
}

#[test]
fn ranked_override_steers_selection() {
    let mut sim = diamond();
    sim.run(60_000);
    assert_eq!(sim.pending_events(), 0, "diamond converges");
    assert_eq!(
        sim.fib(2).get(&prefix()),
        Some(&Some(3)),
        "override picks the higher-AS route via node 3"
    );
}

#[test]
fn ranked_override_survives_restart_node_churn() {
    let mut sim = diamond();
    sim.run(60_000);
    assert_eq!(sim.fib(2).get(&prefix()), Some(&Some(3)));

    // Churn the overridden node itself, then a neighbor it depends on.
    sim.restart_node(2);
    sim.run(120_000);
    assert_eq!(sim.pending_events(), 0, "reconverges after restarting node 2");
    assert_eq!(
        sim.fib(2).get(&prefix()),
        Some(&Some(3)),
        "override still steers selection after the node's own restart"
    );

    sim.restart_node(3);
    sim.run(180_000);
    assert_eq!(sim.pending_events(), 0, "reconverges after restarting node 3");
    assert_eq!(
        sim.fib(2).get(&prefix()),
        Some(&Some(3)),
        "override re-selects the preferred route once node 3 is back"
    );
}

#[test]
fn baseline_without_override_prefers_the_lower_as() {
    let mut sim = Sim::new();
    sim.set_mrai(0);
    for asn in [10, 17, 24, 31] {
        sim.add_node(DbgpConfig::gulf(asn));
    }
    sim.link(0, 1, 10, false);
    sim.link(1, 2, 10, false);
    sim.link(0, 3, 10, false);
    sim.link(3, 2, 10, false);
    sim.originate(0, prefix());
    sim.run(60_000);
    assert_eq!(
        sim.fib(2).get(&prefix()),
        Some(&Some(1)),
        "without the override, baseline tie-break picks the lower neighbor AS"
    );
}
