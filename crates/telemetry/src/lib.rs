//! # dbgp-telemetry
//!
//! Causal control-plane tracing, metrics, and convergence explainability
//! for the D-BGP reproduction.
//!
//! Three layers:
//!
//! * **Event bus** — instrumented code emits [`TraceEvent`]s through a
//!   [`SinkHandle`]; each event carries a causal parent id, so a single
//!   advertisement can be traced from its originating AS through every
//!   pass-through hop to each Loc-RIB install. The no-op handle costs one
//!   branch per instrumentation site.
//! * **Metrics** — a [`MetricsRegistry`] of counters, gauges, and
//!   log2-bucketed histograms with explicit reset-vs-accumulate restart
//!   semantics and a stable `dbgp-metrics/v1` snapshot schema.
//! * **Explainability** — [`RibSnapshot`] diffs and the [`query`] module
//!   (`why-selected`, `path-of`, `convergence-timeline`) over recorded
//!   traces.

#![warn(missing_docs)]

mod event;
mod metrics;
pub mod query;
mod recorder;
mod rib;
mod sink;

pub use event::{EventId, SelectionReason, TraceEvent, TraceKind};
pub use metrics::{
    log2_bucket, CounterId, GaugeId, HistogramId, MetricsRegistry, Semantics, METRICS_SCHEMA,
};
pub use recorder::{TraceRecorder, TRACE_SCHEMA};
pub use rib::{RibChange, RibEntry, RibSnapshot};
pub use sink::{SinkHandle, TelemetrySink};
