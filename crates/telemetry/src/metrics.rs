//! Metrics registry: counters, gauges, and log2-bucketed histograms with
//! a stable JSON snapshot schema (`dbgp-metrics/v1`).
//!
//! Counters and gauges are atomics, so hot paths running on worker
//! threads (the simulator's windowed parallel engine, benchmark
//! harnesses) can bump them through `&self` without racing or tearing.
//! Histograms keep plain storage and `&mut self` observation: every
//! histogram in the workspace is observed from single-threaded commit
//! phases, and an atomic 65-bucket update would tax the serial hot path
//! for no consumer.

use serde_json::Value;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Schema identifier written into metric snapshots.
pub const METRICS_SCHEMA: &str = "dbgp-metrics/v1";

/// How a metric behaves across node restarts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Semantics {
    /// Keeps accumulating across restarts (engine-wide totals).
    Accumulate,
    /// Reset to zero whenever the registry generation is bumped by a
    /// restart; the snapshot's `generation` field says which incarnation
    /// the value belongs to.
    ResetOnRestart,
}

impl Semantics {
    fn as_str(self) -> &'static str {
        match self {
            Semantics::Accumulate => "accumulate",
            Semantics::ResetOnRestart => "reset-on-restart",
        }
    }
}

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

struct Counter {
    name: &'static str,
    semantics: Semantics,
    value: AtomicU64,
}

struct Gauge {
    name: &'static str,
    value: AtomicI64,
}

/// Power-of-two bucketed histogram: bucket 0 holds zeros, bucket `k`
/// (k >= 1) holds values in `[2^(k-1), 2^k)`.
struct Histogram {
    name: &'static str,
    semantics: Semantics,
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// Index of the log2 bucket a value falls into.
pub fn log2_bucket(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Registry of named metrics. Handles are plain indices, so hot-path
/// updates are a bounds-checked array access.
pub struct MetricsRegistry {
    counters: Vec<Counter>,
    gauges: Vec<Gauge>,
    histograms: Vec<Histogram>,
    generation: u64,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// Empty registry at generation 0.
    pub fn new() -> Self {
        MetricsRegistry {
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
            generation: 0,
        }
    }

    /// Register a counter. Names must be unique; snapshots render them in
    /// registration order.
    pub fn counter(&mut self, name: &'static str, semantics: Semantics) -> CounterId {
        assert!(self.counters.iter().all(|c| c.name != name), "duplicate counter `{name}`");
        self.counters.push(Counter { name, semantics, value: AtomicU64::new(0) });
        CounterId(self.counters.len() - 1)
    }

    /// Register a gauge.
    pub fn gauge(&mut self, name: &'static str) -> GaugeId {
        assert!(self.gauges.iter().all(|g| g.name != name), "duplicate gauge `{name}`");
        self.gauges.push(Gauge { name, value: AtomicI64::new(0) });
        GaugeId(self.gauges.len() - 1)
    }

    /// Register a log2 histogram.
    pub fn histogram(&mut self, name: &'static str, semantics: Semantics) -> HistogramId {
        assert!(self.histograms.iter().all(|h| h.name != name), "duplicate histogram `{name}`");
        self.histograms.push(Histogram {
            name,
            semantics,
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        });
        HistogramId(self.histograms.len() - 1)
    }

    /// Add `delta` to a counter. `&self`: counters are atomic, so
    /// concurrent workers may bump them without exclusive access.
    /// `Relaxed` suffices — counters carry no cross-thread ordering
    /// obligations, and readers observe them after a join barrier.
    #[inline]
    pub fn inc(&self, id: CounterId, delta: u64) {
        self.counters[id.0].value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Overwrite a counter (used to mirror externally maintained totals
    /// into the registry at snapshot time).
    #[inline]
    pub fn set_counter(&self, id: CounterId, value: u64) {
        self.counters[id.0].value.store(value, Ordering::Relaxed);
    }

    /// Read a counter.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].value.load(Ordering::Relaxed)
    }

    /// Set a gauge.
    #[inline]
    pub fn set_gauge(&self, id: GaugeId, value: i64) {
        self.gauges[id.0].value.store(value, Ordering::Relaxed);
    }

    /// Read a gauge.
    pub fn gauge_value(&self, id: GaugeId) -> i64 {
        self.gauges[id.0].value.load(Ordering::Relaxed)
    }

    /// Record an observation into a histogram.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, value: u64) {
        let h = &mut self.histograms[id.0];
        h.buckets[log2_bucket(value)] += 1;
        h.count += 1;
        h.sum += value;
        h.min = h.min.min(value);
        h.max = h.max.max(value);
    }

    /// Current restart generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Bump the generation and zero every `ResetOnRestart` metric.
    /// Called by the host when a node restarts.
    pub fn on_restart(&mut self) {
        self.generation += 1;
        for c in &mut self.counters {
            if c.semantics == Semantics::ResetOnRestart {
                c.value.store(0, Ordering::Relaxed);
            }
        }
        for h in &mut self.histograms {
            if h.semantics == Semantics::ResetOnRestart {
                h.buckets = [0; 65];
                h.count = 0;
                h.sum = 0;
                h.min = u64::MAX;
                h.max = 0;
            }
        }
    }

    /// Stable JSON snapshot (`dbgp-metrics/v1`). Field order is
    /// registration order, so snapshots are byte-deterministic.
    pub fn snapshot(&self, at: u64) -> Value {
        let counters: Vec<Value> = self
            .counters
            .iter()
            .map(|c| {
                Value::Object(vec![
                    ("name".into(), Value::String(c.name.into())),
                    ("semantics".into(), Value::String(c.semantics.as_str().into())),
                    ("value".into(), Value::UInt(c.value.load(Ordering::Relaxed))),
                ])
            })
            .collect();
        let gauges: Vec<Value> = self
            .gauges
            .iter()
            .map(|g| {
                Value::Object(vec![
                    ("name".into(), Value::String(g.name.into())),
                    ("value".into(), Value::Int(g.value.load(Ordering::Relaxed))),
                ])
            })
            .collect();
        let histograms: Vec<Value> = self
            .histograms
            .iter()
            .map(|h| {
                let buckets: Vec<Value> = h
                    .buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, n)| **n > 0)
                    .map(|(i, n)| {
                        let lo = if i == 0 { 0u64 } else { 1u64 << (i - 1) };
                        Value::Object(vec![
                            ("bucket".into(), Value::UInt(i as u64)),
                            ("lo".into(), Value::UInt(lo)),
                            ("count".into(), Value::UInt(*n)),
                        ])
                    })
                    .collect();
                Value::Object(vec![
                    ("name".into(), Value::String(h.name.into())),
                    ("semantics".into(), Value::String(h.semantics.as_str().into())),
                    ("count".into(), Value::UInt(h.count)),
                    ("sum".into(), Value::UInt(h.sum)),
                    ("min".into(), Value::UInt(if h.count == 0 { 0 } else { h.min })),
                    ("max".into(), Value::UInt(h.max)),
                    ("buckets".into(), Value::Array(buckets)),
                ])
            })
            .collect();
        Value::Object(vec![
            ("schema".into(), Value::String(METRICS_SCHEMA.into())),
            ("at".into(), Value::UInt(at)),
            ("generation".into(), Value::UInt(self.generation)),
            ("counters".into(), Value::Array(counters)),
            ("gauges".into(), Value::Array(gauges)),
            ("histograms".into(), Value::Array(histograms)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_buckets_partition_the_range() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 1);
        assert_eq!(log2_bucket(2), 2);
        assert_eq!(log2_bucket(3), 2);
        assert_eq!(log2_bucket(4), 3);
        assert_eq!(log2_bucket(1023), 10);
        assert_eq!(log2_bucket(1024), 11);
        assert_eq!(log2_bucket(u64::MAX), 64);
    }

    /// Counters and gauges are updated through `&self` atomics, so
    /// concurrent workers (the simulator's parallel engine, benchmark
    /// harnesses) can share a registry without losing increments.
    #[test]
    fn counters_and_gauges_are_thread_safe() {
        let mut reg = MetricsRegistry::new();
        let hits = reg.counter("hits", Semantics::Accumulate);
        let level = reg.gauge("level");
        std::thread::scope(|s| {
            let reg = &reg;
            for t in 0..4 {
                s.spawn(move || {
                    for _ in 0..10_000 {
                        reg.inc(hits, 1);
                    }
                    reg.set_gauge(level, t);
                });
            }
        });
        assert_eq!(reg.counter_value(hits), 40_000);
        assert!((0..4).contains(&reg.gauge_value(level)));
    }

    #[test]
    fn restart_resets_only_reset_semantics_metrics() {
        let mut reg = MetricsRegistry::new();
        let total = reg.counter("total", Semantics::Accumulate);
        let since = reg.counter("since_restart", Semantics::ResetOnRestart);
        reg.inc(total, 10);
        reg.inc(since, 10);
        assert_eq!(reg.generation(), 0);
        reg.on_restart();
        assert_eq!(reg.generation(), 1);
        assert_eq!(reg.counter_value(total), 10);
        assert_eq!(reg.counter_value(since), 0);
    }

    #[test]
    fn snapshot_is_deterministic_and_skips_empty_buckets() {
        let mut reg = MetricsRegistry::new();
        let h = reg.histogram("bytes", Semantics::Accumulate);
        reg.observe(h, 0);
        reg.observe(h, 5);
        reg.observe(h, 5);
        let a = serde_json::to_string(&reg.snapshot(7)).unwrap();
        let b = serde_json::to_string(&reg.snapshot(7)).unwrap();
        assert_eq!(a, b);
        let snap = reg.snapshot(7);
        let hist = &snap.get("histograms").unwrap().as_array().unwrap()[0];
        assert_eq!(hist.get("count").unwrap().as_u64(), Some(3));
        assert_eq!(hist.get("sum").unwrap().as_u64(), Some(10));
        assert_eq!(hist.get("min").unwrap().as_u64(), Some(0));
        assert_eq!(hist.get("max").unwrap().as_u64(), Some(5));
        let buckets = hist.get("buckets").unwrap().as_array().unwrap();
        assert_eq!(buckets.len(), 2); // bucket 0 (zeros) and bucket 3 ([4,8))
    }
}
