//! Provenance queries over a recorded trace: why a route was selected,
//! the full causal path of an update, and the convergence timeline.

use std::collections::BTreeMap;

use serde_json::Value;

use crate::event::{EventId, TraceEvent, TraceKind};
use crate::recorder::{TraceRecorder, TRACE_SCHEMA};

/// A loaded trace: events in id order plus the node -> AS map.
#[derive(Debug, Clone)]
pub struct TraceLog {
    /// Scenario name recorded in the trace meta block.
    pub scenario: String,
    /// Node index -> AS number.
    pub node_asn: BTreeMap<u32, u32>,
    /// Events in id order.
    pub events: Vec<TraceEvent>,
}

impl TraceLog {
    /// Snapshot a live recorder into a queryable log.
    pub fn from_recorder(rec: &TraceRecorder, scenario: &str) -> Self {
        TraceLog { scenario: scenario.to_string(), node_asn: rec.node_asn(), events: rec.events() }
    }

    /// Parse a `dbgp-trace/v1` document.
    pub fn from_json(doc: &Value) -> Result<Self, String> {
        let schema = doc.get("schema").and_then(|s| s.as_str()).ok_or("trace missing `schema`")?;
        if schema != TRACE_SCHEMA {
            return Err(format!("unsupported trace schema `{schema}`"));
        }
        let scenario =
            doc.get("scenario").and_then(|s| s.as_str()).unwrap_or("unknown").to_string();
        let mut node_asn = BTreeMap::new();
        if let Some(nodes) = doc.get("nodes").and_then(|n| n.as_array()) {
            for n in nodes {
                let node = n
                    .get("node")
                    .and_then(|v| v.as_u64())
                    .ok_or("trace node entry missing `node`")? as u32;
                let asn =
                    n.get("asn").and_then(|v| v.as_u64()).ok_or("trace node entry missing `asn`")?
                        as u32;
                node_asn.insert(node, asn);
            }
        }
        let raw =
            doc.get("events").and_then(|e| e.as_array()).ok_or("trace missing `events` array")?;
        let mut events = Vec::with_capacity(raw.len());
        for (i, ev) in raw.iter().enumerate() {
            events.push(TraceEvent::from_json(ev).map_err(|e| format!("event {i}: {e}"))?);
        }
        Ok(TraceLog { scenario, node_asn, events })
    }

    /// Serialize back to a `dbgp-trace/v1` document.
    pub fn to_json(&self) -> Value {
        let nodes: Vec<Value> = self
            .node_asn
            .iter()
            .map(|(node, asn)| {
                Value::Object(vec![
                    ("node".into(), Value::UInt(u64::from(*node))),
                    ("asn".into(), Value::UInt(u64::from(*asn))),
                ])
            })
            .collect();
        Value::Object(vec![
            ("schema".into(), Value::String(TRACE_SCHEMA.into())),
            ("scenario".into(), Value::String(self.scenario.clone())),
            ("evicted".into(), Value::UInt(0)),
            ("nodes".into(), Value::Array(nodes)),
            ("events".into(), Value::Array(self.events.iter().map(|e| e.to_json()).collect())),
        ])
    }

    /// Look up an event by id (events are stored in id order).
    pub fn find(&self, id: EventId) -> Option<&TraceEvent> {
        self.events.binary_search_by_key(&id.0, |e| e.id.0).ok().map(|i| &self.events[i])
    }

    /// AS number of a node, falling back to the node index when the
    /// trace carries no mapping.
    pub fn asn_of(&self, node: u32) -> u32 {
        self.node_asn.get(&node).copied().unwrap_or(node)
    }

    /// Node index for an AS number.
    pub fn node_of_asn(&self, asn: u32) -> Option<u32> {
        self.node_asn.iter().find(|(_, a)| **a == asn).map(|(n, _)| *n)
    }

    /// Walk the causal parent chain starting at `id` (inclusive), root
    /// last. Stops cleanly if a parent fell out of the ring.
    pub fn causal_chain(&self, id: EventId) -> Vec<&TraceEvent> {
        let mut chain = Vec::new();
        let mut cursor = self.find(id);
        while let Some(ev) = cursor {
            chain.push(ev);
            cursor = ev.parent.and_then(|p| self.find(p));
        }
        chain
    }
}

/// One hop in a rendered causal chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainHop {
    /// Event id of this hop.
    pub id: EventId,
    /// Simulation time.
    pub at: u64,
    /// Node the hop happened at.
    pub node: u32,
    /// AS number of that node.
    pub asn: u32,
    /// Event kind discriminator (`advertise`, `decode`, ...).
    pub kind: String,
    /// One-line human description.
    pub detail: String,
}

fn describe(log: &TraceLog, ev: &TraceEvent) -> String {
    let asn = log.asn_of(ev.node);
    match &ev.kind {
        TraceKind::Originate { prefix } => {
            format!("AS {asn} (node {}) originated {prefix}", ev.node)
        }
        TraceKind::OriginWithdraw { prefix } => {
            format!("AS {asn} (node {}) withdrew its origin of {prefix}", ev.node)
        }
        TraceKind::Advertise { prefix, to } => format!(
            "AS {asn} (node {}) advertised {prefix} to AS {} (node {to})",
            ev.node,
            log.asn_of(*to)
        ),
        TraceKind::Withdraw { prefix, to } => format!(
            "AS {asn} (node {}) withdrew {prefix} from AS {} (node {to})",
            ev.node,
            log.asn_of(*to)
        ),
        TraceKind::Transmit { to, bytes } => {
            format!("node {} put a {bytes}-byte UPDATE on the wire to node {to}", ev.node)
        }
        TraceKind::Deliver { from, bytes } => {
            format!("node {} received a {bytes}-byte UPDATE from node {from}", ev.node)
        }
        TraceKind::Decode { prefix, from, withdraw } => format!(
            "AS {asn} (node {}) decoded a {} for {prefix} from AS {} (node {from})",
            ev.node,
            if *withdraw { "withdraw" } else { "route" },
            log.asn_of(*from)
        ),
        TraceKind::DecodeError { from } => {
            format!("node {} failed to decode a frame from node {from}", ev.node)
        }
        TraceKind::Decision { prefix, selected, neighbor_as, path, hops, candidates, why } => {
            if *selected {
                let via = match neighbor_as {
                    Some(n) => format!("via AS {n}"),
                    None => "locally".to_string(),
                };
                format!(
                    "AS {asn} (node {}) selected {prefix} {via}: path [{path}], {hops} hops, \
                     {candidates} candidate(s), decisive step: {why}",
                    ev.node
                )
            } else {
                format!(
                    "AS {asn} (node {}) lost all paths to {prefix} ({candidates} candidate(s))",
                    ev.node
                )
            }
        }
        TraceKind::LoopDrop { prefix, from_as, reason } => {
            format!("AS {asn} (node {}) rejected {prefix} from AS {from_as}: {reason}", ev.node)
        }
        TraceKind::IslandCrossing { prefix, to, from_island, to_island } => {
            let f = from_island.map_or("gulf".to_string(), |i| format!("island {i}"));
            let t = to_island.map_or("gulf".to_string(), |i| format!("island {i}"));
            format!("{prefix} crossed {f} -> {t} (node {} -> node {to})", ev.node)
        }
        TraceKind::SessionFsm { peer, from, to, trigger } => {
            format!("node {} session with peer {peer}: {from} -> {to} ({trigger})", ev.node)
        }
        TraceKind::NodeRestart { generation } => {
            format!("node {} restarted (generation {generation})", ev.node)
        }
        TraceKind::LinkDown { a, b } => format!("link {a}-{b} went down"),
        TraceKind::LinkUp { a, b } => format!("link {a}-{b} came up"),
        TraceKind::MessageDropped { to } => {
            format!("frame from node {} to node {to} was dropped", ev.node)
        }
    }
}

fn hop(log: &TraceLog, ev: &TraceEvent) -> ChainHop {
    ChainHop {
        id: ev.id,
        at: ev.at,
        node: ev.node,
        asn: log.asn_of(ev.node),
        kind: ev.kind.name().to_string(),
        detail: describe(log, ev),
    }
}

/// Answer to `why-selected <as> <prefix>`.
#[derive(Debug, Clone)]
pub struct WhySelected {
    /// Node the answer is about.
    pub node: u32,
    /// Its AS number.
    pub asn: u32,
    /// The queried prefix, rendered.
    pub prefix: String,
    /// When the final decision happened.
    pub at: u64,
    /// Decisive selection step, rendered.
    pub why: String,
    /// Installed path vector.
    pub path: String,
    /// Installed hop count.
    pub hops: u32,
    /// Candidates considered by the final decision.
    pub candidates: u32,
    /// Id of the final decision event.
    pub decision_id: EventId,
    /// Causal provenance from that decision back to the origin, in
    /// decision-first order.
    pub provenance: Vec<ChainHop>,
}

impl WhySelected {
    /// Render as the multi-line text the `trace_query` bin prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "AS {} (node {}) selected {} at t={} [decision {}]\n",
            self.asn, self.node, self.prefix, self.at, self.decision_id
        ));
        out.push_str(&format!(
            "  path [{}], {} hops, {} candidate(s), decisive step: {}\n",
            self.path, self.hops, self.candidates, self.why
        ));
        out.push_str("provenance (most recent first):\n");
        for h in &self.provenance {
            out.push_str(&format!("  t={:<8} {} {}\n", h.at, h.id, h.detail));
        }
        out
    }
}

/// Why does `asn` currently route `prefix` the way it does? Finds the
/// last `Decision` event for that (node, prefix) and walks its causal
/// chain back to the origin.
pub fn why_selected(log: &TraceLog, asn: u32, prefix: &str) -> Result<WhySelected, String> {
    let node = log
        .node_of_asn(asn)
        .ok_or_else(|| format!("no node with AS number {asn} in this trace"))?;
    let decision = log
        .events
        .iter()
        .rev()
        .find(|e| {
            e.node == node
                && matches!(
                    &e.kind,
                    TraceKind::Decision { prefix: p, .. } if p.to_string() == prefix
                )
        })
        .ok_or_else(|| format!("no decision for {prefix} at AS {asn} in this trace"))?;
    let (selected, path, hops, candidates, why) = match &decision.kind {
        TraceKind::Decision { selected, path, hops, candidates, why, .. } => {
            (*selected, path.clone(), *hops, *candidates, why.to_string())
        }
        _ => unreachable!(),
    };
    if !selected {
        return Err(format!(
            "AS {asn} has no route to {prefix}: last decision {} at t={} removed it",
            decision.id, decision.at
        ));
    }
    let provenance = log.causal_chain(decision.id).into_iter().map(|e| hop(log, e)).collect();
    Ok(WhySelected {
        node,
        asn,
        prefix: prefix.to_string(),
        at: decision.at,
        why,
        path,
        hops,
        candidates,
        decision_id: decision.id,
        provenance,
    })
}

/// Answer to `path-of <update-id>`: the causal chain through an update
/// event, rendered root-first.
#[derive(Debug, Clone)]
pub struct PathOf {
    /// The queried event id.
    pub id: EventId,
    /// Chain from the root cause down to the queried event.
    pub chain: Vec<ChainHop>,
    /// Follow-on events caused (transitively) by the queried event.
    pub descendants: Vec<ChainHop>,
}

impl PathOf {
    /// Render as the multi-line text the `trace_query` bin prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("causal path of {} (root first):\n", self.id));
        for (depth, h) in self.chain.iter().enumerate() {
            out.push_str(&format!(
                "  {:indent$}t={} {} {}\n",
                "",
                h.at,
                h.id,
                h.detail,
                indent = depth * 2
            ));
        }
        if !self.descendants.is_empty() {
            out.push_str("downstream effects:\n");
            for h in &self.descendants {
                out.push_str(&format!("  t={:<8} {} {}\n", h.at, h.id, h.detail));
            }
        }
        out
    }
}

/// Trace an update event back to its root cause and forward to everything
/// it caused.
pub fn path_of(log: &TraceLog, id: EventId) -> Result<PathOf, String> {
    if log.find(id).is_none() {
        return Err(format!("event {id} is not in this trace"));
    }
    let mut chain: Vec<ChainHop> = log.causal_chain(id).into_iter().map(|e| hop(log, e)).collect();
    chain.reverse(); // root first
                     // Transitive descendants: one forward sweep suffices because parents
                     // always have smaller ids than children.
    let mut member = std::collections::BTreeSet::new();
    member.insert(id);
    let mut descendants = Vec::new();
    for ev in &log.events {
        if ev.id.0 <= id.0 {
            continue;
        }
        if let Some(p) = ev.parent {
            if member.contains(&p) {
                member.insert(ev.id);
                descendants.push(hop(log, ev));
            }
        }
    }
    Ok(PathOf { id, chain, descendants })
}

/// One row of the convergence timeline: a best-path change.
#[derive(Debug, Clone)]
pub struct TimelineEntry {
    /// When the decision happened.
    pub at: u64,
    /// Node that re-decided.
    pub node: u32,
    /// Its AS number.
    pub asn: u32,
    /// Affected prefix, rendered.
    pub prefix: String,
    /// True if a path was installed, false if removed.
    pub selected: bool,
    /// Decision event id.
    pub id: EventId,
    /// One-line description.
    pub detail: String,
    /// Id of the root cause of this decision (origination, link event,
    /// restart, ...), if the chain is complete in the trace.
    pub root: Option<EventId>,
}

/// Answer to `convergence-timeline`.
#[derive(Debug, Clone)]
pub struct Timeline {
    /// Every best-path change, in event order.
    pub entries: Vec<TimelineEntry>,
    /// Time of the last best-path change (convergence instant).
    pub converged_at: u64,
    /// Total decisions.
    pub decisions: u64,
    /// Total UPDATE deliveries.
    pub messages: u64,
}

impl Timeline {
    /// Render as the multi-line text the `trace_query` bin prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("convergence timeline (best-path changes):\n");
        for e in &self.entries {
            let root = match e.root {
                Some(r) => format!(" [root {r}]"),
                None => String::new(),
            };
            out.push_str(&format!("  t={:<8} {} {}{}\n", e.at, e.id, e.detail, root));
        }
        out.push_str(&format!(
            "{} best-path change(s), {} message(s); last change at t={}\n",
            self.decisions, self.messages, self.converged_at
        ));
        out
    }
}

/// Build the convergence timeline: every `Decision` event with its root
/// cause, plus aggregate counts.
pub fn convergence_timeline(log: &TraceLog) -> Timeline {
    let mut entries = Vec::new();
    let mut messages = 0u64;
    let mut converged_at = 0u64;
    for ev in &log.events {
        match &ev.kind {
            TraceKind::Deliver { .. } => messages += 1,
            TraceKind::Decision { prefix, selected, .. } => {
                converged_at = converged_at.max(ev.at);
                let root = log.causal_chain(ev.id).last().map(|e| e.id).filter(|r| *r != ev.id);
                entries.push(TimelineEntry {
                    at: ev.at,
                    node: ev.node,
                    asn: log.asn_of(ev.node),
                    prefix: prefix.to_string(),
                    selected: *selected,
                    id: ev.id,
                    detail: describe(log, ev),
                    root,
                });
            }
            _ => {}
        }
    }
    Timeline { decisions: entries.len() as u64, entries, converged_at, messages }
}
