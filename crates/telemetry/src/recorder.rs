//! Ring-buffered in-memory trace recorder.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};

use serde_json::Value;

use crate::event::{EventId, TraceEvent, TraceKind};
use crate::sink::TelemetrySink;

/// Schema identifier written into serialized traces.
pub const TRACE_SCHEMA: &str = "dbgp-trace/v1";

struct Inner {
    events: VecDeque<TraceEvent>,
    /// Ring capacity; 0 means unbounded.
    capacity: usize,
    next_id: u64,
    /// How many events have been evicted from the front of the ring.
    evicted: u64,
    now: u64,
    ambient_parent: Option<EventId>,
    /// node index -> AS number, registered by the host for rendering.
    node_asn: BTreeMap<u32, u32>,
}

/// Records [`TraceEvent`]s into a bounded ring (oldest evicted first) or
/// an unbounded log. Single-threaded, interior-mutable, so the simulator
/// and every speaker can share one recorder through `Rc`.
pub struct TraceRecorder {
    inner: RefCell<Inner>,
}

impl std::fmt::Debug for TraceRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("TraceRecorder")
            .field("events", &inner.events.len())
            .field("capacity", &inner.capacity)
            .field("next_id", &inner.next_id)
            .field("evicted", &inner.evicted)
            .finish()
    }
}

impl TraceRecorder {
    /// Recorder with a bounded ring; once `capacity` events are held the
    /// oldest are evicted (and counted).
    pub fn with_capacity(capacity: usize) -> Self {
        TraceRecorder {
            inner: RefCell::new(Inner {
                events: VecDeque::new(),
                capacity,
                next_id: 0,
                evicted: 0,
                now: 0,
                ambient_parent: None,
                node_asn: BTreeMap::new(),
            }),
        }
    }

    /// Recorder that never evicts. Use for scenario-sized traces that will
    /// be queried or serialized afterwards.
    pub fn unbounded() -> Self {
        Self::with_capacity(0)
    }

    /// Register the AS number a node index maps to (used by queries and
    /// written into the trace meta block).
    pub fn set_node_asn(&self, node: u32, asn: u32) {
        self.inner.borrow_mut().node_asn.insert(node, asn);
    }

    /// Total events ever recorded (monotonic; unaffected by eviction).
    /// Doubles as the id that the *next* event will receive, so it can be
    /// used as a watermark for [`TraceRecorder::for_each_since`].
    pub fn next_id(&self) -> u64 {
        self.inner.borrow().next_id
    }

    /// How many events the ring has evicted.
    pub fn evicted(&self) -> u64 {
        self.inner.borrow().evicted
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.inner.borrow().events.len()
    }

    /// True when no events are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Visit every retained event with `id >= watermark`, in id order.
    pub fn for_each_since<F: FnMut(&TraceEvent)>(&self, watermark: u64, mut f: F) {
        let inner = self.inner.borrow();
        // Events are stored in id order; skip the prefix below the watermark.
        let skip = watermark.saturating_sub(inner.evicted) as usize;
        for ev in inner.events.iter().skip(skip.min(inner.events.len())) {
            if ev.id.0 >= watermark {
                f(ev);
            }
        }
    }

    /// Clone out every retained event, in id order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.borrow().events.iter().cloned().collect()
    }

    /// Clone out the registered node -> AS map.
    pub fn node_asn(&self) -> BTreeMap<u32, u32> {
        self.inner.borrow().node_asn.clone()
    }

    /// Serialize the retained events as a `dbgp-trace/v1` document.
    pub fn to_json(&self, scenario: &str) -> Value {
        let inner = self.inner.borrow();
        let nodes: Vec<Value> = inner
            .node_asn
            .iter()
            .map(|(node, asn)| {
                Value::Object(vec![
                    ("node".into(), Value::UInt(u64::from(*node))),
                    ("asn".into(), Value::UInt(u64::from(*asn))),
                ])
            })
            .collect();
        let events: Vec<Value> = inner.events.iter().map(|e| e.to_json()).collect();
        Value::Object(vec![
            ("schema".into(), Value::String(TRACE_SCHEMA.into())),
            ("scenario".into(), Value::String(scenario.into())),
            ("evicted".into(), Value::UInt(inner.evicted)),
            ("nodes".into(), Value::Array(nodes)),
            ("events".into(), Value::Array(events)),
        ])
    }
}

impl TelemetrySink for TraceRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record(
        &self,
        at: Option<u64>,
        node: u32,
        parent: Option<EventId>,
        kind: TraceKind,
    ) -> Option<EventId> {
        let mut inner = self.inner.borrow_mut();
        let id = EventId(inner.next_id);
        inner.next_id += 1;
        let at = at.unwrap_or(inner.now);
        inner.events.push_back(TraceEvent { id, at, node, parent, kind });
        if inner.capacity != 0 && inner.events.len() > inner.capacity {
            inner.events.pop_front();
            inner.evicted += 1;
        }
        Some(id)
    }

    fn set_now(&self, at: u64) {
        self.inner.borrow_mut().now = at;
    }

    fn set_ambient_parent(&self, parent: Option<EventId>) {
        self.inner.borrow_mut().ambient_parent = parent;
    }

    fn ambient_parent(&self) -> Option<EventId> {
        self.inner.borrow().ambient_parent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbgp_wire::Ipv4Prefix;

    fn pfx() -> Ipv4Prefix {
        "10.0.0.0/8".parse().unwrap()
    }

    #[test]
    fn ids_are_monotonic_and_parents_precede_children() {
        let rec = TraceRecorder::unbounded();
        rec.set_now(5);
        let a = rec.record(None, 0, None, TraceKind::Originate { prefix: pfx() }).unwrap();
        let b =
            rec.record(None, 0, Some(a), TraceKind::Advertise { prefix: pfx(), to: 1 }).unwrap();
        assert!(a < b);
        let evs = rec.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].at, 5);
        assert_eq!(evs[1].parent, Some(a));
    }

    #[test]
    fn ring_evicts_oldest_and_watermark_scan_respects_eviction() {
        let rec = TraceRecorder::with_capacity(2);
        for i in 0..5u32 {
            rec.record(Some(u64::from(i)), i, None, TraceKind::DecodeError { from: 0 });
        }
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.evicted(), 3);
        let mut seen = Vec::new();
        rec.for_each_since(0, |e| seen.push(e.id.0));
        assert_eq!(seen, vec![3, 4]);
        seen.clear();
        rec.for_each_since(4, |e| seen.push(e.id.0));
        assert_eq!(seen, vec![4]);
    }

    #[test]
    fn events_round_trip_through_json() {
        let rec = TraceRecorder::unbounded();
        rec.set_node_asn(0, 10);
        rec.record(
            Some(7),
            0,
            None,
            TraceKind::Decision {
                prefix: pfx(),
                selected: true,
                neighbor_as: Some(11),
                path: "11 10".into(),
                hops: 2,
                candidates: 3,
                why: crate::SelectionReason::ShortestPath,
            },
        );
        rec.record(
            Some(8),
            1,
            Some(EventId(0)),
            TraceKind::SessionFsm {
                peer: 0,
                from: "idle".into(),
                to: "established".into(),
                trigger: "manual-start".into(),
            },
        );
        let doc = rec.to_json("unit");
        let events = doc.get("events").unwrap().as_array().unwrap();
        for (raw, orig) in events.iter().zip(rec.events()) {
            let parsed = TraceEvent::from_json(raw).unwrap();
            assert_eq!(parsed, orig);
        }
    }
}
