//! Trace event taxonomy: every control-plane action the simulator or a
//! speaker can take is recorded as a [`TraceEvent`] with a causal parent.

use std::fmt;

use dbgp_wire::Ipv4Prefix;
use serde_json::Value;

/// Monotonically increasing identifier for a recorded trace event.
///
/// Ids are assigned by the recorder in emission order, so `a.0 < b.0`
/// implies `a` was recorded no later than `b`. Causal parents therefore
/// always have a smaller id than their children, which makes every causal
/// chain trivially acyclic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub u64);

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Why the decision process preferred the winning candidate over the
/// runner-up (or why there was nothing to prefer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionReason {
    /// The prefix is locally originated; local routes always win.
    LocalOrigin,
    /// Exactly one candidate survived import filtering.
    OnlyCandidate,
    /// Won on LOCAL_PREF (BGP decision step 1).
    LocalPref,
    /// Won on path length (fewest AS hops).
    ShortestPath,
    /// Won on ORIGIN code (IGP < EGP < INCOMPLETE).
    Origin,
    /// Won on MULTI_EXIT_DISC against a same-AS rival.
    Med,
    /// Won because eBGP-learned routes beat iBGP-learned ones.
    EbgpOverIbgp,
    /// Won on lowest peer router-id.
    RouterId,
    /// Won on lowest neighbor AS number (D-BGP simulator tiebreak).
    NeighborAs,
    /// Won on lowest neighbor/peer id (final deterministic tiebreak).
    NeighborId,
    /// A protocol decision module (Wiser, R-BGP, ...) applied its own
    /// criteria; the generic explainer cannot decompose them further.
    ModulePreference,
    /// No candidate was usable; the prefix became unreachable.
    Unreachable,
}

impl SelectionReason {
    /// Stable string form used in the trace JSON schema.
    pub fn as_str(self) -> &'static str {
        match self {
            SelectionReason::LocalOrigin => "local-origin",
            SelectionReason::OnlyCandidate => "only-candidate",
            SelectionReason::LocalPref => "local-pref",
            SelectionReason::ShortestPath => "shortest-path",
            SelectionReason::Origin => "origin",
            SelectionReason::Med => "med",
            SelectionReason::EbgpOverIbgp => "ebgp-over-ibgp",
            SelectionReason::RouterId => "router-id",
            SelectionReason::NeighborAs => "neighbor-as",
            SelectionReason::NeighborId => "neighbor-id",
            SelectionReason::ModulePreference => "module-preference",
            SelectionReason::Unreachable => "unreachable",
        }
    }

    /// Inverse of [`SelectionReason::as_str`]; used when loading traces.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "local-origin" => SelectionReason::LocalOrigin,
            "only-candidate" => SelectionReason::OnlyCandidate,
            "local-pref" => SelectionReason::LocalPref,
            "shortest-path" => SelectionReason::ShortestPath,
            "origin" => SelectionReason::Origin,
            "med" => SelectionReason::Med,
            "ebgp-over-ibgp" => SelectionReason::EbgpOverIbgp,
            "router-id" => SelectionReason::RouterId,
            "neighbor-as" => SelectionReason::NeighborAs,
            "neighbor-id" => SelectionReason::NeighborId,
            "module-preference" => SelectionReason::ModulePreference,
            "unreachable" => SelectionReason::Unreachable,
            _ => return None,
        })
    }
}

impl fmt::Display for SelectionReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What happened. Field meanings follow the simulator's node-id space:
/// `node`, `to`, `from`, `peer`, `a`, `b` are node indices, `*_as` fields
/// are AS numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceKind {
    /// A prefix was locally originated at this node (chain root).
    Originate {
        /// Prefix being originated.
        prefix: Ipv4Prefix,
    },
    /// A locally originated prefix was withdrawn (chain root).
    OriginWithdraw {
        /// Prefix being withdrawn.
        prefix: Ipv4Prefix,
    },
    /// An advertisement for `prefix` was placed on the wire toward `to`.
    Advertise {
        /// Prefix carried by the advertisement.
        prefix: Ipv4Prefix,
        /// Destination node.
        to: u32,
    },
    /// A withdraw for `prefix` was placed on the wire toward `to`.
    Withdraw {
        /// Prefix being withdrawn.
        prefix: Ipv4Prefix,
        /// Destination node.
        to: u32,
    },
    /// One encoded UPDATE frame (possibly batching several prefixes) left
    /// this node toward `to`.
    Transmit {
        /// Destination node.
        to: u32,
        /// Encoded frame length in bytes.
        bytes: u32,
    },
    /// An UPDATE frame arrived at this node from `from`.
    Deliver {
        /// Sending node.
        from: u32,
        /// Frame length in bytes.
        bytes: u32,
    },
    /// One element of a delivered frame was decoded and handed to the
    /// speaker (`withdraw` distinguishes withdraws from announcements).
    Decode {
        /// Prefix decoded from the frame.
        prefix: Ipv4Prefix,
        /// Sending node.
        from: u32,
        /// True if this element was a withdraw.
        withdraw: bool,
    },
    /// A delivered frame failed to decode.
    DecodeError {
        /// Sending node.
        from: u32,
    },
    /// The decision process ran for `prefix` and installed (or removed)
    /// a best path.
    Decision {
        /// Prefix that was re-decided.
        prefix: Ipv4Prefix,
        /// True if a best path was installed, false if the prefix became
        /// unreachable.
        selected: bool,
        /// AS number of the neighbor the best path was learned from
        /// (`None` for local origination or unreachable).
        neighbor_as: Option<u32>,
        /// Rendered path vector of the installed advertisement.
        path: String,
        /// AS-hop count of the installed path.
        hops: u32,
        /// How many candidates the decision process considered.
        candidates: u32,
        /// The decisive comparison step.
        why: SelectionReason,
    },
    /// An incoming advertisement was rejected by import filtering
    /// (typically sender-side loop detection).
    LoopDrop {
        /// Prefix carried by the rejected advertisement.
        prefix: Ipv4Prefix,
        /// AS number of the neighbor it came from.
        from_as: u32,
        /// Reject reason, rendered.
        reason: String,
    },
    /// An advertisement crossed an island boundary (island -> gulf,
    /// gulf -> island, or island -> different island).
    IslandCrossing {
        /// Prefix carried by the advertisement.
        prefix: Ipv4Prefix,
        /// Destination node.
        to: u32,
        /// Sending node's island id, if any.
        from_island: Option<u32>,
        /// Receiving node's island id, if any.
        to_island: Option<u32>,
    },
    /// A session/adjacency state machine transition.
    SessionFsm {
        /// Peer node (simulator adjacencies) or peer index (BGP FSM).
        peer: u32,
        /// State before the transition.
        from: String,
        /// State after the transition.
        to: String,
        /// What caused the transition.
        trigger: String,
    },
    /// A node restarted; its per-node counters reset and its counter
    /// generation was bumped.
    NodeRestart {
        /// Generation number after the restart (starts at 0, +1 per
        /// restart).
        generation: u64,
    },
    /// A link was administratively taken down.
    LinkDown {
        /// One endpoint.
        a: u32,
        /// The other endpoint.
        b: u32,
    },
    /// A link was administratively brought up.
    LinkUp {
        /// One endpoint.
        a: u32,
        /// The other endpoint.
        b: u32,
    },
    /// A frame was dropped in flight (link down or stochastic loss).
    MessageDropped {
        /// Intended destination node.
        to: u32,
    },
}

impl TraceKind {
    /// Stable discriminator string used in the trace JSON schema.
    pub fn name(&self) -> &'static str {
        match self {
            TraceKind::Originate { .. } => "originate",
            TraceKind::OriginWithdraw { .. } => "origin-withdraw",
            TraceKind::Advertise { .. } => "advertise",
            TraceKind::Withdraw { .. } => "withdraw",
            TraceKind::Transmit { .. } => "transmit",
            TraceKind::Deliver { .. } => "deliver",
            TraceKind::Decode { .. } => "decode",
            TraceKind::DecodeError { .. } => "decode-error",
            TraceKind::Decision { .. } => "decision",
            TraceKind::LoopDrop { .. } => "loop-drop",
            TraceKind::IslandCrossing { .. } => "island-crossing",
            TraceKind::SessionFsm { .. } => "session-fsm",
            TraceKind::NodeRestart { .. } => "node-restart",
            TraceKind::LinkDown { .. } => "link-down",
            TraceKind::LinkUp { .. } => "link-up",
            TraceKind::MessageDropped { .. } => "message-dropped",
        }
    }
}

/// One recorded control-plane event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Recorder-assigned id, monotonically increasing.
    pub id: EventId,
    /// Simulation time (engine ticks) when the event happened.
    pub at: u64,
    /// Node the event happened at.
    pub node: u32,
    /// Causal parent: the event that directly caused this one, if known.
    pub parent: Option<EventId>,
    /// What happened.
    pub kind: TraceKind,
}

fn opt_u32(v: Option<u32>) -> Value {
    match v {
        Some(x) => Value::UInt(u64::from(x)),
        None => Value::Null,
    }
}

impl TraceEvent {
    /// Flattened JSON form (schema `dbgp-trace/v1`): `id`, `at`, `node`,
    /// `parent` (nullable), `kind`, plus the kind's own fields.
    pub fn to_json(&self) -> Value {
        let mut obj: Vec<(String, Value)> = vec![
            ("id".into(), Value::UInt(self.id.0)),
            ("at".into(), Value::UInt(self.at)),
            ("node".into(), Value::UInt(u64::from(self.node))),
            (
                "parent".into(),
                match self.parent {
                    Some(p) => Value::UInt(p.0),
                    None => Value::Null,
                },
            ),
            ("kind".into(), Value::String(self.kind.name().into())),
        ];
        let mut put = |k: &str, v: Value| obj.push((k.into(), v));
        match &self.kind {
            TraceKind::Originate { prefix } | TraceKind::OriginWithdraw { prefix } => {
                put("prefix", Value::String(prefix.to_string()));
            }
            TraceKind::Advertise { prefix, to } | TraceKind::Withdraw { prefix, to } => {
                put("prefix", Value::String(prefix.to_string()));
                put("to", Value::UInt(u64::from(*to)));
            }
            TraceKind::Transmit { to, bytes } => {
                put("to", Value::UInt(u64::from(*to)));
                put("bytes", Value::UInt(u64::from(*bytes)));
            }
            TraceKind::Deliver { from, bytes } => {
                put("from", Value::UInt(u64::from(*from)));
                put("bytes", Value::UInt(u64::from(*bytes)));
            }
            TraceKind::Decode { prefix, from, withdraw } => {
                put("prefix", Value::String(prefix.to_string()));
                put("from", Value::UInt(u64::from(*from)));
                put("withdraw", Value::Bool(*withdraw));
            }
            TraceKind::DecodeError { from } => {
                put("from", Value::UInt(u64::from(*from)));
            }
            TraceKind::Decision { prefix, selected, neighbor_as, path, hops, candidates, why } => {
                put("prefix", Value::String(prefix.to_string()));
                put("selected", Value::Bool(*selected));
                put("neighbor_as", opt_u32(*neighbor_as));
                put("path", Value::String(path.clone()));
                put("hops", Value::UInt(u64::from(*hops)));
                put("candidates", Value::UInt(u64::from(*candidates)));
                put("why", Value::String(why.as_str().into()));
            }
            TraceKind::LoopDrop { prefix, from_as, reason } => {
                put("prefix", Value::String(prefix.to_string()));
                put("from_as", Value::UInt(u64::from(*from_as)));
                put("reason", Value::String(reason.clone()));
            }
            TraceKind::IslandCrossing { prefix, to, from_island, to_island } => {
                put("prefix", Value::String(prefix.to_string()));
                put("to", Value::UInt(u64::from(*to)));
                put("from_island", opt_u32(*from_island));
                put("to_island", opt_u32(*to_island));
            }
            TraceKind::SessionFsm { peer, from, to, trigger } => {
                put("peer", Value::UInt(u64::from(*peer)));
                put("from", Value::String(from.clone()));
                put("to", Value::String(to.clone()));
                put("trigger", Value::String(trigger.clone()));
            }
            TraceKind::NodeRestart { generation } => {
                put("generation", Value::UInt(*generation));
            }
            TraceKind::LinkDown { a, b } | TraceKind::LinkUp { a, b } => {
                put("a", Value::UInt(u64::from(*a)));
                put("b", Value::UInt(u64::from(*b)));
            }
            TraceKind::MessageDropped { to } => {
                put("to", Value::UInt(u64::from(*to)));
            }
        }
        Value::Object(obj)
    }

    /// Parse the flattened JSON form back into a [`TraceEvent`].
    pub fn from_json(v: &Value) -> Result<Self, String> {
        fn need<'a>(v: &'a Value, k: &str) -> Result<&'a Value, String> {
            v.get(k).ok_or_else(|| format!("missing field `{k}`"))
        }
        fn u64_of(v: &Value, k: &str) -> Result<u64, String> {
            need(v, k)?.as_u64().ok_or_else(|| format!("field `{k}` is not an unsigned integer"))
        }
        fn u32_of(v: &Value, k: &str) -> Result<u32, String> {
            u64_of(v, k).map(|x| x as u32)
        }
        fn str_of(v: &Value, k: &str) -> Result<String, String> {
            Ok(need(v, k)?
                .as_str()
                .ok_or_else(|| format!("field `{k}` is not a string"))?
                .to_string())
        }
        fn bool_of(v: &Value, k: &str) -> Result<bool, String> {
            need(v, k)?.as_bool().ok_or_else(|| format!("field `{k}` is not a bool"))
        }
        fn prefix_of(v: &Value, k: &str) -> Result<Ipv4Prefix, String> {
            str_of(v, k)?
                .parse::<Ipv4Prefix>()
                .map_err(|e| format!("field `{k}` is not a prefix: {e:?}"))
        }
        fn opt_u32_of(v: &Value, k: &str) -> Result<Option<u32>, String> {
            match need(v, k)? {
                Value::Null => Ok(None),
                other => other
                    .as_u64()
                    .map(|x| Some(x as u32))
                    .ok_or_else(|| format!("field `{k}` is not null or unsigned")),
            }
        }

        let kind_name = str_of(v, "kind")?;
        let kind = match kind_name.as_str() {
            "originate" => TraceKind::Originate { prefix: prefix_of(v, "prefix")? },
            "origin-withdraw" => TraceKind::OriginWithdraw { prefix: prefix_of(v, "prefix")? },
            "advertise" => {
                TraceKind::Advertise { prefix: prefix_of(v, "prefix")?, to: u32_of(v, "to")? }
            }
            "withdraw" => {
                TraceKind::Withdraw { prefix: prefix_of(v, "prefix")?, to: u32_of(v, "to")? }
            }
            "transmit" => TraceKind::Transmit { to: u32_of(v, "to")?, bytes: u32_of(v, "bytes")? },
            "deliver" => {
                TraceKind::Deliver { from: u32_of(v, "from")?, bytes: u32_of(v, "bytes")? }
            }
            "decode" => TraceKind::Decode {
                prefix: prefix_of(v, "prefix")?,
                from: u32_of(v, "from")?,
                withdraw: bool_of(v, "withdraw")?,
            },
            "decode-error" => TraceKind::DecodeError { from: u32_of(v, "from")? },
            "decision" => TraceKind::Decision {
                prefix: prefix_of(v, "prefix")?,
                selected: bool_of(v, "selected")?,
                neighbor_as: opt_u32_of(v, "neighbor_as")?,
                path: str_of(v, "path")?,
                hops: u32_of(v, "hops")?,
                candidates: u32_of(v, "candidates")?,
                why: SelectionReason::parse(&str_of(v, "why")?)
                    .ok_or_else(|| "unknown selection reason".to_string())?,
            },
            "loop-drop" => TraceKind::LoopDrop {
                prefix: prefix_of(v, "prefix")?,
                from_as: u32_of(v, "from_as")?,
                reason: str_of(v, "reason")?,
            },
            "island-crossing" => TraceKind::IslandCrossing {
                prefix: prefix_of(v, "prefix")?,
                to: u32_of(v, "to")?,
                from_island: opt_u32_of(v, "from_island")?,
                to_island: opt_u32_of(v, "to_island")?,
            },
            "session-fsm" => TraceKind::SessionFsm {
                peer: u32_of(v, "peer")?,
                from: str_of(v, "from")?,
                to: str_of(v, "to")?,
                trigger: str_of(v, "trigger")?,
            },
            "node-restart" => TraceKind::NodeRestart { generation: u64_of(v, "generation")? },
            "link-down" => TraceKind::LinkDown { a: u32_of(v, "a")?, b: u32_of(v, "b")? },
            "link-up" => TraceKind::LinkUp { a: u32_of(v, "a")?, b: u32_of(v, "b")? },
            "message-dropped" => TraceKind::MessageDropped { to: u32_of(v, "to")? },
            other => return Err(format!("unknown trace kind `{other}`")),
        };
        let parent = match need(v, "parent")? {
            Value::Null => None,
            other => Some(EventId(
                other
                    .as_u64()
                    .ok_or_else(|| "field `parent` is not null or unsigned".to_string())?,
            )),
        };
        Ok(TraceEvent {
            id: EventId(u64_of(v, "id")?),
            at: u64_of(v, "at")?,
            node: u32_of(v, "node")?,
            parent,
            kind,
        })
    }
}
