//! Loc-RIB snapshots and diffs, for explaining convergence: which best
//! paths changed between two points in time, and to what.

use std::collections::BTreeMap;
use std::fmt;

use dbgp_wire::Ipv4Prefix;
use serde_json::Value;

/// One installed best path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RibEntry {
    /// Rendered path vector of the installed advertisement.
    pub path: String,
    /// AS-hop count.
    pub hops: u32,
    /// AS number of the neighbor the path was learned from (`None` for
    /// local origination).
    pub via_as: Option<u32>,
}

impl fmt::Display for RibEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.via_as {
            Some(asn) => write!(f, "[{}] ({} hops, via AS {})", self.path, self.hops, asn),
            None => write!(f, "[{}] ({} hops, local)", self.path, self.hops),
        }
    }
}

/// All installed best paths at one instant, keyed by (node, prefix).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RibSnapshot {
    /// Simulation time the snapshot was taken.
    pub at: u64,
    /// Best path per (node index, prefix).
    pub entries: BTreeMap<(u32, Ipv4Prefix), RibEntry>,
}

/// One difference between two [`RibSnapshot`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RibChange {
    /// A best path appeared where there was none.
    Installed {
        /// Node the change happened at.
        node: u32,
        /// Affected prefix.
        prefix: Ipv4Prefix,
        /// The new entry.
        after: RibEntry,
    },
    /// A best path was replaced by a different one.
    Changed {
        /// Node the change happened at.
        node: u32,
        /// Affected prefix.
        prefix: Ipv4Prefix,
        /// Entry before the change.
        before: RibEntry,
        /// Entry after the change.
        after: RibEntry,
    },
    /// A best path disappeared.
    Removed {
        /// Node the change happened at.
        node: u32,
        /// Affected prefix.
        prefix: Ipv4Prefix,
        /// The entry that was removed.
        before: RibEntry,
    },
}

impl fmt::Display for RibChange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RibChange::Installed { node, prefix, after } => {
                write!(f, "node {node} {prefix}: installed {after}")
            }
            RibChange::Changed { node, prefix, before, after } => {
                write!(f, "node {node} {prefix}: {before} -> {after}")
            }
            RibChange::Removed { node, prefix, before } => {
                write!(f, "node {node} {prefix}: removed {before}")
            }
        }
    }
}

impl RibSnapshot {
    /// Differences from `self` (before) to `after`, in (node, prefix)
    /// order.
    pub fn diff(&self, after: &RibSnapshot) -> Vec<RibChange> {
        let mut out = Vec::new();
        for (key, b) in &self.entries {
            match after.entries.get(key) {
                None => {
                    out.push(RibChange::Removed { node: key.0, prefix: key.1, before: b.clone() })
                }
                Some(a) if a != b => out.push(RibChange::Changed {
                    node: key.0,
                    prefix: key.1,
                    before: b.clone(),
                    after: a.clone(),
                }),
                Some(_) => {}
            }
        }
        for (key, a) in &after.entries {
            if !self.entries.contains_key(key) {
                out.push(RibChange::Installed { node: key.0, prefix: key.1, after: a.clone() });
            }
        }
        out.sort_by_key(|c| match c {
            RibChange::Installed { node, prefix, .. }
            | RibChange::Changed { node, prefix, .. }
            | RibChange::Removed { node, prefix, .. } => (*node, *prefix),
        });
        out
    }

    /// JSON form: `{"at": .., "entries": [{"node", "prefix", "path", "hops", "via_as"}]}`.
    pub fn to_json(&self) -> Value {
        let entries: Vec<Value> = self
            .entries
            .iter()
            .map(|((node, prefix), e)| {
                Value::Object(vec![
                    ("node".into(), Value::UInt(u64::from(*node))),
                    ("prefix".into(), Value::String(prefix.to_string())),
                    ("path".into(), Value::String(e.path.clone())),
                    ("hops".into(), Value::UInt(u64::from(e.hops))),
                    (
                        "via_as".into(),
                        match e.via_as {
                            Some(asn) => Value::UInt(u64::from(asn)),
                            None => Value::Null,
                        },
                    ),
                ])
            })
            .collect();
        Value::Object(vec![
            ("at".into(), Value::UInt(self.at)),
            ("entries".into(), Value::Array(entries)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(path: &str, hops: u32, via: Option<u32>) -> RibEntry {
        RibEntry { path: path.into(), hops, via_as: via }
    }

    #[test]
    fn diff_reports_install_change_remove_in_order() {
        let p: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
        let q: Ipv4Prefix = "10.1.0.0/16".parse().unwrap();
        let mut before = RibSnapshot::default();
        before.entries.insert((0, p), entry("2 1", 2, Some(2)));
        before.entries.insert((1, p), entry("1", 1, Some(1)));
        let mut after = RibSnapshot { at: 10, ..Default::default() };
        after.entries.insert((0, p), entry("3 1", 2, Some(3)));
        after.entries.insert((0, q), entry("1", 1, Some(1)));
        let changes = before.diff(&after);
        assert_eq!(changes.len(), 3);
        assert!(matches!(changes[0], RibChange::Changed { node: 0, .. }));
        assert!(matches!(changes[1], RibChange::Installed { node: 0, .. }));
        assert!(matches!(changes[2], RibChange::Removed { node: 1, .. }));
    }
}
