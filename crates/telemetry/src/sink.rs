//! The zero-cost sink boundary between instrumented code and recorders.
//!
//! Instrumented crates hold a [`SinkHandle`]; when no recorder is attached
//! the handle is `None` and every instrumentation site reduces to a single
//! predictable branch — no allocation, no clock reads, no formatting.

use std::fmt;
use std::rc::Rc;

use crate::event::{EventId, TraceKind};

/// Receiver for trace events. Implemented by [`crate::TraceRecorder`];
/// hosts may supply their own (e.g. a filtering or streaming sink).
pub trait TelemetrySink {
    /// Whether events are currently being consumed. Instrumented code must
    /// skip all event construction when this is false.
    fn enabled(&self) -> bool;

    /// Record an event. `at: None` uses the sink's ambient clock (set by
    /// the host via [`TelemetrySink::set_now`]). Returns the assigned id
    /// so callers can thread causality onward.
    fn record(
        &self,
        at: Option<u64>,
        node: u32,
        parent: Option<EventId>,
        kind: TraceKind,
    ) -> Option<EventId>;

    /// Advance the ambient clock (simulation time).
    fn set_now(&self, _at: u64) {}

    /// Set the ambient causal parent. The simulator points this at the
    /// `Decode` (or root) event before handing control to a speaker, so
    /// events emitted from inside the speaker chain correctly.
    fn set_ambient_parent(&self, _parent: Option<EventId>) {}

    /// Read back the ambient causal parent.
    fn ambient_parent(&self) -> Option<EventId> {
        None
    }
}

/// Cheap, cloneable handle to an optional sink.
///
/// `SinkHandle::none()` is the no-op sink: `enabled()` is a constant
/// `false` and every `record` call is skipped by the caller, so fully
/// un-instrumented behaviour (and performance) is preserved.
#[derive(Clone, Default)]
pub struct SinkHandle(Option<Rc<dyn TelemetrySink>>);

impl SinkHandle {
    /// The no-op handle. This is also `Default`.
    pub fn none() -> Self {
        SinkHandle(None)
    }

    /// Wrap a live sink.
    pub fn new(sink: Rc<dyn TelemetrySink>) -> Self {
        SinkHandle(Some(sink))
    }

    /// True when a sink is attached (even if currently disabled). The
    /// simulator's parallel engine uses this to prove a handle holds no
    /// `Rc` before moving its owner across threads.
    #[inline]
    pub fn is_attached(&self) -> bool {
        self.0.is_some()
    }

    /// True when a sink is attached and accepting events.
    #[inline]
    pub fn enabled(&self) -> bool {
        match &self.0 {
            Some(s) => s.enabled(),
            None => false,
        }
    }

    /// Record with an explicit timestamp.
    #[inline]
    pub fn record_at(
        &self,
        at: u64,
        node: u32,
        parent: Option<EventId>,
        kind: TraceKind,
    ) -> Option<EventId> {
        match &self.0 {
            Some(s) => s.record(Some(at), node, parent, kind),
            None => None,
        }
    }

    /// Record using the sink's ambient clock.
    #[inline]
    pub fn record_now(
        &self,
        node: u32,
        parent: Option<EventId>,
        kind: TraceKind,
    ) -> Option<EventId> {
        match &self.0 {
            Some(s) => s.record(None, node, parent, kind),
            None => None,
        }
    }

    /// Advance the ambient clock.
    #[inline]
    pub fn set_now(&self, at: u64) {
        if let Some(s) = &self.0 {
            s.set_now(at);
        }
    }

    /// Set the ambient causal parent (see [`TelemetrySink::set_ambient_parent`]).
    #[inline]
    pub fn set_ambient_parent(&self, parent: Option<EventId>) {
        if let Some(s) = &self.0 {
            s.set_ambient_parent(parent);
        }
    }

    /// Read the ambient causal parent.
    #[inline]
    pub fn ambient_parent(&self) -> Option<EventId> {
        match &self.0 {
            Some(s) => s.ambient_parent(),
            None => None,
        }
    }
}

impl fmt::Debug for SinkHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            Some(_) => f.write_str("SinkHandle(attached)"),
            None => f.write_str("SinkHandle(none)"),
        }
    }
}
