//! Structured fuzzing of `Ia::decode` plus regression-corpus replay.
//!
//! Two layers:
//!
//! * **Corpus replay** — every file in `fuzz_corpus/` is decoded on
//!   each test run. Inputs that once triggered a panic, a silent
//!   truncation, or a loose bounds check stay here forever so the bug
//!   class cannot regress without a fuzzer run.
//! * **Mutation fuzzing** — valid IAs are generated from a seeded RNG,
//!   encoded, and then damaged (bit flips, truncations, TLV length
//!   lies, duplicated and unknown-protocol descriptors, random
//!   splices). `Ia::decode` must never panic, and whatever it accepts
//!   must re-encode canonically: decode → encode → decode is a fixed
//!   point.

use bytes::Bytes;
use dbgp_wire::ia::{IslandDescriptor, IslandMembership, PathDescriptor, UnknownRecord};
use dbgp_wire::{Ia, Ipv4Addr, Ipv4Prefix, IslandId, Origin, PathElem, ProtocolId, WireError};
use proptest::test_runner::TestRng;

fn decode(bytes: &[u8]) -> Result<Ia, WireError> {
    Ia::decode(Bytes::copy_from_slice(bytes))
}

/// An accepted frame must be a fixed point of decode ∘ encode.
fn assert_canonical(ia: &Ia, source: &str) {
    let encoded = ia.encode();
    let again = Ia::decode(encoded.clone())
        .unwrap_or_else(|e| panic!("{source}: accepted IA failed to re-decode: {e}"));
    assert_eq!(&again, ia, "{source}: decode(encode(ia)) != ia");
    assert_eq!(again.encode(), encoded, "{source}: re-encoding is not canonical");
}

#[test]
fn corpus_replay_never_panics_and_accepts_canonically() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/fuzz_corpus");
    let mut replayed = 0;
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .expect("fuzz_corpus directory")
        .map(|e| e.expect("corpus entry").path())
        .collect();
    entries.sort();
    for path in entries {
        if path.extension().map(|e| e != "bin").unwrap_or(true) {
            continue;
        }
        let data = std::fs::read(&path).expect("corpus file");
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        if let Ok(ia) = decode(&data) {
            assert_canonical(&ia, &name);
        }
        replayed += 1;
    }
    assert!(replayed >= 7, "fuzz corpus lost files: only {replayed} replayed");
}

/// The regressions the corpus pins, with their typed errors.
#[test]
fn corpus_inputs_fail_with_typed_errors() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/fuzz_corpus");
    let read = |name: &str| std::fs::read(format!("{dir}/{name}")).expect("corpus file");

    // MED larger than u32 was once silently truncated to its low bits.
    assert_eq!(decode(&read("med-overflow.bin")), Err(WireError::Overflow("med")));

    // A protocol count with no room for the key/length fields behind it
    // was once accepted by the loose `remaining + 1` bound.
    assert_eq!(
        decode(&read("pathdesc-count-lie.bin")),
        Err(WireError::MalformedIa("bad descriptor protocol count"))
    );

    assert_eq!(
        decode(&read("asset-count-lie.bin")),
        Err(WireError::MalformedIa("AS_SET count too large"))
    );
    assert_eq!(
        decode(&read("trunc-body.bin")),
        Err(WireError::Truncated { context: "IA record body" })
    );
    assert_eq!(decode(&read("membership-bad-range.bin")), Err(WireError::BadMembershipRange));

    // Unknown records and unknown-protocol descriptors must pass
    // through (CF-R1 at the codec layer), not error.
    let unknown = decode(&read("unknown-record-passthrough.bin")).expect("pass-through");
    assert_eq!(unknown.unknown_records.len(), 1);
    assert_eq!(unknown.unknown_records[0].tag, 200);
    let dup = decode(&read("dup-protocol-desc.bin")).expect("dup descriptors are legal");
    assert_eq!(dup.path_descriptors.len(), 2);
    assert_eq!(dup.path_descriptors[0].protocols, vec![ProtocolId(999)]);
}

// ----- mutation fuzzing ------------------------------------------------

fn seed_ia(rng: &mut TestRng) -> Ia {
    let prefixes = ["128.6.0.0/16", "10.0.0.0/8", "203.0.113.0/24", "0.0.0.0/0"];
    let prefix: Ipv4Prefix = prefixes[rng.below(prefixes.len() as u64) as usize].parse().unwrap();
    let mut ia = Ia::originate(prefix, Ipv4Addr(rng.next_u64() as u32));
    ia.origin = match rng.below(3) {
        0 => Origin::Igp,
        1 => Origin::Egp,
        _ => Origin::Incomplete,
    };
    if rng.below(2) == 1 {
        ia.med = Some(rng.next_u64() as u32);
    }
    for _ in 0..rng.below(6) {
        ia.path_vector.push(match rng.below(3) {
            0 => PathElem::As(1 + rng.below(1_000_000) as u32),
            1 => PathElem::Island(IslandId(1 + rng.below(1_000_000) as u32)),
            _ => PathElem::AsSet(
                (0..1 + rng.below(4)).map(|_| 1 + rng.below(1_000_000) as u32).collect(),
            ),
        });
    }
    let pvlen = ia.path_vector.len() as u16;
    if pvlen >= 2 && rng.below(2) == 1 {
        ia.memberships.push(IslandMembership {
            island: IslandId(7),
            start: 0,
            end: 1 + rng.below(u64::from(pvlen)) as u16,
        });
    }
    for _ in 0..rng.below(3) {
        // Unknown protocol IDs included on purpose: descriptors of
        // protocols this build has never heard of must survive.
        let proto = ProtocolId(rng.below(2000) as u16);
        ia.path_descriptors.push(PathDescriptor::new(
            proto,
            rng.below(200) as u16,
            (0..rng.below(32)).map(|_| rng.next_u64() as u8).collect(),
        ));
    }
    for _ in 0..rng.below(3) {
        ia.island_descriptors.push(IslandDescriptor::new(
            IslandId(1 + rng.below(1000) as u32),
            ProtocolId(rng.below(2000) as u16),
            rng.below(200) as u16,
            (0..rng.below(32)).map(|_| rng.next_u64() as u8).collect(),
        ));
    }
    if rng.below(4) == 0 {
        ia.unknown_records.push(UnknownRecord {
            tag: 100 + rng.below(1000),
            data: Bytes::from(
                (0..rng.below(16)).map(|_| rng.next_u64() as u8).collect::<Vec<u8>>(),
            ),
        });
    }
    ia
}

fn mutate(bytes: &mut Vec<u8>, rng: &mut TestRng) {
    if bytes.is_empty() {
        bytes.push(rng.next_u64() as u8);
        return;
    }
    match rng.below(6) {
        // Bit flip.
        0 => {
            let i = rng.below(bytes.len() as u64) as usize;
            bytes[i] ^= 1 << rng.below(8);
        }
        // Truncate.
        1 => {
            let keep = rng.below(bytes.len() as u64) as usize;
            bytes.truncate(keep);
        }
        // Length lie: overwrite a byte with an implausible length.
        2 => {
            let i = rng.below(bytes.len() as u64) as usize;
            bytes[i] = [0x7f, 0xff, 0x00][rng.below(3) as usize];
        }
        // Duplicate a slice (stutters records, duplicates descriptors).
        3 => {
            let start = rng.below(bytes.len() as u64) as usize;
            let end = start + rng.below((bytes.len() - start) as u64 + 1) as usize;
            let slice: Vec<u8> = bytes[start..end].to_vec();
            let at = rng.below(bytes.len() as u64 + 1) as usize;
            bytes.splice(at..at, slice);
        }
        // Splice random garbage in.
        4 => {
            let at = rng.below(bytes.len() as u64 + 1) as usize;
            let garbage: Vec<u8> = (0..1 + rng.below(8)).map(|_| rng.next_u64() as u8).collect();
            bytes.splice(at..at, garbage);
        }
        // Append an unknown-tag record with a lying length.
        _ => {
            bytes.extend_from_slice(&[0xc9, 0x01, 0x40, 0xde, 0xad]);
        }
    }
}

#[test]
fn mutation_fuzz_decode_never_panics() {
    let cases: u64 =
        std::env::var("DBGP_WIRE_FUZZ_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(10_000);
    for case in 0..cases {
        let mut rng = TestRng::for_case("wire-mutation-fuzz", case);
        let ia = seed_ia(&mut rng);
        // The undamaged frame must round-trip exactly.
        assert_canonical(&ia, "seed");
        let mut bytes = ia.encode().to_vec();
        for _ in 0..=rng.below(3) {
            mutate(&mut bytes, &mut rng);
        }
        // Decode must return, not panic; accepted frames must stay
        // canonical even after damage.
        if let Ok(decoded) = decode(&bytes) {
            assert_canonical(&decoded, "mutated");
        }
    }
}
