//! Regression-corpus replay for the non-UPDATE message types: OPEN
//! (capability negotiation), KEEPALIVE, and NOTIFICATION frames, as
//! `msg-*.bin` in `fuzz_corpus/`.
//!
//! These are the frames the `dbgpd` handshake path decodes from a real
//! TCP stream; the same corpus is replayed through the sans-IO stream
//! reassembler in `dbgp-session` (see `corpus_reassembly.rs` there),
//! so a framing bug cannot regress on either decode path.

use bytes::BytesMut;
use dbgp_wire::message::{notif, BgpMessage, Capability};
use dbgp_wire::WireError;

fn decode(bytes: &[u8], four_octet: bool) -> Result<Option<BgpMessage>, WireError> {
    let mut buf = BytesMut::from(bytes);
    BgpMessage::decode(&mut buf, four_octet)
}

fn corpus(name: &str) -> Vec<u8> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/fuzz_corpus");
    std::fs::read(format!("{dir}/{name}")).expect("corpus file")
}

#[test]
fn msg_corpus_replay_never_panics() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/fuzz_corpus");
    let mut replayed = 0;
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .expect("fuzz_corpus directory")
        .map(|e| e.expect("corpus entry").path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        if !name.starts_with("msg-") || !name.ends_with(".bin") {
            continue;
        }
        let data = std::fs::read(&path).expect("corpus file");
        for four_octet in [false, true] {
            // Typed result either way; a panic fails the test.
            let _ = decode(&data, four_octet);
        }
        replayed += 1;
    }
    assert!(replayed >= 10, "message fuzz corpus lost files: only {replayed} replayed");
}

/// The behaviours the message corpus pins, with their typed errors.
#[test]
fn msg_corpus_inputs_decode_as_pinned() {
    // A well-formed OPEN with MP + 4-octet-AS + D-BGP IA capabilities.
    match decode(&corpus("msg-open-ia.bin"), false) {
        Ok(Some(BgpMessage::Open(open))) => {
            assert_eq!(open.effective_as(), 65010);
            assert_eq!(open.hold_time, 90);
            assert!(open.supports_ia());
            assert!(open.capabilities.contains(&Capability::FourOctetAs(65010)));
        }
        other => panic!("valid OPEN should decode, got {other:?}"),
    }

    // BGP version 3 is rejected before anything else is read.
    assert_eq!(
        decode(&corpus("msg-open-bad-version.bin"), false),
        Err(WireError::UnsupportedVersion(3))
    );

    // The capabilities parameter length claims 0xff bytes that are not
    // there — the exact byte `dbgpd --test-corrupt-open` damages, so
    // the CI negative check and this pin cover the same decode branch.
    assert_eq!(
        decode(&corpus("msg-open-caplen-lie.bin"), false),
        Err(WireError::Truncated { context: "optional parameter body" })
    );

    // Hold time 1 is in RFC 4271's forbidden 1..=2 range.
    assert_eq!(
        decode(&corpus("msg-open-bad-holdtime.bin"), false),
        Err(WireError::UnacceptableHoldTime(1))
    );

    // KEEPALIVE is exactly the 19-byte header...
    assert_eq!(decode(&corpus("msg-keepalive.bin"), false), Ok(Some(BgpMessage::Keepalive)));
    // ...and any body makes it malformed.
    assert_eq!(decode(&corpus("msg-keepalive-overlong.bin"), false), Err(WireError::BadLength(20)));

    // NOTIFICATION Cease / Connection Collision Resolution — what a
    // collision loser receives on the wire.
    match decode(&corpus("msg-notification-cease-collision.bin"), false) {
        Ok(Some(BgpMessage::Notification(n))) => {
            assert_eq!((n.error_code, n.subcode), (notif::CEASE, 7));
        }
        other => panic!("cease notification should decode, got {other:?}"),
    }

    // A NOTIFICATION body needs at least code + subcode.
    assert_eq!(
        decode(&corpus("msg-notification-trunc.bin"), false),
        Err(WireError::Truncated { context: "NOTIFICATION body" })
    );

    assert_eq!(decode(&corpus("msg-bad-marker.bin"), false), Err(WireError::BadMarker));
    assert_eq!(decode(&corpus("msg-bad-type.bin"), false), Err(WireError::BadMessageType(9)));
}
