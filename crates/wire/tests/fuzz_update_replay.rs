//! Structured fuzzing of multi-NLRI UPDATE decoding plus
//! regression-corpus replay, mirroring `fuzz_corpus_replay` for the
//! BGP message layer.
//!
//! * **Corpus replay** — every `update-*.bin` in `fuzz_corpus/` is a
//!   framed BGP message fed through [`BgpMessage::decode`] at both AS
//!   widths. Malformed inputs must fail with *typed* errors
//!   ([`WireError`]), never a panic; accepted frames must re-encode
//!   canonically.
//! * **Mutation fuzzing** — multi-NLRI UPDATEs built by
//!   [`UpdateMsg::pack_announcements`] are encoded and then damaged
//!   (bit flips, truncations, length lies, splices). Decode must
//!   return, not panic.

use bytes::BytesMut;
use dbgp_wire::message::{BgpMessage, UpdateMsg, MAX_MESSAGE_LEN};
use dbgp_wire::{AsPath, Ipv4Addr, Ipv4Prefix, Origin, PathAttribute, WireError};
use proptest::test_runner::TestRng;

fn decode(bytes: &[u8], four_octet: bool) -> Result<Option<BgpMessage>, WireError> {
    let mut buf = BytesMut::from(bytes);
    BgpMessage::decode(&mut buf, four_octet)
}

fn corpus(name: &str) -> Vec<u8> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/fuzz_corpus");
    std::fs::read(format!("{dir}/{name}")).expect("corpus file")
}

#[test]
fn update_corpus_replay_never_panics() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/fuzz_corpus");
    let mut replayed = 0;
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .expect("fuzz_corpus directory")
        .map(|e| e.expect("corpus entry").path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        if !name.starts_with("update-") || !name.ends_with(".bin") {
            continue;
        }
        let data = std::fs::read(&path).expect("corpus file");
        for four_octet in [false, true] {
            // Typed result either way; a panic fails the test.
            let _ = decode(&data, four_octet);
        }
        replayed += 1;
    }
    assert!(replayed >= 6, "UPDATE fuzz corpus lost files: only {replayed} replayed");
}

/// The regressions the UPDATE corpus pins, with their typed errors.
#[test]
fn update_corpus_inputs_fail_with_typed_errors() {
    // NLRI length octet declares a /24 but only two prefix octets
    // follow: `Ipv4Prefix::decode` must report truncation, not read
    // out of bounds.
    assert_eq!(
        decode(&corpus("update-trunc-prefix.bin"), false),
        Err(WireError::Truncated { context: "prefix bytes" })
    );

    // Prefix length 33 is beyond /32.
    assert_eq!(
        decode(&corpus("update-overlong-prefix.bin"), false),
        Err(WireError::MalformedPrefix)
    );

    // Withdrawn-routes length field lies about the bytes behind it.
    assert_eq!(
        decode(&corpus("update-trunc-withdrawn.bin"), false),
        Err(WireError::Truncated { context: "UPDATE withdrawn routes" })
    );

    // Zero withdrawn routes, zero attributes, zero NLRI — the
    // End-of-RIB marker shape (RFC 4724 §2) — is legal and empty.
    match decode(&corpus("update-zero-nlri.bin"), false) {
        Ok(Some(BgpMessage::Update(u))) => {
            assert!(u.withdrawn.is_empty() && u.attributes.is_empty() && u.nlri.is_empty());
        }
        other => panic!("zero-NLRI UPDATE should decode empty, got {other:?}"),
    }

    // A /32 host route is the maximum-length NLRI: five octets.
    match decode(&corpus("update-max-prefix.bin"), false) {
        Ok(Some(BgpMessage::Update(u))) => {
            assert_eq!(u.nlri, vec!["192.0.2.1/32".parse::<Ipv4Prefix>().unwrap()]);
        }
        other => panic!("max-length prefix should decode, got {other:?}"),
    }

    // Three prefixes under one shared attribute block.
    match decode(&corpus("update-multi-nlri.bin"), false) {
        Ok(Some(BgpMessage::Update(u))) => {
            let want: Vec<Ipv4Prefix> = ["10.0.0.0/8", "128.6.0.0/16", "203.0.113.0/24"]
                .iter()
                .map(|s| s.parse().unwrap())
                .collect();
            assert_eq!(u.nlri, want);
            assert_eq!(u.attributes.len(), 3, "one attribute block for all three");
        }
        other => panic!("multi-NLRI UPDATE should decode, got {other:?}"),
    }
}

// ----- mutation fuzzing ------------------------------------------------

fn seed_prefix(rng: &mut TestRng) -> Ipv4Prefix {
    let len = rng.below(33) as u8;
    Ipv4Prefix::new(Ipv4Addr(rng.next_u64() as u32), len).unwrap()
}

fn seed_updates(rng: &mut TestRng) -> Vec<UpdateMsg> {
    let n = 1 + rng.below(64) as usize;
    let nlri: Vec<Ipv4Prefix> = (0..n).map(|_| seed_prefix(rng)).collect();
    let attrs = vec![
        PathAttribute::Origin(Origin::Igp),
        // ASNs stay under 2^16 so the frame is lossless at either AS
        // width (wider ones map to AS_TRANS in 2-octet sessions).
        PathAttribute::AsPath(AsPath::from_sequence(
            (0..1 + rng.below(5)).map(|_| 1 + rng.below(60_000) as u32).collect::<Vec<u32>>(),
        )),
        PathAttribute::NextHop(Ipv4Addr(rng.next_u64() as u32)),
    ];
    if rng.below(4) == 0 {
        return UpdateMsg::pack_withdrawals(&nlri);
    }
    UpdateMsg::pack_announcements(&nlri, attrs, rng.below(2) == 1)
}

fn mutate(bytes: &mut Vec<u8>, rng: &mut TestRng) {
    if bytes.is_empty() {
        bytes.push(rng.next_u64() as u8);
        return;
    }
    match rng.below(5) {
        0 => {
            let i = rng.below(bytes.len() as u64) as usize;
            bytes[i] ^= 1 << rng.below(8);
        }
        1 => {
            let keep = rng.below(bytes.len() as u64) as usize;
            bytes.truncate(keep);
        }
        // Length lie aimed at the NLRI length octets in the tail.
        2 => {
            let i = rng.below(bytes.len() as u64) as usize;
            bytes[i] = [0x21, 0xff, 0x00, 0x20][rng.below(4) as usize];
        }
        3 => {
            let start = rng.below(bytes.len() as u64) as usize;
            let end = start + rng.below((bytes.len() - start) as u64 + 1) as usize;
            let slice: Vec<u8> = bytes[start..end].to_vec();
            let at = rng.below(bytes.len() as u64 + 1) as usize;
            bytes.splice(at..at, slice);
        }
        _ => {
            let at = rng.below(bytes.len() as u64 + 1) as usize;
            let garbage: Vec<u8> = (0..1 + rng.below(8)).map(|_| rng.next_u64() as u8).collect();
            bytes.splice(at..at, garbage);
        }
    }
}

#[test]
fn mutation_fuzz_update_decode_never_panics() {
    let cases: u64 =
        std::env::var("DBGP_WIRE_FUZZ_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(4_000);
    for case in 0..cases {
        let mut rng = TestRng::for_case("update-nlri-fuzz", case);
        let four_octet = rng.below(2) == 1;
        for msg in seed_updates(&mut rng) {
            let framed = BgpMessage::Update(msg.clone()).encode(four_octet);
            assert!(framed.len() <= MAX_MESSAGE_LEN);
            // The undamaged frame must round-trip exactly.
            match decode(&framed, four_octet) {
                Ok(Some(BgpMessage::Update(u))) => assert_eq!(u, msg, "case {case}"),
                other => panic!("case {case}: seed frame rejected: {other:?}"),
            }
            let mut bytes = framed.to_vec();
            for _ in 0..=rng.below(3) {
                mutate(&mut bytes, &mut rng);
            }
            // Decode must return (typed error or acceptance), not
            // panic — at either AS width, regardless of what the
            // mutation hit.
            let _ = decode(&bytes, four_octet);
            let _ = decode(&bytes, !four_octet);
        }
    }
}
