//! Property-based round-trip and robustness tests for the wire codecs.

use bytes::{Bytes, BytesMut};
use dbgp_wire::attrs::{decode_attribute_list, encode_attribute_list};
use dbgp_wire::ia::{dkey, IslandDescriptor, IslandMembership, PathDescriptor, UnknownRecord};
use dbgp_wire::varint::{get_uvarint, put_uvarint, uvarint_len};
use dbgp_wire::{
    AsPath, AsSegment, BgpMessage, Ia, Ipv4Addr, Ipv4Prefix, IslandId, NotificationMsg, OpenMsg,
    Origin, PathAttribute, PathElem, ProtocolId, UpdateMsg,
};
use proptest::prelude::*;

fn arb_prefix() -> impl Strategy<Value = Ipv4Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(addr, len)| Ipv4Prefix::new(Ipv4Addr(addr), len).unwrap())
}

fn arb_origin() -> impl Strategy<Value = Origin> {
    prop_oneof![Just(Origin::Igp), Just(Origin::Egp), Just(Origin::Incomplete)]
}

fn arb_as_path() -> impl Strategy<Value = AsPath> {
    proptest::collection::vec(
        prop_oneof![
            proptest::collection::vec(1u32..100_000, 1..8).prop_map(AsSegment::Sequence),
            proptest::collection::vec(1u32..100_000, 1..5).prop_map(AsSegment::Set),
        ],
        0..4,
    )
    .prop_map(|segments| AsPath { segments })
}

fn arb_attr() -> impl Strategy<Value = PathAttribute> {
    prop_oneof![
        arb_origin().prop_map(PathAttribute::Origin),
        arb_as_path().prop_map(PathAttribute::AsPath),
        any::<u32>().prop_map(|a| PathAttribute::NextHop(Ipv4Addr(a))),
        any::<u32>().prop_map(PathAttribute::Med),
        any::<u32>().prop_map(PathAttribute::LocalPref),
        Just(PathAttribute::AtomicAggregate),
        (1u32..100_000, any::<u32>())
            .prop_map(|(asn, a)| PathAttribute::Aggregator { asn, addr: Ipv4Addr(a) }),
        proptest::collection::vec(any::<u32>(), 0..6).prop_map(PathAttribute::Communities),
    ]
}

fn arb_path_elem() -> impl Strategy<Value = PathElem> {
    prop_oneof![
        (1u32..1_000_000).prop_map(PathElem::As),
        (1u32..1_000_000).prop_map(|i| PathElem::Island(IslandId(i))),
        proptest::collection::vec(1u32..1_000_000, 1..6).prop_map(PathElem::AsSet),
    ]
}

fn arb_ia() -> impl Strategy<Value = Ia> {
    (
        arb_prefix(),
        any::<u32>(),
        arb_origin(),
        proptest::option::of(any::<u32>()),
        proptest::collection::vec(arb_path_elem(), 0..8),
        proptest::collection::vec(
            (100u16..108, proptest::collection::vec(any::<u8>(), 0..64)),
            0..4,
        ),
        proptest::collection::vec(
            (1u32..1000, 100u16..108, proptest::collection::vec(any::<u8>(), 0..64)),
            0..4,
        ),
    )
        .prop_map(|(prefix, nh, origin, med, pv, pds, ids)| {
            let pvlen = pv.len() as u16;
            let mut ia = Ia::originate(prefix, Ipv4Addr(nh));
            ia.origin = origin;
            ia.med = med;
            ia.path_vector = pv;
            // Memberships must be valid ranges; derive them from the
            // path-vector length.
            if pvlen >= 2 {
                ia.memberships.push(IslandMembership {
                    island: IslandId(7),
                    start: 0,
                    end: pvlen / 2,
                });
            }
            for (key, value) in pds {
                ia.path_descriptors.push(PathDescriptor::shared(
                    vec![ProtocolId::WISER, ProtocolId::BGP],
                    key,
                    value,
                ));
            }
            for (island, key, value) in ids {
                ia.island_descriptors.push(IslandDescriptor::new(
                    IslandId(island),
                    ProtocolId::SCION,
                    key,
                    value,
                ));
            }
            ia
        })
        .prop_filter("memberships need nonempty range", |ia| ia.validate().is_ok())
}

proptest! {
    #[test]
    fn varint_roundtrips(v in any::<u64>()) {
        let mut buf = BytesMut::new();
        put_uvarint(&mut buf, v);
        prop_assert_eq!(buf.len(), uvarint_len(v));
        let mut bytes = buf.freeze();
        prop_assert_eq!(get_uvarint(&mut bytes).unwrap(), v);
    }

    #[test]
    fn varint_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..16)) {
        let mut buf = &data[..];
        let _ = get_uvarint(&mut buf);
    }

    #[test]
    fn prefix_roundtrips(p in arb_prefix()) {
        let mut buf = BytesMut::new();
        p.encode(&mut buf);
        let mut bytes = buf.freeze();
        prop_assert_eq!(Ipv4Prefix::decode(&mut bytes).unwrap(), p);
    }

    #[test]
    fn prefix_parse_display_roundtrips(p in arb_prefix()) {
        let shown = p.to_string();
        let reparsed: Ipv4Prefix = shown.parse().unwrap();
        prop_assert_eq!(reparsed, p);
    }

    #[test]
    fn attribute_lists_roundtrip(attrs in proptest::collection::vec(arb_attr(), 0..6)) {
        // Deduplicate by code, as a real UPDATE would.
        let mut seen = std::collections::HashSet::new();
        let attrs: Vec<PathAttribute> =
            attrs.into_iter().filter(|a| seen.insert(a.code())).collect();
        let mut buf = BytesMut::new();
        encode_attribute_list(&attrs, &mut buf, true);
        let decoded = decode_attribute_list(buf.freeze(), true).unwrap();
        prop_assert_eq!(decoded.len(), attrs.len());
        for attr in &attrs {
            // AS paths may be re-chunked on the wire; compare semantics.
            match attr {
                PathAttribute::AsPath(p) => {
                    let out = decoded.iter().find_map(|a| match a {
                        PathAttribute::AsPath(q) => Some(q),
                        _ => None,
                    }).unwrap();
                    prop_assert_eq!(out.hop_count(), p.hop_count());
                }
                other => prop_assert!(decoded.contains(other)),
            }
        }
    }

    #[test]
    fn update_messages_roundtrip(
        withdrawn in proptest::collection::vec(arb_prefix(), 0..4),
        nlri in proptest::collection::vec(arb_prefix(), 0..4),
        path in arb_as_path(),
    ) {
        let mut withdrawn = withdrawn;
        withdrawn.sort();
        withdrawn.dedup();
        let mut nlri = nlri;
        nlri.sort();
        nlri.dedup();
        let attributes = if nlri.is_empty() { vec![] } else {
            vec![
                PathAttribute::Origin(Origin::Igp),
                PathAttribute::AsPath(path),
                PathAttribute::NextHop(Ipv4Addr::new(10, 0, 0, 1)),
            ]
        };
        let msg = BgpMessage::Update(UpdateMsg { withdrawn: withdrawn.clone(), attributes, nlri: nlri.clone() });
        let bytes = msg.encode(true);
        let mut buf = BytesMut::from(&bytes[..]);
        let out = BgpMessage::decode(&mut buf, true).unwrap().unwrap();
        match out {
            BgpMessage::Update(u) => {
                prop_assert_eq!(u.withdrawn, withdrawn);
                prop_assert_eq!(u.nlri, nlri);
            }
            _ => prop_assert!(false, "wrong message type"),
        }
    }

    #[test]
    fn open_roundtrips(asn in 1u32..4_000_000_000, hold in prop_oneof![Just(0u16), 3u16..=65535], id in any::<u32>()) {
        let open = OpenMsg::new(asn, hold, Ipv4Addr(id));
        let bytes = BgpMessage::Open(open).encode(true);
        let mut buf = BytesMut::from(&bytes[..]);
        let out = BgpMessage::decode(&mut buf, true).unwrap().unwrap();
        match out {
            BgpMessage::Open(o) => {
                prop_assert_eq!(o.effective_as(), asn);
                prop_assert_eq!(o.hold_time, hold);
            }
            _ => prop_assert!(false, "wrong message type"),
        }
    }

    #[test]
    fn notification_roundtrips(code in any::<u8>(), sub in any::<u8>(), data in proptest::collection::vec(any::<u8>(), 0..32)) {
        let n = NotificationMsg { error_code: code, subcode: sub, data: Bytes::from(data) };
        let bytes = BgpMessage::Notification(n.clone()).encode(true);
        let mut buf = BytesMut::from(&bytes[..]);
        prop_assert_eq!(
            BgpMessage::decode(&mut buf, true).unwrap().unwrap(),
            BgpMessage::Notification(n)
        );
    }

    #[test]
    fn message_decode_never_panics_on_noise(data in proptest::collection::vec(any::<u8>(), 0..128)) {
        let mut buf = BytesMut::from(&data[..]);
        let _ = BgpMessage::decode(&mut buf, true);
        let mut buf = BytesMut::from(&data[..]);
        let _ = BgpMessage::decode(&mut buf, false);
    }

    #[test]
    fn ia_roundtrips(ia in arb_ia()) {
        let decoded = Ia::decode(ia.encode()).unwrap();
        prop_assert_eq!(decoded, ia);
    }

    #[test]
    fn ia_decode_never_panics_on_noise(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Ia::decode(Bytes::from(data));
    }

    #[test]
    fn ia_unknown_records_pass_through(ia in arb_ia(), tag in 100u64..10_000, payload in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut ia = ia;
        ia.unknown_records.push(UnknownRecord { tag, data: Bytes::from(payload) });
        let decoded = Ia::decode(ia.encode()).unwrap();
        prop_assert_eq!(&decoded.unknown_records, &ia.unknown_records);
        // A second hop re-encodes what it decoded; the record must still
        // be there (transitivity of pass-through).
        let second = Ia::decode(decoded.encode()).unwrap();
        prop_assert_eq!(&second.unknown_records, &ia.unknown_records);
    }

    #[test]
    fn ia_prepend_preserves_validity(ia in arb_ia(), asn in 1u32..1_000_000) {
        let mut ia = ia;
        ia.prepend_as(asn);
        prop_assert!(ia.validate().is_ok());
        prop_assert!(ia.contains_as(asn));
        prop_assert_eq!(Ia::decode(ia.encode()).unwrap(), ia);
    }

    #[test]
    fn ia_wiser_cost_descriptor_is_findable(ia in arb_ia(), cost in any::<u64>()) {
        let mut ia = ia;
        ia.path_descriptors.push(PathDescriptor::new(
            ProtocolId::WISER,
            dkey::WISER_PATH_COST,
            cost.to_be_bytes().to_vec(),
        ));
        let decoded = Ia::decode(ia.encode()).unwrap();
        let d = decoded.path_descriptor(ProtocolId::WISER, dkey::WISER_PATH_COST).unwrap();
        prop_assert_eq!(&d.value[..], &cost.to_be_bytes()[..]);
    }
}
