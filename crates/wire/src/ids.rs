//! Identifier newtypes used throughout the workspace.
//!
//! D-BGP assumes a governing body (IETF/ARIN, paper §3.1) assigns each
//! protocol a unique ID, and islands either receive IDs from the same body
//! or derive them by hashing their border-AS numbers. We model both with
//! plain integers behind newtypes.

use std::fmt;

/// Registry-assigned identifier for an inter-domain routing protocol.
///
/// Constants for the protocols the paper discusses are provided; anything
/// else is available to tests and downstream users.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProtocolId(pub u16);

impl ProtocolId {
    /// The baseline: BGPv4 itself.
    pub const BGP: ProtocolId = ProtocolId(0);
    /// Wiser (Mahajan et al., NSDI'07): path-cost critical fix.
    pub const WISER: ProtocolId = ProtocolId(1);
    /// Pathlet Routing (Godfrey et al., SIGCOMM'09): multi-hop replacement.
    pub const PATHLET: ProtocolId = ProtocolId(2);
    /// SCION-like path-based replacement protocol.
    pub const SCION: ProtocolId = ProtocolId(3);
    /// MIRO (Xu & Rexford, SIGCOMM'06): custom alternate-path service.
    pub const MIRO: ProtocolId = ProtocolId(4);
    /// BGPSec-lite: secure path attestations.
    pub const BGPSEC: ProtocolId = ProtocolId(5);
    /// EQ-BGP-style end-to-end QoS metrics (bottleneck bandwidth).
    pub const EQBGP: ProtocolId = ProtocolId(6);
    /// R-BGP-style backup paths.
    pub const RBGP: ProtocolId = ProtocolId(7);
    /// HLP: hybrid link-state / path-vector replacement.
    pub const HLP: ProtocolId = ProtocolId(8);

    /// Human-readable name for the well-known IDs, or `None`.
    pub fn name(self) -> Option<&'static str> {
        Some(match self {
            ProtocolId::BGP => "BGP",
            ProtocolId::WISER => "Wiser",
            ProtocolId::PATHLET => "Pathlet",
            ProtocolId::SCION => "SCION",
            ProtocolId::MIRO => "MIRO",
            ProtocolId::BGPSEC => "BGPSec",
            ProtocolId::EQBGP => "EQ-BGP",
            ProtocolId::RBGP => "R-BGP",
            ProtocolId::HLP => "HLP",
            _ => return None,
        })
    }
}

impl fmt::Display for ProtocolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.name() {
            Some(n) => f.write_str(n),
            None => write!(f, "proto#{}", self.0),
        }
    }
}

/// Identifier for an island: a cluster of contiguous ASes running the same
/// protocol (paper §2).
///
/// Singleton islands conventionally reuse their AS number as their island
/// ID (paper §3.1); [`IslandId::from_as`] captures that convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IslandId(pub u32);

impl IslandId {
    /// Island ID of a singleton island: its AS number.
    pub fn from_as(asn: u32) -> Self {
        IslandId(asn)
    }

    /// Derive an island ID by hashing the member border-AS numbers, the
    /// self-assignment alternative the paper sketches in §3.1.
    ///
    /// Deterministic FNV-1a over the sorted AS list, with the high bit set
    /// so hashed IDs cannot collide with 31-bit AS-number IDs.
    pub fn from_border_ases(border_ases: &[u32]) -> Self {
        let mut sorted: Vec<u32> = border_ases.to_vec();
        sorted.sort_unstable();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for asn in sorted {
            for byte in asn.to_be_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
        IslandId((h as u32) | 0x8000_0000)
    }
}

impl fmt::Display for IslandId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "I{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_names() {
        assert_eq!(ProtocolId::BGP.to_string(), "BGP");
        assert_eq!(ProtocolId::WISER.to_string(), "Wiser");
        assert_eq!(ProtocolId(999).to_string(), "proto#999");
    }

    #[test]
    fn hashed_island_ids_are_order_independent() {
        let a = IslandId::from_border_ases(&[100, 200, 300]);
        let b = IslandId::from_border_ases(&[300, 100, 200]);
        assert_eq!(a, b);
    }

    #[test]
    fn hashed_island_ids_never_collide_with_small_as_numbers() {
        for seed in 0..64u32 {
            let id = IslandId::from_border_ases(&[seed, seed + 7]);
            assert!(id.0 & 0x8000_0000 != 0);
        }
    }

    #[test]
    fn distinct_border_sets_get_distinct_ids() {
        let a = IslandId::from_border_ases(&[1, 2]);
        let b = IslandId::from_border_ases(&[1, 3]);
        assert_ne!(a, b);
    }
}
