//! Integrated Advertisements (IAs): D-BGP's multi-protocol advertisement
//! container (paper §3.2, Figures 4 and 7).
//!
//! An IA describes one path to one baseline-format destination prefix and
//! carries, for every protocol running on that path:
//!
//! * a **path vector** whose elements may be AS numbers, island IDs or
//!   AS_SETs — the common loop-avoidance denominator all protocols share
//!   (requirement G-R5);
//! * **island memberships** mapping contiguous path-vector entries to the
//!   island they belong to, which tells sources how to layer
//!   multi-network-protocol headers (G-R4);
//! * **path descriptors**: per-protocol attributes of the whole path
//!   (e.g., Wiser's scaled path cost, BGPSec's attestation). A descriptor
//!   names *all* protocols that share it, which is what makes critical
//!   fixes nearly free in the overhead analysis of §6.2;
//! * **island descriptors**: attributes of one island on the path (e.g.,
//!   a SCION island's within-island paths, a MIRO island's service
//!   portal, a Wiser island's cost-exchange portal).
//!
//! The wire form is a tag-length-value stream with varint tags and
//! lengths. Records with unknown tags are preserved byte-for-byte and
//! re-emitted on encode, so even the *container* is forward-compatible —
//! a D-BGP speaker can pass through IA extensions it has never heard of.

use crate::attrs::Origin;
use crate::error::{WireError, WireResult};
use crate::ids::{IslandId, ProtocolId};
use crate::prefix::{Ipv4Addr, Ipv4Prefix};
use crate::varint::{get_uvarint, put_uvarint, uvarint_len};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Well-known descriptor keys for the protocols this workspace ships.
///
/// A real deployment would carve these out of an IANA-style registry next
/// to the protocol IDs; the numbers only need to be unique per protocol.
pub mod dkey {
    /// Wiser: accumulated, scaled path cost (`u64`).
    pub const WISER_PATH_COST: u16 = 1;
    /// Wiser: IPv4 address of the island's cost-exchange portal.
    pub const WISER_PORTAL: u16 = 2;
    /// BGPSec-lite: attestation chain.
    pub const BGPSEC_ATTESTATION: u16 = 3;
    /// SCION-like: list of within-island paths (border-router IDs).
    pub const SCION_PATHS: u16 = 4;
    /// MIRO: IPv4 address of the island's service portal.
    pub const MIRO_PORTAL: u16 = 5;
    /// Pathlet Routing: within-island pathlets (FID + hop list).
    pub const PATHLET_PATHLETS: u16 = 6;
    /// EQ-BGP archetype: bottleneck bandwidth observed so far (`u64`).
    pub const EQBGP_BOTTLENECK_BW: u16 = 7;
    /// R-BGP: backup-path availability marker.
    pub const RBGP_BACKUP: u16 = 8;
    /// Generic: address-format gateway lookup service (paper §3.2's
    /// stub-island address-mapping example).
    pub const ADDR_LOOKUP_SERVICE: u16 = 9;
}

/// One element of an IA path vector.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PathElem {
    /// An ordinary AS number.
    As(u32),
    /// An island that chose to abstract away its interior (paper §3.2):
    /// loop detection then works at island granularity.
    Island(IslandId),
    /// An unordered set of ASes, used by islands that list member ASes
    /// inside an AS_SET so gulf ASes do not see an overly long path.
    AsSet(Vec<u32>),
}

impl PathElem {
    /// Contribution to path length for BGP-style shortest-path
    /// comparison: sets and islands count once.
    pub fn hop_count(&self) -> usize {
        1
    }
}

impl fmt::Display for PathElem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathElem::As(asn) => write!(f, "{asn}"),
            PathElem::Island(id) => write!(f, "{id}"),
            PathElem::AsSet(ases) => {
                let strs: Vec<String> = ases.iter().map(u32::to_string).collect();
                write!(f, "{{{}}}", strs.join(","))
            }
        }
    }
}

/// Declares that path-vector entries `[start, end)` belong to `island`.
///
/// Gulf ASes appear in no membership; singleton islands map one entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IslandMembership {
    /// The island the entries belong to.
    pub island: IslandId,
    /// First covered path-vector index (0 = most recently prepended).
    pub start: u16,
    /// One past the last covered index.
    pub end: u16,
}

/// A per-protocol attribute of the entire path (paper Figure 4, "Path
/// descriptors").
///
/// `protocols` lists every protocol sharing this field — e.g. origin and
/// next-hop are shared by BGP, Wiser and BGPSec, which is why critical
/// fixes add so little to IA size (§6.2's `CFu` sharing factor).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PathDescriptor {
    /// Protocols that share this descriptor (never empty).
    pub protocols: Vec<ProtocolId>,
    /// Descriptor key, scoped to the owning protocol(s); see [`dkey`].
    pub key: u16,
    /// Opaque value, interpreted by the owning protocols' decision
    /// modules.
    pub value: Vec<u8>,
}

impl PathDescriptor {
    /// A descriptor owned by a single protocol.
    pub fn new(protocol: ProtocolId, key: u16, value: Vec<u8>) -> Self {
        PathDescriptor { protocols: vec![protocol], key, value }
    }

    /// A descriptor shared by several protocols.
    pub fn shared(protocols: Vec<ProtocolId>, key: u16, value: Vec<u8>) -> Self {
        debug_assert!(!protocols.is_empty());
        PathDescriptor { protocols, key, value }
    }

    /// Does `protocol` own (or co-own) this descriptor?
    pub fn owned_by(&self, protocol: ProtocolId) -> bool {
        self.protocols.contains(&protocol)
    }
}

/// A per-island attribute (paper Figure 4, "Island descriptors"): service
/// portals, within-island paths, pathlets, address-lookup services.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IslandDescriptor {
    /// Which island this describes.
    pub island: IslandId,
    /// The protocol the descriptor belongs to.
    pub protocol: ProtocolId,
    /// Descriptor key; see [`dkey`].
    pub key: u16,
    /// Opaque value.
    pub value: Vec<u8>,
}

impl IslandDescriptor {
    /// Construct an island descriptor.
    pub fn new(island: IslandId, protocol: ProtocolId, key: u16, value: Vec<u8>) -> Self {
        IslandDescriptor { island, protocol, key, value }
    }
}

/// A record whose tag this implementation does not know. Preserved and
/// re-emitted verbatim so future IA extensions survive transit through
/// today's speakers.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct UnknownRecord {
    /// The unrecognized tag.
    pub tag: u64,
    /// Raw record payload.
    pub data: Bytes,
}

/// An Integrated Advertisement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ia {
    /// Destination, in the baseline address format (paper: IPv4).
    pub prefix: Ipv4Prefix,
    /// Baseline origin marker (shared field in Figure 4).
    pub origin: Origin,
    /// Baseline next hop (shared field in Figure 4).
    pub next_hop: Ipv4Addr,
    /// Optional multi-exit discriminator, kept for baseline parity.
    pub med: Option<u32>,
    /// The shared path vector, most recently prepended element first.
    pub path_vector: Vec<PathElem>,
    /// Which path-vector entries belong to which island.
    pub memberships: Vec<IslandMembership>,
    /// Per-protocol path attributes.
    pub path_descriptors: Vec<PathDescriptor>,
    /// Per-island attributes.
    pub island_descriptors: Vec<IslandDescriptor>,
    /// Unrecognized records preserved for pass-through.
    pub unknown_records: Vec<UnknownRecord>,
}

impl Ia {
    /// An IA originated by the destination itself: empty path vector.
    pub fn originate(prefix: Ipv4Prefix, next_hop: Ipv4Addr) -> Self {
        Ia {
            prefix,
            origin: Origin::Igp,
            next_hop,
            med: None,
            path_vector: Vec::new(),
            memberships: Vec::new(),
            path_descriptors: Vec::new(),
            island_descriptors: Vec::new(),
            unknown_records: Vec::new(),
        }
    }

    /// Start building an IA fluently.
    pub fn builder(prefix: Ipv4Prefix, next_hop: Ipv4Addr) -> IaBuilder {
        IaBuilder { ia: Ia::originate(prefix, next_hop) }
    }

    /// Path length for BGP-style comparison (AS_SETs and islands count 1).
    pub fn hop_count(&self) -> usize {
        self.path_vector.iter().map(PathElem::hop_count).sum()
    }

    /// Loop check: does the path already mention this AS number?
    pub fn contains_as(&self, asn: u32) -> bool {
        self.path_vector.iter().any(|e| match e {
            PathElem::As(a) => *a == asn,
            PathElem::AsSet(ases) => ases.contains(&asn),
            PathElem::Island(_) => false,
        })
    }

    /// Loop check: does the path already mention this island?
    pub fn contains_island(&self, island: IslandId) -> bool {
        self.path_vector.iter().any(|e| matches!(e, PathElem::Island(i) if *i == island))
            || self.memberships.iter().any(|m| m.island == island)
    }

    /// Prepend an AS number (the normal per-hop operation), shifting all
    /// membership ranges right by one.
    pub fn prepend_as(&mut self, asn: u32) {
        self.path_vector.insert(0, PathElem::As(asn));
        for m in &mut self.memberships {
            m.start += 1;
            m.end += 1;
        }
    }

    /// Record that the frontmost `count` path-vector entries belong to
    /// `island` (the "state island membership" egress filter of §3.3).
    pub fn declare_membership(&mut self, island: IslandId, count: u16) -> WireResult<()> {
        if count as usize > self.path_vector.len() {
            return Err(WireError::BadMembershipRange);
        }
        self.memberships.push(IslandMembership { island, start: 0, end: count });
        Ok(())
    }

    /// Replace the frontmost `count` entries with a single island ID (the
    /// "abstract away intra-island details" egress filter of §3.3).
    ///
    /// Loop detection thereafter works at island granularity for those
    /// hops, which is exactly the path-diversity trade-off §3.2 describes.
    pub fn abstract_island(&mut self, island: IslandId, count: u16) -> WireResult<()> {
        let count = count as usize;
        if count > self.path_vector.len() {
            return Err(WireError::BadMembershipRange);
        }
        self.path_vector.splice(0..count, [PathElem::Island(island)]);
        let removed = count as i32 - 1;
        self.memberships.retain(|m| m.start as usize >= count);
        for m in &mut self.memberships {
            m.start = (m.start as i32 - removed) as u16;
            m.end = (m.end as i32 - removed) as u16;
        }
        self.memberships.push(IslandMembership { island, start: 0, end: 1 });
        Ok(())
    }

    /// All path descriptors owned (or co-owned) by `protocol`.
    pub fn path_descriptors_for(
        &self,
        protocol: ProtocolId,
    ) -> impl Iterator<Item = &PathDescriptor> {
        self.path_descriptors.iter().filter(move |d| d.owned_by(protocol))
    }

    /// The first path descriptor with this protocol + key, if any.
    pub fn path_descriptor(&self, protocol: ProtocolId, key: u16) -> Option<&PathDescriptor> {
        self.path_descriptors.iter().find(|d| d.owned_by(protocol) && d.key == key)
    }

    /// All island descriptors owned by `protocol`.
    pub fn island_descriptors_for(
        &self,
        protocol: ProtocolId,
    ) -> impl Iterator<Item = &IslandDescriptor> {
        self.island_descriptors.iter().filter(move |d| d.protocol == protocol)
    }

    /// The set of protocols mentioned anywhere in this IA — what G-R4
    /// exposes to islands and gulf ASes.
    pub fn protocols_on_path(&self) -> Vec<ProtocolId> {
        let mut out: Vec<ProtocolId> = Vec::new();
        let mut push = |p: ProtocolId| {
            if !out.contains(&p) {
                out.push(p);
            }
        };
        push(ProtocolId::BGP);
        for d in &self.path_descriptors {
            for &p in &d.protocols {
                push(p);
            }
        }
        for d in &self.island_descriptors {
            push(d.protocol);
        }
        out
    }

    /// Drop every descriptor and unknown record that does not belong to
    /// one of `keep`. This is what a *BGP-baseline* Internet does at every
    /// gulf hop (§6.3's comparison case) and what a gulf operator's
    /// global filter does to a protocol it has blacklisted.
    pub fn retain_protocols(&mut self, keep: &[ProtocolId]) {
        self.path_descriptors.retain(|d| d.protocols.iter().any(|p| keep.contains(p)));
        self.island_descriptors.retain(|d| keep.contains(&d.protocol));
        self.unknown_records.clear();
    }

    /// Remove descriptors belonging to the given protocols, keeping
    /// everything else (including unknown records). This is the gulf
    /// operator's per-protocol blacklist filter of §3.3 — "they would
    /// only need to know the protocol ID to do so".
    pub fn strip_protocols(&mut self, remove: &[ProtocolId]) {
        for d in &mut self.path_descriptors {
            d.protocols.retain(|p| !remove.contains(p));
        }
        self.path_descriptors.retain(|d| !d.protocols.is_empty());
        self.island_descriptors.retain(|d| !remove.contains(&d.protocol));
    }

    /// The island that `path_vector[idx]` belongs to, if declared.
    pub fn island_of(&self, idx: u16) -> Option<IslandId> {
        if let Some(PathElem::Island(id)) = self.path_vector.get(idx as usize) {
            return Some(*id);
        }
        self.memberships.iter().find(|m| m.start <= idx && idx < m.end).map(|m| m.island)
    }

    /// Validate structural invariants (membership ranges inside the path
    /// vector, non-empty descriptor protocol lists).
    pub fn validate(&self) -> WireResult<()> {
        let len = self.path_vector.len() as u16;
        for m in &self.memberships {
            if m.start >= m.end || m.end > len {
                return Err(WireError::BadMembershipRange);
            }
        }
        for d in &self.path_descriptors {
            if d.protocols.is_empty() {
                return Err(WireError::MalformedIa("path descriptor with no protocols"));
            }
        }
        Ok(())
    }

    // ----- wire codec -------------------------------------------------

    /// Encode to the TLV wire form.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_size_estimate());
        let mut scratch = BytesMut::with_capacity(32);
        let s = &mut scratch;
        put_record(&mut buf, s, tag::PREFIX, |b| self.prefix.encode(b));
        put_record(&mut buf, s, tag::ORIGIN, |b| b.put_u8(self.origin as u8));
        put_record(&mut buf, s, tag::NEXT_HOP, |b| b.put_u32(self.next_hop.0));
        if let Some(med) = self.med {
            put_record(&mut buf, s, tag::MED, |b| put_uvarint(b, med as u64));
        }
        for elem in &self.path_vector {
            put_record(&mut buf, s, tag::PATH_ELEM, |b| match elem {
                PathElem::As(asn) => {
                    b.put_u8(0);
                    put_uvarint(b, *asn as u64);
                }
                PathElem::Island(id) => {
                    b.put_u8(1);
                    put_uvarint(b, id.0 as u64);
                }
                PathElem::AsSet(ases) => {
                    b.put_u8(2);
                    put_uvarint(b, ases.len() as u64);
                    for asn in ases {
                        put_uvarint(b, *asn as u64);
                    }
                }
            });
        }
        for m in &self.memberships {
            put_record(&mut buf, s, tag::MEMBERSHIP, |b| {
                put_uvarint(b, m.island.0 as u64);
                put_uvarint(b, m.start as u64);
                put_uvarint(b, m.end as u64);
            });
        }
        for d in &self.path_descriptors {
            put_record(&mut buf, s, tag::PATH_DESC, |b| {
                put_uvarint(b, d.protocols.len() as u64);
                for p in &d.protocols {
                    put_uvarint(b, p.0 as u64);
                }
                put_uvarint(b, d.key as u64);
                put_uvarint(b, d.value.len() as u64);
                b.put_slice(&d.value);
            });
        }
        for d in &self.island_descriptors {
            put_record(&mut buf, s, tag::ISLAND_DESC, |b| {
                put_uvarint(b, d.island.0 as u64);
                put_uvarint(b, d.protocol.0 as u64);
                put_uvarint(b, d.key as u64);
                put_uvarint(b, d.value.len() as u64);
                b.put_slice(&d.value);
            });
        }
        for r in &self.unknown_records {
            put_uvarint(&mut buf, r.tag);
            put_uvarint(&mut buf, r.data.len() as u64);
            buf.put_slice(&r.data);
        }
        buf.freeze()
    }

    /// Decode from the TLV wire form.
    pub fn decode(mut buf: Bytes) -> WireResult<Self> {
        let mut prefix = None;
        let mut origin = Origin::Incomplete;
        let mut next_hop = Ipv4Addr(0);
        let mut med = None;
        let mut path_vector = Vec::new();
        let mut memberships = Vec::new();
        let mut path_descriptors = Vec::new();
        let mut island_descriptors = Vec::new();
        let mut unknown_records = Vec::new();

        while buf.has_remaining() {
            let t = get_uvarint(&mut buf)?;
            let len = get_uvarint(&mut buf)? as usize;
            if buf.remaining() < len {
                return Err(WireError::Truncated { context: "IA record body" });
            }
            let mut body = buf.split_to(len);
            match t {
                tag::PREFIX => prefix = Some(Ipv4Prefix::decode(&mut body)?),
                tag::ORIGIN => {
                    if body.remaining() < 1 {
                        return Err(WireError::MalformedIa("empty origin"));
                    }
                    origin = Origin::from_u8(body.get_u8())?;
                }
                tag::NEXT_HOP => {
                    if body.remaining() < 4 {
                        return Err(WireError::MalformedIa("short next hop"));
                    }
                    next_hop = Ipv4Addr(body.get_u32());
                }
                tag::MED => {
                    let v = get_uvarint(&mut body)?;
                    med = Some(u32::try_from(v).map_err(|_| WireError::Overflow("med"))?);
                }
                tag::PATH_ELEM => {
                    if body.remaining() < 1 {
                        return Err(WireError::MalformedIa("empty path element"));
                    }
                    let kind = body.get_u8();
                    path_vector.push(match kind {
                        0 => PathElem::As(read_u32(&mut body)?),
                        1 => PathElem::Island(IslandId(read_u32(&mut body)?)),
                        2 => {
                            let n = get_uvarint(&mut body)? as usize;
                            if n > body.remaining() {
                                return Err(WireError::MalformedIa("AS_SET count too large"));
                            }
                            let mut ases = Vec::with_capacity(n);
                            for _ in 0..n {
                                ases.push(read_u32(&mut body)?);
                            }
                            PathElem::AsSet(ases)
                        }
                        _ => return Err(WireError::MalformedIa("unknown path element kind")),
                    });
                }
                tag::MEMBERSHIP => {
                    let island = IslandId(read_u32(&mut body)?);
                    let start = read_u16(&mut body)?;
                    let end = read_u16(&mut body)?;
                    memberships.push(IslandMembership { island, start, end });
                }
                tag::PATH_DESC => {
                    let nproto = get_uvarint(&mut body)? as usize;
                    // Each protocol ID is a varint (>= 1 byte) and the key
                    // and value-length fields still have to follow.
                    if nproto == 0 || nproto.saturating_add(2) > body.remaining() {
                        return Err(WireError::MalformedIa("bad descriptor protocol count"));
                    }
                    let mut protocols = Vec::with_capacity(nproto);
                    for _ in 0..nproto {
                        protocols.push(ProtocolId(read_u16(&mut body)?));
                    }
                    let key = read_u16(&mut body)?;
                    let vlen = get_uvarint(&mut body)? as usize;
                    if body.remaining() < vlen {
                        return Err(WireError::MalformedIa("short descriptor value"));
                    }
                    let value = body.split_to(vlen).to_vec();
                    path_descriptors.push(PathDescriptor { protocols, key, value });
                }
                tag::ISLAND_DESC => {
                    let island = IslandId(read_u32(&mut body)?);
                    let protocol = ProtocolId(read_u16(&mut body)?);
                    let key = read_u16(&mut body)?;
                    let vlen = get_uvarint(&mut body)? as usize;
                    if body.remaining() < vlen {
                        return Err(WireError::MalformedIa("short island descriptor value"));
                    }
                    let value = body.split_to(vlen).to_vec();
                    island_descriptors.push(IslandDescriptor { island, protocol, key, value });
                }
                other => unknown_records.push(UnknownRecord { tag: other, data: body }),
            }
        }

        let prefix = prefix.ok_or(WireError::MalformedIa("missing prefix record"))?;
        let ia = Ia {
            prefix,
            origin,
            next_hop,
            med,
            path_vector,
            memberships,
            path_descriptors,
            island_descriptors,
            unknown_records,
        };
        ia.validate()?;
        Ok(ia)
    }

    /// Exact encoded size in bytes (computed by encoding; used by the
    /// overhead experiments and the stress-test workload).
    pub fn wire_size(&self) -> usize {
        self.encode().len()
    }

    fn wire_size_estimate(&self) -> usize {
        64 + self.path_vector.len() * 6
            + self.path_descriptors.iter().map(|d| d.value.len() + 8).sum::<usize>()
            + self.island_descriptors.iter().map(|d| d.value.len() + 12).sum::<usize>()
            + self.unknown_records.iter().map(|r| r.data.len() + 4).sum::<usize>()
    }
}

impl fmt::Display for Ia {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IA {} via {} path [", self.prefix, self.next_hop)?;
        let mut first = true;
        for e in &self.path_vector {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            write!(f, "{e}")?;
        }
        write!(f, "] protos {{")?;
        let mut first = true;
        for p in self.protocols_on_path() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

/// Fluent construction helper for tests, examples and workload
/// generators.
pub struct IaBuilder {
    ia: Ia,
}

impl IaBuilder {
    /// Append an AS to the *end* of the path vector (origin side).
    pub fn as_hop(mut self, asn: u32) -> Self {
        self.ia.path_vector.push(PathElem::As(asn));
        self
    }

    /// Append an island-ID element to the end of the path vector.
    pub fn island_hop(mut self, island: IslandId) -> Self {
        self.ia.path_vector.push(PathElem::Island(island));
        self
    }

    /// Set the MED.
    pub fn med(mut self, med: u32) -> Self {
        self.ia.med = Some(med);
        self
    }

    /// Set the origin marker.
    pub fn origin(mut self, origin: Origin) -> Self {
        self.ia.origin = origin;
        self
    }

    /// Declare island membership over `[start, end)`.
    pub fn membership(mut self, island: IslandId, start: u16, end: u16) -> Self {
        self.ia.memberships.push(IslandMembership { island, start, end });
        self
    }

    /// Attach a single-protocol path descriptor.
    pub fn path_descriptor(mut self, protocol: ProtocolId, key: u16, value: Vec<u8>) -> Self {
        self.ia.path_descriptors.push(PathDescriptor::new(protocol, key, value));
        self
    }

    /// Attach a shared path descriptor.
    pub fn shared_descriptor(
        mut self,
        protocols: Vec<ProtocolId>,
        key: u16,
        value: Vec<u8>,
    ) -> Self {
        self.ia.path_descriptors.push(PathDescriptor::shared(protocols, key, value));
        self
    }

    /// Attach an island descriptor.
    pub fn island_descriptor(
        mut self,
        island: IslandId,
        protocol: ProtocolId,
        key: u16,
        value: Vec<u8>,
    ) -> Self {
        self.ia.island_descriptors.push(IslandDescriptor::new(island, protocol, key, value));
        self
    }

    /// Finish, validating invariants.
    pub fn build(self) -> WireResult<Ia> {
        self.ia.validate()?;
        Ok(self.ia)
    }
}

mod tag {
    pub const PREFIX: u64 = 1;
    pub const ORIGIN: u64 = 2;
    pub const NEXT_HOP: u64 = 3;
    pub const MED: u64 = 4;
    pub const PATH_ELEM: u64 = 5;
    pub const MEMBERSHIP: u64 = 6;
    pub const PATH_DESC: u64 = 7;
    pub const ISLAND_DESC: u64 = 8;
}

/// Append one `tag | len | body` record. The body is staged in
/// `scratch` (cleared, capacity kept) so a full [`Ia::encode`] reuses
/// one staging allocation across all of its records instead of paying
/// a fresh buffer per record.
fn put_record(
    buf: &mut BytesMut,
    scratch: &mut BytesMut,
    tag: u64,
    body: impl FnOnce(&mut BytesMut),
) {
    scratch.clear();
    body(scratch);
    put_uvarint(buf, tag);
    put_uvarint(buf, scratch.len() as u64);
    buf.put_slice(scratch.as_slice());
    debug_assert!(uvarint_len(tag) >= 1);
}

fn read_u32(buf: &mut Bytes) -> WireResult<u32> {
    let v = get_uvarint(buf)?;
    u32::try_from(v).map_err(|_| WireError::Overflow("u32 field"))
}

fn read_u16(buf: &mut Bytes) -> WireResult<u16> {
    let v = get_uvarint(buf)?;
    u16::try_from(v).map_err(|_| WireError::Overflow("u16 field"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    /// The Figure-4 IA from the paper: a path through a Wiser singleton
    /// island (AS 3), a SCION island (A), a MIRO island (G), a gulf AS
    /// (4000), and a BGPSec island (K).
    fn figure4_ia() -> Ia {
        let island_a = IslandId(1001);
        let island_g = IslandId(1007);
        let island_k = IslandId(1011);
        Ia::builder(p("128.6.0.0/32"), Ipv4Addr::new(195, 2, 27, 0))
            .origin(Origin::Egp)
            .as_hop(3)
            .island_hop(island_a)
            .as_hop(16)
            .as_hop(19)
            .as_hop(4000)
            .membership(island_g, 2, 4)
            .membership(island_k, 5, 6)
            .as_hop(77)
            .shared_descriptor(
                vec![ProtocolId::WISER],
                dkey::WISER_PATH_COST,
                100u64.to_be_bytes().to_vec(),
            )
            .path_descriptor(ProtocolId::BGPSEC, dkey::BGPSEC_ATTESTATION, b"<signatures>".to_vec())
            .island_descriptor(
                island_a,
                ProtocolId::SCION,
                dkey::SCION_PATHS,
                b"br70 br50 br10 br1;br70 br20 br5 br1".to_vec(),
            )
            .island_descriptor(
                island_g,
                ProtocolId::MIRO,
                dkey::MIRO_PORTAL,
                Ipv4Addr::new(173, 82, 2, 0).octets().to_vec(),
            )
            .island_descriptor(
                IslandId::from_as(3),
                ProtocolId::WISER,
                dkey::WISER_PORTAL,
                Ipv4Addr::new(163, 42, 5, 0).octets().to_vec(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn figure4_roundtrip() {
        let ia = figure4_ia();
        let decoded = Ia::decode(ia.encode()).unwrap();
        assert_eq!(decoded, ia);
    }

    #[test]
    fn figure4_protocols_on_path() {
        let protos = figure4_ia().protocols_on_path();
        for expect in [
            ProtocolId::BGP,
            ProtocolId::WISER,
            ProtocolId::BGPSEC,
            ProtocolId::SCION,
            ProtocolId::MIRO,
        ] {
            assert!(protos.contains(&expect), "missing {expect}");
        }
    }

    #[test]
    fn loop_detection_over_as_and_islands() {
        let ia = figure4_ia();
        assert!(ia.contains_as(4000));
        assert!(ia.contains_as(3));
        assert!(!ia.contains_as(9999));
        assert!(ia.contains_island(IslandId(1001)));
        assert!(ia.contains_island(IslandId(1007)), "membership-declared islands count");
        assert!(!ia.contains_island(IslandId(5)));
    }

    #[test]
    fn as_set_members_count_for_loops() {
        let mut ia = Ia::originate(p("10.0.0.0/8"), Ipv4Addr::new(1, 1, 1, 1));
        ia.path_vector.push(PathElem::AsSet(vec![10, 20, 30]));
        assert!(ia.contains_as(20));
        assert_eq!(ia.hop_count(), 1);
    }

    #[test]
    fn prepend_shifts_memberships() {
        let mut ia = figure4_ia();
        let before: Vec<_> = ia.memberships.clone();
        ia.prepend_as(42);
        assert_eq!(ia.path_vector[0], PathElem::As(42));
        for (b, a) in before.iter().zip(&ia.memberships) {
            assert_eq!(a.start, b.start + 1);
            assert_eq!(a.end, b.end + 1);
        }
        assert!(ia.validate().is_ok());
    }

    #[test]
    fn declare_membership_front() {
        let mut ia = Ia::originate(p("10.0.0.0/8"), Ipv4Addr::new(1, 1, 1, 1));
        ia.prepend_as(30);
        ia.prepend_as(20);
        ia.prepend_as(10);
        ia.declare_membership(IslandId(500), 2).unwrap();
        assert_eq!(ia.island_of(0), Some(IslandId(500)));
        assert_eq!(ia.island_of(1), Some(IslandId(500)));
        assert_eq!(ia.island_of(2), None);
    }

    #[test]
    fn declare_membership_rejects_overrun() {
        let mut ia = Ia::originate(p("10.0.0.0/8"), Ipv4Addr::new(1, 1, 1, 1));
        ia.prepend_as(10);
        assert_eq!(ia.declare_membership(IslandId(1), 2), Err(WireError::BadMembershipRange));
    }

    #[test]
    fn abstract_island_replaces_front_entries() {
        let mut ia = Ia::originate(p("10.0.0.0/8"), Ipv4Addr::new(1, 1, 1, 1));
        for asn in [5, 4, 3, 2, 1] {
            ia.prepend_as(asn);
        }
        // Path is now [1 2 3 4 5]; abstract the front three into island 900.
        ia.abstract_island(IslandId(900), 3).unwrap();
        assert_eq!(
            ia.path_vector,
            vec![PathElem::Island(IslandId(900)), PathElem::As(4), PathElem::As(5)]
        );
        assert_eq!(ia.hop_count(), 3);
        assert_eq!(ia.island_of(0), Some(IslandId(900)));
        assert!(ia.contains_island(IslandId(900)));
        // The abstracted ASes no longer trip AS-level loop detection —
        // the path-diversity trade-off of §3.2.
        assert!(!ia.contains_as(1));
        assert!(ia.validate().is_ok());
    }

    #[test]
    fn abstract_island_shifts_later_memberships() {
        let mut ia = Ia::originate(p("10.0.0.0/8"), Ipv4Addr::new(1, 1, 1, 1));
        for asn in [6, 5, 4, 3, 2, 1] {
            ia.prepend_as(asn);
        }
        ia.memberships.push(IslandMembership { island: IslandId(777), start: 4, end: 6 });
        ia.abstract_island(IslandId(900), 2).unwrap();
        // Two entries became one: the old [4,6) range must now be [3,5).
        let m = ia.memberships.iter().find(|m| m.island == IslandId(777)).unwrap();
        assert_eq!((m.start, m.end), (3, 5));
        assert!(ia.validate().is_ok());
    }

    #[test]
    fn retain_protocols_strips_foreign_descriptors() {
        let mut ia = figure4_ia();
        ia.retain_protocols(&[ProtocolId::BGP, ProtocolId::WISER]);
        assert!(ia.path_descriptor(ProtocolId::WISER, dkey::WISER_PATH_COST).is_some());
        assert!(ia.path_descriptor(ProtocolId::BGPSEC, dkey::BGPSEC_ATTESTATION).is_none());
        assert!(ia.island_descriptors_for(ProtocolId::SCION).next().is_none());
        assert!(ia.island_descriptors_for(ProtocolId::WISER).next().is_some());
    }

    #[test]
    fn shared_descriptor_visible_to_all_owners() {
        let ia = Ia::builder(p("10.0.0.0/8"), Ipv4Addr::new(1, 1, 1, 1))
            .shared_descriptor(
                vec![ProtocolId::BGP, ProtocolId::WISER, ProtocolId::BGPSEC],
                99,
                vec![1],
            )
            .build()
            .unwrap();
        assert!(ia.path_descriptor(ProtocolId::BGP, 99).is_some());
        assert!(ia.path_descriptor(ProtocolId::WISER, 99).is_some());
        assert!(ia.path_descriptor(ProtocolId::BGPSEC, 99).is_some());
        assert!(ia.path_descriptor(ProtocolId::SCION, 99).is_none());
    }

    #[test]
    fn unknown_records_survive_roundtrip() {
        let mut ia = figure4_ia();
        ia.unknown_records.push(UnknownRecord { tag: 4242, data: Bytes::from_static(b"future") });
        let decoded = Ia::decode(ia.encode()).unwrap();
        assert_eq!(decoded.unknown_records, ia.unknown_records);
    }

    #[test]
    fn decode_rejects_missing_prefix() {
        let mut buf = BytesMut::new();
        let mut scratch = BytesMut::new();
        put_record(&mut buf, &mut scratch, tag::ORIGIN, |b| b.put_u8(0));
        assert!(matches!(Ia::decode(buf.freeze()), Err(WireError::MalformedIa(_))));
    }

    #[test]
    fn decode_rejects_bad_membership_range() {
        let mut ia = figure4_ia();
        ia.memberships.push(IslandMembership { island: IslandId(1), start: 90, end: 91 });
        assert_eq!(Ia::decode(ia.encode()), Err(WireError::BadMembershipRange));
    }

    #[test]
    fn decode_rejects_truncation_everywhere() {
        let bytes = figure4_ia().encode();
        // Chopping the stream at any interior point must error, never
        // panic and never loop.
        for cut in 1..bytes.len() {
            let _ = Ia::decode(bytes.slice(..cut));
        }
    }

    #[test]
    fn med_roundtrips() {
        let mut ia = Ia::originate(p("10.0.0.0/8"), Ipv4Addr::new(1, 1, 1, 1));
        ia.med = Some(4096);
        assert_eq!(Ia::decode(ia.encode()).unwrap().med, Some(4096));
    }

    #[test]
    fn display_lists_protocols() {
        let s = figure4_ia().to_string();
        assert!(s.contains("128.6.0.0/32"), "{s}");
        assert!(s.contains("Wiser"), "{s}");
        assert!(s.contains("SCION"), "{s}");
    }

    #[test]
    fn wire_size_tracks_payload() {
        let small = figure4_ia().wire_size();
        let mut big = figure4_ia();
        big.path_descriptors.push(PathDescriptor::new(ProtocolId(50), 1, vec![0u8; 1000]));
        assert!(big.wire_size() > small + 1000);
    }
}
