//! Error type shared by every codec in this crate.

use std::fmt;

/// Decoding / encoding failure for a BGP message or an Integrated
/// Advertisement.
///
/// Variants deliberately mirror the NOTIFICATION error subcodes of
/// RFC 4271 §6 where one applies, so a session layer can translate a
/// `WireError` into the correct NOTIFICATION to send before tearing the
/// session down (see `dbgp-bgp`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes were available than the format requires.
    Truncated {
        /// What was being decoded when the input ran out.
        context: &'static str,
    },
    /// The 16-byte marker at the start of a BGP header was not all-ones.
    BadMarker,
    /// The header `length` field was outside `[19, 4096]` or disagrees
    /// with the message type's minimum size.
    BadLength(u16),
    /// Unknown BGP message type code.
    BadMessageType(u8),
    /// The OPEN carried an unsupported version number.
    UnsupportedVersion(u8),
    /// A hold time of 1 or 2 seconds, which RFC 4271 forbids.
    UnacceptableHoldTime(u16),
    /// A path attribute's flag bits contradict its type code.
    BadAttributeFlags {
        /// Attribute type code.
        code: u8,
        /// The offending flag octet.
        flags: u8,
    },
    /// A well-known mandatory attribute was absent from an UPDATE.
    MissingWellKnownAttribute(u8),
    /// An attribute appeared twice in one UPDATE.
    DuplicateAttribute(u8),
    /// Attribute body malformed (wrong length for fixed-size attribute,
    /// bad enum value, ...).
    MalformedAttribute {
        /// Attribute type code.
        code: u8,
        /// Human-readable detail.
        detail: &'static str,
    },
    /// A prefix had a mask length over 32 or its packed bytes were short.
    MalformedPrefix,
    /// A varint ran past its maximum width or the end of input.
    MalformedVarint,
    /// An IA record's TLV structure was malformed.
    MalformedIa(&'static str),
    /// The IA declared an island-membership range that does not fall
    /// inside its path vector.
    BadMembershipRange,
    /// A value did not fit in the field that must carry it.
    Overflow(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { context } => {
                write!(f, "truncated input while decoding {context}")
            }
            WireError::BadMarker => write!(f, "BGP header marker is not all-ones"),
            WireError::BadLength(l) => write!(f, "bad BGP header length {l}"),
            WireError::BadMessageType(t) => write!(f, "unknown BGP message type {t}"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported BGP version {v}"),
            WireError::UnacceptableHoldTime(h) => write!(f, "unacceptable hold time {h}"),
            WireError::BadAttributeFlags { code, flags } => {
                write!(f, "attribute {code} has invalid flags {flags:#04x}")
            }
            WireError::MissingWellKnownAttribute(c) => {
                write!(f, "missing well-known mandatory attribute {c}")
            }
            WireError::DuplicateAttribute(c) => write!(f, "duplicate attribute {c}"),
            WireError::MalformedAttribute { code, detail } => {
                write!(f, "malformed attribute {code}: {detail}")
            }
            WireError::MalformedPrefix => write!(f, "malformed prefix"),
            WireError::MalformedVarint => write!(f, "malformed varint"),
            WireError::MalformedIa(d) => write!(f, "malformed integrated advertisement: {d}"),
            WireError::BadMembershipRange => {
                write!(f, "island membership range outside path vector")
            }
            WireError::Overflow(what) => write!(f, "value too large for field: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Convenience alias used across the codecs.
pub type WireResult<T> = Result<T, WireError>;
