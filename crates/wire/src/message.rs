//! BGP-4 message framing and the four message bodies (RFC 4271 §4),
//! including the capabilities optional parameter (RFC 5492) and the
//! 4-octet-AS capability (RFC 6793).

use crate::attrs::{self, PathAttribute};
use crate::error::{WireError, WireResult};
use crate::prefix::{Ipv4Addr, Ipv4Prefix};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Minimum BGP message length: the 19-byte header alone (KEEPALIVE).
pub const MIN_MESSAGE_LEN: usize = 19;
/// Maximum BGP message length (RFC 4271 §4.1).
pub const MAX_MESSAGE_LEN: usize = 4096;
/// BGP version implemented.
pub const BGP_VERSION: u8 = 4;

/// OPEN message type code.
pub const TYPE_OPEN: u8 = 1;
/// UPDATE message type code.
pub const TYPE_UPDATE: u8 = 2;
/// NOTIFICATION message type code.
pub const TYPE_NOTIFICATION: u8 = 3;
/// KEEPALIVE message type code.
pub const TYPE_KEEPALIVE: u8 = 4;

/// A capability advertised in an OPEN's optional parameters (RFC 5492).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Capability {
    /// Multiprotocol extensions (RFC 4760): AFI/SAFI pair.
    Multiprotocol {
        /// Address family identifier (1 = IPv4).
        afi: u16,
        /// Subsequent address family identifier (1 = unicast).
        safi: u8,
    },
    /// Four-octet AS numbers (RFC 6793), carrying the speaker's real ASN.
    FourOctetAs(u32),
    /// D-BGP support: the speaker understands Integrated Advertisements.
    /// Uses an experimental capability code.
    DbgpIa,
    /// A capability we do not recognize; preserved verbatim.
    Unknown {
        /// Capability code.
        code: u8,
        /// Raw capability value.
        value: Bytes,
    },
}

const CAP_MULTIPROTOCOL: u8 = 1;
const CAP_FOUR_OCTET_AS: u8 = 65;
const CAP_DBGP_IA: u8 = 230; // experimental range

impl Capability {
    fn encode(&self, buf: &mut impl BufMut) {
        match self {
            Capability::Multiprotocol { afi, safi } => {
                buf.put_u8(CAP_MULTIPROTOCOL);
                buf.put_u8(4);
                buf.put_u16(*afi);
                buf.put_u8(0);
                buf.put_u8(*safi);
            }
            Capability::FourOctetAs(asn) => {
                buf.put_u8(CAP_FOUR_OCTET_AS);
                buf.put_u8(4);
                buf.put_u32(*asn);
            }
            Capability::DbgpIa => {
                buf.put_u8(CAP_DBGP_IA);
                buf.put_u8(0);
            }
            Capability::Unknown { code, value } => {
                buf.put_u8(*code);
                buf.put_u8(value.len() as u8);
                buf.put_slice(value);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        if buf.remaining() < 2 {
            return Err(WireError::Truncated { context: "capability header" });
        }
        let code = buf.get_u8();
        let len = buf.get_u8() as usize;
        if buf.remaining() < len {
            return Err(WireError::Truncated { context: "capability value" });
        }
        let mut value = buf.split_to(len);
        Ok(match (code, len) {
            (CAP_MULTIPROTOCOL, 4) => {
                let afi = value.get_u16();
                let _reserved = value.get_u8();
                let safi = value.get_u8();
                Capability::Multiprotocol { afi, safi }
            }
            (CAP_FOUR_OCTET_AS, 4) => Capability::FourOctetAs(value.get_u32()),
            (CAP_DBGP_IA, 0) => Capability::DbgpIa,
            _ => Capability::Unknown { code, value },
        })
    }
}

/// The OPEN message (RFC 4271 §4.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenMsg {
    /// Protocol version; always 4 on encode.
    pub version: u8,
    /// The 2-octet "My Autonomous System" field. Speakers with 4-octet
    /// ASNs put [`attrs::AS_TRANS`] here and their real ASN in the
    /// [`Capability::FourOctetAs`] capability.
    pub my_as: u16,
    /// Proposed hold time in seconds (0, or >= 3).
    pub hold_time: u16,
    /// BGP identifier (router ID).
    pub bgp_id: Ipv4Addr,
    /// Advertised capabilities.
    pub capabilities: Vec<Capability>,
}

impl OpenMsg {
    /// Build an OPEN for a speaker with the given (possibly 4-octet) ASN.
    pub fn new(asn: u32, hold_time: u16, bgp_id: Ipv4Addr) -> Self {
        let my_as = if asn > u16::MAX as u32 { attrs::AS_TRANS as u16 } else { asn as u16 };
        OpenMsg {
            version: BGP_VERSION,
            my_as,
            hold_time,
            bgp_id,
            capabilities: vec![
                Capability::Multiprotocol { afi: 1, safi: 1 },
                Capability::FourOctetAs(asn),
            ],
        }
    }

    /// The effective ASN: the 4-octet capability value if present, else
    /// the 2-octet field.
    pub fn effective_as(&self) -> u32 {
        for cap in &self.capabilities {
            if let Capability::FourOctetAs(asn) = cap {
                return *asn;
            }
        }
        self.my_as as u32
    }

    /// Whether the peer advertised D-BGP IA support.
    pub fn supports_ia(&self) -> bool {
        self.capabilities.contains(&Capability::DbgpIa)
    }

    fn encode_body(&self, buf: &mut impl BufMut) {
        buf.put_u8(self.version);
        buf.put_u16(self.my_as);
        buf.put_u16(self.hold_time);
        buf.put_u32(self.bgp_id.0);
        let mut caps = BytesMut::new();
        for cap in &self.capabilities {
            cap.encode(&mut caps);
        }
        if caps.is_empty() {
            buf.put_u8(0);
        } else {
            // One optional parameter of type 2 (capabilities) wrapping all
            // capabilities, the common practice.
            buf.put_u8((caps.len() + 2) as u8);
            buf.put_u8(2);
            buf.put_u8(caps.len() as u8);
            buf.put_slice(&caps);
        }
    }

    fn decode_body(mut buf: Bytes) -> WireResult<Self> {
        if buf.remaining() < 10 {
            return Err(WireError::Truncated { context: "OPEN body" });
        }
        let version = buf.get_u8();
        if version != BGP_VERSION {
            return Err(WireError::UnsupportedVersion(version));
        }
        let my_as = buf.get_u16();
        let hold_time = buf.get_u16();
        if hold_time == 1 || hold_time == 2 {
            return Err(WireError::UnacceptableHoldTime(hold_time));
        }
        let bgp_id = Ipv4Addr(buf.get_u32());
        let opt_len = buf.get_u8() as usize;
        if buf.remaining() < opt_len {
            return Err(WireError::Truncated { context: "OPEN optional parameters" });
        }
        let mut params = buf.split_to(opt_len);
        let mut capabilities = Vec::new();
        while params.has_remaining() {
            if params.remaining() < 2 {
                return Err(WireError::Truncated { context: "optional parameter header" });
            }
            let ptype = params.get_u8();
            let plen = params.get_u8() as usize;
            if params.remaining() < plen {
                return Err(WireError::Truncated { context: "optional parameter body" });
            }
            let mut pbody = params.split_to(plen);
            if ptype == 2 {
                while pbody.has_remaining() {
                    capabilities.push(Capability::decode(&mut pbody)?);
                }
            }
            // Other parameter types (deprecated auth) are skipped.
        }
        Ok(OpenMsg { version, my_as, hold_time, bgp_id, capabilities })
    }
}

/// The UPDATE message (RFC 4271 §4.3).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct UpdateMsg {
    /// Prefixes no longer reachable via this peer.
    pub withdrawn: Vec<Ipv4Prefix>,
    /// Attributes shared by every NLRI prefix below.
    pub attributes: Vec<PathAttribute>,
    /// Newly advertised prefixes.
    pub nlri: Vec<Ipv4Prefix>,
}

impl UpdateMsg {
    /// A pure withdrawal.
    pub fn withdraw(prefixes: Vec<Ipv4Prefix>) -> Self {
        UpdateMsg { withdrawn: prefixes, ..Default::default() }
    }

    /// An advertisement of `nlri` with the given attributes.
    pub fn announce(nlri: Vec<Ipv4Prefix>, attributes: Vec<PathAttribute>) -> Self {
        UpdateMsg { withdrawn: Vec::new(), attributes, nlri }
    }

    /// Find an attribute by type code.
    pub fn attr(&self, code: u8) -> Option<&PathAttribute> {
        self.attributes.iter().find(|a| a.code() == code)
    }

    /// Wire size of one prefix in NLRI/withdrawn encoding: the length
    /// octet plus only the octets needed to cover the mask.
    pub fn prefix_wire_len(prefix: &Ipv4Prefix) -> usize {
        1 + (prefix.len() as usize).div_ceil(8)
    }

    /// Split an announcement of `nlri` under one shared attribute block
    /// into as few UPDATEs as fit in [`MAX_MESSAGE_LEN`] (RFC 4271
    /// §4.3 allows any number of NLRI per message; the 4096-byte frame
    /// is the only bound). Every returned message clones the same
    /// attribute `Vec`, so the per-prefix attribute cost on the wire is
    /// amortized across the whole batch.
    ///
    /// Returns an empty `Vec` for empty `nlri`.
    pub fn pack_announcements(
        nlri: &[Ipv4Prefix],
        attributes: Vec<PathAttribute>,
        four_octet: bool,
    ) -> Vec<UpdateMsg> {
        if nlri.is_empty() {
            return Vec::new();
        }
        let mut attrs_buf = BytesMut::new();
        attrs::encode_attribute_list(&attributes, &mut attrs_buf, four_octet);
        // Header (19) + withdrawn-len (2) + attrs-len (2) + attrs.
        let overhead = MIN_MESSAGE_LEN + 4 + attrs_buf.len();
        let budget = MAX_MESSAGE_LEN.saturating_sub(overhead);
        debug_assert!(budget >= 5, "attribute block leaves no room for NLRI");
        let mut out = Vec::new();
        let mut chunk = Vec::new();
        let mut used = 0usize;
        for prefix in nlri {
            let cost = Self::prefix_wire_len(prefix);
            if used + cost > budget && !chunk.is_empty() {
                out.push(UpdateMsg::announce(std::mem::take(&mut chunk), attributes.clone()));
                used = 0;
            }
            chunk.push(*prefix);
            used += cost;
        }
        out.push(UpdateMsg::announce(chunk, attributes));
        out
    }

    /// Split a withdrawal of `prefixes` into as few UPDATEs as fit in
    /// [`MAX_MESSAGE_LEN`]. Returns an empty `Vec` for empty input.
    pub fn pack_withdrawals(prefixes: &[Ipv4Prefix]) -> Vec<UpdateMsg> {
        if prefixes.is_empty() {
            return Vec::new();
        }
        let budget = MAX_MESSAGE_LEN - (MIN_MESSAGE_LEN + 4);
        let mut out = Vec::new();
        let mut chunk = Vec::new();
        let mut used = 0usize;
        for prefix in prefixes {
            let cost = Self::prefix_wire_len(prefix);
            if used + cost > budget && !chunk.is_empty() {
                out.push(UpdateMsg::withdraw(std::mem::take(&mut chunk)));
                used = 0;
            }
            chunk.push(*prefix);
            used += cost;
        }
        out.push(UpdateMsg::withdraw(chunk));
        out
    }

    fn encode_body(&self, buf: &mut impl BufMut, four_octet: bool) {
        let mut withdrawn = BytesMut::new();
        for p in &self.withdrawn {
            p.encode(&mut withdrawn);
        }
        buf.put_u16(withdrawn.len() as u16);
        buf.put_slice(&withdrawn);

        let mut attrs_buf = BytesMut::new();
        attrs::encode_attribute_list(&self.attributes, &mut attrs_buf, four_octet);
        buf.put_u16(attrs_buf.len() as u16);
        buf.put_slice(&attrs_buf);

        for p in &self.nlri {
            p.encode(buf);
        }
    }

    fn decode_body(mut buf: Bytes, four_octet: bool) -> WireResult<Self> {
        if buf.remaining() < 2 {
            return Err(WireError::Truncated { context: "UPDATE withdrawn length" });
        }
        let wlen = buf.get_u16() as usize;
        if buf.remaining() < wlen {
            return Err(WireError::Truncated { context: "UPDATE withdrawn routes" });
        }
        let mut wbuf = buf.split_to(wlen);
        let mut withdrawn = Vec::new();
        while wbuf.has_remaining() {
            withdrawn.push(Ipv4Prefix::decode(&mut wbuf)?);
        }

        if buf.remaining() < 2 {
            return Err(WireError::Truncated { context: "UPDATE attributes length" });
        }
        let alen = buf.get_u16() as usize;
        if buf.remaining() < alen {
            return Err(WireError::Truncated { context: "UPDATE attributes" });
        }
        let abuf = buf.split_to(alen);
        let attributes = attrs::decode_attribute_list(abuf, four_octet)?;

        let mut nlri = Vec::new();
        while buf.has_remaining() {
            nlri.push(Ipv4Prefix::decode(&mut buf)?);
        }

        // RFC 4271 §6.3: announcements require the well-known mandatory
        // attributes.
        if !nlri.is_empty() {
            for required in [attrs::code::ORIGIN, attrs::code::AS_PATH, attrs::code::NEXT_HOP] {
                if !attributes.iter().any(|a| a.code() == required) {
                    return Err(WireError::MissingWellKnownAttribute(required));
                }
            }
        }
        Ok(UpdateMsg { withdrawn, attributes, nlri })
    }
}

/// The NOTIFICATION message (RFC 4271 §4.5): fatal error report sent
/// immediately before closing the session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotificationMsg {
    /// Major error code.
    pub error_code: u8,
    /// Error subcode.
    pub subcode: u8,
    /// Diagnostic data.
    pub data: Bytes,
}

/// NOTIFICATION major error codes.
pub mod notif {
    /// Message header error.
    pub const MESSAGE_HEADER_ERROR: u8 = 1;
    /// OPEN message error.
    pub const OPEN_ERROR: u8 = 2;
    /// UPDATE message error.
    pub const UPDATE_ERROR: u8 = 3;
    /// Hold timer expired.
    pub const HOLD_TIMER_EXPIRED: u8 = 4;
    /// FSM error.
    pub const FSM_ERROR: u8 = 5;
    /// Administrative cease.
    pub const CEASE: u8 = 6;
}

impl NotificationMsg {
    /// Build a NOTIFICATION with no diagnostic data.
    pub fn new(error_code: u8, subcode: u8) -> Self {
        NotificationMsg { error_code, subcode, data: Bytes::new() }
    }

    /// Map a decode failure to the NOTIFICATION a conformant speaker
    /// would emit for it.
    pub fn from_wire_error(err: &WireError) -> Self {
        use WireError::*;
        match err {
            BadMarker => NotificationMsg::new(notif::MESSAGE_HEADER_ERROR, 1),
            BadLength(_) | Truncated { .. } => NotificationMsg::new(notif::MESSAGE_HEADER_ERROR, 2),
            BadMessageType(_) => NotificationMsg::new(notif::MESSAGE_HEADER_ERROR, 3),
            UnsupportedVersion(_) => NotificationMsg::new(notif::OPEN_ERROR, 1),
            UnacceptableHoldTime(_) => NotificationMsg::new(notif::OPEN_ERROR, 6),
            BadAttributeFlags { .. } => NotificationMsg::new(notif::UPDATE_ERROR, 4),
            MissingWellKnownAttribute(_) => NotificationMsg::new(notif::UPDATE_ERROR, 3),
            DuplicateAttribute(_) | MalformedAttribute { .. } => {
                NotificationMsg::new(notif::UPDATE_ERROR, 5)
            }
            MalformedPrefix => NotificationMsg::new(notif::UPDATE_ERROR, 10),
            _ => NotificationMsg::new(notif::UPDATE_ERROR, 0),
        }
    }

    fn encode_body(&self, buf: &mut impl BufMut) {
        buf.put_u8(self.error_code);
        buf.put_u8(self.subcode);
        buf.put_slice(&self.data);
    }

    fn decode_body(mut buf: Bytes) -> WireResult<Self> {
        if buf.remaining() < 2 {
            return Err(WireError::Truncated { context: "NOTIFICATION body" });
        }
        let error_code = buf.get_u8();
        let subcode = buf.get_u8();
        Ok(NotificationMsg { error_code, subcode, data: buf })
    }
}

/// Any BGP message, ready to frame onto the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BgpMessage {
    /// Session negotiation.
    Open(OpenMsg),
    /// Route advertisement / withdrawal.
    Update(UpdateMsg),
    /// Fatal error.
    Notification(NotificationMsg),
    /// Liveness probe.
    Keepalive,
}

impl BgpMessage {
    /// Encode with the 19-byte header (all-ones marker, length, type).
    ///
    /// `four_octet` selects the AS-number width for AS_PATH/AGGREGATOR and
    /// must match what the session negotiated.
    pub fn encode(&self, four_octet: bool) -> Bytes {
        let mut body = BytesMut::new();
        let ty = match self {
            BgpMessage::Open(m) => {
                m.encode_body(&mut body);
                TYPE_OPEN
            }
            BgpMessage::Update(m) => {
                m.encode_body(&mut body, four_octet);
                TYPE_UPDATE
            }
            BgpMessage::Notification(m) => {
                m.encode_body(&mut body);
                TYPE_NOTIFICATION
            }
            BgpMessage::Keepalive => TYPE_KEEPALIVE,
        };
        let total = MIN_MESSAGE_LEN + body.len();
        debug_assert!(total <= MAX_MESSAGE_LEN, "message exceeds 4096 bytes");
        let mut out = BytesMut::with_capacity(total);
        out.put_slice(&[0xff; 16]);
        out.put_u16(total as u16);
        out.put_u8(ty);
        out.put_slice(&body);
        out.freeze()
    }

    /// Decode one framed message from the front of `buf`, consuming it.
    ///
    /// Returns `Ok(None)` if `buf` does not yet hold a complete message
    /// (streaming use); errors are fatal to the session.
    pub fn decode(buf: &mut BytesMut, four_octet: bool) -> WireResult<Option<BgpMessage>> {
        if buf.len() < MIN_MESSAGE_LEN {
            return Ok(None);
        }
        if buf[..16] != [0xff; 16] {
            return Err(WireError::BadMarker);
        }
        let length = u16::from_be_bytes([buf[16], buf[17]]) as usize;
        if !(MIN_MESSAGE_LEN..=MAX_MESSAGE_LEN).contains(&length) {
            return Err(WireError::BadLength(length as u16));
        }
        if buf.len() < length {
            return Ok(None);
        }
        let frame = buf.split_to(length).freeze();
        let ty = frame[18];
        let body = frame.slice(MIN_MESSAGE_LEN..);
        let msg = match ty {
            TYPE_OPEN => BgpMessage::Open(OpenMsg::decode_body(body)?),
            TYPE_UPDATE => BgpMessage::Update(UpdateMsg::decode_body(body, four_octet)?),
            TYPE_NOTIFICATION => BgpMessage::Notification(NotificationMsg::decode_body(body)?),
            TYPE_KEEPALIVE => {
                if !body.is_empty() {
                    return Err(WireError::BadLength(length as u16));
                }
                BgpMessage::Keepalive
            }
            other => return Err(WireError::BadMessageType(other)),
        };
        Ok(Some(msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::{AsPath, Origin};

    fn roundtrip(msg: BgpMessage) -> BgpMessage {
        let bytes = msg.encode(true);
        let mut buf = BytesMut::from(&bytes[..]);
        let out = BgpMessage::decode(&mut buf, true).unwrap().unwrap();
        assert!(buf.is_empty());
        out
    }

    fn sample_update() -> UpdateMsg {
        UpdateMsg::announce(
            vec!["128.6.0.0/16".parse().unwrap(), "10.0.0.0/8".parse().unwrap()],
            vec![
                PathAttribute::Origin(Origin::Igp),
                PathAttribute::AsPath(AsPath::from_sequence(vec![100, 200, 70000])),
                PathAttribute::NextHop(Ipv4Addr::new(192, 0, 2, 1)),
                PathAttribute::Med(50),
            ],
        )
    }

    #[test]
    fn keepalive_roundtrip() {
        assert_eq!(roundtrip(BgpMessage::Keepalive), BgpMessage::Keepalive);
    }

    #[test]
    fn keepalive_is_exactly_19_bytes() {
        assert_eq!(BgpMessage::Keepalive.encode(true).len(), 19);
    }

    #[test]
    fn open_roundtrip_preserves_capabilities() {
        let open = OpenMsg::new(70000, 90, Ipv4Addr::new(10, 0, 0, 1));
        let out = roundtrip(BgpMessage::Open(open.clone()));
        match out {
            BgpMessage::Open(o) => {
                assert_eq!(o.my_as, attrs::AS_TRANS as u16);
                assert_eq!(o.effective_as(), 70000);
                assert_eq!(o.hold_time, 90);
                assert_eq!(o.bgp_id, Ipv4Addr::new(10, 0, 0, 1));
            }
            other => panic!("expected OPEN, got {other:?}"),
        }
    }

    #[test]
    fn open_small_asn_goes_in_my_as_field() {
        let open = OpenMsg::new(64512, 180, Ipv4Addr::new(1, 1, 1, 1));
        assert_eq!(open.my_as, 64512);
        assert_eq!(open.effective_as(), 64512);
    }

    #[test]
    fn open_ia_capability_detected() {
        let mut open = OpenMsg::new(100, 90, Ipv4Addr::new(1, 1, 1, 1));
        assert!(!open.supports_ia());
        open.capabilities.push(Capability::DbgpIa);
        let out = roundtrip(BgpMessage::Open(open));
        match out {
            BgpMessage::Open(o) => assert!(o.supports_ia()),
            other => panic!("expected OPEN, got {other:?}"),
        }
    }

    #[test]
    fn open_rejects_bad_version() {
        let open = OpenMsg { version: 3, ..OpenMsg::new(100, 90, Ipv4Addr::new(1, 1, 1, 1)) };
        let bytes = BgpMessage::Open(open).encode(true);
        let mut buf = BytesMut::from(&bytes[..]);
        assert_eq!(BgpMessage::decode(&mut buf, true), Err(WireError::UnsupportedVersion(3)));
    }

    #[test]
    fn open_rejects_hold_time_one_and_two() {
        for ht in [1u16, 2] {
            let open =
                OpenMsg { hold_time: ht, ..OpenMsg::new(100, 90, Ipv4Addr::new(1, 1, 1, 1)) };
            let bytes = BgpMessage::Open(open).encode(true);
            let mut buf = BytesMut::from(&bytes[..]);
            assert_eq!(
                BgpMessage::decode(&mut buf, true),
                Err(WireError::UnacceptableHoldTime(ht))
            );
        }
    }

    #[test]
    fn update_roundtrip() {
        let update = sample_update();
        let out = roundtrip(BgpMessage::Update(update.clone()));
        match out {
            BgpMessage::Update(u) => {
                assert_eq!(u.nlri, update.nlri);
                assert_eq!(u.attributes.len(), 4);
                assert_eq!(u.attr(attrs::code::MED), Some(&PathAttribute::Med(50)));
            }
            other => panic!("expected UPDATE, got {other:?}"),
        }
    }

    #[test]
    fn pack_announcements_splits_at_frame_limit_and_roundtrips() {
        // 2000 /24s cost 4 bytes each on the wire; they cannot fit in
        // one 4096-byte frame, so the packer must split — and the split
        // messages must decode back to exactly the input set, in order.
        let nlri: Vec<Ipv4Prefix> = (0..2000u32)
            .map(|i| Ipv4Prefix::new(Ipv4Addr(0x0a00_0000 | (i << 8)), 24).unwrap())
            .collect();
        let attrs = sample_update().attributes;
        let msgs = UpdateMsg::pack_announcements(&nlri, attrs.clone(), true);
        assert!(msgs.len() > 1, "2000 prefixes cannot fit one frame");
        let mut decoded = Vec::new();
        for msg in &msgs {
            assert_eq!(msg.attributes, attrs, "attribute block shared verbatim");
            let bytes = BgpMessage::Update(msg.clone()).encode(true);
            assert!(bytes.len() <= MAX_MESSAGE_LEN, "frame of {} bytes", bytes.len());
            let mut buf = BytesMut::from(&bytes[..]);
            match BgpMessage::decode(&mut buf, true).unwrap().unwrap() {
                BgpMessage::Update(u) => decoded.extend(u.nlri),
                other => panic!("expected UPDATE, got {other:?}"),
            }
        }
        assert_eq!(decoded, nlri);
    }

    #[test]
    fn pack_announcements_single_message_when_it_fits() {
        let nlri: Vec<Ipv4Prefix> = vec!["10.0.0.0/8".parse().unwrap()];
        let msgs = UpdateMsg::pack_announcements(&nlri, sample_update().attributes, true);
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].nlri, nlri);
        assert!(UpdateMsg::pack_announcements(&[], Vec::new(), true).is_empty());
    }

    #[test]
    fn pack_withdrawals_splits_and_roundtrips() {
        let prefixes: Vec<Ipv4Prefix> = (0..2000u32)
            .map(|i| Ipv4Prefix::new(Ipv4Addr(0xc000_0000 | (i << 8)), 24).unwrap())
            .collect();
        let msgs = UpdateMsg::pack_withdrawals(&prefixes);
        assert!(msgs.len() > 1);
        let mut decoded = Vec::new();
        for msg in &msgs {
            let bytes = BgpMessage::Update(msg.clone()).encode(true);
            assert!(bytes.len() <= MAX_MESSAGE_LEN);
            let mut buf = BytesMut::from(&bytes[..]);
            match BgpMessage::decode(&mut buf, true).unwrap().unwrap() {
                BgpMessage::Update(u) => decoded.extend(u.withdrawn),
                other => panic!("expected UPDATE, got {other:?}"),
            }
        }
        assert_eq!(decoded, prefixes);
        assert!(UpdateMsg::pack_withdrawals(&[]).is_empty());
    }

    #[test]
    fn prefix_wire_len_counts_only_needed_octets() {
        for (s, want) in [
            ("0.0.0.0/0", 1),
            ("10.0.0.0/8", 2),
            ("128.6.0.0/16", 3),
            ("1.2.3.0/24", 4),
            ("1.2.3.4/32", 5),
        ] {
            let p: Ipv4Prefix = s.parse().unwrap();
            assert_eq!(UpdateMsg::prefix_wire_len(&p), want, "{s}");
        }
    }

    #[test]
    fn pure_withdrawal_roundtrip() {
        let update = UpdateMsg::withdraw(vec!["203.0.113.0/24".parse().unwrap()]);
        let out = roundtrip(BgpMessage::Update(update.clone()));
        assert_eq!(out, BgpMessage::Update(update));
    }

    #[test]
    fn announcement_without_mandatory_attrs_rejected() {
        let update = UpdateMsg::announce(
            vec!["10.0.0.0/8".parse().unwrap()],
            vec![PathAttribute::Origin(Origin::Igp)],
        );
        let bytes = BgpMessage::Update(update).encode(true);
        let mut buf = BytesMut::from(&bytes[..]);
        assert!(matches!(
            BgpMessage::decode(&mut buf, true),
            Err(WireError::MissingWellKnownAttribute(_))
        ));
    }

    #[test]
    fn notification_roundtrip() {
        let n = NotificationMsg::new(notif::HOLD_TIMER_EXPIRED, 0);
        assert_eq!(roundtrip(BgpMessage::Notification(n.clone())), BgpMessage::Notification(n));
    }

    #[test]
    fn decode_returns_none_on_partial_input() {
        let bytes = BgpMessage::Update(sample_update()).encode(true);
        for cut in [0usize, 5, 18, bytes.len() - 1] {
            let mut buf = BytesMut::from(&bytes[..cut]);
            assert_eq!(BgpMessage::decode(&mut buf, true), Ok(None), "cut at {cut}");
        }
    }

    #[test]
    fn decode_streams_multiple_messages() {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&BgpMessage::Keepalive.encode(true));
        buf.extend_from_slice(&BgpMessage::Update(sample_update()).encode(true));
        let first = BgpMessage::decode(&mut buf, true).unwrap().unwrap();
        assert_eq!(first, BgpMessage::Keepalive);
        let second = BgpMessage::decode(&mut buf, true).unwrap().unwrap();
        assert!(matches!(second, BgpMessage::Update(_)));
        assert!(buf.is_empty());
    }

    #[test]
    fn decode_rejects_bad_marker() {
        let mut bytes = BytesMut::from(&BgpMessage::Keepalive.encode(true)[..]);
        bytes[0] = 0;
        assert_eq!(BgpMessage::decode(&mut bytes, true), Err(WireError::BadMarker));
    }

    #[test]
    fn decode_rejects_bad_length() {
        let mut bytes = BytesMut::from(&BgpMessage::Keepalive.encode(true)[..]);
        bytes[16] = 0xff;
        bytes[17] = 0xff;
        assert!(matches!(BgpMessage::decode(&mut bytes, true), Err(WireError::BadLength(_))));
    }

    #[test]
    fn decode_rejects_unknown_type() {
        let mut bytes = BytesMut::from(&BgpMessage::Keepalive.encode(true)[..]);
        bytes[18] = 9;
        assert_eq!(BgpMessage::decode(&mut bytes, true), Err(WireError::BadMessageType(9)));
    }

    #[test]
    fn keepalive_with_body_rejected() {
        let mut bytes = BytesMut::new();
        bytes.put_slice(&[0xff; 16]);
        bytes.put_u16(20);
        bytes.put_u8(TYPE_KEEPALIVE);
        bytes.put_u8(0);
        assert!(matches!(BgpMessage::decode(&mut bytes, true), Err(WireError::BadLength(_))));
    }

    #[test]
    fn notification_mapping_covers_header_errors() {
        let n = NotificationMsg::from_wire_error(&WireError::BadMarker);
        assert_eq!((n.error_code, n.subcode), (notif::MESSAGE_HEADER_ERROR, 1));
        let n = NotificationMsg::from_wire_error(&WireError::BadMessageType(9));
        assert_eq!((n.error_code, n.subcode), (notif::MESSAGE_HEADER_ERROR, 3));
        let n = NotificationMsg::from_wire_error(&WireError::UnsupportedVersion(3));
        assert_eq!((n.error_code, n.subcode), (notif::OPEN_ERROR, 1));
    }
}
