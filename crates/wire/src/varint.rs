//! LEB128 variable-length integers and zigzag encoding.
//!
//! The Integrated Advertisement codec uses varints everywhere a
//! protocol-buffer encoding would, so IA sizes stay close to what the
//! paper's Beagle prototype (which serialized IAs with protobuf) produced.

use crate::error::{WireError, WireResult};
use bytes::{Buf, BufMut};

/// Maximum number of bytes a `u64` LEB128 varint may occupy.
pub const MAX_VARINT_LEN: usize = 10;

/// Append `value` to `buf` as an unsigned LEB128 varint.
pub fn put_uvarint(buf: &mut impl BufMut, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Decode an unsigned LEB128 varint from the front of `buf`.
///
/// Rejects encodings longer than [`MAX_VARINT_LEN`] bytes and encodings
/// whose final byte would overflow 64 bits.
pub fn get_uvarint(buf: &mut impl Buf) -> WireResult<u64> {
    let mut value: u64 = 0;
    let mut shift: u32 = 0;
    for _ in 0..MAX_VARINT_LEN {
        if !buf.has_remaining() {
            return Err(WireError::MalformedVarint);
        }
        let byte = buf.get_u8();
        let low = (byte & 0x7f) as u64;
        if shift == 63 && low > 1 {
            return Err(WireError::MalformedVarint);
        }
        value |= low << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
    Err(WireError::MalformedVarint)
}

/// Zigzag-map a signed integer so small magnitudes get small varints.
pub fn zigzag(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// Append a signed integer as a zigzag varint.
pub fn put_ivarint(buf: &mut impl BufMut, value: i64) {
    put_uvarint(buf, zigzag(value));
}

/// Decode a signed zigzag varint.
pub fn get_ivarint(buf: &mut impl Buf) -> WireResult<i64> {
    Ok(unzigzag(get_uvarint(buf)?))
}

/// Number of bytes [`put_uvarint`] will emit for `value`.
pub fn uvarint_len(value: u64) -> usize {
    if value == 0 {
        return 1;
    }
    (64 - value.leading_zeros() as usize).div_ceil(7)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    fn roundtrip(v: u64) -> u64 {
        let mut b = BytesMut::new();
        put_uvarint(&mut b, v);
        assert_eq!(b.len(), uvarint_len(v), "predicted length for {v}");
        let mut bytes = b.freeze();
        let out = get_uvarint(&mut bytes).unwrap();
        assert!(!bytes.has_remaining());
        out
    }

    #[test]
    fn small_values_roundtrip() {
        for v in 0..=300u64 {
            assert_eq!(roundtrip(v), v);
        }
    }

    #[test]
    fn boundary_values_roundtrip() {
        for shift in 0..64 {
            let v = 1u64 << shift;
            assert_eq!(roundtrip(v), v);
            assert_eq!(roundtrip(v - 1), v - 1);
        }
        assert_eq!(roundtrip(u64::MAX), u64::MAX);
    }

    #[test]
    fn single_byte_values() {
        let mut b = BytesMut::new();
        put_uvarint(&mut b, 0x7f);
        assert_eq!(&b[..], &[0x7f]);
    }

    #[test]
    fn overlong_encoding_rejected() {
        // Eleven continuation bytes: longer than any valid u64 varint.
        let raw = [0xffu8; 11];
        let mut buf = &raw[..];
        assert_eq!(get_uvarint(&mut buf), Err(WireError::MalformedVarint));
    }

    #[test]
    fn overflowing_final_byte_rejected() {
        // 9 continuation bytes then a final byte with more than the one
        // permissible low bit set: would overflow 64 bits.
        let raw = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02];
        let mut buf = &raw[..];
        assert_eq!(get_uvarint(&mut buf), Err(WireError::MalformedVarint));
    }

    #[test]
    fn truncated_input_rejected() {
        let raw = [0x80u8, 0x80];
        let mut buf = &raw[..];
        assert_eq!(get_uvarint(&mut buf), Err(WireError::MalformedVarint));
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [-1000i64, -1, 0, 1, 1000, i64::MIN, i64::MAX] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes map to small codes.
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
    }

    #[test]
    fn ivarint_roundtrip() {
        let mut b = BytesMut::new();
        put_ivarint(&mut b, -123456789);
        let mut bytes = b.freeze();
        assert_eq!(get_ivarint(&mut bytes).unwrap(), -123456789);
    }
}
