//! BGP path attributes (RFC 4271 §4.3, §5) and their codec.
//!
//! The attribute layer is where BGP's only native evolvability hook lives:
//! *optional transitive* attributes are passed through by routers that do
//! not understand them. D-BGP generalizes that idea into structured
//! Integrated Advertisements (see [`crate::ia`]); we still implement the
//! classic mechanism faithfully because the paper's transitional story
//! (§3.5) rides on it, and because the classic speaker in `dbgp-bgp`
//! needs it.

use crate::error::{WireError, WireResult};
use crate::prefix::Ipv4Addr;
use bytes::{Buf, BufMut, Bytes};
use std::fmt;

/// Attribute flag: attribute is optional (not well-known).
pub const FLAG_OPTIONAL: u8 = 0x80;
/// Attribute flag: attribute is transitive.
pub const FLAG_TRANSITIVE: u8 = 0x40;
/// Attribute flag: optional transitive attribute was passed through by a
/// router that did not recognize it.
pub const FLAG_PARTIAL: u8 = 0x20;
/// Attribute flag: length field is two octets.
pub const FLAG_EXT_LEN: u8 = 0x10;

/// `AS_TRANS`, the 2-octet stand-in for a 4-octet AS number (RFC 6793).
pub const AS_TRANS: u32 = 23456;

/// Attribute type codes.
pub mod code {
    /// ORIGIN.
    pub const ORIGIN: u8 = 1;
    /// AS_PATH.
    pub const AS_PATH: u8 = 2;
    /// NEXT_HOP.
    pub const NEXT_HOP: u8 = 3;
    /// MULTI_EXIT_DISC.
    pub const MED: u8 = 4;
    /// LOCAL_PREF.
    pub const LOCAL_PREF: u8 = 5;
    /// ATOMIC_AGGREGATE.
    pub const ATOMIC_AGGREGATE: u8 = 6;
    /// AGGREGATOR.
    pub const AGGREGATOR: u8 = 7;
    /// COMMUNITIES (RFC 1997).
    pub const COMMUNITIES: u8 = 8;
    /// Optional-transitive attribute carrying a serialized Integrated
    /// Advertisement during D-BGP's transitional deployment (paper §3.5).
    /// Code taken from the private-use/experimental range.
    pub const IA_PAYLOAD: u8 = 240;
}

/// Path origin (RFC 4271 §5.1.1). Lower is preferred in the decision
/// process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Origin {
    /// Learned from an interior gateway protocol.
    Igp = 0,
    /// Learned via EGP.
    Egp = 1,
    /// Origin unknown (e.g., redistributed static route).
    Incomplete = 2,
}

impl Origin {
    /// Decode from the single-octet wire value.
    pub fn from_u8(v: u8) -> WireResult<Self> {
        match v {
            0 => Ok(Origin::Igp),
            1 => Ok(Origin::Egp),
            2 => Ok(Origin::Incomplete),
            _ => Err(WireError::MalformedAttribute {
                code: code::ORIGIN,
                detail: "bad origin value",
            }),
        }
    }
}

impl fmt::Display for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Origin::Igp => "IGP",
            Origin::Egp => "EGP",
            Origin::Incomplete => "INCOMPLETE",
        })
    }
}

/// One segment of an AS_PATH.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AsSegment {
    /// Ordered sequence of traversed ASes (most recent first).
    Sequence(Vec<u32>),
    /// Unordered set, produced by aggregation; counts as one hop.
    Set(Vec<u32>),
}

impl AsSegment {
    /// Contribution to AS_PATH length for the decision process: a
    /// sequence counts each AS, a set counts one (RFC 4271 §9.1.2.2).
    pub fn hop_count(&self) -> usize {
        match self {
            AsSegment::Sequence(ases) => ases.len(),
            AsSegment::Set(_) => 1,
        }
    }

    /// All AS numbers mentioned, regardless of segment type.
    pub fn ases(&self) -> &[u32] {
        match self {
            AsSegment::Sequence(a) | AsSegment::Set(a) => a,
        }
    }
}

const SEG_TYPE_SET: u8 = 1;
const SEG_TYPE_SEQUENCE: u8 = 2;
/// Maximum ASes per wire segment (the count field is one octet).
const MAX_SEG_LEN: usize = 255;

/// An AS_PATH: the loop-prevention record and primary tiebreaker of BGP.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct AsPath {
    /// The segments, most recently prepended first.
    pub segments: Vec<AsSegment>,
}

impl AsPath {
    /// The empty path, as originated by the destination AS before its own
    /// number is prepended at the first eBGP hop.
    pub fn empty() -> Self {
        AsPath { segments: Vec::new() }
    }

    /// A path consisting of a single sequence.
    pub fn from_sequence(ases: impl Into<Vec<u32>>) -> Self {
        let ases = ases.into();
        if ases.is_empty() {
            return AsPath::empty();
        }
        AsPath { segments: vec![AsSegment::Sequence(ases)] }
    }

    /// Path length as used by the decision process.
    pub fn hop_count(&self) -> usize {
        self.segments.iter().map(AsSegment::hop_count).sum()
    }

    /// Does the path mention `asn` anywhere (loop check)?
    pub fn contains(&self, asn: u32) -> bool {
        self.segments.iter().any(|s| s.ases().contains(&asn))
    }

    /// Prepend `asn` once, merging into a leading sequence if present.
    pub fn prepend(&mut self, asn: u32) {
        match self.segments.first_mut() {
            Some(AsSegment::Sequence(ases)) if ases.len() < MAX_SEG_LEN => {
                ases.insert(0, asn);
            }
            _ => self.segments.insert(0, AsSegment::Sequence(vec![asn])),
        }
    }

    /// The neighbouring AS this path was received from: the first AS of
    /// the leading sequence, if any.
    pub fn first_as(&self) -> Option<u32> {
        match self.segments.first() {
            Some(AsSegment::Sequence(ases)) => ases.first().copied(),
            _ => None,
        }
    }

    /// The origin AS (last AS of the last sequence segment), if the path
    /// ends in a sequence.
    pub fn origin_as(&self) -> Option<u32> {
        match self.segments.last() {
            Some(AsSegment::Sequence(ases)) => ases.last().copied(),
            _ => None,
        }
    }

    /// Encode with 2- or 4-octet AS numbers. In 2-octet mode, numbers that
    /// do not fit are substituted with [`AS_TRANS`] (RFC 6793 §4.2.2).
    pub fn encode(&self, buf: &mut impl BufMut, four_octet: bool) {
        for seg in &self.segments {
            let (ty, ases) = match seg {
                AsSegment::Set(a) => (SEG_TYPE_SET, a),
                AsSegment::Sequence(a) => (SEG_TYPE_SEQUENCE, a),
            };
            for chunk in ases.chunks(MAX_SEG_LEN) {
                buf.put_u8(ty);
                buf.put_u8(chunk.len() as u8);
                for &asn in chunk {
                    if four_octet {
                        buf.put_u32(asn);
                    } else if asn > u16::MAX as u32 {
                        buf.put_u16(AS_TRANS as u16);
                    } else {
                        buf.put_u16(asn as u16);
                    }
                }
            }
        }
    }

    /// Decode an AS_PATH body of exactly `buf.remaining()` bytes.
    pub fn decode(buf: &mut impl Buf, four_octet: bool) -> WireResult<Self> {
        let mut segments = Vec::new();
        while buf.has_remaining() {
            if buf.remaining() < 2 {
                return Err(WireError::Truncated { context: "AS_PATH segment header" });
            }
            let ty = buf.get_u8();
            let count = buf.get_u8() as usize;
            let width = if four_octet { 4 } else { 2 };
            if buf.remaining() < count * width {
                return Err(WireError::Truncated { context: "AS_PATH segment body" });
            }
            let mut ases = Vec::with_capacity(count);
            for _ in 0..count {
                ases.push(if four_octet { buf.get_u32() } else { buf.get_u16() as u32 });
            }
            segments.push(match ty {
                SEG_TYPE_SET => AsSegment::Set(ases),
                SEG_TYPE_SEQUENCE => AsSegment::Sequence(ases),
                _ => {
                    return Err(WireError::MalformedAttribute {
                        code: code::AS_PATH,
                        detail: "unknown segment type",
                    })
                }
            });
        }
        Ok(AsPath { segments })
    }
}

impl fmt::Display for AsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for seg in &self.segments {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            match seg {
                AsSegment::Sequence(ases) => {
                    let strs: Vec<String> = ases.iter().map(u32::to_string).collect();
                    write!(f, "{}", strs.join(" "))?;
                }
                AsSegment::Set(ases) => {
                    let strs: Vec<String> = ases.iter().map(u32::to_string).collect();
                    write!(f, "{{{}}}", strs.join(","))?;
                }
            }
        }
        Ok(())
    }
}

/// A decoded path attribute.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PathAttribute {
    /// ORIGIN: how the route entered BGP.
    Origin(Origin),
    /// AS_PATH.
    AsPath(AsPath),
    /// NEXT_HOP: border router to forward toward.
    NextHop(Ipv4Addr),
    /// MULTI_EXIT_DISC: metric to discriminate among exits to one AS.
    Med(u32),
    /// LOCAL_PREF: the operator's first-ranked knob (iBGP only).
    LocalPref(u32),
    /// ATOMIC_AGGREGATE marker.
    AtomicAggregate,
    /// AGGREGATOR: who formed the aggregate.
    Aggregator {
        /// AS that performed aggregation.
        asn: u32,
        /// Router that performed aggregation.
        addr: Ipv4Addr,
    },
    /// COMMUNITIES: 32-bit tags (RFC 1997).
    Communities(Vec<u32>),
    /// An attribute this speaker does not understand. Optional transitive
    /// unknowns are re-advertised with the PARTIAL bit set — BGP's native
    /// pass-through, which the paper contrasts with D-BGP's IAs.
    Unknown {
        /// The flag octet as received.
        flags: u8,
        /// Attribute type code.
        code: u8,
        /// Raw attribute body.
        data: Bytes,
    },
}

impl PathAttribute {
    /// The attribute's type code.
    pub fn code(&self) -> u8 {
        match self {
            PathAttribute::Origin(_) => code::ORIGIN,
            PathAttribute::AsPath(_) => code::AS_PATH,
            PathAttribute::NextHop(_) => code::NEXT_HOP,
            PathAttribute::Med(_) => code::MED,
            PathAttribute::LocalPref(_) => code::LOCAL_PREF,
            PathAttribute::AtomicAggregate => code::ATOMIC_AGGREGATE,
            PathAttribute::Aggregator { .. } => code::AGGREGATOR,
            PathAttribute::Communities(_) => code::COMMUNITIES,
            PathAttribute::Unknown { code, .. } => *code,
        }
    }

    /// Is this attribute transitive (should it survive re-advertisement by
    /// a speaker that does not recognize it)?
    pub fn is_transitive(&self) -> bool {
        match self {
            PathAttribute::Med(_) | PathAttribute::LocalPref(_) => {
                // MED is optional non-transitive; LOCAL_PREF is well-known
                // but only within an AS. Both true-on-wire flags are
                // handled at encode time; here we answer the
                // re-advertisement question.
                false
            }
            PathAttribute::Unknown { flags, .. } => flags & FLAG_TRANSITIVE != 0,
            _ => true,
        }
    }

    fn flags_for(&self) -> u8 {
        match self {
            PathAttribute::Origin(_)
            | PathAttribute::AsPath(_)
            | PathAttribute::NextHop(_)
            | PathAttribute::LocalPref(_)
            | PathAttribute::AtomicAggregate => FLAG_TRANSITIVE,
            PathAttribute::Med(_) => FLAG_OPTIONAL,
            PathAttribute::Aggregator { .. } | PathAttribute::Communities(_) => {
                FLAG_OPTIONAL | FLAG_TRANSITIVE
            }
            PathAttribute::Unknown { flags, .. } => *flags & !FLAG_EXT_LEN,
        }
    }

    /// Encode this attribute (flags, code, length, body).
    pub fn encode(&self, buf: &mut impl BufMut, four_octet: bool) {
        let mut body = Vec::new();
        match self {
            PathAttribute::Origin(o) => body.push(*o as u8),
            PathAttribute::AsPath(p) => p.encode(&mut body, four_octet),
            PathAttribute::NextHop(a) => body.extend_from_slice(&a.octets()),
            PathAttribute::Med(v) | PathAttribute::LocalPref(v) => {
                body.extend_from_slice(&v.to_be_bytes())
            }
            PathAttribute::AtomicAggregate => {}
            PathAttribute::Aggregator { asn, addr } => {
                if four_octet {
                    body.extend_from_slice(&asn.to_be_bytes());
                } else {
                    let short = if *asn > u16::MAX as u32 { AS_TRANS as u16 } else { *asn as u16 };
                    body.extend_from_slice(&short.to_be_bytes());
                }
                body.extend_from_slice(&addr.octets());
            }
            PathAttribute::Communities(cs) => {
                for c in cs {
                    body.extend_from_slice(&c.to_be_bytes());
                }
            }
            PathAttribute::Unknown { data, .. } => body.extend_from_slice(data),
        }
        let mut flags = self.flags_for();
        if body.len() > u8::MAX as usize {
            flags |= FLAG_EXT_LEN;
        }
        buf.put_u8(flags);
        buf.put_u8(self.code());
        if flags & FLAG_EXT_LEN != 0 {
            buf.put_u16(body.len() as u16);
        } else {
            buf.put_u8(body.len() as u8);
        }
        buf.put_slice(&body);
    }

    /// Decode one attribute from the front of `buf`.
    pub fn decode(buf: &mut Bytes, four_octet: bool) -> WireResult<Self> {
        if buf.remaining() < 2 {
            return Err(WireError::Truncated { context: "attribute header" });
        }
        let flags = buf.get_u8();
        let code = buf.get_u8();
        let len = if flags & FLAG_EXT_LEN != 0 {
            if buf.remaining() < 2 {
                return Err(WireError::Truncated { context: "attribute extended length" });
            }
            buf.get_u16() as usize
        } else {
            if !buf.has_remaining() {
                return Err(WireError::Truncated { context: "attribute length" });
            }
            buf.get_u8() as usize
        };
        if buf.remaining() < len {
            return Err(WireError::Truncated { context: "attribute body" });
        }
        let mut body = buf.split_to(len);

        let check_flags = |well_known: bool, transitive: bool| -> WireResult<()> {
            let opt_ok = (flags & FLAG_OPTIONAL != 0) != well_known;
            let trans_ok = (flags & FLAG_TRANSITIVE != 0) == transitive;
            if opt_ok && trans_ok {
                Ok(())
            } else {
                Err(WireError::BadAttributeFlags { code, flags })
            }
        };
        let fixed = |body: &Bytes, n: usize| -> WireResult<()> {
            if body.len() == n {
                Ok(())
            } else {
                Err(WireError::MalformedAttribute { code, detail: "wrong length" })
            }
        };

        match code {
            code::ORIGIN => {
                check_flags(true, true)?;
                fixed(&body, 1)?;
                Ok(PathAttribute::Origin(Origin::from_u8(body.get_u8())?))
            }
            code::AS_PATH => {
                check_flags(true, true)?;
                Ok(PathAttribute::AsPath(AsPath::decode(&mut body, four_octet)?))
            }
            code::NEXT_HOP => {
                check_flags(true, true)?;
                fixed(&body, 4)?;
                Ok(PathAttribute::NextHop(Ipv4Addr(body.get_u32())))
            }
            code::MED => {
                check_flags(false, false)?;
                fixed(&body, 4)?;
                Ok(PathAttribute::Med(body.get_u32()))
            }
            code::LOCAL_PREF => {
                check_flags(true, true)?;
                fixed(&body, 4)?;
                Ok(PathAttribute::LocalPref(body.get_u32()))
            }
            code::ATOMIC_AGGREGATE => {
                check_flags(true, true)?;
                fixed(&body, 0)?;
                Ok(PathAttribute::AtomicAggregate)
            }
            code::AGGREGATOR => {
                check_flags(false, true)?;
                let as_width = if four_octet { 4 } else { 2 };
                fixed(&body, as_width + 4)?;
                let asn = if four_octet { body.get_u32() } else { body.get_u16() as u32 };
                Ok(PathAttribute::Aggregator { asn, addr: Ipv4Addr(body.get_u32()) })
            }
            code::COMMUNITIES => {
                check_flags(false, true)?;
                if !body.len().is_multiple_of(4) {
                    return Err(WireError::MalformedAttribute {
                        code,
                        detail: "length not multiple of 4",
                    });
                }
                let mut cs = Vec::with_capacity(body.len() / 4);
                while body.has_remaining() {
                    cs.push(body.get_u32());
                }
                Ok(PathAttribute::Communities(cs))
            }
            _ => {
                // Unrecognized well-known attributes are a session error;
                // unrecognized optional attributes are kept (transitive)
                // or may be dropped (non-transitive) by the caller.
                if flags & FLAG_OPTIONAL == 0 {
                    return Err(WireError::MalformedAttribute {
                        code,
                        detail: "unrecognized well-known attribute",
                    });
                }
                let flags = if flags & FLAG_TRANSITIVE != 0 { flags | FLAG_PARTIAL } else { flags };
                Ok(PathAttribute::Unknown { flags, code, data: body })
            }
        }
    }
}

/// Encode a full attribute list preceded by nothing (the UPDATE codec adds
/// the two-octet total length). Attributes are emitted in ascending code
/// order, as RFC 4271 recommends.
pub fn encode_attribute_list(attrs: &[PathAttribute], buf: &mut impl BufMut, four_octet: bool) {
    let mut sorted: Vec<&PathAttribute> = attrs.iter().collect();
    sorted.sort_by_key(|a| a.code());
    for attr in sorted {
        attr.encode(buf, four_octet);
    }
}

/// Decode a complete attribute list, rejecting duplicates.
pub fn decode_attribute_list(mut buf: Bytes, four_octet: bool) -> WireResult<Vec<PathAttribute>> {
    let mut attrs = Vec::new();
    let mut seen = [false; 256];
    while buf.has_remaining() {
        let attr = PathAttribute::decode(&mut buf, four_octet)?;
        let code = attr.code() as usize;
        if seen[code] {
            return Err(WireError::DuplicateAttribute(attr.code()));
        }
        seen[code] = true;
        attrs.push(attr);
    }
    Ok(attrs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    fn roundtrip(attr: PathAttribute, four_octet: bool) -> PathAttribute {
        let mut buf = BytesMut::new();
        attr.encode(&mut buf, four_octet);
        let mut bytes = buf.freeze();
        let out = PathAttribute::decode(&mut bytes, four_octet).unwrap();
        assert!(!bytes.has_remaining(), "trailing bytes after decode");
        out
    }

    #[test]
    fn origin_roundtrip() {
        for o in [Origin::Igp, Origin::Egp, Origin::Incomplete] {
            assert_eq!(roundtrip(PathAttribute::Origin(o), true), PathAttribute::Origin(o));
        }
    }

    #[test]
    fn origin_bad_value_rejected() {
        let raw = [FLAG_TRANSITIVE, code::ORIGIN, 1, 9];
        let mut buf = Bytes::copy_from_slice(&raw);
        assert!(PathAttribute::decode(&mut buf, true).is_err());
    }

    #[test]
    fn as_path_roundtrip_four_octet() {
        let path = AsPath {
            segments: vec![
                AsSegment::Sequence(vec![70000, 2, 3]),
                AsSegment::Set(vec![10, 20]),
                AsSegment::Sequence(vec![99]),
            ],
        };
        assert_eq!(
            roundtrip(PathAttribute::AsPath(path.clone()), true),
            PathAttribute::AsPath(path)
        );
    }

    #[test]
    fn as_path_two_octet_substitutes_as_trans() {
        let path = AsPath::from_sequence(vec![70000, 2]);
        let out = roundtrip(PathAttribute::AsPath(path), false);
        assert_eq!(out, PathAttribute::AsPath(AsPath::from_sequence(vec![AS_TRANS, 2])));
    }

    #[test]
    fn as_path_hop_count_counts_sets_once() {
        let path = AsPath {
            segments: vec![AsSegment::Sequence(vec![1, 2, 3]), AsSegment::Set(vec![10, 20, 30])],
        };
        assert_eq!(path.hop_count(), 4);
    }

    #[test]
    fn as_path_prepend_merges_into_leading_sequence() {
        let mut path = AsPath::from_sequence(vec![2, 3]);
        path.prepend(1);
        assert_eq!(path, AsPath::from_sequence(vec![1, 2, 3]));
        assert_eq!(path.first_as(), Some(1));
        assert_eq!(path.origin_as(), Some(3));
    }

    #[test]
    fn as_path_prepend_onto_set_creates_new_segment() {
        let mut path = AsPath { segments: vec![AsSegment::Set(vec![5, 6])] };
        path.prepend(1);
        assert_eq!(path.segments.len(), 2);
        assert_eq!(path.first_as(), Some(1));
        assert_eq!(path.hop_count(), 2);
    }

    #[test]
    fn long_paths_split_into_multiple_wire_segments() {
        let ases: Vec<u32> = (1..=300).collect();
        let path = AsPath::from_sequence(ases.clone());
        let out = roundtrip(PathAttribute::AsPath(path), true);
        // The wire split into two segments is an encoding artifact; the
        // semantic content (order, hop count) must survive.
        if let PathAttribute::AsPath(p) = out {
            let flattened: Vec<u32> =
                p.segments.iter().flat_map(|s| s.ases().iter().copied()).collect();
            assert_eq!(flattened, ases);
            assert_eq!(p.hop_count(), 300);
        } else {
            panic!("wrong attribute");
        }
    }

    #[test]
    fn next_hop_med_localpref_roundtrip() {
        for attr in [
            PathAttribute::NextHop(Ipv4Addr::new(10, 0, 0, 1)),
            PathAttribute::Med(4096),
            PathAttribute::LocalPref(200),
        ] {
            assert_eq!(roundtrip(attr.clone(), true), attr);
        }
    }

    #[test]
    fn aggregator_roundtrip_both_widths() {
        let attr = PathAttribute::Aggregator { asn: 70000, addr: Ipv4Addr::new(1, 2, 3, 4) };
        assert_eq!(roundtrip(attr.clone(), true), attr);
        // In 2-octet mode the wide ASN degrades to AS_TRANS.
        let out = roundtrip(attr, false);
        assert_eq!(
            out,
            PathAttribute::Aggregator { asn: AS_TRANS, addr: Ipv4Addr::new(1, 2, 3, 4) }
        );
    }

    #[test]
    fn communities_roundtrip() {
        let attr = PathAttribute::Communities(vec![0x0001_0002, 0xFFFF_FF01]);
        assert_eq!(roundtrip(attr.clone(), true), attr);
    }

    #[test]
    fn communities_bad_length_rejected() {
        let raw = [FLAG_OPTIONAL | FLAG_TRANSITIVE, code::COMMUNITIES, 3, 1, 2, 3];
        let mut buf = Bytes::copy_from_slice(&raw);
        assert!(PathAttribute::decode(&mut buf, true).is_err());
    }

    #[test]
    fn unknown_optional_transitive_kept_with_partial_bit() {
        let raw = [FLAG_OPTIONAL | FLAG_TRANSITIVE, 77, 2, 0xAB, 0xCD];
        let mut buf = Bytes::copy_from_slice(&raw);
        let attr = PathAttribute::decode(&mut buf, true).unwrap();
        match attr {
            PathAttribute::Unknown { flags, code, data } => {
                assert_eq!(code, 77);
                assert!(flags & FLAG_PARTIAL != 0, "partial bit must be set on pass-through");
                assert_eq!(&data[..], &[0xAB, 0xCD]);
            }
            other => panic!("expected Unknown, got {other:?}"),
        }
    }

    #[test]
    fn unknown_well_known_rejected() {
        let raw = [FLAG_TRANSITIVE, 99, 1, 0];
        let mut buf = Bytes::copy_from_slice(&raw);
        assert!(PathAttribute::decode(&mut buf, true).is_err());
    }

    #[test]
    fn flag_validation_catches_contradictions() {
        // ORIGIN marked optional: invalid.
        let raw = [FLAG_OPTIONAL | FLAG_TRANSITIVE, code::ORIGIN, 1, 0];
        let mut buf = Bytes::copy_from_slice(&raw);
        assert!(matches!(
            PathAttribute::decode(&mut buf, true),
            Err(WireError::BadAttributeFlags { .. })
        ));
    }

    #[test]
    fn extended_length_used_for_big_bodies() {
        let data = Bytes::from(vec![0u8; 300]);
        let attr =
            PathAttribute::Unknown { flags: FLAG_OPTIONAL | FLAG_TRANSITIVE, code: 77, data };
        let mut buf = BytesMut::new();
        attr.encode(&mut buf, true);
        assert!(buf[0] & FLAG_EXT_LEN != 0);
        let mut bytes = buf.freeze();
        let out = PathAttribute::decode(&mut bytes, true).unwrap();
        match out {
            PathAttribute::Unknown { data, .. } => assert_eq!(data.len(), 300),
            other => panic!("expected Unknown, got {other:?}"),
        }
    }

    #[test]
    fn attribute_list_rejects_duplicates() {
        let mut buf = BytesMut::new();
        PathAttribute::Origin(Origin::Igp).encode(&mut buf, true);
        PathAttribute::Origin(Origin::Egp).encode(&mut buf, true);
        assert_eq!(
            decode_attribute_list(buf.freeze(), true),
            Err(WireError::DuplicateAttribute(code::ORIGIN))
        );
    }

    #[test]
    fn attribute_list_sorted_by_code() {
        let attrs = vec![
            PathAttribute::NextHop(Ipv4Addr::new(9, 9, 9, 9)),
            PathAttribute::Origin(Origin::Igp),
        ];
        let mut buf = BytesMut::new();
        encode_attribute_list(&attrs, &mut buf, true);
        let decoded = decode_attribute_list(buf.freeze(), true).unwrap();
        assert_eq!(decoded[0].code(), code::ORIGIN);
        assert_eq!(decoded[1].code(), code::NEXT_HOP);
    }

    #[test]
    fn as_path_display() {
        let path =
            AsPath { segments: vec![AsSegment::Sequence(vec![1, 2]), AsSegment::Set(vec![7, 8])] };
        assert_eq!(path.to_string(), "1 2 {7,8}");
    }
}
