#![warn(missing_docs)]

//! Wire formats for classic BGP-4 and for D-BGP's Integrated Advertisements.
//!
//! This crate is pure data + codecs: no sockets, no timers, no state
//! machines. Everything here can be exercised byte-for-byte in unit and
//! property tests, which is how the rest of the workspace keeps its
//! protocol logic sans-IO (see DESIGN.md §6).
//!
//! Two families of formats live here:
//!
//! * **BGP-4 messages** ([`message`], [`attrs`], [`prefix`]) following
//!   RFC 4271, with the 4-octet-AS capability of RFC 6793 (which the paper
//!   cites as the model for deploying D-BGP's wider path-vector entries).
//! * **Integrated Advertisements** ([`ia`]): the multi-protocol container
//!   of D-BGP §3.2 — a path vector admitting AS numbers, island IDs and
//!   AS_SETs; island-membership annotations; per-protocol *path
//!   descriptors*; and per-island *island descriptors*. The codec is a
//!   tag-length-value format with skippable unknown tags, standing in for
//!   the protocol-buffer encoding Beagle used (DESIGN.md §2).

pub mod attrs;
pub mod error;
pub mod ia;
pub mod ids;
pub mod message;
pub mod prefix;
pub mod varint;

pub use attrs::{AsPath, AsSegment, Origin, PathAttribute};
pub use error::WireError;
pub use ia::{Ia, IaBuilder, IslandDescriptor, IslandMembership, PathDescriptor, PathElem};
pub use ids::{IslandId, ProtocolId};
pub use message::{BgpMessage, Capability, NotificationMsg, OpenMsg, UpdateMsg};
pub use prefix::{Ipv4Addr, Ipv4Prefix};
