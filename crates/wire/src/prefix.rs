//! IPv4 addresses and CIDR prefixes, plus the packed NLRI codec of
//! RFC 4271 §4.3.

use crate::error::{WireError, WireResult};
use bytes::{Buf, BufMut};
use std::fmt;
use std::str::FromStr;

/// An IPv4 address stored as a big-endian `u32`.
///
/// We use our own trivial newtype rather than `std::net::Ipv4Addr` so the
/// simulator can treat addresses as plain integers (arithmetic, hashing,
/// range allocation) without conversion noise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ipv4Addr(pub u32);

impl Ipv4Addr {
    /// Build an address from dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Addr(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// The four octets, most significant first.
    pub const fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }
}

impl fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

impl From<u32> for Ipv4Addr {
    fn from(v: u32) -> Self {
        Ipv4Addr(v)
    }
}

impl FromStr for Ipv4Addr {
    type Err = WireError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut octets = [0u8; 4];
        let mut parts = s.split('.');
        for slot in &mut octets {
            let part = parts.next().ok_or(WireError::MalformedPrefix)?;
            *slot = part.parse().map_err(|_| WireError::MalformedPrefix)?;
        }
        if parts.next().is_some() {
            return Err(WireError::MalformedPrefix);
        }
        Ok(Ipv4Addr::new(octets[0], octets[1], octets[2], octets[3]))
    }
}

/// An IPv4 CIDR prefix: a network address plus a mask length.
///
/// The network address is always stored in canonical form (host bits
/// zeroed), so two prefixes are equal iff they denote the same network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ipv4Prefix {
    network: Ipv4Addr,
    len: u8,
}

impl Ipv4Prefix {
    /// Create a prefix, canonicalizing the address by masking host bits.
    ///
    /// Returns an error if `len > 32`.
    pub fn new(addr: Ipv4Addr, len: u8) -> WireResult<Self> {
        if len > 32 {
            return Err(WireError::MalformedPrefix);
        }
        Ok(Ipv4Prefix { network: Ipv4Addr(addr.0 & Self::mask(len)), len })
    }

    /// The all-addresses prefix `0.0.0.0/0`.
    pub const DEFAULT: Ipv4Prefix = Ipv4Prefix { network: Ipv4Addr(0), len: 0 };

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len as u32)
        }
    }

    /// The canonical network address.
    pub fn network(&self) -> Ipv4Addr {
        self.network
    }

    /// The mask length in bits.
    #[allow(clippy::len_without_is_empty)] // a mask length is never "empty"
    pub fn len(&self) -> u8 {
        self.len
    }

    /// `true` only for the default route (length 0).
    pub fn is_default(&self) -> bool {
        self.len == 0
    }

    /// Does this prefix contain the given address?
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        addr.0 & Self::mask(self.len) == self.network.0
    }

    /// Does this prefix fully contain (or equal) `other`?
    pub fn covers(&self, other: &Ipv4Prefix) -> bool {
        self.len <= other.len && self.contains(other.network)
    }

    /// Number of bytes the packed NLRI form of this prefix occupies,
    /// including the length octet.
    pub fn wire_len(&self) -> usize {
        1 + (self.len as usize).div_ceil(8)
    }

    /// Encode in the packed form of RFC 4271 §4.3: one length octet, then
    /// only as many address bytes as the mask requires.
    pub fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u8(self.len);
        let octets = self.network.octets();
        buf.put_slice(&octets[..(self.len as usize).div_ceil(8)]);
    }

    /// Decode one packed prefix from the front of `buf`.
    pub fn decode(buf: &mut impl Buf) -> WireResult<Self> {
        if !buf.has_remaining() {
            return Err(WireError::Truncated { context: "prefix length" });
        }
        let len = buf.get_u8();
        if len > 32 {
            return Err(WireError::MalformedPrefix);
        }
        let nbytes = (len as usize).div_ceil(8);
        if buf.remaining() < nbytes {
            return Err(WireError::Truncated { context: "prefix bytes" });
        }
        let mut octets = [0u8; 4];
        buf.copy_to_slice(&mut octets[..nbytes]);
        Ipv4Prefix::new(Ipv4Addr(u32::from_be_bytes(octets)), len)
    }
}

impl fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network, self.len)
    }
}

impl FromStr for Ipv4Prefix {
    type Err = WireError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s.split_once('/').ok_or(WireError::MalformedPrefix)?;
        let addr: Ipv4Addr = addr.parse()?;
        let len: u8 = len.parse().map_err(|_| WireError::MalformedPrefix)?;
        Ipv4Prefix::new(addr, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display() {
        assert_eq!(p("10.0.0.0/8").to_string(), "10.0.0.0/8");
        assert_eq!(p("128.6.0.0/16").to_string(), "128.6.0.0/16");
        assert_eq!(p("0.0.0.0/0"), Ipv4Prefix::DEFAULT);
    }

    #[test]
    fn canonicalizes_host_bits() {
        assert_eq!(p("10.1.2.3/8"), p("10.0.0.0/8"));
        assert_ne!(p("10.0.0.0/8"), p("10.0.0.0/9"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("10.0.0.0".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0/33".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0/8".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0.1/8".parse::<Ipv4Prefix>().is_err());
        assert!("256.0.0.0/8".parse::<Ipv4Prefix>().is_err());
    }

    #[test]
    fn containment() {
        assert!(p("10.0.0.0/8").contains(Ipv4Addr::new(10, 200, 3, 4)));
        assert!(!p("10.0.0.0/8").contains(Ipv4Addr::new(11, 0, 0, 1)));
        assert!(p("10.0.0.0/8").covers(&p("10.5.0.0/16")));
        assert!(!p("10.5.0.0/16").covers(&p("10.0.0.0/8")));
        assert!(p("10.0.0.0/8").covers(&p("10.0.0.0/8")));
        assert!(Ipv4Prefix::DEFAULT.covers(&p("192.168.0.0/16")));
    }

    #[test]
    fn packed_roundtrip_all_lengths() {
        for len in 0..=32u8 {
            let pre = Ipv4Prefix::new(Ipv4Addr::new(203, 0, 113, 255), len).unwrap();
            let mut buf = BytesMut::new();
            pre.encode(&mut buf);
            assert_eq!(buf.len(), pre.wire_len());
            let mut bytes = buf.freeze();
            assert_eq!(Ipv4Prefix::decode(&mut bytes).unwrap(), pre);
        }
    }

    #[test]
    fn packed_uses_minimal_bytes() {
        let mut buf = BytesMut::new();
        p("10.0.0.0/8").encode(&mut buf);
        assert_eq!(&buf[..], &[8, 10]);
        let mut buf = BytesMut::new();
        p("128.6.0.0/16").encode(&mut buf);
        assert_eq!(&buf[..], &[16, 128, 6]);
    }

    #[test]
    fn decode_rejects_bad_length() {
        let raw = [33u8, 1, 2, 3, 4, 5];
        let mut buf = &raw[..];
        assert_eq!(Ipv4Prefix::decode(&mut buf), Err(WireError::MalformedPrefix));
    }

    #[test]
    fn decode_rejects_truncation() {
        let raw = [24u8, 10, 0];
        let mut buf = &raw[..];
        assert!(matches!(Ipv4Prefix::decode(&mut buf), Err(WireError::Truncated { .. })));
    }
}
