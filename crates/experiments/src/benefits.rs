//! The §6.3 incremental-benefits simulation: Figures 9 and 10.
//!
//! Methodology, reproduced from the paper:
//!
//! * topology: 1,000-AS BRITE/Waxman graph (α = 0.15, β = 0.25) with
//!   customer/provider annotations and valley-free routing;
//! * a fraction of ASes (0–100%, step 10) adopt an *archetype* protocol;
//!   adopters are chosen uniformly at random, 9 trials, 95% CIs;
//! * non-upgraded ASes select shortest valley-free paths (BGP's second
//!   criterion, local preferences being opaque);
//! * in the **D-BGP baseline**, archetype control information passes
//!   through non-upgraded ASes; in the **BGP baseline**, it is dropped
//!   at the first non-upgraded hop;
//! * **extra-paths archetype** (Figure 9): adopters choose the
//!   advertisement exposing the most total paths, each advertisement
//!   carrying at most ten; benefit = number of paths available to all
//!   destinations at upgraded stubs;
//! * **bottleneck-bandwidth archetype** (Figure 10): adopters expose
//!   their ingress bandwidth (uniform 10–1024) and choose the
//!   advertisement with the highest known bottleneck; benefit = the
//!   *actual* bottleneck bandwidth of the chosen paths (which may be
//!   determined inside a gulf — the reason benefits dip below the status
//!   quo at low adoption).
//!
//! Route computation is a synchronous fixed-point over the
//! advertisement relation (Gao-Rexford export rules, loop suppression,
//! class-then-metric selection), one destination at a time.

use dbgp_topology::{AsGraph, Relationship, WaxmanParams};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// Which §6.3 archetype to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Archetype {
    /// Figure 9: expose extra paths (SCION / NIRA / Pathlet family).
    ExtraPaths,
    /// Figure 10: optimize a global objective (EQ-BGP family).
    BottleneckBandwidth,
}

/// Whose advertisements cross gulfs intact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Baseline {
    /// Plain BGP: new-protocol information dies at the first gulf AS.
    Bgp,
    /// D-BGP: pass-through carries it across gulfs.
    Dbgp,
}

/// How adopters are placed on the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum AdoptionMode {
    /// Uniformly at random — the paper's setting, "reflecting the ideal
    /// case of providing ASes the flexibility to deploy a new protocol
    /// independently of their neighbors". Produces many non-contiguous
    /// islands; pass-through is essential.
    Random,
    /// BFS-grown contiguous clusters seeded at random ASes — the world
    /// BGP already supports, where adopters must be neighbors. Few
    /// gulfs; pass-through matters little. The gap between the two
    /// modes isolates exactly what D-BGP buys.
    Clustered,
}

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct BenefitsConfig {
    /// Topology generator settings (paper: 1000 ASes, α=0.15, β=0.25).
    pub waxman: WaxmanParams,
    /// Archetype under test.
    pub archetype: Archetype,
    /// Baseline under test.
    pub baseline: Baseline,
    /// Adoption percentages to sweep (paper: 0,10,...,100).
    pub adoption_percents: Vec<u32>,
    /// Seeds — one trial per seed (paper: 9).
    pub seeds: Vec<u64>,
    /// Per-advertisement path cap (paper: 10).
    pub max_paths: u32,
    /// Ingress-bandwidth range (paper: 10–1024, uniform).
    pub bw_range: (u64, u64),
    /// Measure against a random sample of destinations instead of all
    /// (`None` = all ASes are destinations, as in the paper; sampling is
    /// for fast test configurations).
    pub dest_sample: Option<usize>,
    /// Adopter placement (paper: random).
    pub adoption_mode: AdoptionMode,
}

impl BenefitsConfig {
    /// The paper's Figure-9 configuration.
    pub fn figure9(baseline: Baseline) -> Self {
        BenefitsConfig {
            waxman: WaxmanParams::default(),
            archetype: Archetype::ExtraPaths,
            baseline,
            adoption_percents: (0..=100).step_by(10).collect(),
            seeds: (1..=9).collect(),
            max_paths: 10,
            bw_range: (10, 1024),
            dest_sample: None,
            adoption_mode: AdoptionMode::Random,
        }
    }

    /// The paper's Figure-10 configuration.
    pub fn figure10(baseline: Baseline) -> Self {
        BenefitsConfig { archetype: Archetype::BottleneckBandwidth, ..Self::figure9(baseline) }
    }

    /// A scaled-down configuration for unit tests.
    pub fn small(archetype: Archetype, baseline: Baseline) -> Self {
        BenefitsConfig {
            waxman: WaxmanParams { n: 120, ..Default::default() },
            archetype,
            baseline,
            adoption_percents: vec![0, 20, 50, 80, 100],
            seeds: vec![1, 2, 3],
            max_paths: 10,
            bw_range: (10, 1024),
            dest_sample: Some(40),
            adoption_mode: AdoptionMode::Random,
        }
    }
}

/// One point of a figure's series.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SeriesPoint {
    /// Adoption percentage.
    pub adoption: u32,
    /// Mean benefit across trials.
    pub mean: f64,
    /// Half-width of the 95% confidence interval.
    pub ci95: f64,
}

/// A full figure series plus its reference lines.
#[derive(Debug, Clone, Serialize)]
pub struct Series {
    /// The swept points.
    pub points: Vec<SeriesPoint>,
    /// Benefit at 0% adoption under shortest-path selection (the
    /// "status quo" line).
    pub status_quo: f64,
    /// Benefit at 100% adoption (the "best case" line).
    pub best_case: f64,
}

/// The per-advertisement state a neighbor exposes.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Export {
    /// Hops to the destination.
    dist: u32,
    /// Extra-paths metadata (≥ 1 once reachable).
    paths: u32,
    /// Bottleneck metadata exposed so far (None = no information).
    bw: Option<u64>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct NodeRoute {
    /// Chosen next hop toward the destination.
    next: usize,
    /// Export view derived from this node's state.
    export: Export,
    /// Did we learn this from a customer (for Gao-Rexford preference)?
    from_customer: bool,
}

/// Per-trial simulation state.
struct Trial<'a> {
    graph: &'a AsGraph,
    upgraded: &'a [bool],
    bw: &'a [u64],
    archetype: Archetype,
    baseline: Baseline,
    cap: u32,
}

impl<'a> Trial<'a> {
    /// Fixed-point route computation for one destination. Returns, per
    /// node, the chosen route (`None` = unreachable) and the node's
    /// *available paths* count (the Figure-9 measurement input).
    fn routes_to(&self, dest: usize) -> (Vec<Option<NodeRoute>>, Vec<u32>) {
        let n = self.graph.len();
        let mut routes: Vec<Option<NodeRoute>> = vec![None; n];
        let mut avail_paths: Vec<u32> = vec![0; n];
        // hops-from-dest for loop suppression: an AS never picks a
        // neighbor whose chosen path runs through itself; we
        // conservatively suppress loops by never increasing distance
        // beyond n and by next-hop distance ordering (next.dist <
        // mine is not required under policy routing, so we instead track
        // the actual path sets implicitly via distances and rely on the
        // valley-free structure, which is loop-free by construction:
        // paths go up then down the provider hierarchy).
        routes[dest] = Some(NodeRoute {
            next: dest,
            export: Export {
                dist: 0,
                paths: 1,
                bw: if self.upgraded[dest] { Some(self.bw[dest]) } else { None },
            },
            from_customer: true,
        });
        avail_paths[dest] = 1;

        for _round in 0..50 {
            let mut changed = false;
            let snapshot = routes.clone();
            for u in 0..n {
                if u == dest {
                    continue;
                }
                // Gather valid advertisements from neighbors.
                let mut candidates: Vec<(usize, Export, bool)> = Vec::new();
                for adj in self.graph.neighbors(u) {
                    let v = adj.neighbor;
                    let Some(route_v) = &snapshot[v] else { continue };
                    // Valley-free export at v: customer routes (or v's
                    // own destination) go anywhere; provider routes only
                    // to v's customers.
                    let v_may_export = v == dest
                        || route_v.from_customer
                        || adj.relationship == Relationship::CustomerToProvider;
                    // (adj.relationship is u's view; u->v being
                    //  CustomerToProvider means u is v's customer.)
                    if !v_may_export {
                        continue;
                    }
                    // Loop suppression: never route via a neighbor whose
                    // next hop is us.
                    if route_v.next == u {
                        continue;
                    }
                    let from_customer = adj.relationship == Relationship::ProviderToCustomer;
                    candidates.push((v, route_v.export, from_customer));
                }
                let chosen = self.select(u, &candidates);
                let new_route = chosen.map(|idx| {
                    let (v, export, from_customer) = candidates[idx];
                    let (export, avail) = self.export_from(u, export, &candidates);
                    avail_paths[u] = avail;
                    NodeRoute { next: v, export, from_customer }
                });
                if new_route != routes[u] {
                    routes[u] = new_route;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        (routes, avail_paths)
    }

    /// Rank candidates at node `u`: Gao-Rexford class first (customer
    /// routes are free, provider routes cost money), then the archetype
    /// metric if `u` upgraded, then shortest path, then lowest neighbor.
    fn select(&self, u: usize, candidates: &[(usize, Export, bool)]) -> Option<usize> {
        candidates
            .iter()
            .enumerate()
            .max_by_key(|(_, (v, export, from_customer))| {
                let metric: i64 = if self.upgraded[u] {
                    match self.archetype {
                        Archetype::ExtraPaths => export.paths as i64,
                        Archetype::BottleneckBandwidth => export.bw.unwrap_or(0) as i64,
                    }
                } else {
                    0
                };
                (*from_customer, metric, std::cmp::Reverse(export.dist), std::cmp::Reverse(*v))
            })
            .map(|(i, _)| i)
    }

    /// What `u` will advertise onward, given its chosen candidate's
    /// export view and its full candidate set. Also returns the number
    /// of paths *available at u* (the Figure-9 measurement).
    fn export_from(
        &self,
        u: usize,
        chosen: Export,
        candidates: &[(usize, Export, bool)],
    ) -> (Export, u32) {
        let avail = candidates.iter().map(|(_, e, _)| e.paths).sum::<u32>().min(self.cap).max(1);
        let dist = chosen.dist + 1;
        match (self.upgraded[u], self.baseline) {
            (true, _) => {
                // An upgraded AS aggregates its candidates' path
                // exposure and folds in its own bandwidth.
                let bw = match self.archetype {
                    Archetype::BottleneckBandwidth => {
                        Some(chosen.bw.unwrap_or(u64::MAX).min(self.bw[u]))
                    }
                    Archetype::ExtraPaths => chosen.bw,
                };
                (Export { dist, paths: avail, bw }, avail)
            }
            (false, Baseline::Dbgp) => {
                // Pass-through: the gulf AS forwards the chosen path's
                // metadata untouched.
                (Export { dist, paths: chosen.paths, bw: chosen.bw }, avail)
            }
            (false, Baseline::Bgp) => {
                // Plain BGP drops everything it does not understand.
                (Export { dist, paths: 1, bw: None }, avail)
            }
        }
    }

    /// True bottleneck bandwidth of the chosen path from `s` (min over
    /// every AS the traffic enters, upgraded or not).
    fn actual_bottleneck(
        &self,
        routes: &[Option<NodeRoute>],
        s: usize,
        dest: usize,
    ) -> Option<u64> {
        let mut at = s;
        let mut min_bw = u64::MAX;
        let mut hops = 0;
        while at != dest {
            let route = routes[at].as_ref()?;
            at = route.next;
            min_bw = min_bw.min(self.bw[at]);
            hops += 1;
            if hops > self.graph.len() {
                return None;
            }
        }
        Some(min_bw)
    }
}

/// Result of one trial at one adoption level: the mean benefit over the
/// measured node set.
fn run_trial(cfg: &BenefitsConfig, seed: u64, adoption_percent: u32) -> f64 {
    let graph = dbgp_topology::waxman::generate(cfg.waxman, seed);
    let n = graph.len();
    let mut rng =
        StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(adoption_percent as u64));
    let k = (n * adoption_percent as usize) / 100;
    let mut upgraded = vec![false; n];
    match cfg.adoption_mode {
        AdoptionMode::Random => {
            let mut order: Vec<usize> = (0..n).collect();
            order.shuffle(&mut rng);
            for &node in order.iter().take(k) {
                upgraded[node] = true;
            }
        }
        AdoptionMode::Clustered => {
            // Grow a handful of contiguous islands by BFS from random
            // seeds until k ASes have adopted.
            use std::collections::VecDeque;
            let mut count = 0usize;
            let mut attempts = 0usize;
            let mut queue: VecDeque<usize> = VecDeque::new();
            while count < k {
                if queue.is_empty() {
                    // New island seed. Bound the retries so a
                    // disconnected topology cannot spin forever; fewer
                    // adopters is an acceptable degradation.
                    attempts += 1;
                    if attempts > 50 * n {
                        break;
                    }
                    let seed_node = rng.gen_range(0..n);
                    if !upgraded[seed_node] {
                        upgraded[seed_node] = true;
                        count += 1;
                        queue.push_back(seed_node);
                    }
                    continue;
                }
                let u = queue.pop_front().unwrap();
                for adj in graph.neighbors(u) {
                    if count >= k {
                        break;
                    }
                    if !upgraded[adj.neighbor] {
                        upgraded[adj.neighbor] = true;
                        count += 1;
                        queue.push_back(adj.neighbor);
                    }
                }
            }
        }
    }
    let bw: Vec<u64> = (0..n).map(|_| rng.gen_range(cfg.bw_range.0..=cfg.bw_range.1)).collect();
    let trial = Trial {
        graph: &graph,
        upgraded: &upgraded,
        bw: &bw,
        archetype: cfg.archetype,
        baseline: cfg.baseline,
        cap: cfg.max_paths,
    };

    // Measurement points: upgraded stubs (Fig. 9) / upgraded ASes
    // (Fig. 10); at 0% adoption, all stubs / all ASes (the status quo).
    let measure: Vec<usize> = match cfg.archetype {
        Archetype::ExtraPaths => {
            let stubs = graph.stubs();
            if adoption_percent == 0 {
                stubs
            } else {
                stubs.into_iter().filter(|&s| upgraded[s]).collect()
            }
        }
        Archetype::BottleneckBandwidth => {
            if adoption_percent == 0 {
                (0..n).collect()
            } else {
                (0..n).filter(|&s| upgraded[s]).collect()
            }
        }
    };
    if measure.is_empty() {
        return 0.0;
    }

    let destinations: Vec<usize> = match cfg.dest_sample {
        Some(k) => {
            let mut all: Vec<usize> = (0..n).collect();
            all.shuffle(&mut rng);
            all.truncate(k);
            all
        }
        None => (0..n).collect(),
    };

    // Accumulate per measuring node.
    let mut totals = vec![0.0f64; n];
    let mut counts = vec![0u32; n];
    for &dest in &destinations {
        let (routes, avail) = trial.routes_to(dest);
        for &s in &measure {
            if s == dest {
                continue;
            }
            match cfg.archetype {
                Archetype::ExtraPaths => {
                    if routes[s].is_some() {
                        // An upgraded stub can use every path its
                        // candidates expose; an unupgraded one uses only
                        // its single chosen BGP path.
                        totals[s] += if upgraded[s] { avail[s] as f64 } else { 1.0 };
                    }
                    counts[s] += 1;
                }
                Archetype::BottleneckBandwidth => {
                    if let Some(bw) = trial.actual_bottleneck(&routes, s, dest) {
                        totals[s] += bw as f64;
                        counts[s] += 1;
                    }
                }
            }
        }
    }
    let scale = match cfg.dest_sample {
        // Scale sampled sums up to "all destinations" for Figure 9's
        // y-axis semantics.
        Some(k) => (n as f64 - 1.0) / k as f64,
        None => 1.0,
    };
    let per_node: Vec<f64> = measure
        .iter()
        .filter(|&&s| counts[s] > 0)
        .map(|&s| match cfg.archetype {
            // Fig. 9: total paths available to all destinations.
            Archetype::ExtraPaths => totals[s] * scale,
            // Fig. 10: average bottleneck bandwidth.
            Archetype::BottleneckBandwidth => totals[s] / counts[s] as f64,
        })
        .collect();
    if per_node.is_empty() {
        return 0.0;
    }
    per_node.iter().sum::<f64>() / per_node.len() as f64
}

/// Run the full sweep: every adoption level, every seed, in parallel
/// across seeds. Returns the series with mean and 95% CI per level.
pub fn run(cfg: &BenefitsConfig) -> Series {
    let mut points = Vec::with_capacity(cfg.adoption_percents.len());
    let mut status_quo = 0.0;
    let mut best_case = 0.0;
    for &adoption in &cfg.adoption_percents {
        let results: Vec<f64> = std::thread::scope(|scope| {
            let handles: Vec<_> = cfg
                .seeds
                .iter()
                .map(|&seed| scope.spawn(move || run_trial(cfg, seed, adoption)))
                .collect();
            handles.into_iter().map(|h| h.join().expect("trial panicked")).collect()
        });
        let n = results.len() as f64;
        let mean = results.iter().sum::<f64>() / n;
        let var = results.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / (n - 1.0).max(1.0);
        // Student-t 97.5% quantile for small samples (df = n-1); 2.306
        // for the paper's 9 trials.
        let t = match results.len() {
            0 | 1 => 0.0,
            2 => 12.706,
            3 => 4.303,
            4 => 3.182,
            5 => 2.776,
            6 => 2.571,
            7 => 2.447,
            8 => 2.365,
            9 => 2.306,
            _ => 1.96,
        };
        let ci95 = t * (var / n).sqrt();
        points.push(SeriesPoint { adoption, mean, ci95 });
        if adoption == 0 {
            status_quo = mean;
        }
        if adoption == 100 {
            best_case = mean;
        }
    }
    Series { points, status_quo, best_case }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(series: &Series, adoption: u32) -> f64 {
        series.points.iter().find(|p| p.adoption == adoption).unwrap().mean
    }

    #[test]
    fn extra_paths_dbgp_dominates_bgp_baseline() {
        // The Figure-9 claim: total benefits with the D-BGP baseline are
        // always >= the BGP baseline.
        let dbgp = run(&BenefitsConfig::small(Archetype::ExtraPaths, Baseline::Dbgp));
        let bgp = run(&BenefitsConfig::small(Archetype::ExtraPaths, Baseline::Bgp));
        for (d, b) in dbgp.points.iter().zip(&bgp.points) {
            assert!(
                d.mean >= b.mean - 1e-9,
                "D-BGP ({}) must dominate BGP ({}) at {}%",
                d.mean,
                b.mean,
                d.adoption
            );
        }
    }

    #[test]
    fn extra_paths_grow_with_adoption() {
        let series = run(&BenefitsConfig::small(Archetype::ExtraPaths, Baseline::Dbgp));
        let start = point(&series, 20);
        let end = point(&series, 100);
        assert!(end > start, "benefits must grow: {start} -> {end}");
        assert!(series.best_case >= series.status_quo);
    }

    #[test]
    fn extra_paths_status_quo_is_one_path_per_destination() {
        let series = run(&BenefitsConfig::small(Archetype::ExtraPaths, Baseline::Bgp));
        // With nobody upgraded, each reachable destination contributes
        // exactly one path: benefit ≈ n-1 (minus unreachable pairs).
        assert!(
            (series.status_quo - 119.0).abs() < 15.0,
            "status quo ≈ one path per destination, got {}",
            series.status_quo
        );
    }

    #[test]
    fn bottleneck_dbgp_beats_bgp_at_mid_adoption() {
        let dbgp = run(&BenefitsConfig::small(Archetype::BottleneckBandwidth, Baseline::Dbgp));
        let bgp = run(&BenefitsConfig::small(Archetype::BottleneckBandwidth, Baseline::Bgp));
        // The Figure-10 shape: at mid adoption the D-BGP baseline is
        // ahead of the BGP baseline.
        let d_mid = point(&dbgp, 50);
        let b_mid = point(&bgp, 50);
        assert!(d_mid > b_mid, "D-BGP {d_mid} vs BGP {b_mid} at 50%");
    }

    #[test]
    fn bottleneck_full_adoption_beats_status_quo() {
        let series = run(&BenefitsConfig::small(Archetype::BottleneckBandwidth, Baseline::Dbgp));
        assert!(
            series.best_case > series.status_quo,
            "best case {} must beat status quo {}",
            series.best_case,
            series.status_quo
        );
    }

    #[test]
    fn full_adoption_is_baseline_independent() {
        // At 100% there are no gulfs, so the baseline cannot matter.
        let dbgp = run(&BenefitsConfig::small(Archetype::ExtraPaths, Baseline::Dbgp));
        let bgp = run(&BenefitsConfig::small(Archetype::ExtraPaths, Baseline::Bgp));
        assert!((point(&dbgp, 100) - point(&bgp, 100)).abs() < 1e-6);
    }

    #[test]
    fn clustered_adoption_shrinks_the_baseline_gap() {
        // With contiguous adoption there are few gulfs: pass-through
        // buys much less than under random adoption. (The thesis of the
        // whole paper, in one assertion.)
        let at = |mode: AdoptionMode, baseline: Baseline| {
            let mut cfg = BenefitsConfig::small(Archetype::ExtraPaths, baseline);
            cfg.adoption_mode = mode;
            cfg.adoption_percents = vec![30];
            run(&cfg).points[0].mean
        };
        let gap_random = at(AdoptionMode::Random, Baseline::Dbgp)
            / at(AdoptionMode::Random, Baseline::Bgp).max(1.0);
        let gap_clustered = at(AdoptionMode::Clustered, Baseline::Dbgp)
            / at(AdoptionMode::Clustered, Baseline::Bgp).max(1.0);
        assert!(
            gap_random > gap_clustered,
            "random gap {gap_random:.2} should exceed clustered gap {gap_clustered:.2}"
        );
    }

    #[test]
    fn trials_are_deterministic() {
        let cfg = BenefitsConfig::small(Archetype::ExtraPaths, Baseline::Dbgp);
        let a = run_trial(&cfg, 3, 50);
        let b = run_trial(&cfg, 3, 50);
        assert_eq!(a, b);
    }
}
