//! The overlay workaround, quantified (paper §1–§2).
//!
//! Before D-BGP, islands could only find each other by building an
//! overlay and *tunneling* traffic between upgraded ASes. The paper's
//! critique: "the tunnels an overlay uses to hide traffic's true
//! destinations from domains that have not yet deployed the new protocol
//! interfere with those domains' routing decisions and thus can
//! significantly increase their operating costs."
//!
//! This module measures that interference on the same Waxman topologies
//! as §6.3:
//!
//! * **hidden-transit fraction** — of all (gulf AS, flow) transit
//!   events, how many carry traffic whose true destination the AS cannot
//!   see (under an overlay: every tunneled hop; under D-BGP: none);
//! * **path stretch** — tunneled traffic must detour through an overlay
//!   relay, lengthening AS-level paths relative to direct routes.
//!
//! D-BGP's pass-through makes tunnels optional ("elevating whether they
//! are used to be a protocol-specific consideration"), so its row is
//! stretch 1.0 and hidden fraction 0 by construction; the interesting
//! output is how bad the overlay numbers are that it avoids.

use dbgp_topology::{AsGraph, WaxmanParams};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::Serialize;
use std::collections::VecDeque;

/// Parameters for the overlay-interference measurement.
#[derive(Debug, Clone)]
pub struct OverlayConfig {
    /// Topology settings (paper scale by default).
    pub waxman: WaxmanParams,
    /// Adoption percentages to sweep.
    pub adoption_percents: Vec<u32>,
    /// Trials (seeds).
    pub seeds: Vec<u64>,
    /// Number of random upgraded (src, dst) flows sampled per trial.
    pub flows: usize,
}

impl Default for OverlayConfig {
    fn default() -> Self {
        OverlayConfig {
            waxman: WaxmanParams::default(),
            adoption_percents: vec![10, 30, 50, 70, 90],
            seeds: (1..=5).collect(),
            flows: 200,
        }
    }
}

/// One measured point.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct OverlayPoint {
    /// Adoption percentage.
    pub adoption: u32,
    /// Mean AS-level path stretch of tunneled flows (>= 1.0).
    pub stretch: f64,
    /// Mean fraction of gulf-AS transit hops whose true destination is
    /// hidden by the tunnel.
    pub hidden_transit: f64,
}

fn bfs_dist(graph: &AsGraph, from: usize) -> Vec<u32> {
    let mut dist = vec![u32::MAX; graph.len()];
    dist[from] = 0;
    let mut queue = VecDeque::from([from]);
    while let Some(u) = queue.pop_front() {
        for adj in graph.neighbors(u) {
            if dist[adj.neighbor] == u32::MAX {
                dist[adj.neighbor] = dist[u] + 1;
                queue.push_back(adj.neighbor);
            }
        }
    }
    dist
}

/// Run the sweep. For each sampled upgraded→upgraded flow, the overlay
/// routes src → relay → dst where the relay is the upgraded AS
/// minimizing the detour (the best case for the overlay); every
/// non-upgraded AS on the tunneled segments carries hidden-destination
/// traffic.
pub fn run(cfg: &OverlayConfig) -> Vec<OverlayPoint> {
    let mut out = Vec::new();
    for &adoption in &cfg.adoption_percents {
        let mut stretches = Vec::new();
        let mut hidden = Vec::new();
        for &seed in &cfg.seeds {
            let graph = dbgp_topology::waxman::generate(cfg.waxman, seed);
            let n = graph.len();
            let mut rng = StdRng::seed_from_u64(seed ^ (adoption as u64) << 32);
            let mut order: Vec<usize> = (0..n).collect();
            order.shuffle(&mut rng);
            let k = (n * adoption as usize / 100).max(2);
            let upgraded: Vec<usize> = order[..k].to_vec();
            for _ in 0..cfg.flows {
                let src = *upgraded.choose(&mut rng).unwrap();
                let dst = *upgraded.choose(&mut rng).unwrap();
                if src == dst {
                    continue;
                }
                let d_src = bfs_dist(&graph, src);
                let d_dst = bfs_dist(&graph, dst);
                if d_src[dst] == u32::MAX {
                    continue;
                }
                let direct = d_src[dst].max(1);
                // Best overlay relay: the *third-party* upgraded AS
                // minimizing the detour — the Arrow/MIRO/RON model where
                // traffic is forcibly routed through the island selling
                // the service, which is neither endpoint.
                let Some((relay, via)) = upgraded
                    .iter()
                    .filter(|&&r| r != src && r != dst)
                    .filter(|&&r| d_src[r] != u32::MAX && d_dst[r] != u32::MAX)
                    .map(|&r| (r, d_src[r] + d_dst[r]))
                    .min_by_key(|&(_, d)| d)
                else {
                    continue;
                };
                let via = via.max(1);
                stretches.push(via as f64 / direct as f64);
                // Hidden transit: only the outer (src -> relay) leg
                // carries encapsulated traffic with a hidden inner
                // destination; after decapsulation at the relay the true
                // header is visible. Expected non-upgraded hops on that
                // leg over the whole tunneled path.
                let gulf_fraction = 1.0 - (k as f64 / n as f64);
                let hidden_hops = d_src[relay] as f64 * gulf_fraction;
                let total_hops = via.max(1) as f64;
                hidden.push(hidden_hops / total_hops);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        out.push(OverlayPoint {
            adoption,
            stretch: mean(&stretches),
            hidden_transit: mean(&hidden),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> OverlayConfig {
        OverlayConfig {
            waxman: WaxmanParams { n: 120, ..Default::default() },
            adoption_percents: vec![10, 50, 90],
            seeds: vec![1, 2],
            flows: 50,
        }
    }

    #[test]
    fn stretch_is_at_least_one_and_falls_with_adoption() {
        let points = run(&small());
        for p in &points {
            assert!(p.stretch >= 1.0, "stretch {} at {}%", p.stretch, p.adoption);
        }
        // More upgraded ASes = better relays = less detour.
        assert!(points.first().unwrap().stretch >= points.last().unwrap().stretch, "{points:?}");
    }

    #[test]
    fn hidden_transit_falls_with_adoption() {
        let points = run(&small());
        assert!(points[0].hidden_transit > points[2].hidden_transit, "{points:?}");
        for p in &points {
            assert!((0.0..=1.0).contains(&p.hidden_transit));
        }
    }

    #[test]
    fn deterministic() {
        let a = format!("{:?}", run(&small()));
        let b = format!("{:?}", run(&small()));
        assert_eq!(a, b);
    }
}
