//! The §6.2 control-plane overhead model: Tables 2 and 3.
//!
//! The paper estimates three kinds of overhead at a tier-1 AS — per-IA
//! size, number of IAs, and aggregate bytes — under four analyses:
//!
//! * **Basic** — every IA carries every protocol's control information;
//! * **+ Avg. path lengths** — an IA only carries information for the
//!   protocols actually on its path (3–5 critical fixes, 3–5
//!   custom/replacement protocols);
//! * **+ Sharing** — critical fixes share all but a fraction `CFu` of
//!   their control information with BGP (Figure 4's shared fields);
//! * **Single protocol** — the comparison baseline: an Internet running
//!   only BGP or one big critical fix.
//!
//! Every quantity is evaluated at the minimum and maximum of the
//! Table-2 parameter ranges, reproducing Table 3's rows. The headline
//! result — D-BGP costs only **1.3×–2.5×** a single-protocol Internet —
//! is the ratio of the *+ Sharing* and *Single protocol* totals.

use serde::Serialize;

/// The Table-2 parameters. All sizes in bytes.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct OverheadParams {
    /// `P`: prefixes in today's Internet (600k–1M).
    pub prefixes: u64,
    /// `Pd`: prefixes in D-BGP's Internet (625k–1.05M; extra prefixes
    /// allow off-path discovery).
    pub prefixes_dbgp: u64,
    /// `PL`: average BGP path length (3–5).
    pub path_length: u64,
    /// `CFs`: number of critical fixes Internet-wide (10–100).
    pub critical_fixes: u64,
    /// Critical fixes per path (3–5).
    pub cf_per_path: u64,
    /// `CI/CF`: control information per critical fix (4KB–256KB).
    pub ci_per_cf: u64,
    /// `CFu`: unique (unshared) fraction of a critical fix's control
    /// information (0.1–0.3).
    pub cf_unique_fraction: f64,
    /// `CRs`: custom/replacement protocols Internet-wide (10–1000).
    pub custom_replacements: u64,
    /// Custom/replacements per path (3–5).
    pub cr_per_path: u64,
    /// `CI/CR`: control information per custom/replacement (100B–10KB).
    pub ci_per_cr: u64,
}

impl OverheadParams {
    /// The minimum of every Table-2 range.
    pub fn paper_min() -> Self {
        OverheadParams {
            prefixes: 600_000,
            prefixes_dbgp: 625_000,
            path_length: 3,
            critical_fixes: 10,
            cf_per_path: 3,
            ci_per_cf: 4 << 10,
            cf_unique_fraction: 0.1,
            custom_replacements: 10,
            cr_per_path: 3,
            ci_per_cr: 100,
        }
    }

    /// The maximum of every Table-2 range.
    pub fn paper_max() -> Self {
        OverheadParams {
            prefixes: 1_000_000,
            prefixes_dbgp: 1_050_000,
            path_length: 5,
            critical_fixes: 100,
            cf_per_path: 5,
            ci_per_cf: 256 << 10,
            cf_unique_fraction: 0.3,
            custom_replacements: 1000,
            cr_per_path: 5,
            ci_per_cr: 10 << 10,
        }
    }
}

/// One analysis row of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct OverheadRow {
    /// Bytes an IA carries for critical fixes.
    pub cf_bytes: f64,
    /// Bytes an IA carries for custom/replacement protocols.
    pub cr_bytes: f64,
    /// Number of advertisements received at the tier-1.
    pub advertisements: u64,
    /// Aggregate bytes (state kept at the tier-1).
    pub total_bytes: f64,
}

impl OverheadRow {
    /// Per-IA size (critical fixes + custom/replacements).
    pub fn ia_bytes(&self) -> f64 {
        self.cf_bytes + self.cr_bytes
    }
}

/// The "Basic" analysis: all protocols in every IA.
pub fn basic(p: &OverheadParams) -> OverheadRow {
    let cf = (p.critical_fixes * p.ci_per_cf) as f64;
    let cr = (p.custom_replacements * p.ci_per_cr) as f64;
    OverheadRow {
        cf_bytes: cf,
        cr_bytes: cr,
        advertisements: p.prefixes_dbgp,
        total_bytes: (cf + cr) * p.prefixes_dbgp as f64,
    }
}

/// "+ Avg. path lengths": only the protocols on the path contribute.
pub fn with_path_lengths(p: &OverheadParams) -> OverheadRow {
    let cf = (p.cf_per_path * p.ci_per_cf) as f64;
    let cr = (p.cr_per_path * p.ci_per_cr) as f64;
    OverheadRow {
        cf_bytes: cf,
        cr_bytes: cr,
        advertisements: p.prefixes_dbgp,
        total_bytes: (cf + cr) * p.prefixes_dbgp as f64,
    }
}

/// "+ Sharing": critical fixes share all but `CFu` of their information
/// with the baseline, so one full copy plus per-fix unique parts.
pub fn with_sharing(p: &OverheadParams) -> OverheadRow {
    let cf = p.cf_per_path as f64 * p.ci_per_cf as f64 * p.cf_unique_fraction
        + p.ci_per_cf as f64 * (1.0 - p.cf_unique_fraction);
    let cr = (p.cr_per_path * p.ci_per_cr) as f64;
    OverheadRow {
        cf_bytes: cf,
        cr_bytes: cr,
        advertisements: p.prefixes_dbgp,
        total_bytes: (cf + cr) * p.prefixes_dbgp as f64,
    }
}

/// "Single protocol": the baseline Internet the paper compares against.
pub fn single_protocol(p: &OverheadParams) -> OverheadRow {
    let cf = p.ci_per_cf as f64;
    OverheadRow {
        cf_bytes: cf,
        cr_bytes: 0.0,
        advertisements: p.prefixes,
        total_bytes: cf * p.prefixes as f64,
    }
}

/// D-BGP's overhead factor over a single-protocol Internet — the paper's
/// 1.3×/2.5× headline.
pub fn overhead_factor(p: &OverheadParams) -> f64 {
    with_sharing(p).total_bytes / single_protocol(p).total_bytes
}

/// The full Table 3: (analysis name, min row, max row) triples in paper
/// order.
pub fn table3() -> Vec<(&'static str, OverheadRow, OverheadRow)> {
    let min = OverheadParams::paper_min();
    let max = OverheadParams::paper_max();
    vec![
        ("Basic", basic(&min), basic(&max)),
        ("+ Avg. path lengths", with_path_lengths(&min), with_path_lengths(&max)),
        ("+ Sharing", with_sharing(&min), with_sharing(&max)),
        ("Single protocol", single_protocol(&min), single_protocol(&max)),
    ]
}

/// Human-readable byte formatting matching the paper's table units.
pub fn fmt_bytes(bytes: f64) -> String {
    const KB: f64 = 1024.0;
    const MB: f64 = 1024.0 * 1024.0;
    const GB: f64 = 1024.0 * 1024.0 * 1024.0;
    if bytes >= GB {
        format!("{:.1} GB", bytes / GB)
    } else if bytes >= MB {
        format!("{:.1} MB", bytes / MB)
    } else if bytes >= KB {
        format!("{:.1} KB", bytes / KB)
    } else {
        format!("{bytes:.0} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: f64 = 1024.0 * 1024.0 * 1024.0;
    const MB: f64 = 1024.0 * 1024.0;
    const KB: f64 = 1024.0;

    #[test]
    fn basic_row_matches_table3() {
        let min = basic(&OverheadParams::paper_min());
        let max = basic(&OverheadParams::paper_max());
        // Paper: CF contribution 40 KB – 25 MB.
        assert_eq!(min.cf_bytes, 40.0 * KB);
        assert!((max.cf_bytes / MB - 25.0).abs() < 0.5, "{}", max.cf_bytes / MB);
        // Paper: CR contribution 1 KB – 9.8 MB.
        assert!((min.cr_bytes / KB - 1.0).abs() < 0.05);
        assert!((max.cr_bytes / MB - 9.8).abs() < 0.1);
        // Paper: total 24 GB – 36,000 GB.
        assert!((min.total_bytes / GB - 24.0).abs() < 1.0, "{}", min.total_bytes / GB);
        assert!((max.total_bytes / GB - 36_000.0).abs() < 1_000.0, "{}", max.total_bytes / GB);
    }

    #[test]
    fn path_length_row_matches_table3() {
        let min = with_path_lengths(&OverheadParams::paper_min());
        let max = with_path_lengths(&OverheadParams::paper_max());
        // Paper: CF 12 KB – 1.3 MB; CR 0.3 KB – 50 KB; total 7 GB – 1,300 GB.
        // (The paper's "1.3 MB" is 5 x 256 KB = 1.25 MiB reported in
        // decimal megabytes; we assert the exact binary value.)
        assert_eq!(min.cf_bytes, 12.0 * KB);
        assert!((max.cf_bytes / MB - 1.25).abs() < 0.01);
        assert!((min.cr_bytes / KB - 0.3).abs() < 0.01);
        assert!((max.cr_bytes / KB - 50.0).abs() < 1.0);
        assert!((min.total_bytes / GB - 7.0).abs() < 0.5);
        assert!((max.total_bytes / GB - 1_300.0).abs() < 100.0);
    }

    #[test]
    fn sharing_row_matches_table3() {
        let min = with_sharing(&OverheadParams::paper_min());
        let max = with_sharing(&OverheadParams::paper_max());
        // Paper: CF 4.8 KB – 0.56 MB; total 3 GB – 610 GB. (0.56 MB is
        // 563.2 KB = 0.55 MiB in decimal-megabyte rounding.)
        assert!((min.cf_bytes / KB - 4.8).abs() < 0.05, "{}", min.cf_bytes / KB);
        assert!((max.cf_bytes / MB - 0.55).abs() < 0.01, "{}", max.cf_bytes / MB);
        assert!((min.total_bytes / GB - 3.0).abs() < 0.25, "{}", min.total_bytes / GB);
        assert!((max.total_bytes / GB - 610.0).abs() < 30.0, "{}", max.total_bytes / GB);
    }

    #[test]
    fn single_protocol_row_matches_table3() {
        let min = single_protocol(&OverheadParams::paper_min());
        let max = single_protocol(&OverheadParams::paper_max());
        // Paper: 4 KB – 256 KB per IA; 2.3 GB – 240 GB total.
        assert_eq!(min.cf_bytes, 4.0 * KB);
        assert_eq!(max.cf_bytes, 256.0 * KB);
        assert!((min.total_bytes / GB - 2.3).abs() < 0.1);
        assert!((max.total_bytes / GB - 240.0).abs() < 10.0);
        assert_eq!(min.advertisements, 600_000);
    }

    #[test]
    fn headline_factor_is_1_3x_to_2_5x() {
        let lo = overhead_factor(&OverheadParams::paper_min());
        let hi = overhead_factor(&OverheadParams::paper_max());
        assert!((lo - 1.3).abs() < 0.05, "min factor {lo}");
        assert!((hi - 2.5).abs() < 0.1, "max factor {hi}");
    }

    #[test]
    fn analyses_are_monotonically_cheaper() {
        for params in [OverheadParams::paper_min(), OverheadParams::paper_max()] {
            let b = basic(&params).total_bytes;
            let pl = with_path_lengths(&params).total_bytes;
            let sh = with_sharing(&params).total_bytes;
            assert!(b >= pl, "path-length refinement cannot increase cost");
            assert!(pl >= sh, "sharing refinement cannot increase cost");
        }
    }

    #[test]
    fn table3_has_paper_rows_in_order() {
        let t = table3();
        let names: Vec<&str> = t.iter().map(|(n, _, _)| *n).collect();
        assert_eq!(names, vec!["Basic", "+ Avg. path lengths", "+ Sharing", "Single protocol"]);
    }

    #[test]
    fn fmt_bytes_units() {
        assert_eq!(fmt_bytes(512.0), "512 B");
        assert_eq!(fmt_bytes(4.0 * KB), "4.0 KB");
        assert_eq!(fmt_bytes(25.0 * MB), "25.0 MB");
        assert_eq!(fmt_bytes(24.0 * GB), "24.0 GB");
    }
}
