//! Table 1: the 14 recently proposed inter-domain protocols the paper
//! analyzed, grouped by evolvability scenario, with the extra
//! control-plane information (⋆) and data-plane support (◇) each needs.

use serde::Serialize;

/// Which deployment scenario (§2.2–§2.4) fits the protocol best.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Scenario {
    /// Baseline → baseline with critical fix.
    CriticalFix,
    /// Baseline → baseline ∥ custom protocol.
    CustomProtocol,
    /// Baseline → replacement protocol.
    Replacement,
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Scenario::CriticalFix => "Baseline -> critical fix",
            Scenario::CustomProtocol => "Baseline -> custom protocol",
            Scenario::Replacement => "Baseline -> replacement protocol",
        })
    }
}

/// One row of Table 1.
#[derive(Debug, Clone, Serialize)]
pub struct ProtocolEntry {
    /// Protocol name as in the paper.
    pub name: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// Scenario grouping.
    pub scenario: Scenario,
    /// Extra control-plane information to disseminate (the ⋆ items).
    pub control_plane: &'static [&'static str],
    /// Data-plane support needed (the ◇ items).
    pub data_plane: &'static [&'static str],
}

/// The full Table 1, in the paper's order.
pub fn table1() -> Vec<ProtocolEntry> {
    use Scenario::*;
    vec![
        ProtocolEntry {
            name: "BGPSec",
            summary: "Prevents path hijacking",
            scenario: CriticalFix,
            control_plane: &["Path attestations"],
            data_plane: &[],
        },
        ProtocolEntry {
            name: "EQ-BGP",
            summary: "Adds end-to-end QoS",
            scenario: CriticalFix,
            control_plane: &["QoS metrics"],
            data_plane: &[],
        },
        ProtocolEntry {
            name: "Xiao et al.",
            summary: "Adds end-to-end QoS",
            scenario: CriticalFix,
            control_plane: &["QoS metrics"],
            data_plane: &[],
        },
        ProtocolEntry {
            name: "LISP",
            summary: "Supports mobility",
            scenario: CriticalFix,
            control_plane: &["Dest. ingress IDs"],
            data_plane: &[],
        },
        ProtocolEntry {
            name: "R-BGP",
            summary: "Enables quick failover",
            scenario: CriticalFix,
            control_plane: &["Extra backup paths"],
            data_plane: &[],
        },
        ProtocolEntry {
            name: "Wiser",
            summary: "Limits ingress traffic",
            scenario: CriticalFix,
            control_plane: &["Path costs"],
            data_plane: &[],
        },
        ProtocolEntry {
            name: "MIRO",
            summary: "Exposes alt. paths",
            scenario: CustomProtocol,
            control_plane: &["Service's existence"],
            data_plane: &["Tunnels"],
        },
        ProtocolEntry {
            name: "Arrow",
            summary: "Exposes alt. paths + intra-island QoS",
            scenario: CustomProtocol,
            control_plane: &["Service's existence"],
            data_plane: &["Tunnels"],
        },
        ProtocolEntry {
            name: "RON",
            summary: "Creates low-latency paths",
            scenario: CustomProtocol,
            control_plane: &["Service's existence"],
            data_plane: &["Tunnels"],
        },
        ProtocolEntry {
            name: "NIRA",
            summary: "Path-based routing",
            scenario: Replacement,
            control_plane: &["Multiple paths"],
            data_plane: &["Fwd w/custom hdrs", "multi-network-proto hdrs"],
        },
        ProtocolEntry {
            name: "SCION",
            summary: "Path-based routing",
            scenario: Replacement,
            control_plane: &["Multiple paths"],
            data_plane: &["Fwd w/custom hdrs", "multi-network-proto hdrs"],
        },
        ProtocolEntry {
            name: "Pathlets",
            summary: "Multi-hop routing",
            scenario: Replacement,
            control_plane: &["Pathlets"],
            data_plane: &["Fwd w/custom hdrs", "multi-network-proto hdrs"],
        },
        ProtocolEntry {
            name: "YAMR",
            summary: "Multi-hop routing",
            scenario: Replacement,
            control_plane: &["Pathlets"],
            data_plane: &["Fwd w/custom hdrs", "multi-network-proto hdrs"],
        },
        ProtocolEntry {
            name: "HLP",
            summary: "Hybrid PV/LS (link-state within islands only)",
            scenario: Replacement,
            control_plane: &["Path costs"],
            data_plane: &[],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_fourteen_protocols() {
        assert_eq!(table1().len(), 14);
    }

    #[test]
    fn scenario_counts_match_paper_grouping() {
        let t = table1();
        let count = |s: Scenario| t.iter().filter(|e| e.scenario == s).count();
        assert_eq!(count(Scenario::CriticalFix), 6);
        assert_eq!(count(Scenario::CustomProtocol), 3);
        assert_eq!(count(Scenario::Replacement), 5);
    }

    #[test]
    fn replacements_need_data_plane_support_except_hlp() {
        for entry in table1() {
            if entry.scenario == Scenario::Replacement && entry.name != "HLP" {
                assert!(
                    !entry.data_plane.is_empty(),
                    "{} should need data-plane support",
                    entry.name
                );
            }
        }
    }

    #[test]
    fn every_protocol_disseminates_something() {
        for entry in table1() {
            assert!(!entry.control_plane.is_empty(), "{}", entry.name);
        }
    }
}
