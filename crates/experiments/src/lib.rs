#![warn(missing_docs)]

//! The paper's evaluation, as code: the §6.2 control-plane overhead
//! model (Tables 2–3), the §6.3 incremental-benefits simulations
//! (Figures 9–10), and the Table-1 protocol taxonomy.
//!
//! Each regenerator binary in `dbgp-bench` is a thin printer over these
//! functions; the science lives here, under test.

pub mod benefits;
pub mod overhead;
pub mod overlay;
pub mod taxonomy;

pub use benefits::{AdoptionMode, Archetype, Baseline, BenefitsConfig, Series, SeriesPoint};
pub use overhead::{table3, OverheadParams, OverheadRow};
pub use overlay::{OverlayConfig, OverlayPoint};
pub use taxonomy::{table1, ProtocolEntry, Scenario};
