#![warn(missing_docs)]

//! A classic BGP-4 speaker, written from scratch and sans-IO.
//!
//! This crate is the workspace's "Quagga": the baseline inter-domain
//! routing implementation that D-BGP (`dbgp-core`) extends. The state
//! machines themselves — session FSM, RIBs, decision process, policy —
//! live in `dbgp-session` (shared with the `dbgpd` daemon) and are
//! re-exported here under their historical paths; this crate adds:
//!
//! * [`speaker`] — the whole speaker: byte-oriented, host-driven, with
//!   split-horizon, loop detection, policy application and incremental
//!   advertisement generation, assembled from the sans-IO cores.
//!
//! Nothing here knows about Integrated Advertisements; `dbgp-core`
//! builds the multi-protocol pipeline on top of these pieces.

pub use dbgp_session::config;
pub use dbgp_session::decision;
pub use dbgp_session::policy;
pub use dbgp_session::rib;
pub use dbgp_session::route;
pub use dbgp_session::session;

pub mod speaker;

pub use config::{NeighborConfig, PeerConfig, PeerId};
pub use decision::{best, best_with, compare, compare_with, Candidate, DecisionOptions};
pub use policy::{Clause, MatchCond, PrefixMatch, RouteMap, SetAction};
pub use rib::{AdjRibIn, AdjRibOut, LocRib, LocRibEntry, RouteSource};
pub use route::Route;
pub use session::{
    Action, DownReason, Millis, Session, SessionEvent, SessionState, SessionSummary,
};
pub use speaker::{Output, Speaker, TransportEvent};
