#![warn(missing_docs)]

//! A classic BGP-4 speaker, written from scratch and sans-IO.
//!
//! This crate is the workspace's "Quagga": the baseline inter-domain
//! routing implementation that D-BGP (`dbgp-core`) extends. It provides:
//!
//! * [`session`] — the RFC 4271 §8 finite-state machine, timer-driven
//!   through an explicit `poll(now)` interface;
//! * [`route`] — the parsed per-prefix route model;
//! * [`rib`] — Adj-RIB-In / Loc-RIB / Adj-RIB-Out;
//! * [`decision`] — the §9.1.2.2 best-path selection chain;
//! * [`policy`] — route maps (match/set clauses) for import/export;
//! * [`speaker`] — the whole speaker: byte-oriented, host-driven, with
//!   split-horizon, loop detection, policy application and incremental
//!   advertisement generation.
//!
//! Nothing here knows about Integrated Advertisements; `dbgp-core`
//! builds the multi-protocol pipeline on top of these pieces.

pub mod config;
pub mod decision;
pub mod policy;
pub mod rib;
pub mod route;
pub mod session;
pub mod speaker;

pub use config::{NeighborConfig, PeerConfig, PeerId};
pub use decision::{best, best_with, compare, compare_with, Candidate, DecisionOptions};
pub use policy::{Clause, MatchCond, PrefixMatch, RouteMap, SetAction};
pub use rib::{AdjRibIn, AdjRibOut, LocRib, LocRibEntry, RouteSource};
pub use route::Route;
pub use session::{
    Action, DownReason, Millis, Session, SessionEvent, SessionState, SessionSummary,
};
pub use speaker::{Output, Speaker, TransportEvent};
