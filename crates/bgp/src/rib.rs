//! Routing information bases: Adj-RIB-In, Loc-RIB and Adj-RIB-Out
//! (RFC 4271 §3.2).
//!
//! Routes are interned behind `Arc` so the decision process, the
//! Loc-RIB and the per-peer Adj-RIB-Out bookkeeping share one
//! allocation per distinct route instead of deep-cloning AS paths at
//! every hand-off.

use crate::config::PeerId;
use crate::route::Route;
use dbgp_wire::{Ipv4Addr, Ipv4Prefix};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Routes received from each peer, post-import-policy.
#[derive(Debug, Clone, Default)]
pub struct AdjRibIn {
    routes: HashMap<PeerId, BTreeMap<Ipv4Prefix, Arc<Route>>>,
}

impl AdjRibIn {
    /// Create an empty Adj-RIB-In.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store a route from a peer, replacing any previous one (implicit
    /// withdraw). Returns the replaced route.
    pub fn insert(&mut self, peer: PeerId, prefix: Ipv4Prefix, route: Route) -> Option<Arc<Route>> {
        self.routes.entry(peer).or_default().insert(prefix, Arc::new(route))
    }

    /// Remove a route (explicit withdraw). Returns the removed route.
    pub fn remove(&mut self, peer: PeerId, prefix: &Ipv4Prefix) -> Option<Arc<Route>> {
        self.routes.get_mut(&peer).and_then(|m| m.remove(prefix))
    }

    /// Remove everything learned from `peer` (session reset). Returns the
    /// affected prefixes.
    pub fn drop_peer(&mut self, peer: PeerId) -> Vec<Ipv4Prefix> {
        self.routes.remove(&peer).map(|m| m.into_keys().collect()).unwrap_or_default()
    }

    /// The route `peer` gave us for `prefix`, if any.
    pub fn get(&self, peer: PeerId, prefix: &Ipv4Prefix) -> Option<&Route> {
        self.routes.get(&peer).and_then(|m| m.get(prefix)).map(Arc::as_ref)
    }

    /// All (peer, route) candidates for one prefix.
    pub fn candidates(&self, prefix: &Ipv4Prefix) -> Vec<(PeerId, &Arc<Route>)> {
        let mut out: Vec<(PeerId, &Arc<Route>)> =
            self.routes.iter().filter_map(|(peer, m)| m.get(prefix).map(|r| (*peer, r))).collect();
        out.sort_by_key(|(peer, _)| *peer);
        out
    }

    /// Every prefix any peer has advertised.
    pub fn prefixes(&self) -> Vec<Ipv4Prefix> {
        let mut out: Vec<Ipv4Prefix> =
            self.routes.values().flat_map(|m| m.keys().copied()).collect();
        out.sort();
        out.dedup();
        out
    }

    /// Total route count across all peers.
    pub fn len(&self) -> usize {
        self.routes.values().map(BTreeMap::len).sum()
    }

    /// True if no routes are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Where a Loc-RIB entry came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteSource {
    /// Chosen from a peer's Adj-RIB-In.
    Peer(PeerId),
    /// Locally originated.
    Local,
}

/// One selected best route. Holds the route by `Arc`, so installing,
/// cloning into `BestRouteChanged` outputs and re-exporting are
/// refcount bumps, not deep copies.
#[derive(Debug, Clone, Eq)]
pub struct LocRibEntry {
    /// Winning route.
    pub route: Arc<Route>,
    /// Who supplied it.
    pub source: RouteSource,
}

impl PartialEq for LocRibEntry {
    fn eq(&self, other: &Self) -> bool {
        self.source == other.source
            // Pointer equality short-circuits the common "same interned
            // route re-selected" comparison.
            && (Arc::ptr_eq(&self.route, &other.route) || *self.route == *other.route)
    }
}

/// The speaker's view of best paths, one per prefix.
#[derive(Debug, Clone, Default)]
pub struct LocRib {
    entries: BTreeMap<Ipv4Prefix, LocRibEntry>,
}

impl LocRib {
    /// Create an empty Loc-RIB.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install (or replace) the best route for a prefix. Returns the
    /// previous entry.
    pub fn install(&mut self, prefix: Ipv4Prefix, entry: LocRibEntry) -> Option<LocRibEntry> {
        self.entries.insert(prefix, entry)
    }

    /// Remove the route for a prefix entirely.
    pub fn remove(&mut self, prefix: &Ipv4Prefix) -> Option<LocRibEntry> {
        self.entries.remove(prefix)
    }

    /// Exact-prefix lookup.
    pub fn get(&self, prefix: &Ipv4Prefix) -> Option<&LocRibEntry> {
        self.entries.get(prefix)
    }

    /// Longest-prefix-match lookup for a destination address, as the
    /// data plane would perform it.
    pub fn longest_match(&self, addr: Ipv4Addr) -> Option<(&Ipv4Prefix, &LocRibEntry)> {
        self.entries.iter().filter(|(p, _)| p.contains(addr)).max_by_key(|(p, _)| p.len())
    }

    /// Iterate all entries in prefix order.
    pub fn iter(&self) -> impl Iterator<Item = (&Ipv4Prefix, &LocRibEntry)> {
        self.entries.iter()
    }

    /// Number of installed prefixes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is installed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// What we last advertised to each peer, so withdrawals and implicit
/// replacements can be generated precisely.
#[derive(Debug, Clone, Default)]
pub struct AdjRibOut {
    routes: HashMap<PeerId, BTreeMap<Ipv4Prefix, Arc<Route>>>,
}

impl AdjRibOut {
    /// Create an empty Adj-RIB-Out.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an advertisement. Returns `true` if this changed what the
    /// peer sees (new route or different attributes).
    pub fn advertise(&mut self, peer: PeerId, prefix: Ipv4Prefix, route: Arc<Route>) -> bool {
        let slot = self.routes.entry(peer).or_default();
        match slot.get(&prefix) {
            Some(existing) if Arc::ptr_eq(existing, &route) || **existing == *route => false,
            _ => {
                slot.insert(prefix, route);
                true
            }
        }
    }

    /// Record a withdrawal. Returns `true` if the peer had the route.
    pub fn withdraw(&mut self, peer: PeerId, prefix: &Ipv4Prefix) -> bool {
        self.routes.get_mut(&peer).is_some_and(|m| m.remove(prefix).is_some())
    }

    /// Forget everything advertised to `peer` (session reset).
    pub fn drop_peer(&mut self, peer: PeerId) {
        self.routes.remove(&peer);
    }

    /// What we last sent `peer` for `prefix`.
    pub fn get(&self, peer: PeerId, prefix: &Ipv4Prefix) -> Option<&Route> {
        self.routes.get(&peer).and_then(|m| m.get(prefix)).map(Arc::as_ref)
    }

    /// All prefixes currently advertised to `peer`.
    pub fn prefixes_for(&self, peer: PeerId) -> Vec<Ipv4Prefix> {
        self.routes.get(&peer).map(|m| m.keys().copied().collect()).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbgp_wire::attrs::AsPath;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn route(first_as: u32) -> Route {
        let mut r = Route::originated(Ipv4Addr::new(10, 0, 0, 1));
        r.as_path = AsPath::from_sequence(vec![first_as]);
        r
    }

    #[test]
    fn adj_in_insert_replace_remove() {
        let mut rib = AdjRibIn::new();
        assert!(rib.insert(PeerId(1), p("10.0.0.0/8"), route(1)).is_none());
        // Implicit withdraw: replacement returns the old route.
        let old = rib.insert(PeerId(1), p("10.0.0.0/8"), route(2));
        assert_eq!(old.as_deref(), Some(&route(1)));
        assert_eq!(rib.len(), 1);
        assert_eq!(rib.remove(PeerId(1), &p("10.0.0.0/8")).as_deref(), Some(&route(2)));
        assert!(rib.is_empty());
    }

    #[test]
    fn adj_in_candidates_are_per_prefix_and_ordered() {
        let mut rib = AdjRibIn::new();
        rib.insert(PeerId(2), p("10.0.0.0/8"), route(2));
        rib.insert(PeerId(1), p("10.0.0.0/8"), route(1));
        rib.insert(PeerId(1), p("192.168.0.0/16"), route(3));
        let cands = rib.candidates(&p("10.0.0.0/8"));
        assert_eq!(cands.len(), 2);
        assert_eq!(cands[0].0, PeerId(1));
        assert_eq!(cands[1].0, PeerId(2));
    }

    #[test]
    fn adj_in_drop_peer_reports_prefixes() {
        let mut rib = AdjRibIn::new();
        rib.insert(PeerId(1), p("10.0.0.0/8"), route(1));
        rib.insert(PeerId(1), p("192.168.0.0/16"), route(1));
        rib.insert(PeerId(2), p("10.0.0.0/8"), route(2));
        let mut dropped = rib.drop_peer(PeerId(1));
        dropped.sort();
        assert_eq!(dropped, vec![p("10.0.0.0/8"), p("192.168.0.0/16")]);
        assert_eq!(rib.len(), 1);
    }

    #[test]
    fn loc_rib_longest_match() {
        let mut rib = LocRib::new();
        rib.install(
            p("10.0.0.0/8"),
            LocRibEntry { route: Arc::new(route(1)), source: RouteSource::Peer(PeerId(1)) },
        );
        rib.install(
            p("10.5.0.0/16"),
            LocRibEntry { route: Arc::new(route(2)), source: RouteSource::Peer(PeerId(2)) },
        );
        let (prefix, entry) = rib.longest_match(Ipv4Addr::new(10, 5, 1, 1)).unwrap();
        assert_eq!(*prefix, p("10.5.0.0/16"));
        assert_eq!(entry.source, RouteSource::Peer(PeerId(2)));
        let (prefix, _) = rib.longest_match(Ipv4Addr::new(10, 6, 1, 1)).unwrap();
        assert_eq!(*prefix, p("10.0.0.0/8"));
        assert!(rib.longest_match(Ipv4Addr::new(11, 0, 0, 1)).is_none());
    }

    #[test]
    fn adj_out_dedupes_identical_advertisements() {
        let mut rib = AdjRibOut::new();
        let interned = Arc::new(route(1));
        assert!(rib.advertise(PeerId(1), p("10.0.0.0/8"), Arc::clone(&interned)));
        assert!(
            !rib.advertise(PeerId(1), p("10.0.0.0/8"), interned),
            "same interned route, ptr-eq fast path"
        );
        assert!(
            !rib.advertise(PeerId(1), p("10.0.0.0/8"), Arc::new(route(1))),
            "equal attributes, no change, no send"
        );
        assert!(
            rib.advertise(PeerId(1), p("10.0.0.0/8"), Arc::new(route(2))),
            "changed attributes"
        );
    }

    #[test]
    fn adj_out_withdraw_only_if_advertised() {
        let mut rib = AdjRibOut::new();
        assert!(!rib.withdraw(PeerId(1), &p("10.0.0.0/8")));
        rib.advertise(PeerId(1), p("10.0.0.0/8"), Arc::new(route(1)));
        assert!(rib.withdraw(PeerId(1), &p("10.0.0.0/8")));
        assert!(!rib.withdraw(PeerId(1), &p("10.0.0.0/8")));
    }
}
