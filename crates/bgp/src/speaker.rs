//! A complete classic BGP-4 speaker, sans-IO.
//!
//! The speaker assembles the two cores from `dbgp-session` — one
//! [`SessionCore`] per configured neighbor plus one [`RoutingCore`] for
//! the RIBs and decision process — and exposes a byte-oriented
//! interface: feed it received bytes and transport events with a
//! timestamp, and execute the [`Output`]s it returns (bytes to send,
//! connections to open, ...). All message framing goes through the real
//! wire codec, so every test that drives two speakers against each
//! other also exercises serialization.
//!
//! In the paper's terms this is "Quagga": the baseline BGP
//! implementation whose advertisement processing D-BGP (in `dbgp-core`)
//! interposes on. The `dbgpd` daemon (`dbgp-daemon`) drives the same
//! two cores over real TCP sockets.

use crate::config::{NeighborConfig, PeerId};
use crate::rib::{AdjRibIn, LocRib, LocRibEntry};
use crate::session::{DownReason, Millis, SessionState, SessionSummary};
use bytes::Bytes;
use dbgp_session::{ConnDir, CoreOutput, RibOp, RoutingCore, SessionCore};
use dbgp_telemetry::SinkHandle;
use dbgp_wire::message::BgpMessage;
use dbgp_wire::{Ipv4Addr, Ipv4Prefix};
use std::collections::BTreeMap;

/// Transport-level inputs the host forwards to the speaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportEvent {
    /// The connection to the peer came up.
    Connected,
    /// A connection attempt failed.
    Failed,
    /// An established connection closed.
    Closed,
}

/// Instructions the speaker hands back to its host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Output {
    /// Transmit these bytes to the peer.
    SendBytes(PeerId, Bytes),
    /// Open the transport connection to the peer.
    TcpConnect(PeerId),
    /// Close the transport connection to the peer.
    TcpClose(PeerId),
    /// The session with this peer reached Established.
    PeerUp(PeerId, SessionSummary),
    /// The session with this peer went down.
    PeerDown(PeerId, DownReason),
    /// The best route for a prefix changed (`None` = now unreachable).
    /// The host's data plane should update its FIB.
    BestRouteChanged(Ipv4Prefix, Option<LocRibEntry>),
}

/// A classic BGP-4 speaker.
pub struct Speaker {
    peers: BTreeMap<PeerId, SessionCore>,
    routing: RoutingCore,
    sink: SinkHandle,
    node_label: u32,
}

impl Speaker {
    /// Create a speaker for AS `asn` with the given router ID.
    pub fn new(asn: u32, router_id: Ipv4Addr) -> Self {
        Speaker {
            peers: BTreeMap::new(),
            routing: RoutingCore::new(asn, router_id),
            sink: SinkHandle::none(),
            node_label: 0,
        }
    }

    /// Attach a telemetry sink; `node_label` identifies this speaker in
    /// recorded events. Propagates to every existing session (new peers
    /// added later inherit it in [`add_peer`](Self::add_peer)).
    pub fn set_telemetry(&mut self, sink: SinkHandle, node_label: u32) {
        self.sink = sink;
        self.node_label = node_label;
        self.routing.set_telemetry(self.sink.clone(), node_label);
        for (id, core) in self.peers.iter_mut() {
            core.set_telemetry(self.sink.clone(), node_label, id.0);
        }
    }

    /// Our AS number.
    pub fn asn(&self) -> u32 {
        self.routing.asn()
    }

    /// Our router ID.
    pub fn router_id(&self) -> Ipv4Addr {
        self.routing.router_id()
    }

    /// Register a neighbor. Panics if the peer ID is already used.
    pub fn add_peer(&mut self, id: PeerId, cfg: NeighborConfig) {
        assert!(!self.peers.contains_key(&id), "duplicate peer {id}");
        let mut core = SessionCore::new(cfg.session.clone());
        core.set_telemetry(self.sink.clone(), self.node_label, id.0);
        self.peers.insert(id, core);
        self.routing.add_peer(id, cfg);
    }

    /// Enable all sessions (ManualStart).
    pub fn start(&mut self, now: Millis) -> Vec<Output> {
        let ids: Vec<PeerId> = self.peers.keys().copied().collect();
        let mut out = Vec::new();
        for id in ids {
            let couts = self.peers.get_mut(&id).unwrap().start(now);
            self.absorb_core(now, id, couts, &mut out);
        }
        out
    }

    /// Forward a transport event for one peer.
    pub fn transport_event(&mut self, now: Millis, id: PeerId, ev: TransportEvent) -> Vec<Output> {
        let mut out = Vec::new();
        let Some(core) = self.peers.get_mut(&id) else { return out };
        let couts = match ev {
            TransportEvent::Connected => core.connected(now, ConnDir::Out),
            TransportEvent::Failed => core.connect_failed(now),
            TransportEvent::Closed => core.closed(now, ConnDir::Out),
        };
        self.absorb_core(now, id, couts, &mut out);
        out
    }

    /// Feed received bytes from one peer; decodes as many complete
    /// messages as are buffered.
    pub fn receive(&mut self, now: Millis, id: PeerId, data: &[u8]) -> Vec<Output> {
        let mut out = Vec::new();
        let Some(core) = self.peers.get_mut(&id) else { return out };
        let couts = core.bytes_in(now, ConnDir::Out, data);
        self.absorb_core(now, id, couts, &mut out);
        out
    }

    /// Fire any due timers across all sessions.
    pub fn poll(&mut self, now: Millis) -> Vec<Output> {
        let ids: Vec<PeerId> = self.peers.keys().copied().collect();
        let mut out = Vec::new();
        for id in ids {
            let couts = self.peers.get_mut(&id).unwrap().poll(now);
            self.absorb_core(now, id, couts, &mut out);
        }
        out
    }

    /// Earliest instant any session timer fires.
    pub fn next_deadline(&self) -> Option<Millis> {
        self.peers.values().filter_map(|c| c.next_deadline()).min()
    }

    /// Originate a prefix locally and propagate it.
    pub fn originate(&mut self, now: Millis, prefix: Ipv4Prefix) -> Vec<Output> {
        let ops = self.routing.originate(now, prefix);
        let mut out = Vec::new();
        self.absorb_ops(ops, &mut out);
        out
    }

    /// Stop originating a prefix.
    pub fn withdraw_origin(&mut self, now: Millis, prefix: Ipv4Prefix) -> Vec<Output> {
        let ops = self.routing.withdraw_origin(now, prefix);
        let mut out = Vec::new();
        self.absorb_ops(ops, &mut out);
        out
    }

    /// Read access to the Loc-RIB.
    pub fn loc_rib(&self) -> &LocRib {
        self.routing.loc_rib()
    }

    /// Read access to the Adj-RIB-In.
    pub fn adj_rib_in(&self) -> &AdjRibIn {
        self.routing.adj_rib_in()
    }

    /// The session state for a peer.
    pub fn session_state(&self, id: PeerId) -> Option<SessionState> {
        self.peers.get(&id).map(|c| c.state())
    }

    /// True once the session with `id` is Established.
    pub fn is_established(&self, id: PeerId) -> bool {
        self.session_state(id) == Some(SessionState::Established)
    }

    // ----- internals ----------------------------------------------------

    /// Execute a session core's outputs: transport ops pass through,
    /// session edges and delivered UPDATEs feed the routing core, whose
    /// ops are translated right back into this peer-addressed stream so
    /// the overall output order matches the historical monolith.
    fn absorb_core(
        &mut self,
        now: Millis,
        id: PeerId,
        couts: Vec<CoreOutput>,
        out: &mut Vec<Output>,
    ) {
        for cout in couts {
            match cout {
                CoreOutput::Connect => out.push(Output::TcpConnect(id)),
                CoreOutput::Close(_) => out.push(Output::TcpClose(id)),
                CoreOutput::SendBytes(_, bytes) => out.push(Output::SendBytes(id, bytes)),
                CoreOutput::Up(summary) => {
                    out.push(Output::PeerUp(id, summary));
                    let ops = self.routing.peer_up(id, summary);
                    self.absorb_ops(ops, out);
                }
                CoreOutput::Down(reason) => {
                    out.push(Output::PeerDown(id, reason));
                    let ops = self.routing.peer_down(now, id);
                    self.absorb_ops(ops, out);
                }
                CoreOutput::Update(update) => {
                    let (ops, err) = self.routing.update(now, id, update);
                    self.absorb_ops(ops, out);
                    if let Some(err) = err {
                        let couts = self.peers.get_mut(&id).unwrap().fail_active(now, &err);
                        self.absorb_core(now, id, couts, out);
                    }
                }
            }
        }
    }

    /// Translate routing ops into outputs, encoding UPDATEs with each
    /// target peer's negotiated 4-octet-AS capability.
    fn absorb_ops(&mut self, ops: Vec<RibOp>, out: &mut Vec<Output>) {
        for op in ops {
            match op {
                RibOp::BestRouteChanged(prefix, entry) => {
                    out.push(Output::BestRouteChanged(prefix, entry));
                }
                RibOp::Announce(pid, update) => {
                    let four = self.peers[&pid].four_octet();
                    out.push(Output::SendBytes(pid, BgpMessage::Update(update).encode(four)));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Clause, MatchCond, PrefixMatch, RouteMap, SetAction};
    use crate::rib::RouteSource;
    use dbgp_telemetry::{SelectionReason, TraceKind};
    use std::collections::VecDeque;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    /// A toy fabric that connects speakers with lossless in-order pipes
    /// and pumps until quiescence — the unit-test stand-in for the full
    /// simulator in `dbgp-sim`.
    struct Fabric {
        speakers: Vec<Speaker>,
        /// (speaker index, peer id) -> (remote speaker index, remote peer id)
        links: BTreeMap<(usize, PeerId), (usize, PeerId)>,
        queue: VecDeque<(usize, PeerId, Bytes)>,
        now: Millis,
        route_events: Vec<(usize, Ipv4Prefix, Option<LocRibEntry>)>,
    }

    impl Fabric {
        fn new(speakers: Vec<Speaker>) -> Self {
            Fabric {
                speakers,
                links: BTreeMap::new(),
                queue: VecDeque::new(),
                now: 0,
                route_events: Vec::new(),
            }
        }

        /// Wire a<->b with fresh peer IDs on each side.
        fn connect(&mut self, a: usize, pa: PeerId, b: usize, pb: PeerId) {
            self.links.insert((a, pa), (b, pb));
            self.links.insert((b, pb), (a, pa));
        }

        fn absorb(&mut self, idx: usize, outputs: Vec<Output>) {
            for output in outputs {
                match output {
                    Output::SendBytes(peer, bytes) => {
                        if let Some(&(remote, rpeer)) = self.links.get(&(idx, peer)) {
                            self.queue.push_back((remote, rpeer, bytes));
                        }
                    }
                    Output::TcpConnect(peer) => {
                        // Instant transport: both ends connect (or the
                        // attempt fails if the link is not wired yet).
                        let Some(&(remote, rpeer)) = self.links.get(&(idx, peer)) else {
                            let now = self.now;
                            let o = self.speakers[idx].transport_event(
                                now,
                                peer,
                                TransportEvent::Failed,
                            );
                            self.absorb(idx, o);
                            continue;
                        };
                        let now = self.now;
                        let o1 = self.speakers[idx].transport_event(
                            now,
                            peer,
                            TransportEvent::Connected,
                        );
                        self.absorb(idx, o1);
                        let o2 = self.speakers[remote].transport_event(
                            now,
                            rpeer,
                            TransportEvent::Connected,
                        );
                        self.absorb(remote, o2);
                    }
                    Output::TcpClose(_) => {}
                    Output::BestRouteChanged(prefix, entry) => {
                        self.route_events.push((idx, prefix, entry));
                    }
                    Output::PeerUp(..) | Output::PeerDown(..) => {}
                }
            }
        }

        fn start(&mut self) {
            for idx in 0..self.speakers.len() {
                let outputs = self.speakers[idx].start(self.now);
                self.absorb(idx, outputs);
            }
            self.run();
        }

        /// Deliver queued bytes until nothing moves.
        fn run(&mut self) {
            while let Some((idx, peer, bytes)) = self.queue.pop_front() {
                self.now += 1;
                let now = self.now;
                let outputs = self.speakers[idx].receive(now, peer, &bytes);
                self.absorb(idx, outputs);
            }
        }

        fn originate(&mut self, idx: usize, prefix: Ipv4Prefix) {
            self.now += 1;
            let now = self.now;
            let outputs = self.speakers[idx].originate(now, prefix);
            self.absorb(idx, outputs);
            self.run();
        }
    }

    fn speaker(asn: u32) -> Speaker {
        Speaker::new(asn, Ipv4Addr::new(10, 0, 0, asn as u8))
    }

    fn neighbor(local_as: u32, peer_as: u32) -> NeighborConfig {
        NeighborConfig::new(
            local_as,
            Ipv4Addr::new(10, 0, 0, local_as as u8),
            peer_as,
            Ipv4Addr::new(10, local_as as u8, peer_as as u8, 1),
        )
    }

    /// Line topology 1 - 2 - 3, AS numbers 101, 102, 103.
    fn line3() -> Fabric {
        let mut s1 = speaker(101);
        let mut s2 = speaker(102);
        let mut s3 = speaker(103);
        s1.add_peer(PeerId(0), neighbor(101, 102));
        s2.add_peer(PeerId(0), neighbor(102, 101));
        s2.add_peer(PeerId(1), neighbor(102, 103));
        s3.add_peer(PeerId(0), neighbor(103, 102));
        let mut fabric = Fabric::new(vec![s1, s2, s3]);
        fabric.connect(0, PeerId(0), 1, PeerId(0));
        fabric.connect(1, PeerId(1), 2, PeerId(0));
        fabric.start();
        fabric
    }

    #[test]
    fn sessions_establish_across_fabric() {
        let fabric = line3();
        assert!(fabric.speakers[0].is_established(PeerId(0)));
        assert!(fabric.speakers[1].is_established(PeerId(0)));
        assert!(fabric.speakers[1].is_established(PeerId(1)));
        assert!(fabric.speakers[2].is_established(PeerId(0)));
    }

    #[test]
    fn route_propagates_with_as_path_growth() {
        let mut fabric = line3();
        fabric.originate(0, p("128.6.0.0/16"));
        // AS 103's view: path 102 101.
        let entry = fabric.speakers[2].loc_rib().get(&p("128.6.0.0/16")).unwrap();
        assert_eq!(entry.route.as_path.hop_count(), 2);
        assert_eq!(entry.route.as_path.first_as(), Some(102));
        assert_eq!(entry.route.as_path.origin_as(), Some(101));
        // AS 102's view: path 101.
        let entry = fabric.speakers[1].loc_rib().get(&p("128.6.0.0/16")).unwrap();
        assert_eq!(entry.route.as_path.hop_count(), 1);
    }

    #[test]
    fn withdrawal_propagates() {
        let mut fabric = line3();
        fabric.originate(0, p("128.6.0.0/16"));
        assert!(fabric.speakers[2].loc_rib().get(&p("128.6.0.0/16")).is_some());
        fabric.now += 1;
        let now = fabric.now;
        let outputs = fabric.speakers[0].withdraw_origin(now, p("128.6.0.0/16"));
        fabric.absorb(0, outputs);
        fabric.run();
        assert!(fabric.speakers[2].loc_rib().get(&p("128.6.0.0/16")).is_none());
        assert!(fabric.speakers[1].loc_rib().get(&p("128.6.0.0/16")).is_none());
    }

    #[test]
    fn split_horizon_no_echo() {
        let mut fabric = line3();
        fabric.originate(0, p("10.0.0.0/8"));
        // Speaker 1 must not have learned its own origination back.
        assert!(fabric.speakers[0].adj_rib_in().is_empty());
    }

    #[test]
    fn loop_detection_in_ring() {
        // Ring: 1-2, 2-3, 3-1. A route from 1 must not loop forever.
        let mut s1 = speaker(101);
        let mut s2 = speaker(102);
        let mut s3 = speaker(103);
        s1.add_peer(PeerId(0), neighbor(101, 102));
        s1.add_peer(PeerId(1), neighbor(101, 103));
        s2.add_peer(PeerId(0), neighbor(102, 101));
        s2.add_peer(PeerId(1), neighbor(102, 103));
        s3.add_peer(PeerId(0), neighbor(103, 102));
        s3.add_peer(PeerId(1), neighbor(103, 101));
        let mut fabric = Fabric::new(vec![s1, s2, s3]);
        fabric.connect(0, PeerId(0), 1, PeerId(0));
        fabric.connect(1, PeerId(1), 2, PeerId(0));
        fabric.connect(2, PeerId(1), 0, PeerId(1));
        fabric.start();
        fabric.originate(0, p("192.0.2.0/24"));
        // Quiescence itself proves no loop; everyone has a route and
        // nobody's Adj-RIB-In holds a looped path.
        for idx in [1, 2] {
            let entry = fabric.speakers[idx].loc_rib().get(&p("192.0.2.0/24")).unwrap();
            assert_eq!(entry.route.as_path.hop_count(), 1, "direct path wins at {idx}");
        }
        assert!(fabric.speakers[0].adj_rib_in().is_empty(), "own AS filtered");
    }

    #[test]
    fn best_path_prefers_shorter_route() {
        // Diamond: 1-2-4, 1-3a-3b-4 (longer). AS 104 should pick via 102.
        let mut s1 = speaker(101);
        let mut s2 = speaker(102);
        let mut s3a = speaker(105);
        let mut s3b = speaker(106);
        let mut s4 = speaker(104);
        s1.add_peer(PeerId(0), neighbor(101, 102));
        s1.add_peer(PeerId(1), neighbor(101, 105));
        s2.add_peer(PeerId(0), neighbor(102, 101));
        s2.add_peer(PeerId(1), neighbor(102, 104));
        s3a.add_peer(PeerId(0), neighbor(105, 101));
        s3a.add_peer(PeerId(1), neighbor(105, 106));
        s3b.add_peer(PeerId(0), neighbor(106, 105));
        s3b.add_peer(PeerId(1), neighbor(106, 104));
        s4.add_peer(PeerId(0), neighbor(104, 102));
        s4.add_peer(PeerId(1), neighbor(104, 106));
        let mut fabric = Fabric::new(vec![s1, s2, s3a, s3b, s4]);
        fabric.connect(0, PeerId(0), 1, PeerId(0));
        fabric.connect(0, PeerId(1), 2, PeerId(0));
        fabric.connect(2, PeerId(1), 3, PeerId(0));
        fabric.connect(1, PeerId(1), 4, PeerId(0));
        fabric.connect(3, PeerId(1), 4, PeerId(1));
        fabric.start();
        fabric.originate(0, p("203.0.113.0/24"));
        let entry = fabric.speakers[4].loc_rib().get(&p("203.0.113.0/24")).unwrap();
        assert_eq!(entry.route.as_path.hop_count(), 2, "2-hop path via AS 102");
        assert_eq!(entry.source, RouteSource::Peer(PeerId(0)));
    }

    #[test]
    fn import_policy_denies_route() {
        let mut s1 = speaker(101);
        let mut s2 = speaker(102);
        s1.add_peer(PeerId(0), neighbor(101, 102));
        let mut n = neighbor(102, 101);
        n.import = RouteMap::new(vec![Clause::deny(vec![MatchCond::Prefix(
            p("10.0.0.0/8"),
            PrefixMatch::OrLonger,
        )])]);
        n.import.default_permit = true;
        s2.add_peer(PeerId(0), n);
        let mut fabric = Fabric::new(vec![s1, s2]);
        fabric.connect(0, PeerId(0), 1, PeerId(0));
        fabric.start();
        fabric.originate(0, p("10.1.0.0/16"));
        fabric.originate(0, p("192.168.0.0/16"));
        assert!(fabric.speakers[1].loc_rib().get(&p("10.1.0.0/16")).is_none(), "denied");
        assert!(fabric.speakers[1].loc_rib().get(&p("192.168.0.0/16")).is_some(), "permitted");
    }

    #[test]
    fn export_policy_local_pref_steers_choice() {
        // AS 103 hears 10/8 from both 101 (direct) and 102 (longer). Its
        // import policy boosts LOCAL_PREF on the longer path; it must
        // choose it despite the extra hop.
        let mut s1 = speaker(101);
        let mut s2 = speaker(102);
        let mut s3 = speaker(103);
        s1.add_peer(PeerId(0), neighbor(101, 102));
        s1.add_peer(PeerId(1), neighbor(101, 103));
        s2.add_peer(PeerId(0), neighbor(102, 101));
        s2.add_peer(PeerId(1), neighbor(102, 103));
        let mut direct = neighbor(103, 101);
        direct.import = RouteMap::permit_all();
        let mut via2 = neighbor(103, 102);
        via2.import = RouteMap {
            clauses: vec![Clause::permit(vec![MatchCond::Any], vec![SetAction::LocalPref(200)])],
            default_permit: true,
        };
        s3.add_peer(PeerId(0), direct);
        s3.add_peer(PeerId(1), via2);
        let mut fabric = Fabric::new(vec![s1, s2, s3]);
        fabric.connect(0, PeerId(0), 1, PeerId(0));
        fabric.connect(0, PeerId(1), 2, PeerId(0));
        fabric.connect(1, PeerId(1), 2, PeerId(1));
        fabric.start();
        fabric.originate(0, p("10.0.0.0/8"));
        let entry = fabric.speakers[2].loc_rib().get(&p("10.0.0.0/8")).unwrap();
        assert_eq!(entry.source, RouteSource::Peer(PeerId(1)), "boosted path wins");
        assert_eq!(entry.route.as_path.hop_count(), 2);
    }

    #[test]
    fn next_hop_rewritten_at_each_ebgp_hop() {
        let mut fabric = line3();
        fabric.originate(0, p("128.6.0.0/16"));
        let entry2 = fabric.speakers[1].loc_rib().get(&p("128.6.0.0/16")).unwrap();
        let entry3 = fabric.speakers[2].loc_rib().get(&p("128.6.0.0/16")).unwrap();
        assert_ne!(entry2.route.next_hop, entry3.route.next_hop);
    }

    #[test]
    fn peer_down_flushes_learned_routes() {
        let mut fabric = line3();
        fabric.originate(0, p("128.6.0.0/16"));
        assert!(fabric.speakers[2].loc_rib().get(&p("128.6.0.0/16")).is_some());
        // Kill the 2-3 link from 3's perspective.
        let now = fabric.now + 1;
        let outputs = fabric.speakers[2].transport_event(now, PeerId(0), TransportEvent::Closed);
        assert!(outputs.iter().any(|o| matches!(o, Output::PeerDown(..))));
        assert!(outputs
            .iter()
            .any(|o| matches!(o, Output::BestRouteChanged(pr, None) if *pr == p("128.6.0.0/16"))));
        assert!(fabric.speakers[2].loc_rib().get(&p("128.6.0.0/16")).is_none());
    }

    #[test]
    fn late_joiner_gets_full_table() {
        // 1 and 2 converge first; 3 then connects and must receive the
        // already-installed route via the initial table transfer.
        let mut s1 = speaker(101);
        let mut s2 = speaker(102);
        let mut s3 = speaker(103);
        s1.add_peer(PeerId(0), neighbor(101, 102));
        s2.add_peer(PeerId(0), neighbor(102, 101));
        s2.add_peer(PeerId(1), neighbor(102, 103));
        s3.add_peer(PeerId(0), neighbor(103, 102));
        let mut fabric = Fabric::new(vec![s1, s2, s3]);
        fabric.connect(0, PeerId(0), 1, PeerId(0));
        // Note: link 1-2 only; speaker 3 not wired yet. Start speakers 0/1.
        let o = fabric.speakers[0].start(0);
        fabric.absorb(0, o);
        let o = fabric.speakers[1].start(0);
        fabric.absorb(1, o);
        fabric.run();
        fabric.originate(0, p("128.6.0.0/16"));
        assert!(fabric.speakers[1].loc_rib().get(&p("128.6.0.0/16")).is_some());
        // Now bring up 2-3.
        fabric.connect(1, PeerId(1), 2, PeerId(0));
        let o = fabric.speakers[2].start(fabric.now);
        fabric.absorb(2, o);
        fabric.run();
        assert!(fabric.speakers[2].is_established(PeerId(0)));
        let entry = fabric.speakers[2].loc_rib().get(&p("128.6.0.0/16")).unwrap();
        assert_eq!(entry.route.as_path.hop_count(), 2);
    }

    #[test]
    fn telemetry_records_fsm_transitions_and_decisions() {
        use dbgp_telemetry::TraceRecorder;
        use std::rc::Rc;

        let rec = Rc::new(TraceRecorder::unbounded());
        let mut s1 = speaker(101);
        let mut s2 = speaker(102);
        s1.add_peer(PeerId(0), neighbor(101, 102));
        s2.add_peer(PeerId(0), neighbor(102, 101));
        s2.set_telemetry(SinkHandle::new(rec.clone()), 1);
        let mut fabric = Fabric::new(vec![s1, s2]);
        fabric.connect(0, PeerId(0), 1, PeerId(0));
        fabric.start();
        fabric.originate(0, p("128.6.0.0/16"));

        let events = rec.events();
        // Every recorded FSM hop on the way to Established, in order.
        let fsm: Vec<(String, String)> = events
            .iter()
            .filter_map(|e| match &e.kind {
                TraceKind::SessionFsm { from, to, .. } => Some((from.clone(), to.clone())),
                _ => None,
            })
            .collect();
        assert!(fsm.contains(&("idle".into(), "connect".into())));
        assert!(fsm.iter().any(|(_, to)| to == "established"));
        // The decision process explained the install.
        let decided = events.iter().any(|e| {
            matches!(
                &e.kind,
                TraceKind::Decision { prefix, selected: true, neighbor_as: Some(101), hops: 1,
                    candidates: 1, why: SelectionReason::OnlyCandidate, .. }
                    if *prefix == p("128.6.0.0/16")
            )
        });
        assert!(decided, "expected an explained Decision event, got {events:?}");
    }

    #[test]
    fn telemetry_decision_explains_router_id_tiebreak() {
        use dbgp_telemetry::TraceRecorder;
        use std::rc::Rc;

        // Equal-length diamond 101-{105,102}-104. The origin's peer order
        // makes the via-105 path reach AS 104 first (installed as the only
        // candidate); when the via-102 path arrives, both tie through path
        // length, so the recorded flip must be explained by the router-id
        // step (102's id 10.0.0.102 < 105's 10.0.0.105).
        let rec = Rc::new(TraceRecorder::unbounded());
        let mut s1 = speaker(101);
        let mut s2 = speaker(102);
        let mut s3 = speaker(105);
        let mut s4 = speaker(104);
        s1.add_peer(PeerId(0), neighbor(101, 105));
        s1.add_peer(PeerId(1), neighbor(101, 102));
        s2.add_peer(PeerId(0), neighbor(102, 101));
        s2.add_peer(PeerId(1), neighbor(102, 104));
        s3.add_peer(PeerId(0), neighbor(105, 101));
        s3.add_peer(PeerId(1), neighbor(105, 104));
        s4.add_peer(PeerId(0), neighbor(104, 102));
        s4.add_peer(PeerId(1), neighbor(104, 105));
        s4.set_telemetry(SinkHandle::new(rec.clone()), 4);
        let mut fabric = Fabric::new(vec![s1, s2, s3, s4]);
        fabric.connect(0, PeerId(0), 2, PeerId(0));
        fabric.connect(0, PeerId(1), 1, PeerId(0));
        fabric.connect(1, PeerId(1), 3, PeerId(0));
        fabric.connect(2, PeerId(1), 3, PeerId(1));
        fabric.start();
        fabric.originate(0, p("203.0.113.0/24"));

        // AS 104 ends up routing via 102 (lower router id).
        let entry = fabric.speakers[3].loc_rib().get(&p("203.0.113.0/24")).unwrap();
        assert_eq!(entry.source, RouteSource::Peer(PeerId(0)));

        let decisions: Vec<(SelectionReason, u32, Option<u32>)> = rec
            .events()
            .iter()
            .filter_map(|e| match &e.kind {
                TraceKind::Decision { prefix, why, candidates, neighbor_as, .. }
                    if *prefix == p("203.0.113.0/24") =>
                {
                    Some((*why, *candidates, *neighbor_as))
                }
                _ => None,
            })
            .collect();
        assert_eq!(
            decisions,
            vec![
                (SelectionReason::OnlyCandidate, 1, Some(105)),
                (SelectionReason::RouterId, 2, Some(102)),
            ],
            "first install then router-id flip"
        );
    }

    #[test]
    fn garbage_bytes_reset_session() {
        let mut fabric = line3();
        let now = fabric.now + 1;
        let outputs = fabric.speakers[2].receive(now, PeerId(0), &[0u8; 32]);
        assert!(outputs
            .iter()
            .any(|o| matches!(o, Output::SendBytes(_, b) if b[18] == 3 /* NOTIFICATION */)));
        assert_eq!(fabric.speakers[2].session_state(PeerId(0)), Some(SessionState::Idle));
    }
}
